(* CDN global load balancing (Maggs & Sitaraman, SIGCOMM CCR 2015).

   The paper's introduction motivates byzantine stable matching with
   content delivery networks: client groups ("map units") are matched to
   server clusters by a stable-matching mechanism, and the original
   deployment mitigates failures with leader election — a single point of
   failure if the leader misbehaves. Here the same assignment is computed
   with no leader at all, tolerating byzantine server clusters.

   Left side: map units, preferring clusters by network latency.
   Right side: server clusters, preferring map units by traffic value
   (revenue), each with limited appetite for far-away traffic.

   One cluster is compromised and equivocates; one crashes mid-protocol.
   The run still produces a stable assignment for all honest participants.

   Run with: dune exec examples/cdn_load_balancing.exe *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Topology = Bsm_topology.Topology

(* Synthetic geography: positions on a line; latency = distance. *)
let k = 8

let map_unit_pos i = float_of_int (i * 13 mod 17)
let cluster_pos j = float_of_int (j * 7 mod 17)
let traffic_value i = float_of_int ((i * 31) mod 23)

let rank_by score candidates =
  List.sort (fun a b -> compare (score a) (score b)) candidates
  |> List.map (fun c -> c)

let profile =
  let left =
    Array.init k (fun i ->
        (* map unit i prefers low-latency clusters *)
        let ranked =
          rank_by (fun j -> abs_float (map_unit_pos i -. cluster_pos j)) (List.init k Fun.id)
        in
        SM.Prefs.of_list_exn ranked)
  in
  let right =
    Array.init k (fun j ->
        (* cluster j prefers high-value traffic, latency as tiebreak *)
        let ranked =
          rank_by
            (fun i ->
              (-.traffic_value i, abs_float (map_unit_pos i -. cluster_pos j)))
            (List.init k Fun.id)
        in
        SM.Prefs.of_list_exn ranked)
  in
  SM.Profile.make_exn ~left ~right

let () =
  (* Clusters talk to each other over the backbone; map units (resolvers)
     talk only to clusters: the paper's one-sided topology. *)
  let setting =
    Core.Setting.make_exn ~k ~topology:Topology.One_sided
      ~auth:Core.Setting.Authenticated ~t_left:0 ~t_right:2
  in
  Printf.printf "CDN load balancing: %d map units, %d clusters (%s)\n\n" k k
    (Format.asprintf "%a" Core.Setting.pp setting);

  let seed = 99 in
  let compromised = Party_id.right 3 in
  let crashing = Party_id.right 6 in
  let byzantine =
    [
      (* the compromised cluster lies about its preferences, trying to
         grab high-value traffic it doesn't deserve *)
      ( compromised,
        H.Adversaries.lying ~setting ~seed
          ~fake:(SM.Prefs.of_list_exn (List.init k (fun i -> (i + 5) mod k)))
          ~self:compromised );
      (* another cluster fails mid-protocol *)
      ( crashing,
        H.Adversaries.crash ~setting ~seed
          ~input:(SM.Profile.prefs profile crashing)
          ~self:crashing ~round:4 );
    ]
  in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed setting profile) in

  Printf.printf "Protocol: %s\n\n" report.H.Scenario.plan.Core.Select.describe;
  print_endline "Assignment (map unit -> cluster, with latency):";
  List.iter
    (fun (p, d) ->
      if Side.equal (Party_id.side p) Side.Left then
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched q ->
          let latency =
            abs_float (map_unit_pos (Party_id.index p) -. cluster_pos (Party_id.index q))
          in
          Printf.printf "  unit%-2d -> cluster%-2d  latency %.0f%s\n" (Party_id.index p)
            (Party_id.index q) latency
            (if Party_id.equal q compromised || Party_id.equal q crashing then
               "  (byzantine cluster)"
             else "")
        | Core.Problem.Nobody ->
          Printf.printf "  unit%-2d -> unassigned\n" (Party_id.index p)
        | Core.Problem.No_output ->
          Printf.printf "  unit%-2d -> NO OUTPUT\n" (Party_id.index p))
    report.H.Scenario.outcome.Core.Problem.decisions;

  print_newline ();
  (match report.H.Scenario.violations with
  | [] -> print_endline "Stable despite 2 byzantine clusters, no leader involved."
  | vs ->
    Printf.printf "violations: %d\n" (List.length vs);
    exit 1);
  Printf.printf "Cost: %d rounds, %d messages, %d bytes.\n"
    report.H.Scenario.metrics.Bsm_runtime.Engine.rounds_used
    report.H.Scenario.metrics.Bsm_runtime.Engine.messages_sent
    report.H.Scenario.metrics.Bsm_runtime.Engine.bytes_delivered
