(* Chaos-engineering walkthrough: a crash and a partition vs the oracle.

   Takes the Theorem 2 setting (fully connected, unauthenticated,
   tL = floor((k-1)/3), tR = k), subjects an honest execution to a fault
   schedule — R0 crashes at round 1, and R1 is partitioned away from the
   left side for a window — and lets the bSM property oracle judge the
   outcome. Both faulty parties fit the right-side corruption budget
   (omission-faulty is a special case of byzantine), so the oracle
   demands all four properties for everyone else and reports `ok`.

   The same schedule compiled with the same seed drops exactly the same
   messages: re-running this demo is bit-for-bit reproducible.

   Run with: dune exec examples/chaos_demo.exe *)

open Bsm_prelude
module Core = Bsm_core
module H = Bsm_harness
module Chaos = Bsm_chaos
module Topology = Bsm_topology.Topology

let () =
  let k = 3 in
  let setting =
    Core.Setting.make_exn ~k ~topology:Topology.Fully_connected
      ~auth:Core.Setting.Unauthenticated ~t_left:0 ~t_right:k
  in
  let case = H.Sweep.case ~profile_seed:42 setting in

  let r0 = Party_id.right 0 and r1 = Party_id.right 1 in
  let left = Party_id.side_members Side.Left ~k in
  let schedule =
    Chaos.Schedule.all
      [
        Chaos.Schedule.crash r0 ~at_round:1;
        Chaos.Schedule.partition ~from_round:2 ~until_round:5 [ r1 ] left;
      ]
  in
  Printf.printf "setting:  %s\n" (Format.asprintf "%a" Core.Setting.pp setting);
  Printf.printf "schedule: %s\n\n" (Chaos.Schedule.describe schedule);

  let report = Chaos.Oracle.run ~seed:7 ~schedule case in
  Format.printf "%a@.@." Chaos.Oracle.pp_report report;

  (match report.Chaos.Oracle.verdict with
  | Chaos.Oracle.Ok ->
    print_endline
      "ok: the crashed and partitioned parties fit the corruption budget, \
       and every other party still got termination, symmetry, stability \
       and non-competition."
  | Chaos.Oracle.Expected_degradation ->
    print_endline "over budget: no guarantee applies (expected degradation)."
  | Chaos.Oracle.Violation ->
    print_endline "VIOLATION: properties broke within budget — a protocol bug!");

  (* The same schedule over the full corruption budget: add a lossy link
     layer on top. Charging every party blows the budget, so the oracle
     stops promising anything — but the run must still terminate cleanly. *)
  let noisy = Chaos.Schedule.(union schedule (bernoulli ~rate:0.2)) in
  let report = Chaos.Oracle.run ~seed:7 ~schedule:noisy case in
  Printf.printf "\nwith %s:\n  verdict: %s\n"
    (Chaos.Schedule.describe noisy)
    (Chaos.Oracle.verdict_to_string report.Chaos.Oracle.verdict)
