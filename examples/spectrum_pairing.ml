(* Cognitive-radio spectrum access (Bayat et al., ICC 2011).

   Primary users (licensed spectrum owners) are paired with secondary
   users (unlicensed devices that relay in exchange for spectrum): a
   classic distributed stable-matching application cited in the paper's
   introduction. Radios can only talk across the primary/secondary divide
   — a bipartite network — and there is no PKI in the field, so this runs
   the unauthenticated bipartite protocol (Theorem 3): majority-proxy
   channels plus general-adversary phase king.

   Preferences come from synthetic channel gains (each side ranks the
   other by achievable rate). A jammer controls two secondary radios and
   floods the network; a primary radio is also compromised. The honest
   radios still pair stably.

   Run with: dune exec examples/spectrum_pairing.exe *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Topology = Bsm_topology.Topology

let k = 9

(* Synthetic channel gain between primary i and secondary j: a smooth
   pseudo-random field, identical from both ends (reciprocity). *)
let gain i j =
  let x = ((i * 37) + (j * 101)) mod 97 in
  let y = ((i * 17) + (j * 59)) mod 89 in
  float_of_int ((x * y) mod 83)

let ranked_for score =
  List.sort (fun a b -> compare (score b) (score a)) (List.init k Fun.id)

let profile =
  let left = Array.init k (fun i -> SM.Prefs.of_list_exn (ranked_for (gain i))) in
  let right =
    Array.init k (fun j -> SM.Prefs.of_list_exn (ranked_for (fun i -> gain i j)))
  in
  SM.Profile.make_exn ~left ~right

let () =
  (* t_L = 1 < k/3 = 3 and t_L, t_R < k/2: Theorem 3's conditions hold. *)
  let setting =
    Core.Setting.make_exn ~k ~topology:Topology.Bipartite
      ~auth:Core.Setting.Unauthenticated ~t_left:1 ~t_right:2
  in
  Printf.printf "Spectrum pairing: %d primaries, %d secondaries (%s)\n"
    k k
    (Format.asprintf "%a" Core.Setting.pp setting);
  Printf.printf "Verdict: %s\n\n"
    (Format.asprintf "%a" Core.Solvability.pp_verdict (Core.Solvability.decide setting));

  let byzantine =
    [
      Party_id.right 2, H.Adversaries.noise ~seed:1 (* jammer radio 1 *);
      Party_id.right 5, H.Adversaries.noise ~seed:2 (* jammer radio 2 *);
      Party_id.left 7, H.Adversaries.silent (* compromised primary *);
    ]
  in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:4 setting profile) in

  Printf.printf "Protocol: %s\n\n" report.H.Scenario.plan.Core.Select.describe;
  print_endline "Pairings (primary -> secondary, channel gain):";
  let total_gain = ref 0.0 in
  List.iter
    (fun (p, d) ->
      if Side.equal (Party_id.side p) Side.Left then
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched q ->
          let g = gain (Party_id.index p) (Party_id.index q) in
          total_gain := !total_gain +. g;
          Printf.printf "  P%-2d <-> S%-2d  gain %.0f\n" (Party_id.index p)
            (Party_id.index q) g
        | Core.Problem.Nobody -> Printf.printf "  P%-2d unpaired\n" (Party_id.index p)
        | Core.Problem.No_output -> Printf.printf "  P%-2d NO OUTPUT\n" (Party_id.index p))
    report.H.Scenario.outcome.Core.Problem.decisions;
  Printf.printf "\nTotal matched gain: %.0f\n" !total_gain;

  (match report.H.Scenario.violations with
  | [] -> print_endline "Stable pairing achieved under jamming — no central spectrum broker."
  | vs ->
    Printf.printf "violations: %d\n" (List.length vs);
    exit 1);
  Printf.printf "Cost: %d rounds, %d messages, %d bytes.\n"
    report.H.Scenario.metrics.Bsm_runtime.Engine.rounds_used
    report.H.Scenario.metrics.Bsm_runtime.Engine.messages_sent
    report.H.Scenario.metrics.Bsm_runtime.Engine.bytes_delivered
