(* Quickstart: solve byzantine stable matching end to end.

   Five agents per side in a fully-connected authenticated network; one
   agent on each side is byzantine. We build random preferences, pick the
   protocol for the setting, run it, and print the matching together with
   the verified properties.

   Run with: dune exec examples/quickstart.exe *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Topology = Bsm_topology.Topology

let () =
  let k = 5 in
  let setting =
    Core.Setting.make_exn ~k ~topology:Topology.Fully_connected
      ~auth:Core.Setting.Authenticated ~t_left:1 ~t_right:1
  in
  Printf.printf "Setting: %s\n" (Format.asprintf "%a" Core.Setting.pp setting);
  Printf.printf "Verdict: %s\n\n"
    (Format.asprintf "%a" Core.Solvability.pp_verdict (Core.Solvability.decide setting));

  (* Everyone's true preferences. *)
  let rng = Rng.make 2026 in
  let profile = SM.Profile.random rng k in

  (* A byzantine coalition within budget: L4 floods garbage, R0 stays
     silent. *)
  let byzantine =
    [
      Party_id.left 4, H.Adversaries.noise ~seed:7;
      Party_id.right 0, H.Adversaries.silent;
    ]
  in

  let scenario = H.Scenario.make_exn ~byzantine ~seed:1 setting profile in
  let report = H.Scenario.run scenario in

  Printf.printf "Protocol: %s\n" report.H.Scenario.plan.Core.Select.describe;
  Printf.printf "Rounds:   %d\n" report.H.Scenario.metrics.Bsm_runtime.Engine.rounds_used;
  Printf.printf "Messages: %d (%d bytes)\n\n"
    report.H.Scenario.metrics.Bsm_runtime.Engine.messages_sent
    report.H.Scenario.metrics.Bsm_runtime.Engine.bytes_delivered;

  print_endline "Honest decisions:";
  List.iter
    (fun (p, d) ->
      match (d : Core.Problem.decision) with
      | Core.Problem.Matched q ->
        Printf.printf "  %s -> %s\n" (Party_id.to_string p) (Party_id.to_string q)
      | Core.Problem.Nobody -> Printf.printf "  %s -> (nobody)\n" (Party_id.to_string p)
      | Core.Problem.No_output -> Printf.printf "  %s -> (no output!)\n" (Party_id.to_string p))
    report.H.Scenario.outcome.Core.Problem.decisions;

  print_newline ();
  match report.H.Scenario.violations with
  | [] ->
    print_endline
      "All four bSM properties hold: termination, symmetry, stability, \
       non-competition."
  | vs ->
    Printf.printf "UNEXPECTED: %d violations\n" (List.length vs);
    List.iter (fun v -> print_endline (Format.asprintf "  %a" Core.Problem.pp_violation v)) vs;
    exit 1
