(* bsm — command-line interface to the byzantine stable matching library.

   Subcommands:
     solvable    decide one setting (Theorems 2-7) and show the protocol plan
     matrix      the full solvability matrix for a given k (Table T1)
     run         execute a scenario with a random byzantine coalition
                 (optionally under a fault schedule: --drop-rate, --crash)
     chaos       the chaos grid: fault schedules vs the bSM oracle
                 (--shrink minimizes a violation; --inject-violation plants
                 one to exercise the shrinker end-to-end)
     replay      re-execute a repro file bit-identically and check it
     fuzz        deterministic decoder fuzzing over every registered codec
     bench       the chaos grid as a scheduling benchmark (--fused for the
                 shared task-graph scheduler and its steal counters);
                 --scale for the T-scale large-k bench (GS + sharded
                 verification on implicit instances, BENCH_scale.json)
     ssm         execute a simplified-stable-matching scenario
     attack      run an impossibility construction (Figures 2-4)
     topology    render the three communication models (Figure 1)
     complexity  round/message/byte costs per setting as k grows
     serve       the matchmaking daemon: a Unix-domain-socket listener over
                 the persistent domain pool
     load        open-loop load bench for the serve layer (BENCH_serve.json;
                 --chaos for fault schedules against live traffic)  *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module A = Bsm_attacks
module Chaos = Bsm_chaos
module Topology = Bsm_topology.Topology
open Cmdliner

(* --- shared argument parsers --------------------------------------------- *)

let topology_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "full" | "fully-connected" | "fc" -> Ok Topology.Fully_connected
    | "one-sided" | "onesided" | "os" -> Ok Topology.One_sided
    | "bipartite" | "bp" -> Ok Topology.Bipartite
    | _ -> Error (`Msg "expected full | one-sided | bipartite")
  in
  Arg.conv (parse, Topology.pp)

let auth_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "auth" | "authenticated" | "signatures" -> Ok Core.Setting.Authenticated
    | "unauth" | "unauthenticated" | "none" -> Ok Core.Setting.Unauthenticated
    | _ -> Error (`Msg "expected auth | unauth")
  in
  let print ppf a = Format.pp_print_string ppf (Core.Setting.auth_to_string a) in
  Arg.conv (parse, print)

let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Parties per side.")

let topology_arg =
  Arg.(
    value
    & opt topology_conv Topology.Fully_connected
    & info [ "t"; "topology" ] ~doc:"Topology: full | one-sided | bipartite.")

let auth_arg =
  Arg.(
    value
    & opt auth_conv Core.Setting.Unauthenticated
    & info [ "a"; "auth" ] ~doc:"Cryptographic setup: auth | unauth.")

let tl_arg = Arg.(value & opt int 0 & info [ "tl" ] ~doc:"Corruption budget in L.")
let tr_arg = Arg.(value & opt int 0 & info [ "tr" ] ~doc:"Corruption budget in R.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let setting_of k topology auth tl tr =
  match Core.Setting.make ~k ~topology ~auth ~t_left:tl ~t_right:tr with
  | Ok s -> s
  | Error msg ->
    Printf.eprintf "invalid setting: %s\n" msg;
    exit 2

(* --- solvable -------------------------------------------------------------- *)

let solvable_cmd =
  let run k topology auth tl tr =
    let s = setting_of k topology auth tl tr in
    let verdict = Core.Solvability.decide s in
    Format.printf "%a@.%a@." Core.Setting.pp s Core.Solvability.pp_verdict verdict;
    match Core.Select.plan s with
    | Ok plan -> Format.printf "plan: %s (%d rounds)@." plan.Core.Select.describe
                   plan.Core.Select.engine_rounds
    | Error _ -> Format.printf "plan: none (impossible setting)@."
  in
  Cmd.v
    (Cmd.info "solvable" ~doc:"Decide solvability of one setting (Theorems 2-7).")
    Term.(const run $ k_arg $ topology_arg $ auth_arg $ tl_arg $ tr_arg)

(* --- matrix ----------------------------------------------------------------- *)

let matrix_cmd =
  let run k =
    let table =
      Table.make
        ~title:(Printf.sprintf "T1: solvability matrix, k = %d" k)
        ~header:[ "topology"; "auth"; "solvable iff"; "frontier examples" ]
    in
    let frontier s_of =
      (* first impossible (tl, tr) in lexicographic scan, plus a maximal
         solvable pair *)
      let points =
        List.concat_map
          (fun tl -> List.map (fun tr -> tl, tr) (Util.range 0 (k + 1)))
          (Util.range 0 (k + 1))
      in
      let solvable (tl, tr) = Core.Solvability.solvable (s_of tl tr) in
      let impossible = List.filter (fun p -> not (solvable p)) points in
      let max_solvable =
        List.fold_left
          (fun acc ((tl, tr) as p) ->
            match acc with
            | Some (tl', tr') when tl' + tr' >= tl + tr -> acc
            | _ when solvable p -> Some (tl, tr)
            | _ -> acc)
          None points
      in
      let show = function
        | Some (tl, tr) -> Printf.sprintf "(%d,%d)" tl tr
        | None -> "-"
      in
      Printf.sprintf "max ok %s, first bad %s" (show max_solvable)
        (show (List.nth_opt impossible 0))
    in
    List.iter
      (fun topology ->
        List.iter
          (fun auth ->
            let s_of tl tr =
              Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr
            in
            let condition =
              (Core.Solvability.decide (s_of 0 0)).Core.Solvability.theorem
            in
            Table.add_row table
              [
                Topology.to_string topology;
                Core.Setting.auth_to_string auth;
                condition;
                frontier s_of;
              ])
          [ Core.Setting.Unauthenticated; Core.Setting.Authenticated ])
      Topology.all;
    Table.print table
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Print the solvability matrix (the paper's headline table).")
    Term.(const run $ k_arg)

(* --- run --------------------------------------------------------------------- *)

(* "L0@3" -> (L0, 3): crash party L0 from round 3 on. *)
let crash_conv =
  let parse s =
    match String.index_opt s '@' with
    | None -> Error (`Msg "expected PARTY@ROUND, e.g. L0@3")
    | Some i -> (
      let party = String.sub s 0 i in
      let round = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt round with
      | None -> Error (`Msg (Printf.sprintf "bad round %S" round))
      | Some r when r < 0 -> Error (`Msg "negative crash round")
      | Some r -> (
        try Ok (Party_id.of_string party, r)
        with Invalid_argument m -> Error (`Msg m)))
  in
  let print ppf (p, r) = Format.fprintf ppf "%a@@%d" Party_id.pp p r in
  Arg.conv (parse, print)

let run_cmd =
  let run k topology auth tl tr seed verbose drop_rate crashes =
    let s = setting_of k topology auth tl tr in
    let rng = Rng.make seed in
    let profile = SM.Profile.random rng k in
    let byzantine = H.Adversaries.random_coalition rng ~setting:s ~seed ~profile in
    Format.printf "%a — %d byzantine parties: %s@." Core.Setting.pp s
      (List.length byzantine)
      (String.concat ", " (List.map (fun (p, _) -> Party_id.to_string p) byzantine));
    let schedule =
      Chaos.Schedule.all
        (Chaos.Schedule.bernoulli ~rate:drop_rate
        :: List.map
             (fun (p, at_round) -> Chaos.Schedule.crash p ~at_round)
             crashes)
    in
    let faults =
      if Chaos.Schedule.is_empty schedule then None
      else begin
        Format.printf "fault schedule: %a (chaos seed = run seed)@."
          Chaos.Schedule.pp schedule;
        Some (Chaos.Schedule.compile ~seed schedule)
      end
    in
    let report =
      H.Scenario.run ?faults (H.Scenario.make_exn ~byzantine ~seed s profile)
    in
    if verbose then Format.printf "%a@." H.Scenario.pp_report report
    else begin
      Format.printf "plan: %s@." report.H.Scenario.plan.Core.Select.describe;
      List.iter
        (fun (p, d) ->
          match (d : Core.Problem.decision) with
          | Core.Problem.Matched q ->
            Format.printf "  %a -> %a@." Party_id.pp p Party_id.pp q
          | Core.Problem.Nobody -> Format.printf "  %a -> nobody@." Party_id.pp p
          | Core.Problem.No_output -> Format.printf "  %a -> NO OUTPUT@." Party_id.pp p)
        report.H.Scenario.outcome.Core.Problem.decisions
    end;
    let m = report.H.Scenario.metrics in
    Format.printf "cost: %d rounds, %d messages, %d bytes sent@."
      m.Bsm_runtime.Engine.rounds_used m.Bsm_runtime.Engine.messages_sent
      m.Bsm_runtime.Engine.bytes_sent;
    Format.printf
      "message fates: %d delivered (%d bytes, %d corrupted in flight), %d \
       dropped by topology, %d dropped by faults@."
      m.Bsm_runtime.Engine.messages_delivered
      m.Bsm_runtime.Engine.bytes_delivered
      m.Bsm_runtime.Engine.messages_corrupted
      m.Bsm_runtime.Engine.messages_dropped_topology
      m.Bsm_runtime.Engine.messages_dropped_fault;
    List.iter
      (fun (label, n) -> Format.printf "  %s: %d@." label n)
      m.Bsm_runtime.Engine.messages_dropped_by_label;
    match report.H.Scenario.violations with
    | [] -> Format.printf "result: bSM achieved@."
    | vs ->
      Format.printf "result: %d VIOLATIONS@." (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." Core.Problem.pp_violation v) vs;
      exit 1
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full report.")
  in
  let drop_rate =
    Arg.(
      value & opt float 0.
      & info [ "drop-rate" ]
          ~doc:
            "Drop every message independently with this probability (seeded by \
             --seed; deterministic).")
  in
  let crashes =
    Arg.(
      value
      & opt_all crash_conv []
      & info [ "crash" ] ~docv:"PARTY@ROUND"
          ~doc:
            "Crash $(docv) (e.g. L0@3): all its sends are dropped from that \
             round on. Repeatable.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one bSM execution with a random byzantine coalition at full budget.")
    Term.(
      const run $ k_arg $ topology_arg $ auth_arg $ tl_arg $ tr_arg $ seed_arg
      $ verbose $ drop_rate $ crashes)

(* --- chaos ------------------------------------------------------------------- *)

(* The planted violation for --inject-violation: sabotage silences L0
   without charging it (crash-like omission the oracle doesn't pay for),
   buried under decoy components that all fire but stay admissible — a
   send-omission and a bit-flip corruption on R0, and an R0/R1 partition.
   The shrinker's job is to strip the decoys and hand back (essentially)
   the sabotage alone. *)
let injected_label = "injected-sabotage"

let injected_cell () =
  let s =
    Core.Setting.make_exn ~k:2 ~topology:Topology.Fully_connected
      ~auth:Core.Setting.Unauthenticated ~t_left:0 ~t_right:2
  in
  let case = H.Sweep.case ~label:injected_label ~profile_seed:202 s in
  let l0 = Party_id.make Side.Left 0
  and r0 = Party_id.make Side.Right 0
  and r1 = Party_id.make Side.Right 1 in
  let schedule =
    Chaos.Schedule.all
      [
        Chaos.Schedule.sabotage l0 ~at_round:0;
        Chaos.Schedule.send_omission ~rate:0.25 r0;
        Chaos.Schedule.corrupt ~rate:0.3 ~kind:Chaos.Mutation.Bit_flip r0;
        Chaos.Schedule.partition ~from_round:0 ~until_round:6 [ r0 ] [ r1 ];
      ]
  in
  Chaos.Chaos_sweep.cell ~schedule case

let shrink_violation ~repro_path (o : Chaos.Chaos_sweep.outcome) =
  let cell = o.Chaos.Chaos_sweep.cell in
  let case = cell.Chaos.Chaos_sweep.case in
  let schedule = cell.Chaos.Chaos_sweep.schedule in
  let seed = cell.Chaos.Chaos_sweep.chaos_seed in
  let n_before = List.length (Chaos.Schedule.components schedule) in
  Format.printf "@.shrinking the %s violation (%d components, chaos seed %d)@."
    case.H.Sweep.label n_before seed;
  match Chaos.Shrink.minimize ~seed ~schedule case with
  | Error msg ->
    Printf.eprintf "shrink: %s\n" msg;
    exit 1
  | Ok out ->
    List.iter (fun line -> Format.printf "  %s@." line) out.Chaos.Shrink.trail;
    let n_after = List.length (Chaos.Schedule.components out.Chaos.Shrink.shrunk) in
    Format.printf "shrunk %d -> %d component(s) in %d oracle run(s): %s@."
      n_before n_after out.Chaos.Shrink.attempts
      (Chaos.Schedule.describe out.Chaos.Shrink.shrunk);
    (match
       Chaos.Repro.make ~case ~schedule:out.Chaos.Shrink.shrunk ~seed
         out.Chaos.Shrink.report
     with
    | Error msg ->
      Printf.eprintf "repro: %s\n" msg;
      exit 1
    | Ok repro ->
      Chaos.Repro.to_file repro_path repro;
      Format.printf "repro written to %s (re-execute with: bsm replay %s)@."
        repro_path repro_path);
    if n_after >= n_before && n_before > 1 then begin
      Printf.eprintf "shrink: failed to reduce the schedule\n";
      exit 1
    end

let chaos_cmd =
  let run full jobs shrink inject repro_path =
    let cells =
      if full then Chaos.Chaos_sweep.full_grid ()
      else Chaos.Chaos_sweep.quick_grid ()
    in
    let cells = if inject then cells @ [ injected_cell () ] else cells in
    (* resolve_jobs: an explicit --jobs wins verbatim (no clamping) over
       the BSM_JOBS environment variable. *)
    let jobs = Bsm_runtime.Pool.resolve_jobs ?jobs () in
    let outcomes =
      Bsm_runtime.Pool.with_pool ~jobs (fun pool ->
          Chaos.Chaos_sweep.run_cells ~pool cells)
    in
    let table =
      Table.make
        ~title:
          (Printf.sprintf
             "chaos grid (%s): fault schedules vs the bSM oracle"
             (if full then "full, k=2,4" else "quick, k=2"))
        ~header:[ "case"; "schedule"; "seed"; "charged"; "verdict" ]
    in
    List.iter
      (fun (o : Chaos.Chaos_sweep.outcome) ->
        let c = o.Chaos.Chaos_sweep.cell in
        let r = o.Chaos.Chaos_sweep.oracle in
        Table.add_row table
          [
            c.Chaos.Chaos_sweep.case.H.Sweep.label;
            Chaos.Schedule.describe c.Chaos.Chaos_sweep.schedule;
            string_of_int c.Chaos.Chaos_sweep.chaos_seed;
            Format.asprintf "%a" Party_set.pp r.Chaos.Oracle.charged;
            Chaos.Oracle.verdict_to_string r.Chaos.Oracle.verdict;
          ])
      outcomes;
    Table.print table;
    let s = Chaos.Chaos_sweep.summarize outcomes in
    Format.printf "%a@." Chaos.Chaos_sweep.pp_summary s;
    let violating =
      List.filter
        (fun (o : Chaos.Chaos_sweep.outcome) ->
          o.Chaos.Chaos_sweep.oracle.Chaos.Oracle.verdict = Chaos.Oracle.Violation)
        outcomes
    in
    if shrink then begin
      match violating with
      | [] -> Format.printf "shrink: no violation in the grid, nothing to do@."
      | o :: _ -> shrink_violation ~repro_path o
    end;
    if inject
       && not
            (List.exists
               (fun (o : Chaos.Chaos_sweep.outcome) ->
                 o.Chaos.Chaos_sweep.cell.Chaos.Chaos_sweep.case.H.Sweep.label
                 = injected_label)
               violating)
    then begin
      Printf.eprintf "--inject-violation: the planted sabotage did not violate\n";
      exit 1
    end;
    (* Planted violations are the expected outcome of --inject-violation;
       only unexpected ones fail the run. *)
    let unexpected =
      List.filter
        (fun (o : Chaos.Chaos_sweep.outcome) ->
          o.Chaos.Chaos_sweep.cell.Chaos.Chaos_sweep.case.H.Sweep.label
          <> injected_label)
        violating
    in
    if unexpected <> [] then exit 1
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Run the full grid (k = 2 and 4, three chaos seeds).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:
            "Domains for the sweep. An explicit value takes precedence over \
             BSM_JOBS (default: BSM_JOBS, else the recommended domain count).")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Delta-debug the first within-budget violation down to a minimal \
             schedule and write a replayable repro file.")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject-violation" ]
          ~doc:
            "Plant a known violation (an uncharged sabotage of L0 buried \
             under admissible decoy faults) to exercise --shrink end-to-end. \
             The planted violation is expected and does not fail the run.")
  in
  let repro_path =
    Arg.(
      value
      & opt string "violation.repro"
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"Where --shrink writes the repro file.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the chaos grid: T-table settings under deterministic fault \
          schedules, judged by the bSM property oracle (Theorems 8-9).")
    Term.(const run $ full $ jobs $ shrink $ inject $ repro_path)

(* --- replay ------------------------------------------------------------------- *)

let replay_cmd =
  let run file =
    match Chaos.Repro.of_file file with
    | Error msg ->
      Printf.eprintf "replay: %s\n" msg;
      exit 2
    | Ok t ->
      Format.printf "case: %s@.schedule: %s@.chaos seed: %d@.expected: %s@."
        t.Chaos.Repro.case.H.Sweep.label
        (Chaos.Schedule.describe t.Chaos.Repro.schedule)
        t.Chaos.Repro.seed
        (Chaos.Oracle.verdict_to_string t.Chaos.Repro.expected);
      let result = Chaos.Repro.check t in
      (match result with
      | Ok report ->
        Format.printf "%a@." Chaos.Oracle.pp_report report;
        Format.printf "replay: bit-identical reproduction (fingerprints match)@.";
        if report.Chaos.Oracle.verdict = Chaos.Oracle.Violation then
          Format.printf
            "replay: reproduced verdict is a VIOLATION — exiting nonzero@."
      | Error msg -> Format.printf "replay: DIVERGED — %s@." msg);
      (* Exit-code policy lives in the library so it is testable:
         reproducing a Violation is still a failing state for CI. *)
      exit (Chaos.Repro.gate result)
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A repro file written by bsm chaos --shrink.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a chaos repro file and verify it reproduces the recorded \
          oracle verdict bit-identically.")
    Term.(const run $ file)

(* --- fuzz -------------------------------------------------------------------- *)

let fuzz_cmd =
  let run cases seed =
    (* The serve frames register themselves into the corpus (the corpus
       library cannot depend on the serve layer). *)
    Bsm_serve.Frame.register_codecs ();
    let entries = Chaos.Codec_corpus.entries () in
    let stats = Bsm_wire.Fuzz.run ~seed ~cases entries in
    List.iter (fun s -> Format.printf "%a@." Bsm_wire.Fuzz.pp_stats s) stats;
    let total = Bsm_wire.Fuzz.total_cases stats in
    let crashed = Bsm_wire.Fuzz.total_crashed stats in
    Format.printf
      "fuzz: %d codec(s), %d decoder invocation(s) (clean + mutated), %d \
       crash(es), seed %d@."
      (List.length stats) total crashed seed;
    if crashed > 0 then exit 1
  in
  let cases =
    Arg.(
      value & opt int 500
      & info [ "cases" ]
          ~doc:
            "Values generated per codec; each contributes one clean \
             round-trip and one mutated decode.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fuzzing seed (deterministic).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz every registered decoder with deterministic byte mutations: \
          each must round-trip, reinterpret, or raise Malformed — never \
          crash.")
    Term.(const run $ cases $ seed)

(* --- bench ------------------------------------------------------------------- *)

let bench_cmd =
  let run_scale ~quick ~full ~jobs =
    let mode =
      if quick then H.Scale.Quick else if full then H.Scale.Full else H.Scale.Default
    in
    let jobs = Bsm_runtime.Pool.resolve_jobs ?jobs () in
    let results =
      Bsm_runtime.Pool.with_pool ~jobs (fun pool -> H.Scale.run ~pool mode)
    in
    Format.printf "%a" H.Scale.pp_results results;
    let path =
      if quick then "BENCH_scale.quick.json" else "BENCH_scale.json"
    in
    H.Scale.write_json ~path ~jobs results;
    Format.printf "wrote %s (%d job(s); seq==par shard identity checked)@." path
      jobs;
    if List.exists (fun (r : H.Scale.result) -> not r.stable) results then begin
      Format.printf "FAIL: a Gale-Shapley output was not stable@.";
      exit 1
    end
  in
  let run full fused jobs scale quick =
    if scale || quick then run_scale ~quick ~full ~jobs
    else begin
    let cells =
      if full then Chaos.Chaos_sweep.full_grid ()
      else Chaos.Chaos_sweep.quick_grid ()
    in
    let jobs = Bsm_runtime.Pool.resolve_jobs ?jobs () in
    let outcomes, wall_ms, tasks, steals =
      Bsm_runtime.Pool.with_pool ~jobs (fun pool ->
          if fused then begin
            let batch = H.Sweep.Fused.create () in
            let handle =
              Chaos.Chaos_sweep.submit batch ~table:"chaos grid" cells
            in
            let rs = H.Sweep.Fused.drain ~pool batch in
            ( H.Sweep.Fused.results handle,
              rs.H.Sweep.Fused.wall_ms,
              rs.H.Sweep.Fused.tasks,
              rs.H.Sweep.Fused.steals )
          end
          else begin
            let outcomes, m =
              H.Sweep.measure (fun () -> Chaos.Chaos_sweep.run_cells ~pool cells)
            in
            outcomes, m.H.Sweep.wall_ms, List.length cells, 0
          end)
    in
    let s = Chaos.Chaos_sweep.summarize outcomes in
    Format.printf "%a@." Chaos.Chaos_sweep.pp_summary s;
    Format.printf
      "scheduler: %s — %.1f ms wall, %d tasks, %d steals, %d job(s)@."
      (if fused then "fused (one task graph, one drain point)"
       else "single barriered map")
      wall_ms tasks steals jobs;
    if s.Chaos.Chaos_sweep.violated > 0 then exit 1
    end
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Chaos grid: run the full grid (k = 2 and 4, three chaos seeds). \
             With --scale: add the k = 10^6 row.")
  in
  let fused =
    Arg.(
      value & flag
      & info [ "fused" ]
          ~doc:
            "Drain the grid through the fused task-graph scheduler (one task \
             per cell, work-stealing lanes) instead of one barriered map, and \
             report its steal counters.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:
            "Domains for the sweep. An explicit value takes precedence over \
             BSM_JOBS (default: BSM_JOBS, else the recommended domain count).")
  in
  let scale =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Run the T-scale large-k bench instead of the chaos grid: \
             Gale-Shapley plus sharded early-exit verification on implicit \
             (Flat) instances at k = 10^3..10^5 (10^6 with --full), writing \
             deterministic BENCH_scale.json.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "With --scale: k = 10^3 rows only (the CI gate), writing \
             BENCH_scale.quick.json.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the chaos grid as a scheduling benchmark and report wall clock, \
          task and steal counts, or the T-scale large-k bench with --scale \
          (the full experiment tables live in bench/main.exe).")
    Term.(const run $ full $ fused $ jobs $ scale $ quick)

(* --- attack ------------------------------------------------------------------ *)

let attack_cmd =
  let run which use_real =
    let protocol =
      if not use_real then A.Protocol_under_test.naive
      else begin
        let setting =
          match which with
          | "duplication" ->
            Core.Setting.make_exn ~k:3 ~topology:Topology.Fully_connected
              ~auth:Core.Setting.Unauthenticated ~t_left:1 ~t_right:1
          | "cycle" ->
            Core.Setting.make_exn ~k:2 ~topology:Topology.Bipartite
              ~auth:Core.Setting.Unauthenticated ~t_left:0 ~t_right:1
          | _ ->
            Core.Setting.make_exn ~k:3 ~topology:Topology.One_sided
              ~auth:Core.Setting.Unauthenticated ~t_left:1 ~t_right:3
        in
        A.Protocol_under_test.thresholded ~setting
      end
    in
    let report =
      match which with
      | "duplication" -> A.Duplication.run protocol
      | "cycle" -> A.Cycle.run protocol
      | "split" -> A.Split.run protocol
      | other ->
        Printf.eprintf "unknown attack %S (expected duplication | cycle | split)\n" other;
        exit 2
    in
    Format.printf "%a@." A.Report.pp report
  in
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ATTACK" ~doc:"duplication (Fig 2) | cycle (Fig 3) | split (Fig 4)")
  in
  let use_real =
    Arg.(
      value & flag
      & info [ "real-protocol" ]
          ~doc:
            "Attack our actual protocol stack forced beyond its thresholds instead of \
             the naive baseline.")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run an impossibility construction (Lemmas 5, 7, 13).")
    Term.(const run $ which $ use_real)

(* --- topology ------------------------------------------------------------------ *)

let topology_cmd =
  let run k =
    List.iter (fun t -> print_endline (Topology.render t ~k)) Topology.all
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Render the three communication models (Figure 1).")
    Term.(const run $ k_arg)

(* --- ssm ------------------------------------------------------------------------ *)

let ssm_cmd =
  let run k topology auth tl tr seed =
    let s = setting_of k topology auth tl tr in
    let rng = Rng.make seed in
    (* Random favorites. *)
    let favs =
      List.map
        (fun p ->
          ( p,
            Party_id.make (Side.opposite (Party_id.side p)) (Rng.int rng k) ))
        (Party_id.all ~k)
    in
    let favorites p = List.assoc p favs in
    let profile = Core.Ssm.favorites_to_profile ~k favorites in
    let byzantine = H.Adversaries.random_coalition rng ~setting:s ~seed ~profile in
    let scenario = H.Scenario.make_exn ~byzantine ~seed s profile in
    let report = H.Scenario.run_ssm ~favorites scenario in
    List.iter
      (fun (p, d) ->
        let fav = favorites p in
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched q ->
          Format.printf "  %a (fav %a) -> %a@." Party_id.pp p Party_id.pp fav
            Party_id.pp q
        | Core.Problem.Nobody ->
          Format.printf "  %a (fav %a) -> nobody@." Party_id.pp p Party_id.pp fav
        | Core.Problem.No_output ->
          Format.printf "  %a -> NO OUTPUT@." Party_id.pp p)
      report.H.Scenario.outcome.Core.Problem.decisions;
    match report.H.Scenario.violations with
    | [] -> Format.printf "result: sSM achieved@."
    | vs ->
      Format.printf "result: %d VIOLATIONS@." (List.length vs);
      exit 1
  in
  Cmd.v
    (Cmd.info "ssm" ~doc:"Run a simplified stable matching (favorites only) scenario.")
    Term.(const run $ k_arg $ topology_arg $ auth_arg $ tl_arg $ tr_arg $ seed_arg)

(* --- lattice ----------------------------------------------------------------- *)

let lattice_cmd =
  let run k seed =
    let rng = Rng.make seed in
    let profile = SM.Profile.random rng k in
    Format.printf "%a@." SM.Profile.pp profile;
    let all = SM.Lattice.all_stable profile in
    Format.printf "%d stable matching(s):@." (List.length all);
    let left_opt = SM.Gale_shapley.run ~proposers:Side.Left profile in
    let right_opt = SM.Gale_shapley.run ~proposers:Side.Right profile in
    let egal = SM.Lattice.egalitarian profile in
    List.iter
      (fun m ->
        let tags =
          List.filter_map Fun.id
            [
              (if SM.Matching.equal m left_opt then Some "left-optimal" else None);
              (if SM.Matching.equal m right_opt then Some "right-optimal" else None);
              (if SM.Matching.equal m egal then Some "egalitarian" else None);
            ]
        in
        Format.printf "  %a  cost=%d regret=%d %s@." SM.Matching.pp m
          (SM.Lattice.egalitarian_cost profile m)
          (SM.Lattice.regret profile m)
          (match tags with
          | [] -> ""
          | _ -> "[" ^ String.concat ", " tags ^ "]"))
      all
  in
  Cmd.v
    (Cmd.info "lattice"
       ~doc:"Enumerate all stable matchings of a random instance (lattice structure).")
    Term.(const run $ k_arg $ seed_arg)

(* --- roommates --------------------------------------------------------------- *)

let roommates_cmd =
  let run n seed =
    let rng = Rng.make seed in
    let solvable = ref 0 in
    let runs = 200 in
    for _ = 1 to runs do
      let inst = SM.Roommates.random rng n in
      match SM.Roommates.solve inst with
      | Some partner ->
        incr solvable;
        assert (SM.Roommates.is_stable inst partner)
      | None -> ()
    done;
    Format.printf
      "stable roommates, n = %d: %d/%d random instances solvable (%.0f%%)@." n
      !solvable runs
      (Stats.rate !solvable runs);
    Format.printf
      "(the paper's conclusion: unlike bipartite stable matching, existence can \
       fail — the byzantine variant needs refined definitions)@."
  in
  let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of persons (even).") in
  Cmd.v
    (Cmd.info "roommates"
       ~doc:
         "Solve random stable-roommates instances (Irving's algorithm; the paper's \
          future-work direction).")
    Term.(const run $ n_arg $ seed_arg)

(* --- bsr (byzantine stable roommates) ----------------------------------------- *)

let bsr_cmd =
  let run k t seed =
    let rng = Rng.make seed in
    let inputs = Core.Roommates_bsm.random_inputs rng ~k in
    let pki = Bsm_crypto.Crypto.Pki.setup ~k ~seed in
    let byzantine =
      if t = 0 then []
      else
        List.mapi
          (fun i p ->
            p, if i mod 2 = 0 then H.Adversaries.silent else H.Adversaries.noise ~seed:i)
          (Rng.sample rng (min t (2 * k)) (Party_id.all ~k))
    in
    let byz_set = Party_set.of_list (List.map fst byzantine) in
    let programs p =
      match List.assoc_opt p byzantine with
      | Some program -> program
      | None -> Core.Roommates_bsm.program ~k ~t ~pki ~input:(inputs p) ~self:p
    in
    let cfg =
      Bsm_runtime.Engine.config ~k
        ~link:(Bsm_runtime.Engine.Of_topology Topology.Fully_connected) ()
    in
    let res = Bsm_runtime.Engine.run cfg ~programs:(fun p -> programs p) in
    Format.printf
      "byzantine stable roommates: n = %d parties, %d byzantine (%s)@." (2 * k)
      (List.length byzantine)
      (String.concat ", " (List.map (fun (p, _) -> Party_id.to_string p) byzantine));
    let decisions =
      List.filter_map
        (fun (r : Bsm_runtime.Engine.party_result) ->
          if Party_set.mem r.Bsm_runtime.Engine.id byz_set then None
          else
            Some
              ( r.Bsm_runtime.Engine.id,
                match r.Bsm_runtime.Engine.status, r.Bsm_runtime.Engine.out with
                | Bsm_runtime.Engine.Terminated, Some payload ->
                  Some (Bsm_wire.Wire.decode_exn Core.Problem.decision_codec payload)
                | _ -> None ))
        res.Bsm_runtime.Engine.parties
    in
    List.iter
      (fun (p, d) ->
        match d with
        | Some (Some q) -> Format.printf "  %a -> %a@." Party_id.pp p Party_id.pp q
        | Some None -> Format.printf "  %a -> nobody@." Party_id.pp p
        | None -> Format.printf "  %a -> NO OUTPUT@." Party_id.pp p)
      decisions;
    match Core.Roommates_bsm.check ~k ~inputs ~byzantine:byz_set ~decisions with
    | [] -> Format.printf "result: byzantine stable roommates achieved@."
    | vs ->
      Format.printf "result: %d VIOLATIONS@." (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." Core.Roommates_bsm.pp_violation v) vs;
      exit 1
  in
  let t_arg =
    Arg.(value & opt int 1 & info [ "byzantine" ] ~doc:"Number of byzantine parties.")
  in
  Cmd.v
    (Cmd.info "bsr"
       ~doc:
         "Run byzantine stable roommates (the paper's future-work direction) on a \
          random instance.")
    Term.(const run $ k_arg $ t_arg $ seed_arg)

(* --- manipulate --------------------------------------------------------------- *)

let manipulate_cmd =
  let run () =
    let profile, m = SM.Truthfulness.roth_instance () in
    Format.printf "%a@." SM.Profile.pp profile;
    Format.printf
      "Roth (1982): stable matching is not truthful. Party %a misreports %a:@."
      Party_id.pp m.SM.Truthfulness.manipulator SM.Prefs.pp m.SM.Truthfulness.fake;
    Format.printf "  honest partner: index %d; lying partner: index %d (better)@."
      m.SM.Truthfulness.honest_partner m.SM.Truthfulness.lying_partner;
    Format.printf
      "Dubins-Freedman/Roth: the proposing side never gains — checked exhaustively \
       by the test suite.@."
  in
  Cmd.v
    (Cmd.info "manipulate" ~doc:"Demonstrate Roth's manipulability result.")
    Term.(const run $ const ())

(* --- complexity ------------------------------------------------------------------ *)

let complexity_cmd =
  let run max_k =
    let table =
      Table.make ~title:"T2/T3: honest-run cost per setting"
        ~header:[ "setting"; "k"; "rounds"; "messages"; "predicted"; "bytes" ]
    in
    let settings k =
      let third = max 0 ((k - 1) / 3) and half = max 0 ((k - 1) / 2) in
      [
        Core.Setting.make_exn ~k ~topology:Topology.Fully_connected
          ~auth:Core.Setting.Unauthenticated ~t_left:third ~t_right:k;
        Core.Setting.make_exn ~k ~topology:Topology.Bipartite
          ~auth:Core.Setting.Unauthenticated ~t_left:third ~t_right:half;
        Core.Setting.make_exn ~k ~topology:Topology.Fully_connected
          ~auth:Core.Setting.Authenticated ~t_left:k ~t_right:k;
        Core.Setting.make_exn ~k ~topology:Topology.Bipartite
          ~auth:Core.Setting.Authenticated ~t_left:third ~t_right:k;
      ]
    in
    List.iter
      (fun k ->
        let rng = Rng.make (k * 31) in
        List.iter
          (fun s ->
            let profile = SM.Profile.random rng k in
            let report = H.Scenario.run (H.Scenario.make_exn s profile) in
            let m = report.H.Scenario.metrics in
            Table.add_row table
              [
                Format.asprintf "%a" Core.Setting.pp s;
                string_of_int k;
                string_of_int m.Bsm_runtime.Engine.rounds_used;
                string_of_int m.Bsm_runtime.Engine.messages_sent;
                string_of_int (Core.Complexity.predicted_messages s);
                string_of_int m.Bsm_runtime.Engine.bytes_delivered;
              ])
          (settings k))
      (List.filter (fun k -> k >= 2) (Util.range 2 (max_k + 1)));
    Table.print table
  in
  let max_k = Arg.(value & opt int 6 & info [ "max-k" ] ~doc:"Largest k to measure.") in
  Cmd.v
    (Cmd.info "complexity" ~doc:"Measure round/message/byte costs as k grows.")
    Term.(const run $ max_k)

(* --- serve / load ------------------------------------------------------------ *)

module Serve = Bsm_serve

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/bsm.sock"
    & info [ "socket" ] ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket jobs queue batch max_k max_requests chaos =
    let pool =
      (* An explicit --jobs sizes a dedicated pool; otherwise the serve
         loop holds the process-global one (shutdown_global / at_exit
         stay safe mid-serve: Pool.shutdown waits out in-flight
         batches). *)
      match jobs with
      | Some j -> Bsm_runtime.Pool.create ~jobs:j ()
      | None -> Bsm_runtime.Pool.global ()
    in
    let server =
      Serve.Server.create ~pool
        ~config:
          {
            Serve.Server.default_config with
            queue_capacity = queue;
            batch;
            max_k;
            chaos;
          }
        ()
    in
    let listener = Serve.Uds.listen ~path:socket in
    Printf.printf "bsm serve: listening on %s (%d pool lane(s))\n%!" socket
      (Bsm_runtime.Pool.jobs pool);
    let stop = ref false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    let routes = Hashtbl.create 256 in
    let tick = ref 0 in
    let served = ref 0 in
    while (not !stop) && (max_requests = 0 || !served < max_requests) do
      List.iter
        (fun event ->
          match event with
          | Serve.Uds.Request (conn, Serve.Frame.Submit spec) ->
            let resp = Serve.Server.submit server ~tick:!tick spec in
            (match resp with
            | Serve.Frame.Accepted _ ->
              Hashtbl.replace routes spec.Serve.Frame.req_id conn
            | _ -> ());
            Serve.Uds.respond listener conn resp
          | Serve.Uds.Request (conn, Serve.Frame.Bye) -> Serve.Uds.drop listener conn
          | Serve.Uds.Bad_frame (conn, reason) ->
            Printf.printf "bsm serve: dropped conn %d: %s\n%!" conn reason
          | Serve.Uds.Connect _ | Serve.Uds.Disconnect _ -> ())
        (Serve.Uds.poll listener ~timeout_s:0.005);
      List.iter
        (fun resp ->
          match resp with
          | Serve.Frame.Done { req_id; _ } ->
            incr served;
            (match Hashtbl.find_opt routes req_id with
            | Some conn ->
              Hashtbl.remove routes req_id;
              Serve.Uds.respond listener conn resp
            | None -> ())
          | _ -> ())
        (Serve.Server.tick server ~tick:!tick);
      incr tick
    done;
    Serve.Uds.shutdown listener;
    Printf.printf "bsm serve: %d instance(s) served, %d oracle violation(s)\n%!"
      !served
      (Serve.Server.violations server)
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~doc:"Pool lanes (default: the process-global pool).")
  in
  let queue =
    Arg.(value & opt int 256 & info [ "queue" ] ~doc:"Submission queue capacity.")
  in
  let batch =
    Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Max instances retired per tick.")
  in
  let max_k =
    Arg.(value & opt int 4096 & info [ "max-k" ] ~doc:"Admission ceiling on k.")
  in
  let max_requests =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ]
          ~doc:"Exit after serving this many instances (0 = run forever).")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:"Run bSM instances under within-budget fault schedules, oracle-judged.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the matchmaking daemon: a Unix-domain-socket listener \
          multiplexing concurrent instances over the persistent domain pool.")
    Term.(const run $ socket_arg $ jobs $ queue $ batch $ max_k $ max_requests $ chaos)

let load_cmd =
  let run instances seed jobs queue batch k_min k_max mean_gap chaos wall out
      live_check connect =
    let params =
      {
        Serve.Serve_bench.instances;
        seed;
        jobs = Bsm_runtime.Pool.resolve_jobs ?jobs ();
        queue_capacity = queue;
        batch;
        k_min;
        k_max;
        mean_gap;
        chaos;
        max_rounds = None;
      }
    in
    (match live_check with
    | 0 -> ()
    | k -> (
      match Serve.Serve_bench.live_check ~k ~seed with
      | Ok k -> Printf.printf "live-check: k=%d live == engine (bit-identical)\n" k
      | Error msg ->
        Printf.printf "live-check: DIVERGED: %s\n" msg;
        exit 1));
    if instances < 1 then exit 0 (* live-check-only invocation *);
    match connect with
    | Some path ->
      (* Drive a remote daemon with the same deterministic schedule,
         windowed to keep its queue busy without flooding it. *)
      let client = Serve.Uds.connect ~path in
      let matched = ref 0 and failed = ref 0 and rejected = ref 0 in
      let outstanding = ref 0 in
      let next = ref 0 in
      let completed = ref 0 in
      let window = min queue 32 in
      while !completed < instances do
        while !next < instances && !outstanding < window do
          Serve.Uds.send client
            (Serve.Frame.Submit (Serve.Serve_bench.spec_of ~params !next));
          incr next;
          incr outstanding
        done;
        match Serve.Uds.recv client with
        | None -> failwith "bsm load: daemon closed the connection"
        | Some (Serve.Frame.Accepted _) -> ()
        | Some (Serve.Frame.Rejected _) ->
          incr rejected;
          incr completed;
          decr outstanding
        | Some (Serve.Frame.Done { outcome; _ }) ->
          incr completed;
          decr outstanding;
          (match outcome with
          | Serve.Frame.Matched _ -> incr matched
          | Serve.Frame.Failed _ | Serve.Frame.Timed_out -> incr failed)
      done;
      (* The daemon may already have exited (--max-requests); the
         goodbye is best-effort. *)
      (try Serve.Uds.send client Serve.Frame.Bye with Unix.Unix_error _ -> ());
      Serve.Uds.close client;
      Printf.printf "bsm load: %d over %s — matched %d, failed %d, rejected %d\n"
        instances path !matched !failed !rejected;
      if !matched < instances then exit 1
    | None ->
      let results = Serve.Serve_bench.run params in
      Format.printf "%a@." Serve.Serve_bench.pp_results results;
      Serve.Serve_bench.write_json ~path:out
        (Serve.Serve_bench.to_json ~wall results);
      Printf.printf "wrote %s\n" out;
      if chaos then begin
        if results.Serve.Serve_bench.violations > 0 then begin
          Printf.printf "bsm load: oracle violations under chaos\n";
          exit 1
        end
      end
      else if results.Serve.Serve_bench.matched < instances then begin
        Printf.printf "bsm load: %d instance(s) not matched\n"
          (instances - results.Serve.Serve_bench.matched);
        exit 1
      end
  in
  let instances =
    Arg.(value & opt int 1000 & info [ "instances" ] ~doc:"Instances to submit.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~doc:"Pool lanes (default: BSM_JOBS or the core count).")
  in
  let queue =
    Arg.(value & opt int 256 & info [ "queue" ] ~doc:"Submission queue capacity.")
  in
  let batch =
    Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Max instances retired per tick.")
  in
  let k_min = Arg.(value & opt int 8 & info [ "k-min" ] ~doc:"Smallest instance k.") in
  let k_max = Arg.(value & opt int 64 & info [ "k-max" ] ~doc:"Largest instance k.") in
  let mean_gap =
    Arg.(
      value & opt int 1
      & info [ "gap" ] ~doc:"Mean inter-arrival gap in ticks (0 = all at once).")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Submit bSM workloads and run each under a within-budget fault \
             schedule; fails on any oracle violation.")
  in
  let wall =
    Arg.(
      value & flag
      & info [ "wall" ]
          ~doc:
            "Include wall-clock numbers in the JSON (breaks bit-identity \
             across machines; tick fields stay deterministic).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "out" ] ~doc:"Output JSON path.")
  in
  let live_check =
    Arg.(
      value & opt int 0
      & info [ "live-check" ]
          ~doc:
            "First run distributed GS at this k through the live ring \
             transport and the engine and require bit-identical results \
             (0 = skip).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ]
          ~doc:"Drive a running daemon over this socket instead of in-process.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Open-loop load bench for the serve layer: deterministic arrival \
          schedule, ring (or socket) transport, BENCH_serve.json output.")
    Term.(
      const run $ instances $ seed_arg $ jobs $ queue $ batch $ k_min $ k_max
      $ mean_gap $ chaos $ wall $ out $ live_check $ connect)

let () =
  (* Socket writes to a vanished peer must surface as EPIPE errors the
     serve/load paths handle, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let doc = "byzantine stable matching (PODC 2025) — protocols, attacks, experiments" in
  let info = Cmd.info "bsm" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [
      solvable_cmd; matrix_cmd; run_cmd; chaos_cmd; replay_cmd; fuzz_cmd;
      bench_cmd; ssm_cmd; attack_cmd; topology_cmd; complexity_cmd; lattice_cmd;
      roommates_cmd; bsr_cmd; manipulate_cmd; serve_cmd; load_cmd;
    ]))
