.PHONY: all build test bench smoke fmt ci clean

all: build

build:
	dune build

test:
	dune runtest

# Full experiment tables + microbenchmarks; writes BENCH_sweeps.json.
bench:
	dune exec bench/main.exe

# Fast tier-1 exercise of the domain pool: one small parallel sweep,
# asserted bit-identical to its sequential run.
smoke:
	dune exec test/test_sweep.exe

# Format check. Skipped (with a notice) when ocamlformat is not
# installed, as on the bench container; the version pin lives in
# .ocamlformat.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not found; skipping format check"; \
	fi

ci: build test fmt

clean:
	dune clean
