.PHONY: all build test bench bench-quick bench-compare chaos-quick fuzz-quick scale-quick serve-quick plane-quick smoke fmt ci clean

all: build

build:
	dune build

test:
	dune runtest

# Full experiment tables + microbenchmarks; writes BENCH_sweeps.json.
bench:
	dune exec bench/main.exe

# Smallest k per table, no microbenchmarks; writes
# BENCH_sweeps.quick.json. Finishes in seconds — used by ci to keep the
# sweep pipeline (engine, pool, GC accounting, JSON writer) exercised.
# Runs the fused scheduler (the default) and asserts whole-run parallel
# speedup >= 1.0 when both --jobs and the recommended domain count are
# >= 2; on a single-core container the check is skipped with a notice.
bench-quick:
	dune exec bench/main.exe -- --quick

# Diff two BENCH_sweeps.json (or BENCH_scale.json) files: per-table
# sequential wall (per-row gs/verify walls for scale files) plus the
# whole-run parallel wall, failing on regressions beyond 20% (and 1 ms).
# Usage: make bench-compare OLD=baseline.json NEW=BENCH_sweeps.json
bench-compare:
	dune exec tools/bench_compare/bench_compare.exe -- $(OLD) $(NEW)

# Chaos grid only (smallest k): fault schedules vs the bSM oracle.
# Writes BENCH_chaos.quick.json and fails on any within-budget
# violation. Deterministic in the chaos seeds.
chaos-quick:
	dune exec bench/main.exe -- --chaos-quick

# Deterministic decoder fuzzing over every registered codec (the
# Codec_corpus): per codec, 500 clean round-trips plus 500 mutated-frame
# decodes — 20k decoder invocations, fully seeded, well under a second.
# Any exception other than Wire.Malformed fails the run.
fuzz-quick:
	dune exec bin/main.exe -- fuzz --cases 500

# Message-plane micro-bench: the three legs of the batched delivery
# path (arena encode, engine delivery pass, zero-copy slice decode),
# timed separately. Writes BENCH_plane.json; every field except the
# *_ms walls is deterministic, and tools/bench_compare diffs two runs
# under the usual 20% + 1 ms gate. Finishes in under a second.
plane-quick:
	dune exec bench/plane.exe

# T-scale gate: GS + sharded early-exit verification on implicit (Flat)
# instances at k = 10^3 (both families), seq==par shard identity
# enforced. Writes BENCH_scale.quick.json; finishes in seconds.
scale-quick:
	dune exec bin/main.exe -- bench --scale --quick

# Serving smoke: 100 instances through the daemon core over the
# in-process ring transport (the real wire path: encode, admit,
# schedule, execute, respond). Exits non-zero unless every instance
# matches; writes nothing (BENCH_serve.json comes from `bsm load`
# directly). Finishes in ~3 s.
serve-quick:
	dune exec bin/main.exe -- load --instances 100 --jobs 2 --out /dev/null

# Fast tier-1 exercise of the domain pool: one small parallel sweep,
# asserted bit-identical to its sequential run.
smoke:
	dune exec test/test_sweep.exe

# Format check. Skipped (with a notice) when ocamlformat is not
# installed, as on the bench container; the version pin lives in
# .ocamlformat.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not found; skipping format check"; \
	fi

ci: build test bench-quick chaos-quick fuzz-quick scale-quick serve-quick plane-quick fmt

clean:
	dune clean
