(* bench_compare — diff two BENCH_sweeps.json (or BENCH_scale.json)
   files and fail on wall regressions.

   Usage: bench_compare OLD.json NEW.json [--threshold PCT]

   Per table it compares the sequential wall clock — the one number
   that is comparable across scheduler modes (fused vs barrier) and job
   counts — and, when both files carry a "whole_run" block, the
   whole-run parallel wall. T-scale files carry one record per
   "{\"row\": ..." marker instead; for those the Gale-Shapley wall
   (gs_ms) and the sequential verification wall (verify_sequential_ms)
   are compared per row. BENCH_serve.json carries one record per
   "{\"workload\": ..." marker; for those the drain time (ticks) and
   latency quantiles (p50_ticks, p99_ticks) are compared — virtual
   scheduler ticks, but the same gate applies. BENCH_chaos.json carries
   a recovery grid with one record per "{\"recovery_row\": ..." marker;
   for those the rounds-to-recovery aggregates (max and mean engine
   rounds) are compared — growth means recovery from state corruption
   got slower. Exits 1 if any compared
   number regresses by more than the threshold (default 20%) AND by
   more than 1 unit (quick runs have millisecond-scale walls where
   percentages alone are noise). Tables/rows present on only one side
   are reported but don't fail the diff: the bench grows across PRs.

   The container has no JSON library, so this is a minimal scanner over
   the bench writers' known layouts ("key": number pairs inside each
   record). It tolerates the PR 3 schema (parallel_ms per table, no
   whole_run), the fused schema, and the scale schema. *)

let read_file path =
  try
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with Sys_error msg ->
    Printf.eprintf "bench_compare: %s\n" msg;
    exit 2

(* Index of [sub] in [s] at or after [pos], if any. *)
let find s pos sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go (max 0 pos)

(* Parse the number starting at [pos] (after optional spaces). *)
let float_at s pos =
  let n = String.length s in
  let pos = ref pos in
  while !pos < n && s.[!pos] = ' ' do incr pos done;
  let start = !pos in
  while
    !pos < n
    &&
    match s.[!pos] with
    | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
    | _ -> false
  do
    incr pos
  done;
  float_of_string_opt (String.sub s start (!pos - start))

(* ["key": v] within s.[pos..stop), if present. *)
let key_float s ~pos ~stop key =
  let needle = Printf.sprintf "\"%s\":" key in
  match find s pos needle with
  | Some i when i < stop -> float_at s (i + String.length needle)
  | Some _ | None -> None

(* One scanned record: its name plus the requested "key": number values
   (in [keys] order), scoped to the span between this marker and the
   next. *)
let scan s ~marker ~keys =
  let rec go pos acc =
    match find s pos marker with
    | None -> List.rev acc
    | Some i -> (
      let name_start = i + String.length marker in
      match String.index_from_opt s name_start '"' with
      | None -> List.rev acc
      | Some name_end ->
        let name = String.sub s name_start (name_end - name_start) in
        let stop =
          match find s name_end marker with
          | Some j -> j
          | None -> String.length s
        in
        let values =
          List.map (fun key -> key, key_float s ~pos:name_end ~stop key) keys
        in
        go stop ((name, values) :: acc))
  in
  go 0 []

type record = {
  table : string;
  sequential_ms : float option;
  parallel_ms : float option;
}

let records s =
  List.map
    (fun (table, values) ->
      {
        table;
        sequential_ms = List.assoc "sequential_ms" values;
        parallel_ms = List.assoc "parallel_ms" values;
      })
    (scan s ~marker:"{\"table\": \""
       ~keys:[ "sequential_ms"; "parallel_ms" ])

(* BENCH_scale.json rows: per-row Gale-Shapley and sequential
   verification walls. *)
let scale_rows s =
  scan s ~marker:"{\"row\": \"" ~keys:[ "gs_ms"; "verify_sequential_ms" ]

(* BENCH_serve.json workloads: drain time and latency quantiles, all in
   virtual scheduler ticks (deterministic across runs and job counts). *)
let serve_rows s =
  scan s ~marker:"{\"workload\": \"" ~keys:[ "ticks"; "p50_ticks"; "p99_ticks" ]

(* BENCH_plane.json workloads: the message-plane micro-bench's three
   legs (arena encode, engine delivery pass, slice decode). *)
let plane_rows s =
  scan s ~marker:"{\"plane\": \"" ~keys:[ "encode_ms"; "deliver_ms"; "decode_ms" ]

(* BENCH_chaos.json recovery grid: rounds-to-recovery per
   (schedule#seed) row — deterministic engine rounds rather than walls,
   but growth means recovery from state corruption got slower. *)
let recovery_rows s =
  scan s ~marker:"{\"recovery_row\": \""
    ~keys:[ "max_rounds_to_recovery"; "mean_rounds_to_recovery" ]

(* The whole_run block's parallel wall, if the file has one. *)
let whole_run_parallel_ms s =
  match find s 0 "\"whole_run\":" with
  | None -> None
  | Some i ->
    let stop =
      match String.index_from_opt s i '}' with
      | Some j -> j
      | None -> String.length s
    in
    key_float s ~pos:i ~stop "parallel_ms"

let () =
  let threshold = ref 20.0 in
  let paths = ref [] in
  let rec parse = function
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t > 0. -> threshold := t
      | Some _ | None ->
        Printf.eprintf "bench_compare: --threshold %s: expected a positive number\n" v;
        exit 2);
      parse rest
    | arg :: rest ->
      paths := arg :: !paths;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !paths with
    | [ o; n ] -> o, n
    | _ ->
      Printf.eprintf "usage: bench_compare OLD.json NEW.json [--threshold PCT]\n";
      exit 2
  in
  let old_s = read_file old_path and new_s = read_file new_path in
  let olds = records old_s and news = records new_s in
  let regressions = ref 0 in
  let compare_value ?(unit = "ms") label old_v new_v =
    let pct = (new_v -. old_v) /. old_v *. 100. in
    let regressed =
      old_v > 0.
      && new_v > old_v *. (1. +. (!threshold /. 100.))
      && new_v -. old_v > 1.0
    in
    Printf.printf "  %-40s %10.3f -> %10.3f %s  (%+.1f%%)%s\n" label old_v
      new_v unit pct
      (if regressed then "  REGRESSION" else "");
    if regressed then incr regressions
  in
  let compare_ms = compare_value ~unit:"ms" in
  Printf.printf "bench_compare: %s -> %s (threshold %.0f%%)\n" old_path new_path
    !threshold;
  let old_rows = scale_rows old_s and new_rows = scale_rows new_s in
  let old_serve = serve_rows old_s and new_serve = serve_rows new_s in
  let old_plane = plane_rows old_s and new_plane = plane_rows new_s in
  let old_recovery = recovery_rows old_s and new_recovery = recovery_rows new_s in
  if
    olds <> [] || news <> []
    || (old_rows = [] && new_rows = [] && old_serve = [] && new_serve = []
       && old_plane = [] && new_plane = [] && old_recovery = []
       && new_recovery = [])
  then begin
    Printf.printf "sequential wall per table:\n";
    List.iter
      (fun (n : record) ->
        match List.find_opt (fun (o : record) -> o.table = n.table) olds with
        | None -> Printf.printf "  %-40s (new table, no baseline)\n" n.table
        | Some o -> (
          match o.sequential_ms, n.sequential_ms with
          | Some om, Some nm -> compare_ms n.table om nm
          | _ -> Printf.printf "  %-40s (no sequential_ms to compare)\n" n.table))
      news;
    List.iter
      (fun (o : record) ->
        if not (List.exists (fun (n : record) -> n.table = o.table) news) then
          Printf.printf "  %-40s (dropped from new run)\n" o.table)
      olds
  end;
  if old_rows <> [] || new_rows <> [] then begin
    Printf.printf "gs + sequential-verify wall per scale row:\n";
    List.iter
      (fun (name, new_values) ->
        match List.assoc_opt name old_rows with
        | None -> Printf.printf "  %-40s (new row, no baseline)\n" name
        | Some old_values ->
          List.iter
            (fun (key, nv) ->
              match List.assoc_opt key old_values, nv with
              | Some (Some om), Some nm ->
                compare_ms (Printf.sprintf "%s %s" name key) om nm
              | _ ->
                Printf.printf "  %-40s (no %s to compare)\n" name key)
            new_values)
      new_rows;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name new_rows) then
          Printf.printf "  %-40s (dropped from new run)\n" name)
      old_rows
  end;
  if old_serve <> [] || new_serve <> [] then begin
    Printf.printf "ticks + latency quantiles per serve workload:\n";
    List.iter
      (fun (name, new_values) ->
        match List.assoc_opt name old_serve with
        | None -> Printf.printf "  %-40s (new workload, no baseline)\n" name
        | Some old_values ->
          List.iter
            (fun (key, nv) ->
              match List.assoc_opt key old_values, nv with
              | Some (Some ov), Some nv ->
                compare_value ~unit:"ticks"
                  (Printf.sprintf "%s %s" name key)
                  ov nv
              | _ -> Printf.printf "  %-40s (no %s to compare)\n" name key)
            new_values)
      new_serve;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name new_serve) then
          Printf.printf "  %-40s (dropped from new run)\n" name)
      old_serve
  end;
  if old_plane <> [] || new_plane <> [] then begin
    Printf.printf "message-plane leg walls per workload:\n";
    List.iter
      (fun (name, new_values) ->
        match List.assoc_opt name old_plane with
        | None -> Printf.printf "  %-40s (new workload, no baseline)\n" name
        | Some old_values ->
          List.iter
            (fun (key, nv) ->
              match List.assoc_opt key old_values, nv with
              | Some (Some om), Some nm ->
                compare_ms (Printf.sprintf "%s %s" name key) om nm
              | _ ->
                Printf.printf "  %-40s (no %s to compare)\n" name key)
            new_values)
      new_plane;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name new_plane) then
          Printf.printf "  %-40s (dropped from new run)\n" name)
      old_plane
  end;
  if old_recovery <> [] || new_recovery <> [] then begin
    Printf.printf "rounds-to-recovery per recovery-grid row:\n";
    List.iter
      (fun (name, new_values) ->
        match List.assoc_opt name old_recovery with
        | None -> Printf.printf "  %-40s (new row, no baseline)\n" name
        | Some old_values ->
          List.iter
            (fun (key, nv) ->
              match List.assoc_opt key old_values, nv with
              | Some (Some ov), Some nv ->
                compare_value ~unit:"rounds"
                  (Printf.sprintf "%s %s" name key)
                  ov nv
              | _ -> Printf.printf "  %-40s (no %s to compare)\n" name key)
            new_values)
      new_recovery;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name new_recovery) then
          Printf.printf "  %-40s (dropped from new run)\n" name)
      old_recovery
  end;
  (match whole_run_parallel_ms old_s, whole_run_parallel_ms new_s with
  | Some om, Some nm ->
    Printf.printf "whole-run parallel wall:\n";
    compare_ms "whole_run" om nm
  | None, None
    when old_rows <> [] || new_rows <> [] || old_serve <> [] || new_serve <> []
         || old_plane <> [] || new_plane <> [] || old_recovery <> []
         || new_recovery <> []
    ->
    (* Scale, serve, plane and chaos recovery files carry no whole_run
       block; nothing to say. *)
    ()
  | _ ->
    Printf.printf
      "whole-run parallel wall: not compared (missing in one file — PR 3 \
       baselines predate it)\n");
  if !regressions > 0 then begin
    Printf.eprintf "bench_compare: %d regression(s) beyond %.0f%%\n"
      !regressions !threshold;
    exit 1
  end
  else print_endline "bench_compare: no regressions beyond threshold"
