(** Evaluating sSM protocols-under-test against byzantine coalitions.

    Shared by the attack test suite and the A3 experiment: run a
    {!Protocol_under_test.t} on a real (small-system) network with scripted
    byzantine parties and return the sSM property violations of the honest
    outputs. *)

open Bsm_prelude
module Engine := Bsm_runtime.Engine

val run :
  topology:Bsm_topology.Topology.t ->
  k:int ->
  favorites:(Party_id.t -> Party_id.t) ->
  byzantine:(Party_id.t * Engine.program) list ->
  Protocol_under_test.t ->
  Bsm_core.Problem.violation list

(** [run_batch ?pool ~topology ~k ~cases protocol] evaluates the
    protocol against every [(favorites, byzantine)] case, returning the
    violation lists in input order. Cases are independent engine runs,
    so with [pool] they execute across domains with results identical to
    the sequential path. *)
val run_batch :
  ?pool:Bsm_runtime.Pool.t ->
  topology:Bsm_topology.Topology.t ->
  k:int ->
  cases:
    ((Party_id.t -> Party_id.t) * (Party_id.t * Engine.program) list) list ->
  Protocol_under_test.t ->
  Bsm_core.Problem.violation list list

(** [random_favorites rng ~k] assigns each party a uniform favorite on the
    other side. *)
val random_favorites : Rng.t -> k:int -> Party_id.t -> Party_id.t
