(** The scaling reduction of Lemma 3, executably.

    Given a protocol Π solving sSM on [2·big_k] parties tolerating
    [(t_L, t_R)], [shrink] builds a protocol Π' on [2·small_k] parties
    tolerating [(⌊t_L/⌈big_k/small_k⌉⌋, ⌊t_R/⌈big_k/small_k⌉⌋)]: each
    small party simulates one group of big parties (indices congruent to
    its own modulo [small_k], sides preserved), the group's representative
    (the big party with the small party's index) carries the favorite, and
    the small party outputs its representative's match when that match is
    itself a representative.

    The paper uses this lemma to lift small-system impossibilities to
    arbitrary [k]; here it doubles as a stress test — the shrunken version
    of a correct protocol must itself satisfy sSM, which the test suite
    verifies against our real protocol stack. *)

(** [shrink ~big_k ~small_k protocol] — requires [0 < small_k <= big_k].
    The result's [rounds] equals the big protocol's. *)
val shrink : big_k:int -> small_k:int -> Protocol_under_test.t -> Protocol_under_test.t

(** [tolerated ~big_k ~small_k t] is [⌊t / ⌈big_k/small_k⌉⌋] — the
    corruption budget Lemma 3 grants the shrunken protocol. *)
val tolerated : big_k:int -> small_k:int -> int -> int

(** [stress ?pool ~topology ~big_k ~small_ks ~seeds protocol] sweeps the
    shrunken protocol over every [small_k × seed] cell: each cell
    shrinks independently, draws honest favorites from [Rng.make seed]
    and returns [(small_k, seed, violations)] — a correct protocol must
    yield no violations anywhere. Cells run across [pool]'s domains when
    given, with results identical to the sequential path. *)
val stress :
  ?pool:Bsm_runtime.Pool.t ->
  topology:Bsm_topology.Topology.t ->
  big_k:int ->
  small_ks:int list ->
  seeds:int list ->
  Protocol_under_test.t ->
  (int * int * Bsm_core.Problem.violation list) list
