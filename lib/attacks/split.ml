open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire

let k = 3

(* Roles: a = L0, b = L1, c = L2 (a, c honest); u,v,w = R0,R1,R2. *)
let a = Party_id.left 0
let b = Party_id.left 1
let c = Party_id.left 2
let v = Party_id.right 1

let byzantine p = Party_id.equal p b || Side.equal (Party_id.side p) Side.Right

(* Byzantine-to-byzantine traffic carries its group so the receiving
   simulator can route it to the right instance. *)
let wrapped = Wire.pair Wire.uint Wire.string

let favorite_for p group =
  if Party_id.equal p v then if group = 1 then a else c
  else if Side.equal (Party_id.side p) Side.Right then b
  else (* b's instances *) v

let byz_program (protocol : Protocol_under_test.t) self (env : Engine.env) =
  let instance group =
    {
      Simulate.tag = string_of_int group;
      simulated_id = self;
      simulated_k = k;
      program =
        protocol.Protocol_under_test.program ~topology:Topology.One_sided ~k
          ~favorite:(favorite_for self group) ~self;
    }
  in
  Simulate.run env
    ~instances:[ instance 1; instance 2 ]
    ~rounds:protocol.Protocol_under_test.rounds
    ~route_out:(fun o ->
      let group = int_of_string o.Simulate.out_tag in
      let dst = o.Simulate.out_dst in
      if Party_id.equal dst a then
        if group = 1 then Simulate.Physical (a, o.Simulate.out_body) else Simulate.Drop
      else if Party_id.equal dst c then
        if group = 2 then Simulate.Physical (c, o.Simulate.out_body) else Simulate.Drop
      else if Party_id.equal dst env.Engine.self then Simulate.Drop (* self-send *)
      else if byzantine dst then
        Simulate.Physical (dst, Wire.encode wrapped (group, o.Simulate.out_body))
      else Simulate.Drop)
    ~route_in:(fun e ->
      if Party_id.equal e.Engine.src a then
        Some { Simulate.in_tag = "1"; in_src = a; in_body = Wire.Slice.to_string e.Engine.data }
      else if Party_id.equal e.Engine.src c then
        Some { Simulate.in_tag = "2"; in_src = c; in_body = Wire.Slice.to_string e.Engine.data }
      else
        match Wire.decode_slice wrapped e.Engine.data with
        | Ok (group, body) when group = 1 || group = 2 ->
          Some
            { Simulate.in_tag = string_of_int group; in_src = e.Engine.src; in_body = body }
        | Ok _ | Error _ -> None)
    ~on_output:(fun _ _ -> ())

let run (protocol : Protocol_under_test.t) =
  let programs p (env : Engine.env) =
    if byzantine p then byz_program protocol p env
    else
      protocol.Protocol_under_test.program ~topology:Topology.One_sided ~k ~favorite:v
        ~self:p env
  in
  let cfg =
    Engine.config ~k ~link:(Engine.Of_topology Topology.One_sided) ~max_rounds:200 ()
  in
  let res = Engine.run cfg ~programs:(fun p env -> programs p env) in
  let out_of p =
    match (Engine.find_result res p).Engine.out with
    | Some payload -> Protocol_under_test.decode_decision payload
    | None -> None
  in
  let a_out = out_of a and c_out = out_of c in
  let violation =
    match a_out, c_out with
    | Some x, Some y when Party_id.equal x v && Party_id.equal y v ->
      Some
        "honest a and c both decide to match byzantine v \
         (non-competition violated; Lemma 13)"
    | _ -> None
  in
  {
    Report.attack = "split-brain attack (Lemma 13, Fig. 4)";
    protocol = protocol.Protocol_under_test.name;
    outputs = [ "a", a_out; "c", c_out ];
    violation;
  }
