open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Core = Bsm_core

let run ~topology ~k ~favorites ~byzantine (protocol : Protocol_under_test.t) =
  let programs p =
    match List.assoc_opt p byzantine with
    | Some program -> program
    | None ->
      protocol.Protocol_under_test.program ~topology ~k ~favorite:(favorites p)
        ~self:p
  in
  let cfg = Engine.config ~k ~link:(Engine.Of_topology topology) ~max_rounds:500 () in
  let res = Engine.run cfg ~programs:(fun p -> programs p) in
  let byz = Party_set.of_list (List.map fst byzantine) in
  let decisions =
    List.filter_map
      (fun (r : Engine.party_result) ->
        if Party_set.mem r.Engine.id byz then None
        else
          Some
            ( r.Engine.id,
              match r.Engine.status, r.Engine.out with
              | Engine.Terminated, Some payload -> (
                match Protocol_under_test.decode_decision payload with
                | Some q -> Core.Problem.Matched q
                | None -> Core.Problem.Nobody)
              | Engine.Terminated, None -> Core.Problem.No_output
              | (Engine.Out_of_rounds | Engine.Crashed _), _ -> Core.Problem.No_output
            ))
      res.Engine.parties
  in
  let outcome =
    {
      Core.Problem.profile = Core.Ssm.favorites_to_profile ~k favorites;
      byzantine = byz;
      decisions;
    }
  in
  Core.Problem.check_simplified ~favorites outcome

let run_batch ?pool ~topology ~k ~cases protocol =
  Bsm_harness.Sweep.map ?pool
    (fun (favorites, byzantine) -> run ~topology ~k ~favorites ~byzantine protocol)
    cases

let random_favorites rng ~k =
  let table =
    List.map
      (fun p ->
        p, Party_id.make (Side.opposite (Party_id.side p)) (Rng.int rng k))
      (Party_id.all ~k)
  in
  fun p -> List.assoc p table
