open Bsm_prelude
module SM = Bsm_stable_matching
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire
module Core = Bsm_core

(* Announce(favorite) and Gossip(owner, favorite). *)
type msg =
  | Announce of Party_id.t
  | Gossip of Party_id.t * Party_id.t

let codec =
  let open Wire in
  variant ~name:"naive_msg"
    [
      pack
        (case 0 party_id
           ~inject:(fun f -> Announce f)
           ~match_:(function
             | Announce f -> Some f
             | Gossip _ -> None));
      pack
        (case 1 (pair party_id party_id)
           ~inject:(fun (o, f) -> Gossip (o, f))
           ~match_:(function
             | Gossip (o, f) -> Some (o, f)
             | Announce _ -> None));
    ]

let rounds = 2

let equivocating_announcer ~topology ~k (env : Engine.env) =
  let self = env.Engine.self in
  let neighbors = Topology.neighbors topology ~k self in
  let opposite_of p = Side.opposite (Party_id.side p) in
  (* Announce to neighbor number i the favorite with index i mod k — all
     different, all plausible. *)
  List.iteri
    (fun i p ->
      let fake = Party_id.make (opposite_of self) (i mod k) in
      env.Engine.send p (Wire.encode codec (Announce fake)))
    neighbors;
  ignore (env.Engine.next_round ());
  (* Gossip contradictory claims about everyone. *)
  List.iteri
    (fun i p ->
      List.iter
        (fun owner ->
          if not (Party_id.equal owner p) then begin
            let fake = Party_id.make (opposite_of owner) ((i + Party_id.index owner) mod k) in
            env.Engine.send p (Wire.encode codec (Gossip (owner, fake)))
          end)
        (Party_id.all ~k))
    neighbors;
  ignore (env.Engine.next_round ())

let program ~topology ~k ~favorite ~self (env : Engine.env) =
  let neighbors = Topology.neighbors topology ~k self in
  let send_all msg =
    List.iter (fun p -> env.Engine.send p (Wire.encode codec msg)) neighbors
  in
  send_all (Announce favorite);
  let inbox1 = env.Engine.next_round () in
  let direct =
    List.filter_map
      (fun (e : Engine.envelope) ->
        match Wire.decode_slice codec e.data with
        | Ok (Announce f) -> Some (e.src, f)
        | Ok (Gossip _) | Error _ -> None)
      inbox1
  in
  List.iter (fun (owner, f) -> send_all (Gossip (owner, f))) direct;
  let inbox2 = env.Engine.next_round () in
  let gossip =
    List.filter_map
      (fun (e : Engine.envelope) ->
        match Wire.decode_slice codec e.data with
        | Ok (Gossip (owner, f)) -> Some (owner, f)
        | Ok (Announce _) | Error _ -> None)
      inbox2
  in
  (* Favorite table: own input, then direct announcements, then the most
     common gossip, then a deterministic default. *)
  let favorite_of p =
    if Party_id.equal p self then favorite
    else
      match List.find_opt (fun (src, _) -> Party_id.equal src p) direct with
      | Some (_, f)
        when (not (Side.equal (Party_id.side f) (Party_id.side p)))
             && Party_id.index f < k ->
        f
      | Some _ | None -> (
        let votes =
          List.filter_map
            (fun (owner, f) -> if Party_id.equal owner p then Some f else None)
            gossip
        in
        match Util.most_common ~equal:Party_id.equal votes with
        | Some (f, _)
          when (not (Side.equal (Party_id.side f) (Party_id.side p)))
               && Party_id.index f < k ->
          f
        | Some _ | None -> Party_id.make (Side.opposite (Party_id.side p)) 0)
  in
  let profile = Core.Ssm.favorites_to_profile ~k favorite_of in
  let matching = SM.Gale_shapley.run profile in
  env.Engine.output
    (Wire.encode Core.Problem.decision_codec (Some (SM.Matching.partner matching self)))
