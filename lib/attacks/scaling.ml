open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire

let tolerated ~big_k ~small_k t = t / Util.cdiv big_k small_k

(* Messages between big parties hosted by different small parties carry
   their big-system endpoints explicitly. *)
let wrapped = Wire.triple Wire.party_id Wire.party_id Wire.string

let shrink ~big_k ~small_k (protocol : Protocol_under_test.t) =
  if small_k <= 0 || small_k > big_k then invalid_arg "Scaling.shrink: bad small_k";
  (* Big party (side, i) is hosted by small party (side, i mod small_k);
     the representative of small (side, j) is big (side, j). *)
  let owner big = Party_id.make (Party_id.side big) (Party_id.index big mod small_k) in
  let group self =
    List.filter_map
      (fun i ->
        if i mod small_k = Party_id.index self then
          Some (Party_id.make (Party_id.side self) i)
        else None)
      (List.init big_k Fun.id)
  in
  let representative small = small in
  let program ~topology ~k:_ ~favorite ~self (env : Engine.env) =
    let my_group = group self in
    let rep = representative self in
    (* Inputs: the representative carries the small party's favorite,
       lifted to the representative of the favorite's group; other group
       members get an arbitrary (deterministic) favorite. *)
    let big_favorite big =
      if Party_id.equal big rep then favorite
      else Party_id.make (Side.opposite (Party_id.side big)) 0
    in
    let instances =
      List.map
        (fun big ->
          {
            Simulate.tag = Party_id.to_string big;
            simulated_id = big;
            simulated_k = big_k;
            program =
              protocol.Protocol_under_test.program ~topology ~k:big_k
                ~favorite:(big_favorite big) ~self:big;
          })
        my_group
    in
    let outputs = Hashtbl.create 4 in
    Simulate.run env ~instances ~rounds:protocol.Protocol_under_test.rounds
      ~route_out:(fun o ->
        let src = Party_id.of_string o.Simulate.out_tag in
        let dst = o.Simulate.out_dst in
        let host = owner dst in
        if not (Bsm_topology.Topology.connected topology src dst) then
          (* The big system has no such channel; local delivery must not
             bypass the topology the engine would enforce physically. *)
          Simulate.Drop
        else if Party_id.equal host self then
          if Party_id.equal dst src then Simulate.Drop (* self-send *)
          else
            Simulate.Local
              {
                Simulate.in_tag = Party_id.to_string dst;
                in_src = src;
                in_body = o.Simulate.out_body;
              }
        else Simulate.Physical (host, Wire.encode wrapped (src, dst, o.Simulate.out_body)))
      ~route_in:(fun e ->
        match Wire.decode_slice wrapped e.Engine.data with
        | Ok (src, dst, body) ->
          (* Anti-spoofing: the physical sender must host [src], and [dst]
             must be ours — otherwise this is byzantine noise. *)
          if
            Party_id.index src < big_k
            && Party_id.index dst < big_k
            && Party_id.equal (owner src) e.Engine.src
            && Party_id.equal (owner dst) self
          then
            Some
              { Simulate.in_tag = Party_id.to_string dst; in_src = src; in_body = body }
          else None
        | Error _ -> None)
      ~on_output:(fun tag payload -> Hashtbl.replace outputs tag payload);
    (* Output projection: the representative's match, kept only when it is
       itself a representative. *)
    let decision =
      match Hashtbl.find_opt outputs (Party_id.to_string rep) with
      | None -> None
      | Some payload -> (
        match Protocol_under_test.decode_decision payload with
        | Some partner when Party_id.index partner < small_k -> Some partner
        | Some _ | None -> None)
    in
    env.Engine.output (Wire.encode Bsm_core.Problem.decision_codec decision)
  in
  {
    Protocol_under_test.name =
      Printf.sprintf "%s shrunk %d->%d (Lemma 3)" protocol.Protocol_under_test.name
        big_k small_k;
    rounds = protocol.Protocol_under_test.rounds;
    program;
  }

let stress ?pool ~topology ~big_k ~small_ks ~seeds protocol =
  let cells =
    List.concat_map (fun small_k -> List.map (fun seed -> small_k, seed) seeds)
      small_ks
  in
  Bsm_harness.Sweep.map ?pool
    (fun (small_k, seed) ->
      let small = shrink ~big_k ~small_k protocol in
      let favorites = Evaluate.random_favorites (Rng.make seed) ~k:small_k in
      let violations =
        Evaluate.run ~topology ~k:small_k ~favorites ~byzantine:[] small
      in
      small_k, seed, violations)
    cells
