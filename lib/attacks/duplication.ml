open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology

(* Small system: a,b,c = L0,L1,L2; u,v,w = R0,R1,R2. Copies i ∈ {1,2} live
   at big index (small index) resp. (small index + 3). *)
let small_k = 3
let big_k = 6

let big_id label copy =
  Party_id.make (Party_id.side label) (Party_id.index label + (3 * (copy - 1)))

let label_of big =
  Party_id.make (Party_id.side big) (Party_id.index big mod 3), (Party_id.index big / 3) + 1

(* The twist: channels between {a, u} and {c, w} cross the two copies;
   every other pair of labels stays within its copy. *)
let crossing x y =
  let in_group1 p = Party_id.index p = 0 (* a or u *) in
  let in_group2 p = Party_id.index p = 2 (* c or w *) in
  (in_group1 x && in_group2 y) || (in_group2 x && in_group1 y)

(* From big node (x, i), the copy hosting its neighbor with label y. *)
let neighbor_copy (x, i) y = if crossing x y then 3 - i else i

let big_edge u v =
  let lu, cu = label_of u in
  let lv, cv = label_of v in
  (not (Party_id.equal lu lv)) && cv = neighbor_copy (lu, cu) lv

(* Inputs: c1 <-> v1 and a2 <-> v2 are mutual favorites; the rest are
   arbitrary (Lemma 5 fixes only those four). *)
let favorite_of big =
  let label, copy = label_of big in
  let a = Party_id.left 0 and c = Party_id.left 2 in
  let u = Party_id.right 0 and v = Party_id.right 1 in
  match Party_id.to_string label, copy with
  | "L2", 1 -> v (* c1 -> v *)
  | "R1", 1 -> c (* v1 -> c *)
  | "L0", 2 -> v (* a2 -> v *)
  | "R1", 2 -> a (* v2 -> a *)
  | _ ->
    if Side.equal (Party_id.side label) Side.Left then u else Party_id.left 1

let node_name big =
  let label, copy = label_of big in
  let letter =
    match Side.equal (Party_id.side label) Side.Left, Party_id.index label with
    | true, 0 -> "a"
    | true, 1 -> "b"
    | true, _ -> "c"
    | false, 0 -> "u"
    | false, 1 -> "v"
    | false, _ -> "w"
  in
  letter ^ string_of_int copy

let run (protocol : Protocol_under_test.t) =
  let outputs = Hashtbl.create 16 in
  let node_program big (env : Engine.env) =
    let label, copy = label_of big in
    let program =
      protocol.Protocol_under_test.program ~topology:Topology.Fully_connected
        ~k:small_k ~favorite:(favorite_of big) ~self:label
    in
    Simulate.run env
      ~instances:
        [
          {
            Simulate.tag = "node";
            simulated_id = label;
            simulated_k = small_k;
            program;
          };
        ]
      ~rounds:protocol.Protocol_under_test.rounds
      ~route_out:(fun o ->
        Simulate.Physical
          ( big_id o.Simulate.out_dst (neighbor_copy (label, copy) o.Simulate.out_dst),
            o.Simulate.out_body ))
      ~route_in:(fun e ->
        let src_label, _ = label_of e.Engine.src in
        Some { Simulate.in_tag = "node"; in_src = src_label; in_body = Bsm_wire.Wire.Slice.to_string e.Engine.data })
      ~on_output:(fun _ payload ->
        Hashtbl.replace outputs (Party_id.to_string big)
          (Protocol_under_test.decode_decision payload))
  in
  let cfg =
    Engine.config ~k:big_k ~link:(Engine.Custom big_edge) ~max_rounds:200 ()
  in
  ignore (Engine.run cfg ~programs:(fun big env -> node_program big env));
  let out_of label copy =
    try Hashtbl.find outputs (Party_id.to_string (big_id label copy)) with
    | Not_found -> None
  in
  let a2 = out_of (Party_id.left 0) 2 in
  let c1 = out_of (Party_id.left 2) 1 in
  let v = Party_id.right 1 in
  let violation =
    match a2, c1 with
    | Some x, Some y when Party_id.equal x v && Party_id.equal y v ->
      Some
        "projection (iv): honest a and c both decide to match v \
         (non-competition violated; Lemma 5)"
    | _ -> None
  in
  {
    Report.attack = "duplication attack (Lemma 5, Fig. 2)";
    protocol = protocol.Protocol_under_test.name;
    outputs =
      List.map
        (fun big -> node_name big, Hashtbl.find_opt outputs (Party_id.to_string big) |> Option.join)
        (Party_id.all ~k:big_k);
    violation;
  }
