open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology

(* Small system: a,b = L0,L1; c,d = R0,R1. Copies i ∈ {1,2} at big index
   (small index) resp. (small index + 2). *)
let small_k = 2
let big_k = 4

let big_id label copy =
  Party_id.make (Party_id.side label) (Party_id.index label + (2 * (copy - 1)))

let label_of big =
  Party_id.make (Party_id.side big) (Party_id.index big mod 2), (Party_id.index big / 2) + 1

(* The 8-cycle a1-c1-b1-d1-a2-c2-b2-d2-a1: from (x, i), the copy hosting
   the neighbor labeled y. Only the a–d chords cross copies. *)
let neighbor_copy (x, i) y =
  let is_a p = Side.equal (Party_id.side p) Side.Left && Party_id.index p = 0 in
  let is_d p = Side.equal (Party_id.side p) Side.Right && Party_id.index p = 1 in
  if (is_a x && is_d y) || (is_d x && is_a y) then 3 - i else i

let big_edge u v =
  let lu, cu = label_of u in
  let lv, cv = label_of v in
  (not (Side.equal (Party_id.side lu) (Party_id.side lv)))
  && cv = neighbor_copy (lu, cu) lv

(* Inputs: a1 <-> c1 and b2 <-> c2 mutual favorites; rest arbitrary. *)
let favorite_of big =
  let label, copy = label_of big in
  let a = Party_id.left 0 and b = Party_id.left 1 in
  let c = Party_id.right 0 in
  match Side.equal (Party_id.side label) Side.Left, Party_id.index label, copy with
  | true, 0, 1 -> c (* a1 -> c *)
  | false, 0, 1 -> a (* c1 -> a *)
  | true, 1, 2 -> c (* b2 -> c *)
  | false, 0, 2 -> b (* c2 -> b *)
  | true, _, _ -> c
  | false, _, _ -> a

let node_name big =
  let label, copy = label_of big in
  let letter =
    match Side.equal (Party_id.side label) Side.Left, Party_id.index label with
    | true, 0 -> "a"
    | true, _ -> "b"
    | false, 0 -> "c"
    | false, _ -> "d"
  in
  letter ^ string_of_int copy

let run (protocol : Protocol_under_test.t) =
  let outputs = Hashtbl.create 8 in
  let node_program big (env : Engine.env) =
    let label, copy = label_of big in
    let program =
      protocol.Protocol_under_test.program ~topology:Topology.Bipartite ~k:small_k
        ~favorite:(favorite_of big) ~self:label
    in
    Simulate.run env
      ~instances:
        [
          { Simulate.tag = "node"; simulated_id = label; simulated_k = small_k; program };
        ]
      ~rounds:protocol.Protocol_under_test.rounds
      ~route_out:(fun o ->
        Simulate.Physical
          ( big_id o.Simulate.out_dst (neighbor_copy (label, copy) o.Simulate.out_dst),
            o.Simulate.out_body ))
      ~route_in:(fun e ->
        let src_label, _ = label_of e.Engine.src in
        Some { Simulate.in_tag = "node"; in_src = src_label; in_body = Bsm_wire.Wire.Slice.to_string e.Engine.data })
      ~on_output:(fun _ payload ->
        Hashtbl.replace outputs (Party_id.to_string big)
          (Protocol_under_test.decode_decision payload))
  in
  let cfg = Engine.config ~k:big_k ~link:(Engine.Custom big_edge) ~max_rounds:200 () in
  ignore (Engine.run cfg ~programs:(fun big env -> node_program big env));
  let out_of label copy =
    Option.join (Hashtbl.find_opt outputs (Party_id.to_string (big_id label copy)))
  in
  let a1 = out_of (Party_id.left 0) 1 in
  let b2 = out_of (Party_id.left 1) 2 in
  let c = Party_id.right 0 in
  let violation =
    match a1, b2 with
    | Some x, Some y when Party_id.equal x c && Party_id.equal y c ->
      Some
        "final projection: honest a and b both decide to match byzantine c \
         (non-competition violated; Lemma 7)"
    | _ -> None
  in
  {
    Report.attack = "cycle attack (Lemma 7, Fig. 3)";
    protocol = protocol.Protocol_under_test.name;
    outputs =
      List.map
        (fun big ->
          node_name big, Option.join (Hashtbl.find_opt outputs (Party_id.to_string big)))
        (Party_id.all ~k:big_k);
    violation;
  }
