open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire

type instance = {
  tag : string;
  simulated_id : Party_id.t;
  simulated_k : int;
  program : Engine.program;
}

type outbound = {
  out_tag : string;
  out_dst : Party_id.t;
  out_body : string;
}

type inbound = {
  in_tag : string;
  in_src : Party_id.t;
  in_body : string;
}

type routed =
  | Drop
  | Physical of Party_id.t * string
  | Local of inbound

(* Dedicated effects for the simulated world, so that the inner handlers
   never intercept the engine's own effects (and vice versa). *)
type _ Effect.t +=
  | Sim_send : string * Party_id.t * string -> unit Effect.t
  | Sim_next : string -> Engine.envelope list Effect.t
  | Sim_output : string * string -> unit Effect.t

type sim_state =
  | Sim_running of (Engine.envelope list, unit) Effect.Deep.continuation
  | Sim_stopped

let run env ~instances ~rounds ~route_out ~route_in ~on_output =
  let states = Hashtbl.create 8 in
  let physical_round = ref (env.Engine.round ()) in
  (* Local deliveries queued during the current round, delivered with the
     next round's inbox (matching physical channel latency). *)
  let local_queue = ref [] in
  let sim_env (inst : instance) =
    {
      Engine.self = inst.simulated_id;
      k = inst.simulated_k;
      round = (fun () -> !physical_round);
      send = (fun dst body -> Effect.perform (Sim_send (inst.tag, dst, body)));
      send_w =
        (fun c dst v -> Effect.perform (Sim_send (inst.tag, dst, Wire.encode c v)));
      send_slice =
        (fun dst s ->
          Effect.perform (Sim_send (inst.tag, dst, Wire.Slice.to_string s)));
      send_multi_w =
        (fun c dsts v ->
          (* Simulated channels are string-queued: encode once, enqueue
             the shared string per destination. *)
          let body = Wire.encode c v in
          List.iter
            (fun dst -> Effect.perform (Sim_send (inst.tag, dst, body)))
            dsts);
      next_round = (fun () -> Effect.perform (Sim_next inst.tag));
      output = (fun payload -> Effect.perform (Sim_output (inst.tag, payload)));
      log = (fun _ -> ());
      (* Simulated instances run inside a byzantine party's fiber; their
         state is the adversary's own and never exposed to the
         state-corruption plane. *)
      register_state = (fun _ _ -> ());
      register_cell = ignore;
    }
  in
  let drive tag f =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> Hashtbl.replace states tag Sim_stopped);
        exnc = (fun _ -> Hashtbl.replace states tag Sim_stopped);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sim_send (out_tag, out_dst, out_body) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  (match route_out { out_tag; out_dst; out_body } with
                  | Physical (physical_dst, payload) ->
                    env.Engine.send physical_dst payload
                  | Local inbound -> local_queue := inbound :: !local_queue
                  | Drop -> ());
                  continue cont ())
            | Sim_next tag' ->
              Some
                (fun (cont : (a, _) continuation) ->
                  if String.equal tag' tag then
                    Hashtbl.replace states tag (Sim_running cont)
                  else
                    (* An instance can only park itself. *)
                    Hashtbl.replace states tag Sim_stopped)
            | Sim_output (tag', payload) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  on_output tag' payload;
                  continue cont ())
            | _ -> None);
      }
  in
  List.iter
    (fun inst ->
      Hashtbl.replace states inst.tag Sim_stopped;
      drive inst.tag (fun () -> inst.program (sim_env inst)))
    instances;
  for _ = 1 to rounds do
    let locals = List.rev !local_queue in
    local_queue := [];
    let inbox = env.Engine.next_round () in
    physical_round := env.Engine.round ();
    let routed = Hashtbl.create 8 in
    let stash { in_tag; in_src; in_body } =
      let existing = try Hashtbl.find routed in_tag with Not_found -> [] in
      Hashtbl.replace routed in_tag
        ({ Engine.src = in_src; data = Wire.Slice.of_string in_body } :: existing)
    in
    (* Local messages first so per-sender order within a round is
       deterministic; the per-instance inbox is re-sorted below anyway. *)
    List.iter stash locals;
    List.iter
      (fun envelope ->
        match route_in envelope with
        | Some inbound -> stash inbound
        | None -> ())
      inbox;
    List.iter
      (fun inst ->
        match Hashtbl.find states inst.tag with
        | Sim_running cont ->
          let mine =
            List.stable_sort
              (fun (a : Engine.envelope) b -> Party_id.compare a.src b.src)
              (List.rev (try Hashtbl.find routed inst.tag with Not_found -> []))
          in
          Hashtbl.replace states inst.tag Sim_stopped;
          Effect.Deep.continue cont mine
        | Sim_stopped -> ())
      instances
  done
