(** Pool-parallel chaos sweeps: a [(case × schedule × seed)] grid of
    oracle runs, with the same seq==par bit-identity guarantee as
    {!Bsm_harness.Sweep} (each cell is pure given its seeds; results
    compare structurally because {!Oracle.report} holds no closures).

    [to_json] renders a deterministic report — no wall-clock inside —
    so the same grid and seeds produce a bit-identical
    [BENCH_chaos.json], replayable and diffable across machines. *)

module Sweep := Bsm_harness.Sweep
module Pool := Bsm_runtime.Pool

type cell = {
  case : Sweep.case;
  schedule : Schedule.t;
  chaos_seed : int;  (** seeds {!Schedule.compile} *)
}

val cell : ?chaos_seed:int -> schedule:Schedule.t -> Sweep.case -> cell

(** [grid ~cases ~schedules ~seeds] — the full cross product, cases
    outermost, seeds innermost. *)
val grid :
  cases:Sweep.case list ->
  schedules:Schedule.t list ->
  seeds:int list ->
  cell list

type outcome = {
  cell : cell;
  oracle : Oracle.report;
}

(** [run_cells ?pool cells] — every cell through {!Oracle.run}, in input
    order; parallel across the pool's domains when [pool] is given. *)
val run_cells : ?pool:Pool.t -> ?max_rounds:int -> cell list -> outcome list

(** [submit batch ~table cells] registers the chaos cells into a fused
    sweep batch ({!Bsm_harness.Sweep.Fused}) instead of running them in
    their own barriered map: the whole (case × schedule × seed) grid
    joins the bench tables' shared task graph and drains at the single
    drain point, with the same bit-identity guarantee as {!run_cells}
    (read the outcomes back with [Sweep.Fused.results]). *)
val submit :
  Sweep.Fused.t ->
  table:string ->
  ?max_rounds:int ->
  cell list ->
  outcome Sweep.Fused.handle

type summary = {
  cells : int;
  ok : int;
  degraded : int;
  violated : int;
}

val summarize : outcome list -> summary
val pp_summary : Format.formatter -> summary -> unit

(** One row of the recovery grid: all outcomes of a
    [(schedule, chaos_seed)] pair aggregated over cases, counting the
    {!Oracle.recovery} verdicts and the spread of rounds-to-recovery. *)
type recovery_row = {
  rg_schedule : string;  (** {!Schedule.describe} of the group *)
  rg_seed : int;
  rg_cells : int;
  rg_recovered : int;
  rg_stuck : int;
  rg_violated : int;
  rg_no_scramble : int;  (** runs where no cell was scrambled *)
  rg_max_rounds : int;  (** max rounds-to-recovery among recovered runs *)
  rg_mean_rounds : float;  (** mean over recovered runs; [0.] when none *)
}

(** [recovery_grid outcomes] — the rows, in first-appearance order,
    restricted to groups where at least one run scrambled state. Pure
    counting over the outcomes, so the grid is as deterministic as they
    are. *)
val recovery_grid : outcome list -> recovery_row list

(** Deterministic JSON report (summary + one row per cell with verdict,
    budget attribution, per-fate message counts, scrambled-cell counts
    and recovery verdict, followed by the {!recovery_grid} as
    [recovery_row]-marked rows). [jobs] is recorded for provenance only;
    the summary carries the fused task count (one task per cell) but
    deliberately no wall clocks or steal counts — those vary run to run
    and belong to BENCH_sweeps.json, keeping this file bit-identical for
    a given grid and seeds. *)
val to_json : jobs:int -> outcome list -> string

(** The standard grids the bench, CLI and CI share: T-table settings
    (Theorems 2, 5, 6, 7 — including both Π_bSM regimes) × the schedule
    vocabulary (within-budget send/receive-omission, crash and partition
    of R0, over-budget bernoulli drops and a blackout burst, plus the
    mutation group — bit-flip, equivocate, replay+truncate and
    forge-sender corruption of R0's traffic, and the self-stabilization
    group — {!Schedule.corrupt_state} scrambles of R0's registered
    protocol state, timed by the convergence oracle; all admissible and
    required to come back as byzantine-equivalent degradation at worst,
    never a crash). [quick_grid] is the smallest-k instance (a few
    seconds end-to-end, wired into [make chaos-quick] / CI); [full_grid]
    adds k = 4 and two more chaos seeds. *)
val quick_grid : unit -> cell list

val full_grid : unit -> cell list
