open Bsm_prelude
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module Sweep = Bsm_harness.Sweep
module Wire = Bsm_wire.Wire
module Topology = Bsm_topology.Topology

type t = {
  case : Sweep.case;
  schedule : Schedule.t;
  seed : int;
  max_rounds : int option;
  expected : Oracle.verdict;
  fingerprint : string;
}

let fingerprint_of_report (r : Oracle.report) =
  let m = r.Oracle.metrics in
  Format.asprintf
    "%s|budget=%b|charged=%a|corrupted=%a|violations=[%a]|sent=%d|delivered=%d|topo=%d|omitted=%d|mutated=%d|scrambled=%d@%s|recovery=%s|by-label=[%s]|bytes=%d|rounds=%d"
    (Oracle.verdict_to_string r.Oracle.verdict)
    r.Oracle.within_budget Party_set.pp r.Oracle.charged Party_set.pp
    r.Oracle.corrupted
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Core.Problem.pp_violation)
    r.Oracle.violations m.Engine.messages_sent m.Engine.messages_delivered
    m.Engine.messages_dropped_topology m.Engine.messages_dropped_fault
    m.Engine.messages_corrupted m.Engine.cells_scrambled
    (match m.Engine.first_scramble_round with
    | Some n -> string_of_int n
    | None -> "-")
    (match r.Oracle.recovery with
    | Some rc -> Oracle.recovery_to_string rc
    | None -> "-")
    (String.concat ","
       (List.map
          (fun (l, n) -> Printf.sprintf "%s=%d" l n)
          m.Engine.messages_dropped_by_label))
    m.Engine.bytes_delivered m.Engine.rounds_used

let make ?max_rounds ~case ~schedule ~seed report =
  match case.Sweep.adversary with
  | Sweep.Scripted _ ->
    Error
      "repro files cannot serialize a Scripted adversary (closures); script the \
       fault through the schedule instead"
  | Sweep.Honest | Sweep.Random_coalition ->
    Ok
      {
        case;
        schedule;
        seed;
        max_rounds;
        expected = report.Oracle.verdict;
        fingerprint = fingerprint_of_report report;
      }

(* --- codec --------------------------------------------------------------- *)

let tagged ~name pairs =
  Wire.map
    ~inject:(fun n ->
      match List.find_opt (fun (i, _) -> i = n) pairs with
      | Some (_, v) -> v
      | None -> raise (Wire.Malformed (Printf.sprintf "%s: unknown tag %d" name n)))
    ~project:(fun v ->
      match List.find_opt (fun (_, w) -> w = v) pairs with
      | Some (i, _) -> i
      | None -> invalid_arg name)
    Wire.uint

let topology_codec =
  tagged ~name:"topology"
    [ 0, Topology.Fully_connected; 1, Topology.One_sided; 2, Topology.Bipartite ]

let auth_codec =
  tagged ~name:"auth"
    [ 0, Core.Setting.Unauthenticated; 1, Core.Setting.Authenticated ]

let verdict_codec =
  tagged ~name:"verdict"
    [ 0, Oracle.Ok; 1, Oracle.Expected_degradation; 2, Oracle.Violation ]

let adversary_codec =
  tagged ~name:"adversary" [ 0, Sweep.Honest; 1, Sweep.Random_coalition ]

let setting_codec =
  Wire.map
    ~inject:(fun ((k, topology, auth), (t_left, t_right)) ->
      match Core.Setting.make ~k ~topology ~auth ~t_left ~t_right with
      | Ok s -> s
      | Error e -> raise (Wire.Malformed ("invalid setting: " ^ e)))
    ~project:(fun (s : Core.Setting.t) ->
      ( (s.Core.Setting.k, s.Core.Setting.topology, s.Core.Setting.auth),
        (s.Core.Setting.t_left, s.Core.Setting.t_right) ))
    (Wire.pair
       (Wire.triple Wire.uint topology_codec auth_codec)
       (Wire.pair Wire.uint Wire.uint))

let case_codec =
  Wire.map
    ~inject:(fun ((label, setting), (profile_seed, scenario_seed, adversary)) ->
      { Sweep.label; setting; profile_seed; scenario_seed; adversary })
    ~project:(fun (c : Sweep.case) ->
      ( (c.Sweep.label, c.Sweep.setting),
        (c.Sweep.profile_seed, c.Sweep.scenario_seed, c.Sweep.adversary) ))
    (Wire.pair
       (Wire.pair Wire.string setting_codec)
       (Wire.triple Wire.int Wire.int adversary_codec))

let codec =
  Wire.map
    ~inject:(fun ((case, schedule), ((seed, max_rounds), (expected, fingerprint))) ->
      { case; schedule; seed; max_rounds; expected; fingerprint })
    ~project:(fun t ->
      ( (t.case, t.schedule),
        ((t.seed, t.max_rounds), (t.expected, t.fingerprint)) ))
    (Wire.pair
       (Wire.pair case_codec Schedule.codec)
       (Wire.pair
          (Wire.pair Wire.int (Wire.option Wire.uint))
          (Wire.pair verdict_codec Wire.string)))

(* --- file format --------------------------------------------------------- *)

let header = "bsm-repro 1"

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Printf.fprintf oc "%s\n%s\n" header (Wire.to_hex (Wire.encode codec t)))

let of_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines -> (
    match List.filter (fun l -> String.trim l <> "") lines with
    | [ h; payload ] when String.trim h = header -> (
      match Wire.of_hex (String.trim payload) with
      | exception Wire.Malformed e -> Error ("bad repro hex: " ^ e)
      | bytes -> (
        match Wire.decode codec bytes with
        | Ok t -> Ok t
        | Error e -> Error ("bad repro payload: " ^ e)))
    | h :: _ when String.trim h <> header ->
      Error (Printf.sprintf "not a repro file (expected %S header)" header)
    | _ -> Error "malformed repro file: expected header and one hex line")

(* --- replay -------------------------------------------------------------- *)

let run t = Oracle.run ?max_rounds:t.max_rounds ~seed:t.seed ~schedule:t.schedule t.case

let check t =
  let report = run t in
  let got = fingerprint_of_report report in
  if String.equal got t.fingerprint then Ok report
  else
    Error
      (Format.asprintf
         "replay diverged:@,expected %s@,     got %s@,(verdict %s, expected %s)"
         t.fingerprint got
         (Oracle.verdict_to_string report.Oracle.verdict)
         (Oracle.verdict_to_string t.expected))

(* Exit-code policy for [bsm replay]: a faithfully reproduced run is only
   "success" when the reproduced verdict is clean — a repro that still
   demonstrates a Violation must fail CI, that's its whole point. *)
let gate = function
  | Error _ -> 1
  | Ok (r : Oracle.report) -> (
    match r.Oracle.verdict with
    | Oracle.Violation -> 1
    | Oracle.Ok | Oracle.Expected_degradation -> 0)
