(** Delta-debugging minimizer for oracle violations.

    When {!Oracle.run} reports a {!Oracle.Violation}, the offending
    schedule is usually mostly noise: decoy components that fire but are
    not needed, unbounded round windows, partitions wider than the links
    that matter. [minimize] strips the noise by re-running the oracle on
    progressively smaller candidate schedules and keeping every candidate
    that still violates:

    + {b components} — greedily drop whole schedule components until no
      single removal preserves the violation (ddmin with subset size 1,
      iterated to fixpoint);
    + {b rounds} — clamp the round window to the rounds the violating run
      actually used, then binary-search both edges inward;
    + {b links} — replace partition components by {!Schedule.refinements}
      (one party removed from one block) while the violation survives.

    Every accepted candidate was re-judged by the oracle, so the result
    is a true violation regardless of how component salts reshuffle the
    probabilistic coins ({!Schedule.components}). The whole search is
    deterministic in [(case, schedule, seed)] — same inputs, same minimal
    repro. *)

module Sweep := Bsm_harness.Sweep

type outcome = {
  original : Schedule.t;
  shrunk : Schedule.t;
  report : Oracle.report;  (** the shrunk schedule's (violating) report *)
  attempts : int;  (** oracle runs spent searching *)
  trail : string list;
      (** human-readable log, one accepted shrink step per line *)
}

(** [minimize ?max_rounds ~seed ~schedule case] — [Error] with the
    verdict's name when [schedule] does not violate on [case] (nothing to
    shrink). The returned [shrunk] never has more components than
    [schedule] and always still violates. *)
val minimize :
  ?max_rounds:int ->
  seed:int ->
  schedule:Schedule.t ->
  Sweep.case ->
  (outcome, string) result
