open Bsm_prelude
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module Sweep = Bsm_harness.Sweep
module Topology = Bsm_topology.Topology

type cell = {
  case : Sweep.case;
  schedule : Schedule.t;
  chaos_seed : int;
}

let cell ?(chaos_seed = 0) ~schedule case = { case; schedule; chaos_seed }

let grid ~cases ~schedules ~seeds =
  List.concat_map
    (fun case ->
      List.concat_map
        (fun schedule ->
          List.map (fun chaos_seed -> { case; schedule; chaos_seed }) seeds)
        schedules)
    cases

type outcome = {
  cell : cell;
  oracle : Oracle.report;
}

let run_cell ?max_rounds c =
  {
    cell = c;
    oracle = Oracle.run ?max_rounds ~seed:c.chaos_seed ~schedule:c.schedule c.case;
  }

let run_cells ?pool ?max_rounds cells =
  Sweep.map ?pool (run_cell ?max_rounds) cells

let submit batch ~table ?max_rounds cells =
  Sweep.Fused.add batch ~table (run_cell ?max_rounds) cells

type summary = {
  cells : int;
  ok : int;
  degraded : int;
  violated : int;
}

let summarize outcomes =
  let count v =
    List.length (List.filter (fun o -> o.oracle.Oracle.verdict = v) outcomes)
  in
  {
    cells = List.length outcomes;
    ok = count Oracle.Ok;
    degraded = count Oracle.Expected_degradation;
    violated = count Oracle.Violation;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%d cells: %d ok, %d expected-degradation, %d VIOLATIONS"
    s.cells s.ok s.degraded s.violated

(* --- recovery grid ------------------------------------------------------- *)

type recovery_row = {
  rg_schedule : string;
  rg_seed : int;
  rg_cells : int;
  rg_recovered : int;
  rg_stuck : int;
  rg_violated : int;
  rg_no_scramble : int;
  rg_max_rounds : int;
  rg_mean_rounds : float;
}

(* Aggregate outcomes by (schedule, chaos_seed) across cases, keeping
   only groups where at least one run scrambled state — pure counting, so
   the grid inherits the outcomes' determinism. Input order is preserved
   (first appearance of each group). *)
let recovery_grid outcomes =
  let groups =
    List.fold_left
      (fun acc o ->
        let key = (Schedule.describe o.cell.schedule, o.cell.chaos_seed) in
        match List.assoc_opt key acc with
        | Some _ ->
          List.map (fun (k, v) -> if k = key then k, o :: v else k, v) acc
        | None -> acc @ [ key, [ o ] ])
      [] outcomes
  in
  List.filter_map
    (fun ((rg_schedule, rg_seed), os) ->
      let os = List.rev os in
      if List.for_all (fun o -> o.oracle.Oracle.recovery = None) os then None
      else begin
        let count p = List.length (List.filter p os) in
        let rounds =
          List.filter_map
            (fun o ->
              match o.oracle.Oracle.recovery with
              | Some (Oracle.Recovered n) -> Some n
              | _ -> None)
            os
        in
        Some
          {
            rg_schedule;
            rg_seed;
            rg_cells = List.length os;
            rg_recovered = List.length rounds;
            rg_stuck = count (fun o -> o.oracle.Oracle.recovery = Some Oracle.Stuck);
            rg_violated =
              count (fun o -> o.oracle.Oracle.recovery = Some Oracle.Violated);
            rg_no_scramble = count (fun o -> o.oracle.Oracle.recovery = None);
            rg_max_rounds = List.fold_left max 0 rounds;
            rg_mean_rounds =
              (match rounds with
              | [] -> 0.
              | _ ->
                float_of_int (List.fold_left ( + ) 0 rounds)
                /. float_of_int (List.length rounds));
          }
      end)
    groups

(* --- JSON ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let set_to_string s =
  "{" ^ String.concat "," (List.map Party_id.to_string (Party_set.elements s)) ^ "}"

let to_json ~jobs outcomes =
  let s = summarize outcomes in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  (* [tasks] = one fused-scheduler task per cell. Deliberately the only
     scheduling field here: wall clocks and steal counts vary run to run
     and live in BENCH_sweeps.json, keeping this file bit-identical for a
     given grid and seeds. *)
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"cells\": %d, \"tasks\": %d, \"ok\": %d, \
        \"expected_degradation\": %d, \"violation\": %d},\n"
       s.cells s.cells s.ok s.degraded s.violated);
  Buffer.add_string buf "  \"runs\": [\n";
  let n = List.length outcomes in
  List.iteri
    (fun i o ->
      let r = o.oracle in
      let m = r.Oracle.metrics in
      let by_label =
        String.concat ", "
          (List.map
             (fun (l, c) -> Printf.sprintf "\"%s\": %d" (json_escape l) c)
             m.Engine.messages_dropped_by_label)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"case\": \"%s\", \"schedule\": \"%s\", \"chaos_seed\": %d,\n\
           \     \"verdict\": \"%s\", \"within_budget\": %b, \"charged\": \
            \"%s\", \"corrupted\": \"%s\", \"violations\": %d,\n\
           \     \"rounds\": %d, \"sent\": %d, \"delivered\": %d, \
            \"dropped_topology\": %d, \"dropped_fault\": %d, \"corrupted_frames\": \
            %d, \"cells_scrambled\": %d, \"first_scramble_round\": %s, \
            \"recovery\": %s, \"bytes_sent\": %d, \"bytes_delivered\": %d, \
            \"dropped_by_label\": {%s}}%s\n"
           (json_escape o.cell.case.Sweep.label)
           (json_escape (Schedule.describe o.cell.schedule))
           o.cell.chaos_seed
           (json_escape (Oracle.verdict_to_string r.Oracle.verdict))
           r.Oracle.within_budget
           (json_escape (set_to_string r.Oracle.charged))
           (json_escape (set_to_string r.Oracle.corrupted))
           (List.length r.Oracle.violations)
           m.Engine.rounds_used m.Engine.messages_sent m.Engine.messages_delivered
           m.Engine.messages_dropped_topology m.Engine.messages_dropped_fault
           m.Engine.messages_corrupted m.Engine.cells_scrambled
           (match m.Engine.first_scramble_round with
           | Some r -> string_of_int r
           | None -> "null")
           (match r.Oracle.recovery with
           | Some rc ->
             Printf.sprintf "\"%s\"" (json_escape (Oracle.recovery_to_string rc))
           | None -> "null")
           m.Engine.bytes_sent m.Engine.bytes_delivered by_label
           (if i = n - 1 then "" else ",")))
    outcomes;
  Buffer.add_string buf "  ],\n";
  (* Recovery grid: one row per (schedule, chaos_seed) that scrambled
     state anywhere, aggregated over cases. The [recovery_row] marker is
     what tools/bench_compare scans for; values are pure counts over
     deterministic outcomes, so this section is as diffable as the rest
     of the file. *)
  let recovery_rows = recovery_grid outcomes in
  Buffer.add_string buf "  \"recovery_grid\": [\n";
  let rn = List.length recovery_rows in
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"recovery_row\": \"%s#seed%d\", \"cells\": %d, \"recovered\": \
            %d, \"stuck\": %d, \"violated\": %d, \"no_scramble\": %d, \
            \"max_rounds_to_recovery\": %d, \"mean_rounds_to_recovery\": %.2f}%s\n"
           (json_escape row.rg_schedule) row.rg_seed row.rg_cells row.rg_recovered
           row.rg_stuck row.rg_violated row.rg_no_scramble row.rg_max_rounds
           row.rg_mean_rounds
           (if i = rn - 1 then "" else ",")))
    recovery_rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* --- standard grids ------------------------------------------------------ *)

let setting ~k ~topology ~auth ~tl ~tr =
  Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr

(* One case per feasibility mechanism of the T-table, all with a spare
   right-side budget (t_R = k) so that single-party omission schedules on
   R0 stay admissible: Thm 2 (general phase king), Thm 5 (Dolev-Strong),
   Thms 6/7 (both Π_bSM regimes with omission-tolerant Π_BA/Π_BB), plus a
   full-budget random byzantine coalition on top of Thm 2. *)
let t_cases ~k =
  let third = max 0 ((k - 1) / 3) in
  [
    Sweep.case
      ~profile_seed:((100 * k) + 1)
      (setting ~k ~topology:Topology.Fully_connected
         ~auth:Core.Setting.Unauthenticated ~tl:third ~tr:k);
    Sweep.case
      ~profile_seed:((100 * k) + 2)
      (setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
         ~tl:k ~tr:k);
    Sweep.case
      ~profile_seed:((100 * k) + 3)
      (setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
         ~tl:third ~tr:k);
    Sweep.case
      ~profile_seed:((100 * k) + 4)
      (setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated
         ~tl:third ~tr:k);
    Sweep.case
      ~profile_seed:((100 * k) + 5)
      ~scenario_seed:k ~adversary:Sweep.Random_coalition
      (setting ~k ~topology:Topology.Fully_connected
         ~auth:Core.Setting.Unauthenticated ~tl:third ~tr:k);
  ]

(* The schedule vocabulary under test. The omission group's first five
   charge at most {R0}, admissible in every t_cases setting; bernoulli
   and blackout are unattributable (they charge the whole roster) and
   must come back as expected degradation, never as a crash. The
   mutation group exercises the active wire adversary — every kind of
   in-flight corruption, all aimed at R0's traffic so they too charge
   only {R0} and stay admissible: whatever garbage the mutated frames
   decode to must be absorbed as byzantine-equivalent behaviour. *)
let standard_schedules ~k =
  let r0 = Party_id.right 0 in
  let rest =
    List.filter (fun p -> not (Party_id.equal p r0)) (Party_id.all ~k)
  in
  [
    Schedule.never;
    Schedule.send_omission ~rate:0.4 r0;
    Schedule.receive_omission ~rate:0.4 r0;
    Schedule.crash r0 ~at_round:1;
    Schedule.partition ~from_round:1 ~until_round:4 [ r0 ] rest;
    Schedule.bernoulli ~rate:0.15;
    Schedule.union
      (Schedule.blackout ~from_round:1 ~until_round:2)
      (Schedule.restrict_to_side Side.Left (Schedule.bernoulli ~rate:0.1));
    Schedule.corrupt ~rate:0.3 ~kind:Mutation.Bit_flip r0;
    Schedule.corrupt ~rate:0.3 ~kind:Mutation.Equivocate r0;
    Schedule.all
      [
        Schedule.corrupt ~rate:0.25 ~kind:Mutation.Replay r0;
        Schedule.corrupt ~rate:0.25 ~kind:Mutation.Truncate r0;
      ];
    Schedule.corrupt ~rate:0.3 ~kind:Mutation.Forge_sender r0;
    (* The self-stabilization group: scramble R0's registered protocol
       state between rounds and let the convergence oracle time the
       recovery. Deterministic scramble at round 1 (every cell fires)
       and a partial one at round 2 — both charge only {R0}, so the
       honest parties must still converge to bSM. *)
    Schedule.corrupt_state ~rate:1.0 r0 ~at_round:1;
    Schedule.corrupt_state ~rate:0.6 r0 ~at_round:2;
  ]

let quick_grid () =
  let k = 2 in
  grid ~cases:(t_cases ~k) ~schedules:(standard_schedules ~k) ~seeds:[ 1 ]

let full_grid () =
  List.concat_map
    (fun k ->
      grid ~cases:(t_cases ~k) ~schedules:(standard_schedules ~k)
        ~seeds:[ 1; 2; 3 ])
    [ 2; 4 ]
