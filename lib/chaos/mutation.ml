open Bsm_prelude
module Wire = Bsm_wire.Wire

type kind =
  | Bit_flip
  | Truncate
  | Replay
  | Equivocate
  | Forge_sender

let all_kinds = [ Bit_flip; Truncate; Replay; Equivocate; Forge_sender ]

let to_string = function
  | Bit_flip -> "bit-flip"
  | Truncate -> "truncate"
  | Replay -> "replay"
  | Equivocate -> "equivocate"
  | Forge_sender -> "forge-sender"

let equal_kind (a : kind) b = a = b

let codec =
  let inject = function
    | 0 -> Bit_flip
    | 1 -> Truncate
    | 2 -> Replay
    | 3 -> Equivocate
    | 4 -> Forge_sender
    | n -> raise (Wire.Malformed (Printf.sprintf "unknown mutation kind %d" n))
  in
  let project = function
    | Bit_flip -> 0
    | Truncate -> 1
    | Replay -> 2
    | Equivocate -> 3
    | Forge_sender -> 4
  in
  Wire.map ~inject ~project Wire.uint

(* Derived draws from the component hash: [draw h i bound] is uniform-ish
   in [0 .. bound-1], independent across [i] (each draw re-mixes). *)
let draw h i bound = Int64.to_int (Rng.mix64_absorb h i) land max_int mod bound

let splice payload pos ins =
  let n = String.length payload in
  let il = String.length ins in
  if pos + il >= n then String.sub payload 0 pos ^ ins
  else String.sub payload 0 pos ^ ins ^ String.sub payload (pos + il) (n - pos - il)

let apply ~hash ~src ~prev kind payload =
  let n = String.length payload in
  let changed bytes = if String.equal bytes payload then None else Some bytes in
  match kind with
  | Bit_flip ->
    if n = 0 then None
    else begin
      let pos = draw hash 0 n in
      let bit = 1 lsl draw hash 1 8 in
      Some
        (String.mapi
           (fun i c -> if i = pos then Char.chr (Char.code c lxor bit) else c)
           payload)
    end
  | Truncate -> if n = 0 then None else Some (String.sub payload 0 (draw hash 0 n))
  | Replay -> (
    match prev with
    | None -> None
    | Some p -> changed p)
  | Equivocate ->
    if n = 0 then None
    else begin
      (* Rewrite a few bytes; the hash (which absorbed dst upstream)
         makes the rewrite recipient-specific. *)
      let count = 1 + draw hash 0 (min n 4) in
      let bytes = Bytes.of_string payload in
      for i = 1 to count do
        let pos = draw hash (2 * i) n in
        Bytes.set bytes pos (Char.chr (draw hash ((2 * i) + 1) 256))
      done;
      changed (Bytes.to_string bytes)
    end
  | Forge_sender ->
    let side = if draw hash 1 2 = 0 then Side.Left else Side.Right in
    let index = draw hash 2 8 in
    let forged = Party_id.make side index in
    let forged =
      if Party_id.equal forged src then Party_id.make side (index + 1) else forged
    in
    changed (splice payload (draw hash 0 (n + 1)) (Wire.encode Wire.party_id forged))

(* State-cell scramble: "arbitrary local state" bytes from the component
   hash. Unlike [apply], which mutates in-flight frames, this targets a
   registered cell's canonical encoding, and it never declines: the
   engine retries with a fresh hash (the attempt counter is absorbed
   upstream) until the bytes decode, so the composite behaves as a
   deterministic draw from the space of well-formed states. *)
let scramble ~hash payload =
  let n = String.length payload in
  if n = 0 then
    (* Nothing to rewrite — synthesize a few bytes from scratch. *)
    String.init (1 + draw hash 0 8) (fun i -> Char.chr (draw hash (i + 1) 256))
  else
    match draw hash 17 3 with
    | 0 ->
      (* Flip one bit. *)
      let pos = draw hash 0 n in
      let bit = 1 lsl draw hash 1 8 in
      String.mapi
        (fun i c -> if i = pos then Char.chr (Char.code c lxor bit) else c)
        payload
    | 1 -> String.sub payload 0 (draw hash 0 n) (* truncate *)
    | _ ->
      (* Rewrite a few bytes. *)
      let count = 1 + draw hash 0 (min n 4) in
      let bytes = Bytes.of_string payload in
      for i = 1 to count do
        let pos = draw hash (2 * i) n in
        Bytes.set bytes pos (Char.chr (draw hash ((2 * i) + 1) 256))
      done;
      Bytes.to_string bytes
