(** The bSM property oracle: run a sweep case under a fault schedule and
    judge the outcome against the paper's guarantees.

    The classification logic is the admissibility argument of
    Theorems 8–9: an omission-faulty party is a special case of a
    byzantine one, so as long as the parties {!Schedule.charged} by the
    schedule, together with the case's byzantine coalition, fit the
    setting's [(t_L, t_R)] corruption budgets, the remaining honest
    parties must still enjoy all four bSM properties (termination,
    symmetry, stability, non-competition). A broken property inside the
    budget is a protocol bug; outside the budget the paper promises
    nothing, so degradation is expected. *)

open Bsm_prelude
module Core := Bsm_core
module Engine := Bsm_runtime.Engine
module Sweep := Bsm_harness.Sweep

type verdict =
  | Ok  (** within budget, all four honest-party properties hold *)
  | Expected_degradation
      (** the fault budget exceeds the admissible omission bounds of
          Theorems 8–9 — whatever happened carries no guarantee *)
  | Violation
      (** properties broken {e within} budget — a real bug *)

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

(** Convergence after state corruption — the self-stabilization reading
    of a scrambled run ({!Schedule.corrupt_state}). Only computed when
    the run actually scrambled at least one cell. *)
type recovery =
  | Recovered of int
      (** every honest party terminated; the payload is the number of
          rounds from the first scramble to the last honest
          termination (0 when everyone was already done) *)
  | Stuck
      (** some honest party ran out of rounds — with a deterministic
          protocol and a fixed schedule this is proof it never
          converges, not a timeout heuristic *)
  | Violated
      (** the honest parties terminated but the bSM properties are
          broken — converged to a wrong fixpoint *)

(** ["recovered:N"], ["stuck"], ["violated"] — stable strings used in
    BENCH_chaos.json rows and repro fingerprints. *)
val recovery_to_string : recovery -> string

val pp_recovery : Format.formatter -> recovery -> unit

(** Canonical wire codec (registered in the fuzz corpus as
    ["chaos.recovery"]). *)
val recovery_codec : recovery Bsm_wire.Wire.t

(** Everything is plain data (no closures), so reports from parallel and
    sequential sweeps can be compared structurally — the bit-identity
    guarantee chaos sweeps inherit from {!Bsm_harness.Sweep}. *)
type report = {
  verdict : verdict;
  within_budget : bool;
  charged : Party_set.t;  (** parties the schedule omission-corrupts *)
  corrupted : Party_set.t;  (** byzantine coalition ∪ [charged] *)
  violations : Core.Problem.violation list;
      (** bSM violations among parties honest under [corrupted] *)
  metrics : Engine.metrics;  (** per-fate message counts of the run *)
  recovery : recovery option;
      (** [None] when no state cell was scrambled
          ([metrics.first_scramble_round = None]); otherwise the
          convergence verdict measured over parties honest under
          [corrupted] *)
}

(** [run ~seed ~schedule case] materializes the case
    ({!Sweep.scenario_of_case}), compiles the schedule with [seed],
    executes, and classifies. Deterministic in
    [(case, schedule, seed)]. *)
val run :
  ?max_rounds:int -> seed:int -> schedule:Schedule.t -> Sweep.case -> report

val pp_report : Format.formatter -> report -> unit
