open Bsm_prelude
module Wire = Bsm_wire.Wire
module Fuzz = Bsm_wire.Fuzz
module Crypto = Bsm_crypto.Crypto
module SM = Bsm_stable_matching
module Core = Bsm_core
module B = Bsm_broadcast
module Sweep = Bsm_harness.Sweep
module Topology = Bsm_topology.Topology

(* --- shared generators --------------------------------------------------- *)

let gen_bytes ?(max_len = 12) rng =
  String.init (Rng.int rng (max_len + 1)) (fun _ -> Char.chr (Rng.int rng 256))

let gen_party rng =
  Party_id.make (if Rng.bool rng then Side.Left else Side.Right) (Rng.int rng 16)

let gen_rate rng = float_of_int (Rng.int rng 101) /. 100.

let gen_float rng =
  (* A spread of magnitudes plus the IEEE specials. *)
  match Rng.int rng 6 with
  | 0 -> 0.
  | 1 -> -0.
  | 2 -> Float.of_int (Rng.int rng 1_000_000 - 500_000)
  | 3 -> gen_rate rng
  | 4 -> Float.infinity
  | _ -> Float.nan

(* One PKI per corpus instantiation: signatures are deterministic in
   (seed, party, bytes), so entries stay replayable. *)
let pki = lazy (Crypto.Pki.setup ~k:4 ~seed:42)

let gen_signature rng =
  let pki = Lazy.force pki in
  let p = Party_id.make (if Rng.bool rng then Side.Left else Side.Right) (Rng.int rng 4) in
  Crypto.Signer.sign (Crypto.Pki.signer pki p) (gen_bytes rng)

let gen_schedule rng =
  let gen_atom rng =
    match Rng.int rng 9 with
    | 0 -> Schedule.bernoulli ~rate:(gen_rate rng)
    | 1 -> Schedule.crash (gen_party rng) ~at_round:(Rng.int rng 8)
    | 2 -> Schedule.send_omission ~rate:(gen_rate rng) (gen_party rng)
    | 3 -> Schedule.receive_omission ~rate:(gen_rate rng) (gen_party rng)
    | 4 ->
      let lo = Rng.int rng 6 in
      Schedule.partition ~from_round:lo
        ~until_round:(lo + 1 + Rng.int rng 6)
        [ gen_party rng ] [ gen_party rng ]
    | 5 ->
      let lo = Rng.int rng 6 in
      Schedule.blackout ~from_round:lo ~until_round:(lo + 1 + Rng.int rng 6)
    | 6 ->
      Schedule.corrupt ~rate:(gen_rate rng)
        ~kind:(Rng.choose rng Mutation.all_kinds)
        (gen_party rng)
    | 7 ->
      (* rate > 0: corrupt_state prunes a zero rate to Never, which the
         canonical codec round-trips as the empty schedule. *)
      Schedule.corrupt_state
        ~rate:(float_of_int (1 + Rng.int rng 100) /. 100.)
        (gen_party rng)
        ~at_round:(1 + Rng.int rng 8)
    | _ -> Schedule.sabotage (gen_party rng) ~at_round:(Rng.int rng 8)
  in
  let rec go depth =
    if depth = 0 || Rng.int rng 3 = 0 then gen_atom rng
    else
      match Rng.int rng 3 with
      | 0 -> Schedule.union (go (depth - 1)) (go (depth - 1))
      | 1 ->
        let lo = Rng.int rng 6 in
        Schedule.during ~from_round:lo ~until_round:(lo + 1 + Rng.int rng 6) (go (depth - 1))
      | _ ->
        Schedule.restrict_to_side
          (if Rng.bool rng then Side.Left else Side.Right)
          (go (depth - 1))
  in
  go (Rng.int rng 3)

let gen_setting rng =
  let k = 1 + Rng.int rng 4 in
  Core.Setting.make_exn ~k
    ~topology:(Rng.choose rng Topology.all)
    ~auth:(if Rng.bool rng then Core.Setting.Unauthenticated else Core.Setting.Authenticated)
    ~t_left:(Rng.int rng (k + 1))
    ~t_right:(Rng.int rng (k + 1))

let gen_repro rng =
  let case =
    Sweep.case ~label:(gen_bytes ~max_len:8 rng) ~profile_seed:(Rng.int rng 1000)
      ~scenario_seed:(Rng.int rng 1000)
      ~adversary:(if Rng.bool rng then Sweep.Honest else Sweep.Random_coalition)
      (gen_setting rng)
  in
  {
    Repro.case;
    schedule = gen_schedule rng;
    seed = Rng.int rng 1000;
    max_rounds = (if Rng.bool rng then Some (1 + Rng.int rng 100) else None);
    expected = Rng.choose rng [ Oracle.Ok; Oracle.Expected_degradation; Oracle.Violation ];
    fingerprint = gen_bytes ~max_len:32 rng;
  }

(* --- the corpus ---------------------------------------------------------- *)

let e = Fuzz.entry

(* Re-route a codec's decode path through an arena-slice view. The value
   is encoded as a length-prefixed body; decoding reads the body, embeds
   it mid-base between continuation-heavy sentinel bytes (standing in for
   the neighbouring frames of a shared arena), and decodes the span with
   [decode_slice_exn]. Fuzz mutations on the outer bytes then probe the
   slice machinery directly: a flipped length prefix moves the span
   boundary, and a decoder that walked past the pinned limit would read
   the sentinels instead of raising [Wire.Malformed]. *)
let via_slice (codec : 'a Wire.t) : 'a Wire.t =
  let sentinel = String.make 9 '\xff' in
  {
    Wire.write = (fun enc v -> Wire.Enc.string enc (Wire.encode codec v));
    read =
      (fun dec ->
        let body = Wire.Dec.string dec in
        let base = sentinel ^ body ^ sentinel in
        let span =
          Wire.Slice.make base ~off:(String.length sentinel)
            ~len:(String.length body)
        in
        Wire.decode_slice_exn codec span);
  }

(* Extension point for layers above chaos: registered thunks run on
   every [entries] call, after the built-in corpus, in registration
   order. *)
let extras : (unit -> Fuzz.entry list) list ref = ref []
let register f = extras := !extras @ [ f ]

let entries () =
  [
    (* Wire primitives: the building blocks under every protocol codec. *)
    e ~name:"wire.uint" ~gen:(fun rng -> Rng.int rng 0x3FFFFFFF) ~equal:Int.equal Wire.uint;
    e ~name:"wire.int"
      ~gen:(fun rng -> Rng.int rng 0x3FFFFFFF - 0x20000000)
      ~equal:Int.equal Wire.int;
    e ~name:"wire.string" ~gen:(gen_bytes ~max_len:24) ~equal:String.equal Wire.string;
    e ~name:"wire.float" ~gen:gen_float
      ~equal:(fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
      Wire.float;
    e ~name:"wire.list-int"
      ~gen:(fun rng -> List.init (Rng.int rng 8) (fun _ -> Rng.int rng 1000 - 500))
      ~equal:(List.equal Int.equal) (Wire.list Wire.int);
    e ~name:"wire.party-id" ~gen:gen_party ~equal:Party_id.equal Wire.party_id;
    e ~name:"wire.decision"
      ~gen:(fun rng -> if Rng.bool rng then Some (gen_party rng) else None)
      ~equal:(Option.equal Party_id.equal) Core.Problem.decision_codec;
    (* Broadcast-layer messages. *)
    e ~name:"phase-king.msg"
      ~gen:(fun rng ->
        let b = gen_bytes rng in
        match Rng.int rng 5 with
        | 0 -> B.Phase_king.Msg.Value b
        | 1 -> B.Phase_king.Msg.Propose b
        | 2 -> B.Phase_king.Msg.King b
        | 3 -> B.Phase_king.Msg.Echo b
        | _ -> B.Phase_king.Msg.Sender b)
      ~equal:( = ) B.Phase_king.Msg.codec;
    e ~name:"gradecast.msg"
      ~gen:(fun rng ->
        let b = gen_bytes rng in
        match Rng.int rng 3 with
        | 0 -> B.Gradecast.Value b
        | 1 -> B.Gradecast.Echo b
        | _ -> B.Gradecast.Ready b)
      ~equal:( = ) B.Gradecast.codec;
    e ~name:"dolev-strong.chain"
      ~gen:(fun rng ->
        {
          B.Dolev_strong.Chain.value = gen_bytes rng;
          links =
            List.init (Rng.int rng 4) (fun _ -> gen_party rng, gen_signature rng);
        })
      ~equal:( = ) B.Dolev_strong.Chain.codec;
    (* Π_bSM and channel frames. *)
    e ~name:"pi-bsm.msg"
      ~gen:(fun rng ->
        if Rng.bool rng then Core.Pi_bsm.Msg.Prefs (gen_bytes rng)
        else
          Core.Pi_bsm.Msg.Suggest
            (if Rng.bool rng then Some (gen_party rng) else None))
      ~equal:( = ) Core.Pi_bsm.Msg.codec;
    e ~name:"channels.relay"
      ~gen:(fun rng ->
        let payload () =
          {
            Core.Channels.src = gen_party rng;
            dst = gen_party rng;
            vround = Rng.int rng 64;
            id = Rng.int rng 64;
            body = gen_bytes rng;
            signature = (if Rng.bool rng then Some (gen_signature rng) else None);
          }
        in
        match Rng.int rng 3 with
        | 0 -> Core.Channels.Direct (gen_bytes rng)
        | 1 -> Core.Channels.Request (payload ())
        | _ -> Core.Channels.Forward (payload ()))
      ~equal:( = ) Core.Channels.relay_codec;
    (* Crypto envelopes. *)
    e ~name:"crypto.signature" ~gen:gen_signature ~equal:Crypto.Signature.equal
      Crypto.Signature.codec;
    e ~name:"crypto.signed-string"
      ~gen:(fun rng ->
        let pki = Lazy.force pki in
        let p = Party_id.make Side.Left (Rng.int rng 4) in
        Crypto.Signed.make (Crypto.Pki.signer pki p) Wire.string (gen_bytes rng))
      ~equal:( = )
      (Crypto.Signed.codec Wire.string);
    (* Stable-matching payloads. *)
    e ~name:"sm.prefs"
      ~gen:(fun rng -> SM.Prefs.random rng (1 + Rng.int rng 6))
      ~equal:SM.Prefs.equal SM.Prefs.codec;
    e ~name:"sm.profile"
      ~gen:(fun rng -> SM.Profile.random rng (1 + Rng.int rng 4))
      ~equal:SM.Profile.equal SM.Profile.codec;
    e ~name:"sm.matching"
      ~gen:(fun rng ->
        SM.Matching.of_l2r_exn (Array.of_list (Rng.permutation rng (1 + Rng.int rng 6))))
      ~equal:SM.Matching.equal SM.Matching.codec;
    (* Arena-slice views: the same decoders the engine's message plane
       runs zero-copy out of the per-round frame arena, with mutations
       landing on the span boundaries. *)
    e ~name:"slice.uint" ~gen:(fun rng -> Rng.int rng 0x3FFFFFFF) ~equal:Int.equal
      (via_slice Wire.uint);
    e ~name:"slice.string" ~gen:(gen_bytes ~max_len:24) ~equal:String.equal
      (via_slice Wire.string);
    e ~name:"slice.list-int"
      ~gen:(fun rng -> List.init (Rng.int rng 8) (fun _ -> Rng.int rng 1000 - 500))
      ~equal:(List.equal Int.equal)
      (via_slice (Wire.list Wire.int));
    e ~name:"slice.channels.relay"
      ~gen:(fun rng ->
        match Rng.int rng 3 with
        | 0 -> Core.Channels.Direct (gen_bytes rng)
        | _ ->
          Core.Channels.Request
            {
              Core.Channels.src = gen_party rng;
              dst = gen_party rng;
              vround = Rng.int rng 64;
              id = Rng.int rng 64;
              body = gen_bytes rng;
              signature = (if Rng.bool rng then Some (gen_signature rng) else None);
            })
      ~equal:( = )
      (via_slice Core.Channels.relay_codec);
    e ~name:"slice.pi-bsm.msg"
      ~gen:(fun rng ->
        if Rng.bool rng then Core.Pi_bsm.Msg.Prefs (gen_bytes rng)
        else
          Core.Pi_bsm.Msg.Suggest
            (if Rng.bool rng then Some (gen_party rng) else None))
      ~equal:( = )
      (via_slice Core.Pi_bsm.Msg.codec);
    (* The chaos subsystem's own serialized forms. *)
    e ~name:"chaos.mutation-kind"
      ~gen:(fun rng -> Rng.choose rng Mutation.all_kinds)
      ~equal:Mutation.equal_kind Mutation.codec;
    e ~name:"chaos.schedule" ~gen:gen_schedule ~equal:( = ) Schedule.codec;
    e ~name:"chaos.recovery"
      ~gen:(fun rng ->
        match Rng.int rng 3 with
        | 0 -> Oracle.Recovered (Rng.int rng 64)
        | 1 -> Oracle.Stuck
        | _ -> Oracle.Violated)
      ~equal:( = ) Oracle.recovery_codec;
    e ~name:"chaos.repro" ~gen:gen_repro ~equal:( = ) Repro.codec;
  ]
  @ List.concat_map (fun f -> f ()) !extras
