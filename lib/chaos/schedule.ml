open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire

type atom =
  | Bernoulli of float
  | Crash of Party_id.t  (** window start is the crash round *)
  | Send_omission of Party_id.t * float
  | Receive_omission of Party_id.t * float
  | Partition of Party_set.t * Party_set.t
  | Blackout
  | Corrupt of Party_id.t * Mutation.kind * float
  | Sabotage of Party_id.t  (** window start is the sabotage round *)
  | Corrupt_state of Party_id.t * float

type t =
  | Never
  | Atom of {
      atom : atom;
      lo : int;
      hi : int;  (** exclusive; [max_int] = unbounded *)
    }
  | Union of t * t
  | During of int * int * t
  | Restrict of Side.t * t

let check_rate what rate =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg (Printf.sprintf "Schedule.%s: rate %g not in [0, 1]" what rate)

let check_window what from_round until_round =
  if from_round < 0 || until_round < from_round then
    invalid_arg
      (Printf.sprintf "Schedule.%s: bad round window [%d, %d)" what from_round
         until_round)

let never = Never
let unbounded atom = Atom { atom; lo = 0; hi = max_int }

let bernoulli ~rate =
  check_rate "bernoulli" rate;
  if rate = 0. then Never else unbounded (Bernoulli rate)

let crash p ~at_round =
  if at_round < 0 then invalid_arg "Schedule.crash: negative round";
  Atom { atom = Crash p; lo = at_round; hi = max_int }

let send_omission ~rate p =
  check_rate "send_omission" rate;
  if rate = 0. then Never else unbounded (Send_omission (p, rate))

let receive_omission ~rate p =
  check_rate "receive_omission" rate;
  if rate = 0. then Never else unbounded (Receive_omission (p, rate))

let partition ~from_round ~until_round a b =
  check_window "partition" from_round until_round;
  let a = Party_set.of_list a and b = Party_set.of_list b in
  if Party_set.is_empty a || Party_set.is_empty b then Never
  else Atom { atom = Partition (a, b); lo = from_round; hi = until_round }

let blackout ~from_round ~until_round =
  check_window "blackout" from_round until_round;
  Atom { atom = Blackout; lo = from_round; hi = until_round }

let corrupt ~rate ~kind p =
  check_rate "corrupt" rate;
  if rate = 0. then Never else unbounded (Corrupt (p, kind, rate))

let sabotage p ~at_round =
  if at_round < 0 then invalid_arg "Schedule.sabotage: negative round";
  Atom { atom = Sabotage p; lo = at_round; hi = max_int }

let corrupt_state ~rate p ~at_round =
  check_rate "corrupt_state" rate;
  if at_round < 0 then invalid_arg "Schedule.corrupt_state: negative round";
  if rate = 0. then Never
  else Atom { atom = Corrupt_state (p, rate); lo = at_round; hi = at_round + 1 }

let union a b =
  match a, b with
  | Never, s | s, Never -> s
  | a, b -> Union (a, b)

let all ts = List.fold_left union Never ts

let during ~from_round ~until_round s =
  check_window "during" from_round until_round;
  match s with
  | Never -> Never
  | s -> During (from_round, until_round, s)

let restrict_to_side side s =
  match s with
  | Never -> Never
  | s -> Restrict (side, s)

(* --- rendering ----------------------------------------------------------- *)

let pct rate = Printf.sprintf "%g%%" (100. *. rate)

let set_to_string s =
  "{" ^ String.concat "," (List.map Party_id.to_string (Party_set.elements s)) ^ "}"

let window_to_string lo hi =
  if lo = 0 && hi = max_int then ""
  else if hi = max_int then Printf.sprintf ",r%d.." lo
  else Printf.sprintf ",r%d..%d" lo (hi - 1)

let atom_label atom lo hi =
  match atom with
  | Bernoulli rate -> Printf.sprintf "drop(%s%s)" (pct rate) (window_to_string lo hi)
  | Crash p -> Printf.sprintf "crash(%s@%d)" (Party_id.to_string p) lo
  | Send_omission (p, rate) ->
    Printf.sprintf "send-omit(%s,%s%s)" (Party_id.to_string p) (pct rate)
      (window_to_string lo hi)
  | Receive_omission (p, rate) ->
    Printf.sprintf "recv-omit(%s,%s%s)" (Party_id.to_string p) (pct rate)
      (window_to_string lo hi)
  | Partition (a, b) ->
    Printf.sprintf "partition(%s|%s%s)" (set_to_string a) (set_to_string b)
      (window_to_string lo hi)
  | Blackout -> (
    match window_to_string lo hi with
    | "" -> "blackout(all)"
    | w -> Printf.sprintf "blackout(%s)" (String.sub w 1 (String.length w - 1)))
  | Corrupt (p, kind, rate) ->
    Printf.sprintf "corrupt(%s,%s,%s%s)" (Party_id.to_string p)
      (Mutation.to_string kind) (pct rate) (window_to_string lo hi)
  | Sabotage p -> Printf.sprintf "sabotage(%s@%d)" (Party_id.to_string p) lo
  | Corrupt_state (p, rate) ->
    Printf.sprintf "corrupt-state(%s@%d,%s)" (Party_id.to_string p) lo (pct rate)

(* --- compilation --------------------------------------------------------- *)

(* A schedule flattens to atoms with their effective window, sender-side
   restriction, and a salt (pre-order position) that decorrelates the
   probabilistic components. *)
type flat = {
  f_label : string;
  f_salt : int;
  f_lo : int;
  f_hi : int;
  f_side : Side.t option;
  f_atom : atom;
}

let flatten t =
  let next_salt = ref 0 in
  let rec go lo hi side acc = function
    | Never -> acc
    | Atom { atom; lo = alo; hi = ahi } ->
      let salt = !next_salt in
      incr next_salt;
      let lo = max lo alo and hi = min hi ahi in
      if lo >= hi then acc
      else
        { f_label = atom_label atom lo hi; f_salt = salt; f_lo = lo; f_hi = hi;
          f_side = side; f_atom = atom }
        :: acc
    | Union (a, b) -> go lo hi side (go lo hi side acc a) b
    | During (dlo, dhi, s) -> go (max lo dlo) (min hi dhi) side acc s
    | Restrict (s', s) ->
      let side =
        match side with
        | None -> Some s'
        | Some existing -> if Side.equal existing s' then side else
            (* contradictory restrictions: nothing can match *)
            None
      in
      (match side, s with
      | None, _ -> acc (* contradictory; prune the subtree *)
      | Some _, s -> go lo hi side acc s)
  in
  List.rev (go 0 max_int None [] t)

let is_empty t = flatten t = []

let describe t =
  match flatten t with
  | [] -> "none"
  | flats ->
    String.concat " + "
      (List.map
         (fun f ->
           match f.f_side with
           | None -> f.f_label
           | Some s -> Printf.sprintf "%s-sends:%s" (Side.to_string s) f.f_label)
         flats)

let pp ppf t = Format.pp_print_string ppf (describe t)

let party_key p =
  (2 * Party_id.index p)
  + (match Party_id.side p with Side.Left -> 0 | Side.Right -> 1)

(* The stateless coin: uniform in [0,1) from (seed, salt, round, src, dst). *)
let chance ~seed ~salt ~round ~src ~dst rate =
  let h = Rng.mix64 (Int64.of_int seed) in
  let h = Rng.mix64_absorb h salt in
  let h = Rng.mix64_absorb h round in
  let h = Rng.mix64_absorb h (party_key src) in
  let h = Rng.mix64_absorb h (party_key dst) in
  Rng.uniform_of_hash h < rate

let hits ~seed f ~round ~src ~dst =
  round >= f.f_lo
  && round < f.f_hi
  && (match f.f_side with
     | None -> true
     | Some s -> Side.equal (Party_id.side src) s)
  &&
  match f.f_atom with
  | Bernoulli rate -> chance ~seed ~salt:f.f_salt ~round ~src ~dst rate
  | Crash p -> Party_id.equal src p
  | Send_omission (p, rate) ->
    Party_id.equal src p && chance ~seed ~salt:f.f_salt ~round ~src ~dst rate
  | Receive_omission (p, rate) ->
    Party_id.equal dst p && chance ~seed ~salt:f.f_salt ~round ~src ~dst rate
  | Partition (a, b) ->
    (Party_set.mem src a && Party_set.mem dst b)
    || (Party_set.mem src b && Party_set.mem dst a)
  | Blackout -> true
  | Corrupt _ -> false (* corrupts, never drops *)
  | Corrupt_state _ -> false (* scrambles state, never drops frames *)
  | Sabotage p -> Party_id.equal src p

(* The mutation content hash: same inputs as the {!chance} coin plus one
   extra absorbed constant, so which bytes a mutation rewrites is
   independent of whether it fires. *)
let corrupt_hash ~seed ~salt ~round ~src ~dst =
  let h = Rng.mix64 (Int64.of_int seed) in
  let h = Rng.mix64_absorb h salt in
  let h = Rng.mix64_absorb h round in
  let h = Rng.mix64_absorb h (party_key src) in
  let h = Rng.mix64_absorb h (party_key dst) in
  Rng.mix64_absorb h 0xc0447 (* "corrupt" *)

(* State scrambles hash (seed, component, round, party, cell): the coin
   absorbs the cell index so whether one cell is hit is independent of
   its siblings', and a distinct final constant keeps scramble decisions
   decorrelated from the message-plane coins of the same component. *)
let scramble_base ~seed ~salt ~round ~party ~cell =
  let h = Rng.mix64 (Int64.of_int seed) in
  let h = Rng.mix64_absorb h salt in
  let h = Rng.mix64_absorb h round in
  let h = Rng.mix64_absorb h (party_key party) in
  Rng.mix64_absorb h cell

let scramble_coin ~seed ~salt ~round ~party ~cell rate =
  let h = scramble_base ~seed ~salt ~round ~party ~cell in
  Rng.uniform_of_hash (Rng.mix64_absorb h 0x5c4a) < rate (* "scram" *)

(* The mutation content additionally absorbs the attempt counter: a
   retry after an undecodable candidate draws fresh bytes while the
   firing decision stands. *)
let scramble_hash ~seed ~salt ~round ~party ~cell ~attempt =
  let h = scramble_base ~seed ~salt ~round ~party ~cell in
  Rng.mix64_absorb (Rng.mix64_absorb h 0x57a7e) attempt (* "state" *)

let compile ~seed t =
  let flats = flatten t in
  let drop ~round ~src ~dst =
    List.exists (fun f -> hits ~seed f ~round ~src ~dst) flats
  in
  let label ~round ~src ~dst =
    List.find_map
      (fun f -> if hits ~seed f ~round ~src ~dst then Some f.f_label else None)
      flats
  in
  let corrupters =
    List.filter
      (fun f ->
        match f.f_atom with
        | Corrupt _ -> true
        | _ -> false)
      flats
  in
  let scramblers =
    List.filter
      (fun f ->
        match f.f_atom with
        | Corrupt_state _ -> true
        | _ -> false)
      flats
  in
  (* Hooks stay [None] when no component needs them, so the fault model
     keeps the physical [no_corrupt] / [no_scramble] defaults and the
     engine skips replay-memory upkeep / registry sweeps entirely. *)
  let corrupt =
    match corrupters with
    | [] -> None
    | _ :: _ ->
      Some
        (fun ~round ~src ~dst ~prev payload ->
          List.find_map
            (fun f ->
              match f.f_atom with
              | Corrupt (p, kind, rate)
                when round >= f.f_lo && round < f.f_hi
                     && (match f.f_side with
                        | None -> true
                        | Some s -> Side.equal (Party_id.side src) s)
                     && Party_id.equal src p
                     && chance ~seed ~salt:f.f_salt ~round ~src ~dst rate ->
                let hash = corrupt_hash ~seed ~salt:f.f_salt ~round ~src ~dst in
                Option.map
                  (fun bytes -> bytes, f.f_label)
                  (Mutation.apply ~hash ~src ~prev kind payload)
              | _ -> None)
            corrupters)
  in
  let scramble =
    match scramblers with
    | [] -> None
    | _ :: _ ->
      Some
        (fun ~round ~party ~cell ~attempt payload ->
          List.find_map
            (fun f ->
              match f.f_atom with
              | Corrupt_state (p, rate)
                when round >= f.f_lo && round < f.f_hi
                     && (match f.f_side with
                        | None -> true
                        | Some s -> Side.equal (Party_id.side party) s)
                     && Party_id.equal party p
                     && scramble_coin ~seed ~salt:f.f_salt ~round ~party ~cell
                          rate ->
                let hash =
                  scramble_hash ~seed ~salt:f.f_salt ~round ~party ~cell ~attempt
                in
                Some (Mutation.scramble ~hash payload, f.f_label)
              | _ -> None)
            scramblers)
  in
  match corrupt, scramble with
  | None, None -> Engine.fault_model ~label drop
  | Some c, None -> Engine.fault_model ~label ~corrupt:c drop
  | None, Some s -> Engine.fault_model ~label ~scramble:s drop
  | Some c, Some s -> Engine.fault_model ~label ~corrupt:c ~scramble:s drop

(* --- budget attribution -------------------------------------------------- *)

let charged ~k t =
  let side_roster side_opt =
    match side_opt with
    | None -> Party_set.full ~k
    | Some s -> Party_set.of_list (Party_id.side_members s ~k)
  in
  let one side_opt p =
    (* A party-specific sender atom filtered to the other side never
       fires; don't charge it. *)
    match side_opt with
    | Some s when not (Side.equal (Party_id.side p) s) -> Party_set.empty
    | _ -> Party_set.singleton p
  in
  List.fold_left
    (fun acc f ->
      let c =
        match f.f_atom with
        | Bernoulli _ | Blackout -> side_roster f.f_side
        | Crash p | Send_omission (p, _) | Corrupt (p, _, _)
        | Corrupt_state (p, _) ->
          one f.f_side p
        | Receive_omission (p, _) -> Party_set.singleton p
        | Partition (a, b) ->
          if Party_set.cardinal b < Party_set.cardinal a then b else a
        | Sabotage _ ->
          (* Deliberately uncharged: sabotage silences a party {e without}
             paying for it, which is exactly how the harness injects a
             guaranteed oracle violation to exercise the shrinker. *)
          Party_set.empty
      in
      Party_set.union acc c)
    Party_set.empty (flatten t)

(* --- wire codec ---------------------------------------------------------- *)

let party_set_codec =
  Wire.map ~inject:Party_set.of_list ~project:Party_set.elements
    (Wire.list Wire.party_id)

(* Decoder-side rate validation raises [Malformed], not
   [Invalid_argument]: rejecting forged bytes is the wire contract, not a
   caller bug. *)
let decode_rate r =
  if not (r >= 0. && r <= 1.) then
    raise (Wire.Malformed (Printf.sprintf "rate %g not in [0, 1]" r));
  r

let atom_codec =
  let open Wire in
  variant ~name:"Schedule.atom"
    [
      pack
        (case 0 float
           ~inject:(fun r -> Bernoulli (decode_rate r))
           ~match_:(function
             | Bernoulli r -> Some r
             | _ -> None));
      pack
        (case 1 party_id
           ~inject:(fun p -> Crash p)
           ~match_:(function
             | Crash p -> Some p
             | _ -> None));
      pack
        (case 2 (pair party_id float)
           ~inject:(fun (p, r) -> Send_omission (p, decode_rate r))
           ~match_:(function
             | Send_omission (p, r) -> Some (p, r)
             | _ -> None));
      pack
        (case 3 (pair party_id float)
           ~inject:(fun (p, r) -> Receive_omission (p, decode_rate r))
           ~match_:(function
             | Receive_omission (p, r) -> Some (p, r)
             | _ -> None));
      pack
        (case 4
           (pair party_set_codec party_set_codec)
           ~inject:(fun (a, b) -> Partition (a, b))
           ~match_:(function
             | Partition (a, b) -> Some (a, b)
             | _ -> None));
      pack
        (case 5 unit
           ~inject:(fun () -> Blackout)
           ~match_:(function
             | Blackout -> Some ()
             | _ -> None));
      pack
        (case 6
           (triple party_id Mutation.codec float)
           ~inject:(fun (p, kind, r) -> Corrupt (p, kind, decode_rate r))
           ~match_:(function
             | Corrupt (p, kind, r) -> Some (p, kind, r)
             | _ -> None));
      pack
        (case 7 party_id
           ~inject:(fun p -> Sabotage p)
           ~match_:(function
             | Sabotage p -> Some p
             | _ -> None));
      pack
        (case 8 (pair party_id float)
           ~inject:(fun (p, r) -> Corrupt_state (p, decode_rate r))
           ~match_:(function
             | Corrupt_state (p, r) -> Some (p, r)
             | _ -> None));
    ]

(* [hi = max_int] (unbounded) is the common case; bias the encoding so it
   costs one byte rather than a nine-byte varint. *)
let bound_codec =
  Wire.map
    ~inject:(fun n -> if n = 0 then max_int else n - 1)
    ~project:(fun n -> if n = max_int then 0 else n + 1)
    Wire.uint

let max_codec_depth = 1000

let codec : t Wire.t =
  let rec write depth e t =
    if depth > max_codec_depth then
      raise (Wire.Malformed "schedule deeper than 1000 levels");
    match t with
    | Never -> Wire.Enc.tag e 0
    | Atom { atom; lo; hi } ->
      Wire.Enc.tag e 1;
      atom_codec.Wire.write e atom;
      Wire.Enc.uint e lo;
      bound_codec.Wire.write e hi
    | Union (a, b) ->
      Wire.Enc.tag e 2;
      write (depth + 1) e a;
      write (depth + 1) e b
    | During (lo, hi, s) ->
      Wire.Enc.tag e 3;
      Wire.Enc.uint e lo;
      bound_codec.Wire.write e hi;
      write (depth + 1) e s
    | Restrict (side, s) ->
      Wire.Enc.tag e 4;
      Wire.side.Wire.write e side;
      write (depth + 1) e s
  in
  let rec read depth d =
    if depth > max_codec_depth then
      raise (Wire.Malformed "schedule deeper than 1000 levels");
    match Wire.Dec.tag d with
    | 0 -> Never
    | 1 ->
      let atom = atom_codec.Wire.read d in
      let lo = Wire.Dec.uint d in
      let hi = bound_codec.Wire.read d in
      if lo < 0 || hi < lo then
        raise (Wire.Malformed (Printf.sprintf "bad schedule window [%d, %d)" lo hi));
      Atom { atom; lo; hi }
    | 2 ->
      let a = read (depth + 1) d in
      let b = read (depth + 1) d in
      Union (a, b)
    | 3 ->
      let lo = Wire.Dec.uint d in
      let hi = bound_codec.Wire.read d in
      if lo < 0 || hi < lo then
        raise (Wire.Malformed (Printf.sprintf "bad schedule window [%d, %d)" lo hi));
      let s = read (depth + 1) d in
      During (lo, hi, s)
    | 4 ->
      let side = Wire.side.Wire.read d in
      Restrict (side, read (depth + 1) d)
    | n -> raise (Wire.Malformed (Printf.sprintf "Schedule.t: unknown tag %d" n))
  in
  { Wire.write = write 0; read = read 0 }

(* --- shrinker support ----------------------------------------------------- *)

(* Rebuild one flattened component as a standalone schedule: the atom with
   its {e effective} window baked in, re-wrapped in its sender-side
   restriction. Note that component salts are positional, so a subset of
   components re-rolls the probabilistic coins — sound for shrinking
   because every candidate is re-judged by the oracle, it only means a
   removal can fail for coin reasons and be kept. *)
let of_flat f =
  let t = Atom { atom = f.f_atom; lo = f.f_lo; hi = f.f_hi } in
  match f.f_side with
  | None -> t
  | Some s -> Restrict (s, t)

let components t = List.map of_flat (flatten t)

let window t =
  match flatten t with
  | [] -> None
  | flats ->
    Some
      (List.fold_left
         (fun (lo, hi) f -> min lo f.f_lo, max hi f.f_hi)
         (max_int, 0) flats)

let reframe ~from_round ~until_round t =
  check_window "reframe" from_round until_round;
  all
    (List.filter_map
       (fun f ->
         let lo = max f.f_lo from_round and hi = min f.f_hi until_round in
         if lo >= hi then None else Some (of_flat { f with f_lo = lo; f_hi = hi }))
       (flatten t))

let refinements t =
  let flats = flatten t in
  let shrink_set s = List.map (fun p -> Party_set.remove p s) (Party_set.elements s) in
  List.concat
    (List.mapi
       (fun i f ->
         match f.f_atom with
         | Partition (a, b) when Party_set.cardinal a + Party_set.cardinal b > 2 ->
           let variants =
             List.filter_map
               (fun (a', b') ->
                 if Party_set.is_empty a' || Party_set.is_empty b' then None
                 else Some (Partition (a', b')))
               (List.map (fun a' -> a', b) (shrink_set a)
               @ List.map (fun b' -> a, b') (shrink_set b))
           in
           List.map
             (fun atom ->
               all
                 (List.mapi
                    (fun j g -> of_flat (if i = j then { f with f_atom = atom } else g))
                    flats))
             variants
         | _ -> [])
       flats)
