open Bsm_prelude
module Engine = Bsm_runtime.Engine

type atom =
  | Bernoulli of float
  | Crash of Party_id.t  (** window start is the crash round *)
  | Send_omission of Party_id.t * float
  | Receive_omission of Party_id.t * float
  | Partition of Party_set.t * Party_set.t
  | Blackout

type t =
  | Never
  | Atom of {
      atom : atom;
      lo : int;
      hi : int;  (** exclusive; [max_int] = unbounded *)
    }
  | Union of t * t
  | During of int * int * t
  | Restrict of Side.t * t

let check_rate what rate =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg (Printf.sprintf "Schedule.%s: rate %g not in [0, 1]" what rate)

let check_window what from_round until_round =
  if from_round < 0 || until_round < from_round then
    invalid_arg
      (Printf.sprintf "Schedule.%s: bad round window [%d, %d)" what from_round
         until_round)

let never = Never
let unbounded atom = Atom { atom; lo = 0; hi = max_int }

let bernoulli ~rate =
  check_rate "bernoulli" rate;
  if rate = 0. then Never else unbounded (Bernoulli rate)

let crash p ~at_round =
  if at_round < 0 then invalid_arg "Schedule.crash: negative round";
  Atom { atom = Crash p; lo = at_round; hi = max_int }

let send_omission ~rate p =
  check_rate "send_omission" rate;
  if rate = 0. then Never else unbounded (Send_omission (p, rate))

let receive_omission ~rate p =
  check_rate "receive_omission" rate;
  if rate = 0. then Never else unbounded (Receive_omission (p, rate))

let partition ~from_round ~until_round a b =
  check_window "partition" from_round until_round;
  let a = Party_set.of_list a and b = Party_set.of_list b in
  if Party_set.is_empty a || Party_set.is_empty b then Never
  else Atom { atom = Partition (a, b); lo = from_round; hi = until_round }

let blackout ~from_round ~until_round =
  check_window "blackout" from_round until_round;
  Atom { atom = Blackout; lo = from_round; hi = until_round }

let union a b =
  match a, b with
  | Never, s | s, Never -> s
  | a, b -> Union (a, b)

let all ts = List.fold_left union Never ts

let during ~from_round ~until_round s =
  check_window "during" from_round until_round;
  match s with
  | Never -> Never
  | s -> During (from_round, until_round, s)

let restrict_to_side side s =
  match s with
  | Never -> Never
  | s -> Restrict (side, s)

(* --- rendering ----------------------------------------------------------- *)

let pct rate = Printf.sprintf "%g%%" (100. *. rate)

let set_to_string s =
  "{" ^ String.concat "," (List.map Party_id.to_string (Party_set.elements s)) ^ "}"

let window_to_string lo hi =
  if lo = 0 && hi = max_int then ""
  else if hi = max_int then Printf.sprintf ",r%d.." lo
  else Printf.sprintf ",r%d..%d" lo (hi - 1)

let atom_label atom lo hi =
  match atom with
  | Bernoulli rate -> Printf.sprintf "drop(%s%s)" (pct rate) (window_to_string lo hi)
  | Crash p -> Printf.sprintf "crash(%s@%d)" (Party_id.to_string p) lo
  | Send_omission (p, rate) ->
    Printf.sprintf "send-omit(%s,%s%s)" (Party_id.to_string p) (pct rate)
      (window_to_string lo hi)
  | Receive_omission (p, rate) ->
    Printf.sprintf "recv-omit(%s,%s%s)" (Party_id.to_string p) (pct rate)
      (window_to_string lo hi)
  | Partition (a, b) ->
    Printf.sprintf "partition(%s|%s%s)" (set_to_string a) (set_to_string b)
      (window_to_string lo hi)
  | Blackout -> (
    match window_to_string lo hi with
    | "" -> "blackout(all)"
    | w -> Printf.sprintf "blackout(%s)" (String.sub w 1 (String.length w - 1)))

(* --- compilation --------------------------------------------------------- *)

(* A schedule flattens to atoms with their effective window, sender-side
   restriction, and a salt (pre-order position) that decorrelates the
   probabilistic components. *)
type flat = {
  f_label : string;
  f_salt : int;
  f_lo : int;
  f_hi : int;
  f_side : Side.t option;
  f_atom : atom;
}

let flatten t =
  let next_salt = ref 0 in
  let rec go lo hi side acc = function
    | Never -> acc
    | Atom { atom; lo = alo; hi = ahi } ->
      let salt = !next_salt in
      incr next_salt;
      let lo = max lo alo and hi = min hi ahi in
      if lo >= hi then acc
      else
        { f_label = atom_label atom lo hi; f_salt = salt; f_lo = lo; f_hi = hi;
          f_side = side; f_atom = atom }
        :: acc
    | Union (a, b) -> go lo hi side (go lo hi side acc a) b
    | During (dlo, dhi, s) -> go (max lo dlo) (min hi dhi) side acc s
    | Restrict (s', s) ->
      let side =
        match side with
        | None -> Some s'
        | Some existing -> if Side.equal existing s' then side else
            (* contradictory restrictions: nothing can match *)
            None
      in
      (match side, s with
      | None, _ -> acc (* contradictory; prune the subtree *)
      | Some _, s -> go lo hi side acc s)
  in
  List.rev (go 0 max_int None [] t)

let is_empty t = flatten t = []

let describe t =
  match flatten t with
  | [] -> "none"
  | flats ->
    String.concat " + "
      (List.map
         (fun f ->
           match f.f_side with
           | None -> f.f_label
           | Some s -> Printf.sprintf "%s-sends:%s" (Side.to_string s) f.f_label)
         flats)

let pp ppf t = Format.pp_print_string ppf (describe t)

let party_key p =
  (2 * Party_id.index p)
  + (match Party_id.side p with Side.Left -> 0 | Side.Right -> 1)

(* The stateless coin: uniform in [0,1) from (seed, salt, round, src, dst). *)
let chance ~seed ~salt ~round ~src ~dst rate =
  let h = Rng.mix64 (Int64.of_int seed) in
  let h = Rng.mix64_absorb h salt in
  let h = Rng.mix64_absorb h round in
  let h = Rng.mix64_absorb h (party_key src) in
  let h = Rng.mix64_absorb h (party_key dst) in
  Rng.uniform_of_hash h < rate

let hits ~seed f ~round ~src ~dst =
  round >= f.f_lo
  && round < f.f_hi
  && (match f.f_side with
     | None -> true
     | Some s -> Side.equal (Party_id.side src) s)
  &&
  match f.f_atom with
  | Bernoulli rate -> chance ~seed ~salt:f.f_salt ~round ~src ~dst rate
  | Crash p -> Party_id.equal src p
  | Send_omission (p, rate) ->
    Party_id.equal src p && chance ~seed ~salt:f.f_salt ~round ~src ~dst rate
  | Receive_omission (p, rate) ->
    Party_id.equal dst p && chance ~seed ~salt:f.f_salt ~round ~src ~dst rate
  | Partition (a, b) ->
    (Party_set.mem src a && Party_set.mem dst b)
    || (Party_set.mem src b && Party_set.mem dst a)
  | Blackout -> true

let compile ~seed t =
  let flats = flatten t in
  let drop ~round ~src ~dst =
    List.exists (fun f -> hits ~seed f ~round ~src ~dst) flats
  in
  let label ~round ~src ~dst =
    List.find_map
      (fun f -> if hits ~seed f ~round ~src ~dst then Some f.f_label else None)
      flats
  in
  Engine.fault_model ~label drop

(* --- budget attribution -------------------------------------------------- *)

let charged ~k t =
  let side_roster side_opt =
    match side_opt with
    | None -> Party_set.full ~k
    | Some s -> Party_set.of_list (Party_id.side_members s ~k)
  in
  let one side_opt p =
    (* A party-specific sender atom filtered to the other side never
       fires; don't charge it. *)
    match side_opt with
    | Some s when not (Side.equal (Party_id.side p) s) -> Party_set.empty
    | _ -> Party_set.singleton p
  in
  List.fold_left
    (fun acc f ->
      let c =
        match f.f_atom with
        | Bernoulli _ | Blackout -> side_roster f.f_side
        | Crash p | Send_omission (p, _) -> one f.f_side p
        | Receive_omission (p, _) -> Party_set.singleton p
        | Partition (a, b) ->
          if Party_set.cardinal b < Party_set.cardinal a then b else a
      in
      Party_set.union acc c)
    Party_set.empty (flatten t)
