(** Deterministic in-flight frame mutations.

    These are the {e active} byzantine behaviours of the wire-chaos layer:
    where an omission schedule decides whether a frame is delivered, a
    mutation decides what bytes arrive. Every mutation is a pure function
    of a 64-bit hash (derived upstream from
    [(seed, component, round, src, dst)]) plus the frame itself, so
    corrupted runs stay bit-replayable and domain-safe exactly like
    omission-only ones — and because the hash absorbs the {e recipient},
    one broadcast mutated under the same component yields different bytes
    per destination: equivocation falls out of the hashing discipline
    rather than needing shared state. *)

open Bsm_prelude

type kind =
  | Bit_flip  (** flip one hash-chosen bit *)
  | Truncate  (** cut the frame strictly shorter at a hash-chosen point *)
  | Replay
      (** replace the frame with the last one delivered on this link in an
          earlier round (inapplicable until one exists) *)
  | Equivocate
      (** rewrite a few hash-chosen bytes — recipients of the same
          broadcast see divergent frames *)
  | Forge_sender
      (** splice the wire encoding of a different party id over a
          hash-chosen offset, the classic identity-forgery corruption *)

(** All kinds, in declaration order (the mutation grid iterates this). *)
val all_kinds : kind list

(** Short stable name: ["bit-flip"], ["truncate"], ["replay"],
    ["equivocate"], ["forge-sender"]. Used in component labels and
    BENCH_chaos.json. *)
val to_string : kind -> string

val equal_kind : kind -> kind -> bool
val codec : kind Bsm_wire.Wire.t

(** [apply ~hash ~src ~prev kind payload] is the mutated frame, or [None]
    when the mutation does not apply ({!Replay} without a previous frame,
    {!Bit_flip}/{!Truncate}/{!Equivocate} of an empty frame, or a mutation
    that happens to leave the bytes unchanged — a no-op must not be
    counted as a corruption). Pure in all arguments. *)
val apply :
  hash:int64 -> src:Party_id.t -> prev:string option -> kind -> string -> string option

(** [scramble ~hash payload] is a candidate replacement for a registered
    state cell's canonical encoding (see {!Bsm_runtime.Engine.state_cell}):
    a hash-chosen bit flip, truncation, or byte rewrite — or synthesized
    bytes when the encoding is empty. Unlike {!apply} it never declines;
    the engine's attempt-retry loop (which varies [hash]) keeps drawing
    until a candidate decodes, making the composite a deterministic draw
    from the space of well-formed states — the Byzantine Brides
    arbitrary-local-state adversary. Pure in all arguments. *)
val scramble : hash:int64 -> string -> string
