(** Replayable chaos repros.

    A repro is everything needed to re-execute one oracle run
    bit-identically — the sweep case (setting, seeds, adversary choice),
    the fault schedule, the chaos seed and round cap — plus the verdict
    and a fingerprint of the report it produced when it was written.
    Because every layer underneath is deterministic in exactly those
    inputs, [check] re-runs the oracle and compares fingerprints: a match
    is a bit-identical reproduction, byte for byte of the judged outcome.

    The file format is two lines: a [bsm-repro 1] header and the
    lowercase hex of the {!Wire}-serialized record, so repros survive
    copy-paste through issue trackers and chat. *)

module Sweep := Bsm_harness.Sweep
module Wire := Bsm_wire.Wire

type t = {
  case : Sweep.case;
  schedule : Schedule.t;
  seed : int;  (** chaos seed the schedule was compiled with *)
  max_rounds : int option;
  expected : Oracle.verdict;
  fingerprint : string;  (** {!fingerprint_of_report} of the original run *)
}

(** Deterministic digest of everything the oracle judged: verdict, budget
    flag, charged/corrupted sets, rendered violations, per-fate message
    counts (including per-label omission/corruption counts), scrambled
    state-cell counts and the recovery verdict. Two runs with equal
    fingerprints made identical decisions. *)
val fingerprint_of_report : Oracle.report -> string

(** [make ?max_rounds ~case ~schedule ~seed report] packs a repro for a
    run that produced [report]. [Error] for a [Scripted] adversary —
    closures don't serialize; script the fault through the schedule
    instead. *)
val make :
  ?max_rounds:int ->
  case:Sweep.case ->
  schedule:Schedule.t ->
  seed:int ->
  Oracle.report ->
  (t, string) result

val codec : t Wire.t

(** [to_file path t] / [of_file path] — the two-line format above.
    [of_file] reports malformed headers, hex and payloads as [Error]. *)
val to_file : string -> t -> unit

val of_file : string -> (t, string) result

(** Re-execute the repro's oracle run. *)
val run : t -> Oracle.report

(** [check t] re-executes and compares fingerprints: [Ok report] on a
    bit-identical reproduction, [Error] describing the mismatch
    otherwise. *)
val check : t -> (Oracle.report, string) result

(** [gate result] — the process exit code [bsm replay] owes CI for a
    {!check} result: [0] only for a bit-identical reproduction whose
    verdict is not {!Oracle.Violation}; [1] for a divergence {e or} a
    faithfully reproduced Violation (a repro that still demonstrates the
    bug must fail the pipeline). *)
val gate : (Oracle.report, string) result -> int
