(** Composable, deterministic fault schedules.

    A schedule is a declarative description of which messages the network
    omits: the corruption classes of Theorems 8–9 (send-omission,
    receive-omission), crashes, random per-link drops, partitions and
    blackouts, closed under {!union}, {!during} and {!restrict_to_side}.

    {b Seed/replay contract.} A schedule carries no state. {!compile}
    turns it into an {!Bsm_runtime.Engine.fault_model} whose every
    decision is a pure function of [(seed, component, round, src, dst)]
    via a stateless splitmix64 hash ({!Bsm_prelude.Rng.mix64}) — no
    mutable RNG anywhere. Consequently a compiled schedule is domain-safe
    under {!Bsm_runtime.Pool} (parallel chaos sweeps are bit-identical to
    sequential ones) and any run is replayable from [(schedule, seed)]
    alone. Each probabilistic component mixes its own salt (its pre-order
    position in the schedule term), so two components with the same rate
    make independent decisions.

    Round windows are half-open: [from_round] inclusive, [until_round]
    exclusive. Rounds are engine rounds, starting at 0 (a message sent in
    round [r] is consulted with [~round:r]). *)

open Bsm_prelude
module Engine := Bsm_runtime.Engine

type t

(** The empty schedule: drops nothing. *)
val never : t

(** [bernoulli ~rate] drops each message on each existing link
    independently with probability [rate]. Raises [Invalid_argument]
    unless [0 <= rate <= 1]. *)
val bernoulli : rate:float -> t

(** [crash p ~at_round] — from round [at_round] on, every message [p]
    sends is omitted (the party keeps running; the network just stops
    carrying its traffic — a crash as the rest of the system sees it). *)
val crash : Party_id.t -> at_round:int -> t

(** [send_omission ~rate p] — each message {e sent by} [p] is omitted
    with probability [rate] (the send-omission corruption class of
    Theorem 8). *)
val send_omission : rate:float -> Party_id.t -> t

(** [receive_omission ~rate p] — each message {e addressed to} [p] is
    omitted with probability [rate] (the receive-omission corruption
    class of Theorem 9). *)
val receive_omission : rate:float -> Party_id.t -> t

(** [partition ~from_round ~until_round a b] cuts every link between the
    party sets [a] and [b] (both directions) during the window. Parties
    appearing in both sets are effectively isolated from both. *)
val partition :
  from_round:int -> until_round:int -> Party_id.t list -> Party_id.t list -> t

(** [blackout ~from_round ~until_round] — a burst outage: every message
    on every link in the window is omitted. *)
val blackout : from_round:int -> until_round:int -> t

(** [corrupt ~rate ~kind p] — each frame {e sent by} [p] is, with
    probability [rate], delivered with its bytes rewritten by the
    {!Mutation.kind} mutation instead of dropped: the {e active}
    byzantine corruption classes (mutated, equivocated, replayed and
    forged frames). Which frames fire and what bytes they become are both
    pure functions of [(seed, component, round, src, dst)], so mutated
    runs replay bit-identically. A corrupting component charges the
    corrupted sender in {!charged} exactly like send-omission does — a
    party whose traffic is being rewritten is corrupt in the paper's
    budget sense. *)
val corrupt : rate:float -> kind:Mutation.kind -> Party_id.t -> t

(** [corrupt_state ~rate p ~at_round] — entering round [at_round], each
    state cell party [p] has registered
    ({!Bsm_runtime.Engine.env.register_state}) is independently replaced,
    with probability [rate], by arbitrary well-formed bytes
    ({!Mutation.scramble} retried until the candidate decodes): the
    self-stabilization adversary of the Byzantine Brides problem, aimed
    at one party and one round so rounds-to-recovery is well defined.
    Which cells fire and what state they wake up with are pure functions
    of [(seed, component, round, party, cell)], so scrambled runs replay
    bit-identically; the window is exactly [[at_round, at_round + 1)] and
    composes with {!during} / {!restrict_to_side} like any atom. The
    scrambled party is charged like send-omission. Note state exists only
    after the party registers it (during round 0), so [at_round = 0]
    never fires; use [at_round >= 1]. *)
val corrupt_state : rate:float -> Party_id.t -> at_round:int -> t

(** [sabotage p ~at_round] — like {!crash}, but deliberately {e not}
    charged in {!charged}. This exists for the harness: silencing an
    honest party without paying the budget makes the oracle report a
    violation by construction, which is how `bsm chaos
    --inject-violation` seeds the shrinker with a guaranteed repro. It is
    not a fault the paper's adversary can afford for free — don't use it
    to model one. *)
val sabotage : Party_id.t -> at_round:int -> t

(** [union a b] drops a message iff [a] or [b] drops it. *)
val union : t -> t -> t

(** [all ts] is the n-ary {!union}. *)
val all : t list -> t

(** [during ~from_round ~until_round s] restricts [s] to the window
    (intersected with any window [s] already carries). *)
val during : from_round:int -> until_round:int -> t -> t

(** [restrict_to_side side s] keeps only the drops of [s] whose {e
    sender} is on [side]. *)
val restrict_to_side : Side.t -> t -> t

(** [is_empty s] — can [s] never drop anything (empty windows and
    zero rates prune away)? *)
val is_empty : t -> bool

(** One-line rendering of the schedule ("crash(R0@1) + drop(15%)");
    used as default labels in reports and BENCH_chaos.json. *)
val describe : t -> string

val pp : Format.formatter -> t -> unit

(** [compile ~seed s] — the pure fault model described above. Its
    [drop_label] attributes each omission to the component that fired
    (first match in pre-order), so engine traces and
    [messages_dropped_by_label] name the schedule component responsible
    for every omitted message. Schedules containing {!corrupt} components
    also carry the engine's corrupt-in-flight hook (first applicable
    component in pre-order wins per frame), and schedules containing
    {!corrupt_state} components carry the engine's between-rounds
    [scramble] hook (same first-match discipline per cell); schedules
    without either leave the corresponding engine machinery disabled. *)
val compile : seed:int -> t -> Engine.fault_model

(** [charged ~k s] — the parties whose omission-corruption accounts for
    every drop [s] can produce: crashed / send-omission parties,
    receive-omission parties, and the smaller block of each partition.
    Unattributable components (positive-rate {!bernoulli}, {!blackout})
    charge the whole roster — any corruption budget is blown, which is
    exactly how the oracle classifies them. The oracle compares
    [charged ∪ byzantine] against the setting's [(t_L, t_R)] budgets:
    within budget, omission-faulty parties are a special case of
    byzantine ones, so the honest-party guarantees of Theorems 8–9 must
    survive. {!corrupt} and {!corrupt_state} components charge the
    corrupted party; {!sabotage} components deliberately charge nobody
    (see {!sabotage}). *)
val charged : k:int -> t -> Party_set.t

(** {2 Serialization}

    Schedules serialize with {!Bsm_wire.Wire} so a chaos violation can be
    written to a repro file and re-executed bit-identically ({!Repro}).
    The codec is canonical over the schedule {e term}; decoding validates
    rates, windows and tags ([Wire.Malformed] otherwise) and refuses
    terms nested deeper than 1000 levels. *)

val codec : t Bsm_wire.Wire.t

(** {2 Shrinker support}

    The views {!Shrink} needs: a schedule as its list of flattened
    components, each rebuilt as a standalone schedule with its effective
    window and sender-side restriction baked in. Component salts are
    positional, so a subset of components re-rolls probabilistic coins —
    the shrinker re-judges every candidate with the oracle, so this
    affects only how far a schedule shrinks, never soundness. *)

(** The flattened components, in salt order. [all (components s)] is
    semantically [s] (same drops/corruptions, modulo the salt caveat
    above). *)
val components : t -> t list

(** Smallest round window covering every component: [Some (lo, hi)] with
    [hi] exclusive ([max_int] = unbounded), or [None] for an empty
    schedule. *)
val window : t -> (int * int) option

(** [reframe ~from_round ~until_round s] clamps every component's window
    to the given one; components whose windows become empty are pruned
    away. *)
val reframe : from_round:int -> until_round:int -> t -> t

(** Link-narrowing candidates: every variant of [s] obtained by removing
    one party from one block of one partition component (blocks never
    shrink to empty). [[]] when no component is a partition with more
    than two parties involved. *)
val refinements : t -> t list
