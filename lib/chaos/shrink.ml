module Sweep = Bsm_harness.Sweep

type outcome = {
  original : Schedule.t;
  shrunk : Schedule.t;
  report : Oracle.report;
  attempts : int;
  trail : string list;
}

(* All state of one search: the current best (still-violating) schedule
   and its report, plus bookkeeping. *)
type search = {
  mutable best : Schedule.t;
  mutable best_report : Oracle.report;
  mutable n_attempts : int;
  mutable steps : string list;
  judge : Schedule.t -> Oracle.report;
}

let violates (r : Oracle.report) = r.Oracle.verdict = Oracle.Violation

(* Try [candidate]; adopt it as the new best iff it still violates. *)
let try_shrink s ~note candidate =
  s.n_attempts <- s.n_attempts + 1;
  let r = s.judge candidate in
  if violates r then begin
    s.best <- candidate;
    s.best_report <- r;
    s.steps <- note candidate :: s.steps;
    true
  end
  else false

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Phase 1: drop components one at a time until no removal survives. *)
let shrink_components s =
  let progress = ref true in
  while !progress do
    progress := false;
    let comps = Schedule.components s.best in
    let n = List.length comps in
    if n > 1 then begin
      let i = ref 0 in
      while (not !progress) && !i < n do
        let candidate = Schedule.all (drop_nth comps !i) in
        if
          try_shrink s candidate ~note:(fun c ->
              Printf.sprintf "dropped component %d/%d -> %s" (!i + 1) n
                (Schedule.describe c))
        then progress := true
        else incr i
      done
    end
  done

(* Phase 2: clamp the window to the rounds actually executed, then
   binary-search both edges. The oracle re-judges every candidate, so the
   monotonicity the binary search assumes is only a heuristic — a
   non-monotone schedule just shrinks less. *)
let shrink_window s =
  match Schedule.window s.best with
  | None -> ()
  | Some (lo0, hi0) ->
    let used = s.best_report.Oracle.metrics.Bsm_runtime.Engine.rounds_used in
    let hi0 =
      if hi0 > used + 1 then begin
        let clamped = Schedule.reframe ~from_round:lo0 ~until_round:(used + 1) s.best in
        if
          try_shrink s clamped ~note:(fun _ ->
              Printf.sprintf "clamped window to executed rounds [r%d, r%d)" lo0
                (used + 1))
        then used + 1
        else hi0
      end
      else hi0
    in
    (* Largest lo that still violates. Bound by the executed rounds even
       when the clamp above was not adopted, so an unbounded window never
       costs ~60 futile probes. *)
    let lo = ref lo0 and lo_hi = ref (min (hi0 - 1) (used + 1)) in
    while !lo < !lo_hi do
      let mid = (!lo + !lo_hi + 1) / 2 in
      if
        try_shrink s
          (Schedule.reframe ~from_round:mid ~until_round:hi0 s.best)
          ~note:(fun _ -> Printf.sprintf "raised window start to r%d" mid)
      then lo := mid
      else lo_hi := mid - 1
    done;
    (* Smallest hi that still violates. *)
    if hi0 < max_int then begin
      let hi = ref hi0 and hi_lo = ref (!lo + 1) in
      while !hi_lo < !hi do
        let mid = (!hi_lo + !hi) / 2 in
        if
          try_shrink s
            (Schedule.reframe ~from_round:!lo ~until_round:mid s.best)
            ~note:(fun _ -> Printf.sprintf "lowered window end to r%d" mid)
        then hi := mid
        else hi_lo := mid + 1
      done
    end

(* Phase 3: narrow partition blocks party by party. *)
let shrink_links s =
  let progress = ref true in
  while !progress do
    progress := false;
    let rec try_all = function
      | [] -> ()
      | candidate :: rest ->
        if
          try_shrink s candidate ~note:(fun c ->
              Printf.sprintf "narrowed partition -> %s" (Schedule.describe c))
        then progress := true
        else try_all rest
    in
    try_all (Schedule.refinements s.best)
  done

let minimize ?max_rounds ~seed ~schedule case =
  let judge candidate = Oracle.run ?max_rounds ~seed ~schedule:candidate case in
  let report = judge schedule in
  if not (violates report) then
    Error
      (Printf.sprintf "schedule does not violate (verdict: %s)"
         (Oracle.verdict_to_string report.Oracle.verdict))
  else begin
    let s =
      { best = schedule; best_report = report; n_attempts = 1; steps = []; judge }
    in
    shrink_components s;
    shrink_window s;
    shrink_components s;
    (* window clamping can make more components droppable *)
    shrink_links s;
    Result.Ok
      {
        original = schedule;
        shrunk = s.best;
        report = s.best_report;
        attempts = s.n_attempts;
        trail = List.rev s.steps;
      }
  end
