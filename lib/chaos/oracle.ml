open Bsm_prelude
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module H = Bsm_harness

type verdict =
  | Ok
  | Expected_degradation
  | Violation

let verdict_to_string = function
  | Ok -> "ok"
  | Expected_degradation -> "expected-degradation"
  | Violation -> "VIOLATION"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)

type recovery =
  | Recovered of int
  | Stuck
  | Violated

let recovery_to_string = function
  | Recovered n -> Printf.sprintf "recovered:%d" n
  | Stuck -> "stuck"
  | Violated -> "violated"

let pp_recovery ppf r = Format.pp_print_string ppf (recovery_to_string r)

let recovery_codec =
  let open Bsm_wire.Wire in
  variant ~name:"recovery"
    [
      pack
        (case 0 uint
           ~inject:(fun n -> Recovered n)
           ~match_:(function Recovered n -> Some n | _ -> None));
      pack
        (case 1 unit
           ~inject:(fun () -> Stuck)
           ~match_:(function Stuck -> Some () | _ -> None));
      pack
        (case 2 unit
           ~inject:(fun () -> Violated)
           ~match_:(function Violated -> Some () | _ -> None));
    ]

type report = {
  verdict : verdict;
  within_budget : bool;
  charged : Party_set.t;
  corrupted : Party_set.t;
  violations : Core.Problem.violation list;
  metrics : Engine.metrics;
  recovery : recovery option;
}

(* Rounds-to-recovery: meaningful only when the schedule actually
   scrambled state ([first_scramble_round]). A party honest under
   [corrupted] that never finished is proven stuck (the engine ran it out
   of rounds); broken honest-party properties make recovery moot; else
   convergence took until the last honest party terminated, measured from
   the first scramble (clamped at 0 — parties already done before the
   scramble landed recovered instantly). *)
let recovery_of ~corrupted ~violations ~(metrics : Engine.metrics)
    (parties : Engine.party_result list) =
  match metrics.Engine.first_scramble_round with
  | None -> None
  | Some scrambled_at ->
    let honest =
      List.filter
        (fun (r : Engine.party_result) -> not (Party_set.mem r.Engine.id corrupted))
        parties
    in
    (* Stuck before Violated: a never-terminating honest party also shows
       up as a termination violation, but "never converged" is the more
       precise self-stabilization reading than "converged wrong". *)
    if
      List.exists
        (fun (r : Engine.party_result) -> r.Engine.finished_round = None)
        honest
    then Some Stuck
    else if violations <> [] then Some Violated
    else
      let last_finish =
        List.fold_left
          (fun acc (r : Engine.party_result) ->
            match r.Engine.finished_round with
            | Some n -> max acc n
            | None -> acc)
          0 honest
      in
      Some (Recovered (max 0 (last_finish - scrambled_at)))

let run ?max_rounds ~seed ~schedule (case : H.Sweep.case) =
  let setting = case.H.Sweep.setting in
  let scenario = H.Sweep.scenario_of_case case in
  let faults = Schedule.compile ~seed schedule in
  let sr = H.Scenario.run ?max_rounds ~faults scenario in
  let charged = Schedule.charged ~k:setting.Core.Setting.k schedule in
  let byzantine = sr.H.Scenario.outcome.Core.Problem.byzantine in
  let corrupted = Party_set.union byzantine charged in
  let within_budget =
    Party_set.count_side Side.Left corrupted <= setting.Core.Setting.t_left
    && Party_set.count_side Side.Right corrupted <= setting.Core.Setting.t_right
  in
  (* Re-judge the outcome with the charged parties moved into the corrupt
     set: the properties are promised to parties that are neither
     byzantine nor omission-faulty. *)
  let outcome =
    let open Core.Problem in
    {
      sr.H.Scenario.outcome with
      byzantine = corrupted;
      decisions =
        List.filter
          (fun (p, _) -> not (Party_set.mem p corrupted))
          sr.H.Scenario.outcome.decisions;
    }
  in
  let violations = Core.Problem.check outcome in
  let verdict =
    if not within_budget then Expected_degradation
    else if violations = [] then Ok
    else Violation
  in
  let metrics = sr.H.Scenario.metrics in
  {
    verdict;
    within_budget;
    charged;
    corrupted;
    violations;
    metrics;
    recovery = recovery_of ~corrupted ~violations ~metrics sr.H.Scenario.parties;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>verdict: %a (%s budget)@,charged: %a@,corrupted: %a@,\
     messages: %d sent, %d delivered, %d topology-dropped, %d omitted, %d \
     corrupted in flight@,"
    pp_verdict r.verdict
    (if r.within_budget then "within" else "over")
    Party_set.pp r.charged Party_set.pp r.corrupted r.metrics.Engine.messages_sent
    r.metrics.Engine.messages_delivered r.metrics.Engine.messages_dropped_topology
    r.metrics.Engine.messages_dropped_fault r.metrics.Engine.messages_corrupted;
  (match r.recovery with
  | None -> ()
  | Some rec_ ->
    Format.fprintf ppf "state cells scrambled: %d (first at round %s); recovery: %a@,"
      r.metrics.Engine.cells_scrambled
      (match r.metrics.Engine.first_scramble_round with
      | Some n -> string_of_int n
      | None -> "-")
      pp_recovery rec_);
  (match r.metrics.Engine.messages_dropped_by_label with
  | [] -> ()
  | by_label ->
    Format.fprintf ppf "omitted/corrupted by component: @[<v>%a@]@,"
      (Format.pp_print_list (fun ppf (l, n) -> Format.fprintf ppf "%s: %d" l n))
      by_label);
  match r.violations with
  | [] -> Format.fprintf ppf "honest-party properties: all hold@]"
  | vs ->
    Format.fprintf ppf "honest-party violations:@,%a@]"
      (Format.pp_print_list Core.Problem.pp_violation)
      vs
