(** The registered-codec corpus for the decoder fuzzer.

    One {!Bsm_wire.Fuzz.entry} per codec that ever touches the network
    (broadcast messages, Π_bSM messages, channel relay frames, signed
    envelopes, stable-matching payloads) plus the wire primitives and the
    chaos subsystem's own serialized forms (schedules, repro records).
    [make fuzz-quick] and [bsm fuzz] iterate exactly this list, so adding
    a codec here is all it takes to put it under fuzz. *)

val entries : unit -> Bsm_wire.Fuzz.entry list
