(** The registered-codec corpus for the decoder fuzzer.

    One {!Bsm_wire.Fuzz.entry} per codec that ever touches the network
    (broadcast messages, Π_bSM messages, channel relay frames, signed
    envelopes, stable-matching payloads) plus the wire primitives and the
    chaos subsystem's own serialized forms (schedules, repro records).
    [make fuzz-quick] and [bsm fuzz] iterate exactly this list, so adding
    a codec here is all it takes to put it under fuzz. *)

val entries : unit -> Bsm_wire.Fuzz.entry list

(** [register extra] appends [extra ()]'s entries to every later
    {!entries} result. Layers above chaos (the serve frames) register
    their codecs through this instead of being hard-wired here, which
    would invert the library dependency. Registration order is
    first-come; duplicate registration is the caller's to avoid (see
    [Bsm_serve.Frame.register_codecs], which guards itself). *)
val register : (unit -> Bsm_wire.Fuzz.entry list) -> unit
