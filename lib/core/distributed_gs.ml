open Bsm_prelude
module SM = Bsm_stable_matching
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire
module Topology = Bsm_topology.Topology

type msg =
  | Propose
  | Accept
  | Reject

let msg_codec =
  let open Wire in
  variant ~name:"dgs_msg"
    [
      pack
        (case 0 unit
           ~inject:(fun () -> Propose)
           ~match_:(function
             | Propose -> Some ()
             | Accept | Reject -> None));
      pack
        (case 1 unit
           ~inject:(fun () -> Accept)
           ~match_:(function
             | Accept -> Some ()
             | Propose | Reject -> None));
      pack
        (case 2 unit
           ~inject:(fun () -> Reject)
           ~match_:(function
             | Reject -> Some ()
             | Propose | Accept -> None));
    ]

let left_output_codec = Wire.pair (Wire.option Wire.party_id) Wire.uint

let rounds_bound ~k = 2 * ((k * k) + 1)

let decode_inbox inbox =
  List.filter_map
    (fun (e : Engine.envelope) ->
      match Wire.decode_slice msg_codec e.data with
      | Ok m -> Some (e.src, m)
      | Error _ -> None)
    inbox

(* Proposers act in even rounds, acceptors respond in odd rounds: one
   proposal cycle spans two rounds. *)
let left_program ~input (env : Engine.env) =
  let k = env.k in
  let bound = rounds_bound ~k in
  let engaged = ref None in
  let next_rank = ref 0 in
  let proposals = ref 0 in
  (* Expose the proposer's whole round-local state to the chaos plane: a
     scrambled [next_rank] re-proposes or stops early, a scrambled
     [engaged] forgets (or invents) an engagement — the Byzantine Brides
     arbitrary-initial-state faults, driven deterministically. *)
  env.register_state (Wire.option Wire.party_id) engaged;
  env.register_state Wire.uint next_rank;
  env.register_state Wire.uint proposals;
  let propose_if_free () =
    if !engaged = None && !next_rank < k then begin
      let target = Party_id.right (SM.Prefs.at input !next_rank) in
      incr next_rank;
      incr proposals;
      env.send_w msg_codec target Propose
    end
  in
  propose_if_free ();
  while env.round () < bound do
    let inbox = decode_inbox (env.next_round ()) in
    if env.round () mod 2 = 0 then begin
      List.iter
        (fun (src, m) ->
          match m with
          | Accept -> engaged := Some src
          | Reject -> if !engaged = Some src || !engaged = None then engaged := None
          | Propose -> ())
        inbox;
      propose_if_free ()
    end
  done;
  env.output (Wire.encode left_output_codec (!engaged, !proposals))

let right_program ~input (env : Engine.env) =
  let bound = rounds_bound ~k:env.k in
  let current = ref None in
  env.register_state (Wire.option Wire.party_id) current;
  while env.round () < bound do
    let inbox = decode_inbox (env.next_round ()) in
    if env.round () mod 2 = 1 then begin
      let proposers =
        List.filter_map
          (fun (src, m) ->
            match m with
            | Propose -> Some src
            | Accept | Reject -> None)
          inbox
      in
      match proposers with
      | [] -> ()
      | _ :: _ ->
        let rank p = SM.Prefs.rank input (Party_id.index p) in
        let best =
          List.fold_left
            (fun acc p ->
              match acc with
              | Some b when rank b <= rank p -> acc
              | Some _ | None -> Some p)
            None proposers
        in
        let best = Option.get best in
        let keep_current =
          match !current with
          | Some c -> rank c < rank best
          | None -> false
        in
        let reject p = env.send_w msg_codec p Reject in
        if keep_current then List.iter reject proposers
        else begin
          (match !current with
          | Some c -> reject c (* divorce declaration *)
          | None -> ());
          current := Some best;
          env.send_w msg_codec best Accept;
          List.iter (fun p -> if not (Party_id.equal p best) then reject p) proposers
        end
    end
  done;
  env.output (Wire.encode Problem.decision_codec !current)

let program ~input ~self =
  match Party_id.side self with
  | Side.Left -> left_program ~input
  | Side.Right -> right_program ~input

let run profile =
  let k = SM.Profile.k profile in
  let cfg =
    Engine.config ~k ~max_rounds:(rounds_bound ~k + 2)
      ~link:(Engine.Of_topology Topology.Bipartite) ()
  in
  let res =
    Engine.run cfg ~programs:(fun p ->
        program ~input:(SM.Profile.prefs profile p) ~self:p)
  in
  let proposals = ref 0 in
  let l2r = Array.make k (-1) in
  List.iter
    (fun (r : Engine.party_result) ->
      match r.Engine.status, r.Engine.out with
      | Engine.Terminated, Some payload ->
        if Side.equal (Party_id.side r.Engine.id) Side.Left then begin
          match Wire.decode_exn left_output_codec payload with
          | Some partner, count ->
            l2r.(Party_id.index r.Engine.id) <- Party_id.index partner;
            proposals := !proposals + count
          | None, _ -> failwith "distributed GS: unmatched left party"
        end
      | _ -> failwith "distributed GS: party did not terminate")
    res.Engine.parties;
  let matching = SM.Matching.of_l2r_exn l2r in
  (* Cross-check the right side's view (symmetry of the outcome). *)
  List.iter
    (fun (r : Engine.party_result) ->
      if Side.equal (Party_id.side r.Engine.id) Side.Right then
        match r.Engine.out with
        | Some payload -> (
          match Wire.decode_exn Problem.decision_codec payload with
          | Some partner
            when Party_id.equal
                   (SM.Matching.partner matching r.Engine.id)
                   partner ->
            ()
          | Some _ | None -> failwith "distributed GS: asymmetric outcome")
        | None -> failwith "distributed GS: missing right output")
    res.Engine.parties;
  matching, res.Engine.metrics, !proposals
