(** Virtual channel simulation — Lemmas 6, 8 and 10.

    When a topology leaves two parties [u], [v] of the same side without a
    channel, [u] reaches [v] through the opposite side: [u] sends a relay
    {e request} to every opposite party, which {e forwards} it to [v].
    Acceptance at [v] depends on the setting:

    - {b Majority} (Lemma 6, unauthenticated): [v] accepts a message
      received identically from strictly more than [k/2] distinct
      forwarders — sound while the forwarding side has an honest majority.
    - {b Signed} (Lemmas 8/10, authenticated): requests carry the sender's
      signature over [(src, dst, vround, id, body)]; [v] accepts any
      correctly-signed forward. The virtual-round stamp [vround] is the
      paper's timestamp τ: a forward arriving outside the immediately
      following virtual round is discarded (an {e omission}), and the [id]
      makes replays detectable — exactly Lemma 10's guarantee that the
      simulated network is reliable up to omissions, and omission-free as
      soon as one forwarder is honest.

    One virtual round costs [stride topology] engine rounds (2 when any
    relaying is needed, 1 on a fully-connected network); direct channels
    are slowed down to the same cadence so that all parties stay in
    lockstep — this is why the paper's Lemma 6/8 reductions state a
    uniform [2Δ] delay.

    Forwarders relay without verifying signatures (the receiver verifies);
    a request is only forwarded when it arrives directly from its claimed
    source, which the majority mode needs for soundness. *)

module Engine := Bsm_runtime.Engine
module Net := Bsm_runtime.Net

type auth_mode =
  | Majority
  | Signed of {
      signer : Bsm_crypto.Crypto.Signer.t;
      verifier : Bsm_crypto.Crypto.Verifier.t;
    }

(** Engine rounds per virtual round: 1 on fully-connected, 2 otherwise. *)
val stride : Bsm_topology.Topology.t -> int

(** [virtual_net env ~topology ~auth] — a {!Net.t} giving [env.self] a
    (simulated) channel to every other party. Calling [sync] also serves
    this party's own forwarding duty for the opposite side. *)
val virtual_net :
  Engine.env -> topology:Bsm_topology.Topology.t -> auth:auth_mode -> Net.t

(** [forward_duty env ~topology envelope] — the forwarding role in
    isolation: if [envelope] is a relay request from its true source whose
    destination [env.self] can reach, forward it. Used by parties (the [R]
    side of Π_bSM) that relay without running machines themselves. *)
val forward_duty :
  Engine.env -> topology:Bsm_topology.Topology.t -> Engine.envelope -> unit

(** {2 Wire format}

    The relay frame format, exposed so the decoder fuzzer can exercise
    the exact bytes this module puts on (and accepts from) the network.
    Protocol code never needs these — it talks through {!virtual_net}. *)

type payload = {
  src : Bsm_prelude.Party_id.t;
  dst : Bsm_prelude.Party_id.t;
  vround : int;
  id : int;
  body : string;
  signature : Bsm_crypto.Crypto.Signature.t option;
}

type relay =
  | Direct of string
  | Request of payload
  | Forward of payload

val relay_codec : relay Bsm_wire.Wire.t
