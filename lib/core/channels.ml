open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Net = Bsm_runtime.Net
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire
module Crypto = Bsm_crypto.Crypto

type auth_mode =
  | Majority
  | Signed of {
      signer : Crypto.Signer.t;
      verifier : Crypto.Verifier.t;
    }

let stride = function
  | Topology.Fully_connected -> 1
  | Topology.One_sided | Topology.Bipartite -> 2

(* --- wire format ------------------------------------------------------- *)

type payload = {
  src : Party_id.t;
  dst : Party_id.t;
  vround : int;
  id : int;
  body : string;
  signature : Crypto.Signature.t option;
}

let payload_codec =
  Wire.map
    ~inject:(fun ((src, dst), (vround, id), (body, signature)) ->
      { src; dst; vround; id; body; signature })
    ~project:(fun p -> (p.src, p.dst), (p.vround, p.id), (p.body, p.signature))
    (Wire.triple
       (Wire.pair Wire.party_id Wire.party_id)
       (Wire.pair Wire.uint Wire.uint)
       (Wire.pair Wire.string (Wire.option Crypto.Signature.codec)))

type relay =
  | Direct of string
  | Request of payload
  | Forward of payload

let relay_codec =
  let open Wire in
  variant ~name:"relay"
    [
      pack
        (case 0 string
           ~inject:(fun b -> Direct b)
           ~match_:(function
             | Direct b -> Some b
             | Request _ | Forward _ -> None));
      pack
        (case 1 payload_codec
           ~inject:(fun p -> Request p)
           ~match_:(function
             | Request p -> Some p
             | Direct _ | Forward _ -> None));
      pack
        (case 2 payload_codec
           ~inject:(fun p -> Forward p)
           ~match_:(function
             | Forward p -> Some p
             | Direct _ | Request _ -> None));
    ]

(* The signature covers the payload with the signature field blanked. *)
let signing_bytes p = Wire.encode payload_codec { p with signature = None }

(* --- forwarding duty ---------------------------------------------------- *)

let request_tag = '\001'
let forward_tag = '\002'

(* [src], [dst], [vround] and [id] sit at a fixed position right after
   the variant tag, so relays and receivers can read them without paying
   for the body (the expensive field: a preference list, a broadcast
   round's worth of votes). [None] on anything that doesn't parse that
   far — the caller treats it like a malformed frame. *)
let peek_header (s : Wire.Slice.t) =
  try
    let d = Wire.Dec.of_slice s in
    let _tag = Wire.Dec.tag d in
    let src = Wire.party_id.Wire.read d in
    let dst = Wire.party_id.Wire.read d in
    let hvround = Wire.Dec.uint d in
    let id = Wire.Dec.uint d in
    Some (src, dst, hvround, id)
  with Wire.Malformed _ -> None

(* A [Forward] differs from the [Request] it answers only in the leading
   variant tag, so a forwarder can reuse the received bytes wholesale —
   replay the span with one byte rewritten instead of walking the codec
   again. The write-only codec below streams the received view straight
   into the sender's round arena (tag byte, then the rest of the span),
   so forwarding allocates nothing outside the arena. The receiver
   decodes the same payload either way (and the signature check
   re-encodes canonically), so behavior is unchanged. *)
let forward_slice_codec : Wire.Slice.t Wire.t =
  {
    Wire.write =
      (fun e (s : Wire.Slice.t) ->
        Wire.Enc.append e "\002";
        Wire.Enc.append_sub e s.Wire.Slice.base ~off:(s.Wire.Slice.off + 1)
          ~len:(Wire.Slice.length s - 1));
    read = (fun _ -> raise (Wire.Malformed "forward_slice_codec is write-only"));
  }

(* Forwarding needs only the header: a relay replays the claimed-[src]
   frame towards [dst] verbatim (body and all), and the receiver is the
   one who judges the payload — signature check or majority vote. A
   frame whose body is garbage is forwarded like any other and dies at
   the receiver's decode, exactly as a byzantine relay could arrange
   anyway. *)
let forward_payload (env : Engine.env) ~topology ~from ~(data : Wire.Slice.t) =
  match peek_header data with
  | Some (src, dst, _, _)
    when Party_id.equal from src
         && Topology.connected topology env.self dst
         && not (Party_id.equal dst env.self) ->
    env.send_w forward_slice_codec dst data
  | Some _ | None -> ()

let forward_duty (env : Engine.env) ~topology (e : Engine.envelope) =
  (* Only Request frames matter here, and most traffic is Direct — check
     the leading tag byte before paying for any parsing. *)
  if Wire.Slice.length e.data > 0 && Wire.Slice.get e.data 0 = request_tag then
    forward_payload env ~topology ~from:e.src ~data:e.data

(* --- the virtual net ----------------------------------------------------- *)

let virtual_net (env : Engine.env) ~topology ~auth =
  let self = env.self in
  let k = env.k in
  let stride = stride topology in
  let opposite = Party_id.side_members (Side.opposite (Party_id.side self)) ~k in
  let vround = ref 0 in
  let next_id = ref 0 in
  (* (src, id) pairs already delivered, for replay suppression in signed
     mode; majority mode is replay-proof by the honest-majority argument
     but deduplicates identically for cheap idempotence. *)
  let delivered = Hashtbl.create 64 in
  (* The channel layer's own round-local state is corruptible too: a
     scrambled [vround] desynchronizes this party's virtual clock, a
     scrambled [next_id] collides or skips message ids — failure modes a
     byzantine relay could never force on an honest party, but an
     arbitrary-initial-state start can. *)
  env.register_state Wire.uint vround;
  env.register_state Wire.uint next_id;
  let send dst body =
    if Party_id.equal dst self then ()
    else if Topology.connected topology self dst then
      env.send_w relay_codec dst (Direct body)
    else begin
      let p =
        { src = self; dst; vround = !vround; id = !next_id; body; signature = None }
      in
      incr next_id;
      let p =
        match auth with
        | Majority -> p
        | Signed { signer; _ } ->
          { p with signature = Some (Crypto.Signer.sign signer (signing_bytes p)) }
      in
      (* One arena encode (and one signature already paid above) shared
         by every relay: the request bytes are identical per target. *)
      env.send_multi_w relay_codec opposite (Request p)
    end
  in
  let signed = match auth with Signed _ -> true | Majority -> false in
  let sync () =
    let direct = ref [] in
    let forwards = ref [] in
    (* Signed mode defers Forward decoding: frames are kept as raw spans
       and only the first fresh copy per (src, id) pays for a body
       decode below. Majority mode must decode every copy anyway (the
       vote groups payloads), so it keeps the eager path. *)
    let fwd_frames = ref [] in
    for _ = 1 to stride do
      let inbox = env.next_round () in
      List.iter
        (fun (e : Engine.envelope) ->
          let tag =
            if Wire.Slice.length e.data > 0 then Wire.Slice.get e.data 0
            else '\255'
          in
          if tag = request_tag then
            (* Relay duty never needs the body — header peek only. *)
            forward_payload env ~topology ~from:e.src ~data:e.data
          else if signed && tag = forward_tag then
            fwd_frames := e.data :: !fwd_frames
          else
            match Wire.decode_slice relay_codec e.data with
            | Ok (Direct body) -> direct := (e.src, body) :: !direct
            | Ok (Request _) -> ()
            | Ok (Forward p) -> forwards := (e.src, p) :: !forwards
            | Error _ -> ())
        inbox
    done;
    let fresh p =
      Party_id.equal p.dst self && p.vround = !vround
      && not (Hashtbl.mem delivered (p.src, p.id))
    in
    let deliver p =
      Hashtbl.replace delivered (p.src, p.id) ();
      p.src, p.body
    in
    let relayed =
      match auth with
      | Signed { verifier; _ } ->
        List.filter_map
          (fun frame ->
            match peek_header frame with
            | Some (src, dst, hvround, id)
              when Party_id.equal dst self && hvround = !vround
                   && not (Hashtbl.mem delivered (src, id)) -> begin
              match Wire.decode_slice relay_codec frame with
              | Ok (Forward ({ signature = Some signature; _ } as p))
                when fresh p
                     && Crypto.Verifier.verify verifier ~signer:p.src
                          ~msg:(signing_bytes p) signature ->
                Some (deliver p)
              | Ok _ | Error _ -> None
            end
            | Some _ | None -> None)
          !fwd_frames
      | Majority ->
        (* Group identical payloads; accept those vouched for by a strict
           majority of distinct forwarders on the opposite side. *)
        let key (_, p) = Wire.encode payload_codec p in
        Util.group_by ~key ~equal_key:String.equal !forwards
        |> List.filter_map (fun (_, items) ->
               let p = snd (List.hd items) in
               let forwarders =
                 List.sort_uniq Party_id.compare (List.map fst items)
                 |> List.filter (fun f ->
                        Side.equal (Party_id.side f)
                          (Side.opposite (Party_id.side p.src)))
               in
               if fresh p && 2 * List.length forwarders > k then Some (deliver p)
               else None)
    in
    incr vround;
    let all = List.rev_append !direct relayed in
    List.stable_sort (fun (a, _) (b, _) -> Party_id.compare a b) all
  in
  { Net.self; stride; send; sync; register_state = env.register_cell }
