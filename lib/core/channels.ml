open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Net = Bsm_runtime.Net
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire
module Crypto = Bsm_crypto.Crypto

type auth_mode =
  | Majority
  | Signed of {
      signer : Crypto.Signer.t;
      verifier : Crypto.Verifier.t;
    }

let stride = function
  | Topology.Fully_connected -> 1
  | Topology.One_sided | Topology.Bipartite -> 2

(* --- wire format ------------------------------------------------------- *)

type payload = {
  src : Party_id.t;
  dst : Party_id.t;
  vround : int;
  id : int;
  body : string;
  signature : Crypto.Signature.t option;
}

let payload_codec =
  Wire.map
    ~inject:(fun ((src, dst), (vround, id), (body, signature)) ->
      { src; dst; vround; id; body; signature })
    ~project:(fun p -> (p.src, p.dst), (p.vround, p.id), (p.body, p.signature))
    (Wire.triple
       (Wire.pair Wire.party_id Wire.party_id)
       (Wire.pair Wire.uint Wire.uint)
       (Wire.pair Wire.string (Wire.option Crypto.Signature.codec)))

type relay =
  | Direct of string
  | Request of payload
  | Forward of payload

let relay_codec =
  let open Wire in
  variant ~name:"relay"
    [
      pack
        (case 0 string
           ~inject:(fun b -> Direct b)
           ~match_:(function
             | Direct b -> Some b
             | Request _ | Forward _ -> None));
      pack
        (case 1 payload_codec
           ~inject:(fun p -> Request p)
           ~match_:(function
             | Request p -> Some p
             | Direct _ | Forward _ -> None));
      pack
        (case 2 payload_codec
           ~inject:(fun p -> Forward p)
           ~match_:(function
             | Forward p -> Some p
             | Direct _ | Request _ -> None));
    ]

(* The signature covers the payload with the signature field blanked. *)
let signing_bytes p = Wire.encode payload_codec { p with signature = None }

(* --- forwarding duty ---------------------------------------------------- *)

let request_tag = '\001'

(* A [Forward] differs from the [Request] it answers only in the leading
   variant tag, so a forwarder can reuse the received bytes wholesale —
   flip one byte instead of walking the codec again. The receiver decodes
   the same payload either way (and the signature check re-encodes
   canonically), so behavior is unchanged. *)
let forward_frame data =
  let b = Bytes.of_string data in
  Bytes.set b 0 '\002';
  Bytes.unsafe_to_string b

let forward_payload (env : Engine.env) ~topology ~from ~data p =
  if
    Party_id.equal from p.src
    && Topology.connected topology env.self p.dst
    && not (Party_id.equal p.dst env.self)
  then env.send p.dst (forward_frame data)

let forward_duty (env : Engine.env) ~topology (e : Engine.envelope) =
  (* Only Request frames matter here, and most traffic is Direct — check
     the leading tag byte before paying for a full decode. *)
  if String.length e.data > 0 && e.data.[0] = request_tag then
    match Wire.decode relay_codec e.data with
    | Ok (Request p) -> forward_payload env ~topology ~from:e.src ~data:e.data p
    | Ok (Direct _ | Forward _) | Error _ -> ()

(* --- the virtual net ----------------------------------------------------- *)

let virtual_net (env : Engine.env) ~topology ~auth =
  let self = env.self in
  let k = env.k in
  let stride = stride topology in
  let opposite = Party_id.side_members (Side.opposite (Party_id.side self)) ~k in
  let vround = ref 0 in
  let next_id = ref 0 in
  (* (src, id) pairs already delivered, for replay suppression in signed
     mode; majority mode is replay-proof by the honest-majority argument
     but deduplicates identically for cheap idempotence. *)
  let delivered = Hashtbl.create 64 in
  let send dst body =
    if Party_id.equal dst self then ()
    else if Topology.connected topology self dst then
      env.send dst (Wire.encode relay_codec (Direct body))
    else begin
      let p =
        { src = self; dst; vround = !vround; id = !next_id; body; signature = None }
      in
      incr next_id;
      let p =
        match auth with
        | Majority -> p
        | Signed { signer; _ } ->
          { p with signature = Some (Crypto.Signer.sign signer (signing_bytes p)) }
      in
      let msg = Wire.encode relay_codec (Request p) in
      List.iter (fun r -> env.send r msg) opposite
    end
  in
  let sync () =
    let direct = ref [] in
    let forwards = ref [] in
    for _ = 1 to stride do
      let inbox = env.next_round () in
      List.iter
        (fun (e : Engine.envelope) ->
          match Wire.decode relay_codec e.data with
          | Ok (Direct body) -> direct := (e.src, body) :: !direct
          | Ok (Request p) -> forward_payload env ~topology ~from:e.src ~data:e.data p
          | Ok (Forward p) -> forwards := (e.src, p) :: !forwards
          | Error _ -> ())
        inbox
    done;
    let fresh p =
      Party_id.equal p.dst self && p.vround = !vround
      && not (Hashtbl.mem delivered (p.src, p.id))
    in
    let deliver p =
      Hashtbl.replace delivered (p.src, p.id) ();
      p.src, p.body
    in
    let relayed =
      match auth with
      | Signed { verifier; _ } ->
        List.filter_map
          (fun (_, p) ->
            match p.signature with
            | Some signature
              when fresh p
                   && Crypto.Verifier.verify verifier ~signer:p.src
                        ~msg:(signing_bytes p) signature ->
              Some (deliver p)
            | Some _ | None -> None)
          !forwards
      | Majority ->
        (* Group identical payloads; accept those vouched for by a strict
           majority of distinct forwarders on the opposite side. *)
        let key (_, p) = Wire.encode payload_codec p in
        Util.group_by ~key ~equal_key:String.equal !forwards
        |> List.filter_map (fun (_, items) ->
               let p = snd (List.hd items) in
               let forwarders =
                 List.sort_uniq Party_id.compare (List.map fst items)
                 |> List.filter (fun f ->
                        Side.equal (Party_id.side f)
                          (Side.opposite (Party_id.side p.src)))
               in
               if fresh p && 2 * List.length forwarders > k then Some (deliver p)
               else None)
    in
    incr vround;
    let all = List.rev_append !direct relayed in
    List.stable_sort (fun (a, _) (b, _) -> Party_id.compare a b) all
  in
  { Net.self; stride; send; sync }
