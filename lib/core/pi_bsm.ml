open Bsm_prelude
module SM = Bsm_stable_matching
module B = Bsm_broadcast
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire
module Crypto = Bsm_crypto.Crypto

(* Direct (non-relay) protocol messages. Tags are chosen outside the relay
   codec's range (0-2) so that relay traffic and protocol traffic never
   decode as each other. *)
module Msg = struct
  type t =
    | Prefs of string  (** O → C, round 0: raw encoded preference list *)
    | Suggest of Party_id.t option  (** C → O, final round: your match *)

  let codec =
    let open Wire in
    variant ~name:"pi_bsm_msg"
      [
        pack
          (case 3 string
             ~inject:(fun b -> Prefs b)
             ~match_:(function
               | Prefs b -> Some b
               | Suggest _ -> None));
        pack
          (case 4 (option party_id)
             ~inject:(fun p -> Suggest p)
             ~match_:(function
               | Suggest p -> Some p
               | Prefs _ -> None));
      ]
end

let threshold_of (setting : Setting.t) computing_side =
  match computing_side with
  | Side.Left -> setting.t_left
  | Side.Right -> setting.t_right

let pk_params (setting : Setting.t) computing_side =
  B.Phase_king.params
    ~structure:(B.Adversary_structure.Threshold (threshold_of setting computing_side))
    ~participants:(Party_id.side_members computing_side ~k:setting.k)

(* Virtual rounds of the session: the BB instances dominate. *)
let session_rounds setting computing_side =
  B.Pi_bb.rounds (pk_params setting computing_side)

let engine_rounds (setting : Setting.t) ~computing_side =
  (* 1 round of preference dissemination, 2 engine rounds per virtual
     session round, 1 round of suggestions. *)
  2 + (2 * session_rounds setting computing_side)

let default_bytes k = Wire.encode SM.Prefs.codec (SM.Prefs.identity k)

let decode_prefs ~k bytes =
  match Wire.decode SM.Prefs.codec bytes with
  | Ok prefs when SM.Prefs.length prefs = k -> Some prefs
  | Ok _ | Error _ -> None

let computing_program (setting : Setting.t) ~pki ~computing_side ~input ~self
    (env : Engine.env) =
  let k = setting.k in
  let other_side = Side.opposite computing_side in
  let c_members = Party_id.side_members computing_side ~k in
  let o_members = Party_id.side_members other_side ~k in
  let params = pk_params setting computing_side in
  let default = default_bytes k in
  (* Round 0 → 1: collect the preference lists the O-side sent. *)
  let o_prefs_received =
    let inbox = env.next_round () in
    List.filter_map
      (fun (e : Engine.envelope) ->
        if not (Side.equal (Party_id.side e.src) other_side) then None
        else
          match Wire.decode_slice Msg.codec e.data with
          | Ok (Msg.Prefs bytes) -> Some (e.src, bytes)
          | Ok (Msg.Suggest _) | Error _ -> None)
      inbox
  in
  let o_input o =
    match List.find_opt (fun (src, _) -> Party_id.equal src o) o_prefs_received with
    | Some (_, bytes) -> bytes
    | None -> default
  in
  (* The session: one Π_BB per C-party (sender), one Π_BA per O-party. *)
  let bb_machines =
    List.map
      (fun c ->
        let tag = "BB:" ^ Party_id.to_string c in
        let input_bytes =
          if Party_id.equal c self then Wire.encode SM.Prefs.codec input else ""
        in
        tag, B.Pi_bb.make params ~self ~sender:c ~input:input_bytes ~default)
      c_members
  in
  let ba_machines =
    List.map
      (fun o ->
        let tag = "BA:" ^ Party_id.to_string o in
        tag, B.Pi_ba.make params ~self ~input:(o_input o))
      o_members
  in
  let net =
    Channels.virtual_net env ~topology:setting.topology
      ~auth:
        (Channels.Signed
           { signer = Crypto.Pki.signer pki self; verifier = Crypto.Pki.verifier pki })
  in
  let outputs = B.Session.run_parallel net (bb_machines @ ba_machines) in
  let lookup tag = List.assoc tag outputs in
  let any_bottom = List.exists (fun (_, out) -> out = None) outputs in
  if any_bottom then
    (* Line 6: some instance returned ⊥ — match with nobody. *)
    env.output (Wire.encode Problem.decision_codec None)
  else begin
    let prefs_of prefix p =
      match lookup (prefix ^ Party_id.to_string p) with
      | Some bytes -> Option.value (decode_prefs ~k bytes) ~default:(SM.Prefs.identity k)
      | None -> SM.Prefs.identity k
    in
    let c_prefs = Array.of_list (List.map (prefs_of "BB:") c_members) in
    let o_prefs = Array.of_list (List.map (prefs_of "BA:") o_members) in
    let profile =
      match computing_side with
      | Side.Left -> SM.Profile.make_exn ~left:c_prefs ~right:o_prefs
      | Side.Right -> SM.Profile.make_exn ~left:o_prefs ~right:c_prefs
    in
    let matching = SM.Gale_shapley.run profile in
    (* Line 8: tell each O-party its match. *)
    List.iter
      (fun o ->
        let suggestion = Msg.Suggest (Some (SM.Matching.partner matching o)) in
        env.send_w Msg.codec o suggestion)
      o_members;
    env.output
      (Wire.encode Problem.decision_codec (Some (SM.Matching.partner matching self)))
  end

let relay_program (setting : Setting.t) ~computing_side ~input (env : Engine.env) =
  let k = setting.k in
  let c_members = Party_id.side_members computing_side ~k in
  (* Round 0: disseminate own preference list to the computing side. *)
  let prefs_msg = Msg.Prefs (Wire.encode SM.Prefs.codec input) in
  env.send_multi_w Msg.codec c_members prefs_msg;
  (* Forwarding duty until the suggestions arrive. Suggestions are sent by
     C at engine round 1 + 2·V and arrive at 2 + 2·V. *)
  let last_round = engine_rounds setting ~computing_side in
  let suggestions = ref [] in
  (* The relay's only round-local state: the Suggest votes gathered so
     far. Registered so state-corruption schedules reach the O side. *)
  env.register_state
    (Wire.list (Wire.pair Wire.party_id (Wire.option Wire.party_id)))
    suggestions;
  for _ = 1 to last_round do
    let inbox = env.next_round () in
    List.iter
      (fun (e : Engine.envelope) ->
        Channels.forward_duty env ~topology:setting.topology e;
        (* Suggest frames start with tag 4; everything else on this inbox
           is relay traffic (tags 0-2) or Prefs (3) — skip those without
           decoding. *)
        if
          Side.equal (Party_id.side e.src) computing_side
          && Wire.Slice.length e.data > 0
          && Wire.Slice.get e.data 0 = '\004'
        then
          match Wire.decode_slice Msg.codec e.data with
          | Ok (Msg.Suggest partner) -> suggestions := (e.src, partner) :: !suggestions
          | Ok (Msg.Prefs _) | Error _ -> ())
      inbox
  done;
  (* Line 5 (R side): adopt the most common suggestion. *)
  let votes = List.map snd (B.Machine.first_per_sender (List.rev !suggestions)) in
  let decision =
    match
      Util.most_common ~equal:(Option.equal Party_id.equal) votes
    with
    | Some (partner, _) -> partner
    | None -> None
  in
  env.output (Wire.encode Problem.decision_codec decision)

let program setting ~pki ~computing_side ~input ~self =
  if Side.equal (Party_id.side self) computing_side then
    computing_program setting ~pki ~computing_side ~input ~self
  else relay_program setting ~computing_side ~input
