open Bsm_prelude

type stats = {
  proposals : int;
  rounds : int;
}

(* Swap the two sides of a profile so the proposing side is always "left"
   internally. *)
let oriented proposers profile =
  match proposers with
  | Side.Left -> Profile.left profile, Profile.right profile
  | Side.Right -> Profile.right profile, Profile.left profile

(* Parallel deferred acceptance: in each round every unmatched proposer
   proposes to the best candidate that has not yet rejected it; every
   candidate tentatively keeps the best proposal seen so far. *)
let run_oriented proposer_prefs acceptor_prefs =
  let k = Array.length proposer_prefs in
  let next_rank = Array.make k 0 in
  let held = Array.make k (-1) (* acceptor -> proposer currently held *) in
  let matched = Array.make k false (* proposer -> currently held by someone *) in
  let proposals = ref 0 in
  let rounds = ref 0 in
  (* Number of proposers with [matched.(p) = false], maintained at every
     match/displacement so round termination is O(1) instead of an O(k)
     rescan of [matched] — late rounds often have a single free
     proposer. *)
  let free = ref k in
  while !free > 0 do
    incr rounds;
    (* Collect this round's proposals before updating any acceptor, so the
       outcome is independent of proposer iteration order. *)
    let proposals_now = ref [] in
    for p = 0 to k - 1 do
      if not matched.(p) then begin
        let a = Prefs.at proposer_prefs.(p) next_rank.(p) in
        next_rank.(p) <- next_rank.(p) + 1;
        incr proposals;
        proposals_now := (p, a) :: !proposals_now
      end
    done;
    let consider (p, a) =
      let current = held.(a) in
      if current = -1 then begin
        held.(a) <- p;
        matched.(p) <- true;
        decr free
      end
      else if Prefs.prefers acceptor_prefs.(a) p current then begin
        matched.(current) <- false;
        incr free;
        held.(a) <- p;
        matched.(p) <- true;
        decr free
      end
    in
    List.iter consider (List.rev !proposals_now)
  done;
  let proposer_to_acceptor = Array.make k (-1) in
  Array.iteri (fun a p -> proposer_to_acceptor.(p) <- a) held;
  proposer_to_acceptor, { proposals = !proposals; rounds = !rounds }

let run_with_stats ?(proposers = Side.Left) profile =
  let proposer_prefs, acceptor_prefs = oriented proposers profile in
  let p2a, stats = run_oriented proposer_prefs acceptor_prefs in
  let l2r =
    match proposers with
    | Side.Left -> p2a
    | Side.Right ->
      (* p2a maps right -> left; invert to get left -> right. *)
      let k = Array.length p2a in
      let l2r = Array.make k (-1) in
      Array.iteri (fun r l -> l2r.(l) <- r) p2a;
      l2r
  in
  Matching.of_l2r_exn l2r, stats

let run ?proposers profile = fst (run_with_stats ?proposers profile)
