(** Implicit preference profiles for the large-k scale frontier.

    An explicit {!Profile.t} stores 2k rank tables of length k — O(k²)
    memory, infeasible beyond k ≈ 10⁴. A [Flat.t] instead defines each
    party's preference list as a keyed pseudorandom permutation of
    [0, k): a 4-round Feistel network cycle-walked into the domain,
    keyed by [Rng.mix64_absorb] chains over (seed, side, index). Both
    directions are O(1) — rank→candidate is one forward evaluation,
    candidate→rank one inverse — so Gale–Shapley and the early-exit
    verifier run at k = 10⁵..10⁶ in O(k) memory. Everything is a pure
    function of [(family, seed, k)]: results are bit-replayable and
    domain-safe under parallel sweeps. *)

type t

(** Preference structure of an instance.

    - [Uniform]: every party an independent pseudorandom list.
    - [Common_acceptors]: all right-side (accepting) parties share one
      pseudorandom list — the common-preferences regime of
      Hirvonen–Ranjbaran (arXiv:2402.16532) on the accepting side;
      left parties remain independent. *)
type family =
  | Uniform
  | Common_acceptors

val family_to_string : family -> string

(** [make ~family ~seed ~k] — O(1); no tables are materialized. Raises
    [Invalid_argument] when [k <= 0]. *)
val make : family:family -> seed:int -> k:int -> t

val k : t -> int
val family : t -> family
val seed : t -> int

(** Preference probes, staged: [left_order t l] derives left party
    [l]'s permutation once and returns an O(1) rank→candidate probe
    (partially apply it when scanning a row). [left_rank t l] is the
    inverse, candidate→rank; [right_*] mirror these for the right side
    (whose candidates are left indices). All raise [Invalid_argument]
    out of range. *)

val left_order : t -> int -> int -> int
val left_rank : t -> int -> int -> int
val right_order : t -> int -> int -> int
val right_rank : t -> int -> int -> int

(** Left-proposing deferred acceptance on the implicit profile, with an
    explicit free-proposer worklist and O(k) preallocated state.
    Returns the left→right matching array and the same statistics as
    {!Gale_shapley.run_with_stats}; on the materialized profile
    ({!to_profile}) the result is bit-identical to
    [Gale_shapley.run_with_stats ~proposers:Side.Left], which the tests
    pin. *)
val gale_shapley : t -> int array * Gale_shapley.stats

(** [verify_view t ~l2r] adapts the instance and a left→right matching
    array ([-1] = unmatched) to the {!Verify.view} scan, for
    {!Verify.count_blocking_rows} and friends. Raises
    [Invalid_argument] when [l2r] has the wrong length. *)
val verify_view : t -> l2r:int array -> Verify.view

(** Materialize as an explicit {!Profile.t} — O(k²), for small-k
    differential tests only. *)
val to_profile : t -> Profile.t
