type blocking_pair = {
  left : int;
  right : int;
}

let pp_blocking_pair ppf { left; right } = Format.fprintf ppf "(L%d, R%d)" left right

(* Allocation-free view of a (possibly partial) matching against a
   preference structure. Partners are plain ints with -1 for unmatched,
   so the hot verification scan never allocates an option. The
   preference accessors are functions rather than arrays so that both
   explicit [Profile.t] instances and implicit [Flat.t] ones share one
   scan. *)
type view = {
  k : int;
  left_order : int -> int -> int;  (** [left_order l rank] = candidate *)
  left_rank : int -> int -> int;  (** [left_rank l r] = rank of [r] at [l] *)
  right_rank : int -> int -> int;
  left_partner : int -> int;  (** -1 when unmatched *)
  right_partner : int -> int;
  consider_left : int -> bool;
  consider_right : int -> bool;
}

let all _ = true

let view_of_matching profile m =
  let lp = Profile.left profile in
  let rp = Profile.right profile in
  {
    k = Profile.k profile;
    left_order = (fun l rank -> Prefs.at lp.(l) rank);
    left_rank = (fun l r -> Prefs.rank lp.(l) r);
    right_rank = (fun r l -> Prefs.rank rp.(r) l);
    left_partner = (fun l -> Matching.partner_of_left m l);
    right_partner = (fun r -> Matching.partner_of_right m r);
    consider_left = all;
    consider_right = all;
  }

let int_partner partner l =
  match partner l with
  | None -> -1
  | Some r -> r

let view_partial profile ~left_partner ~right_partner ~consider_left
    ~consider_right =
  let lp = Profile.left profile in
  let rp = Profile.right profile in
  {
    k = Profile.k profile;
    left_order = (fun l rank -> Prefs.at lp.(l) rank);
    left_rank = (fun l r -> Prefs.rank lp.(l) r);
    right_rank = (fun r l -> Prefs.rank rp.(r) l);
    left_partner = int_partner left_partner;
    right_partner = int_partner right_partner;
    consider_left;
    consider_right;
  }

(* The one scan everything else derives from: count blocking pairs with
   a left endpoint in rows [lo, hi), giving up as soon as the count
   exceeds [cap] (so [cap = 0] is an early-exit existence check). For
   each left [l] only candidates [l] ranks strictly before its partner
   can block, so the row costs O(rank of partner) probes instead of
   O(k); on a proposer-optimal matching over random preferences that is
   O(log k) on average. A candidate [r] blocks iff [r] is unmatched or
   ranks [l] strictly before its partner — when [r] is [l]'s own partner
   the strict comparison fails, so no self-pair is counted. *)
let count_blocking_rows ?(cap = max_int) v ~lo ~hi =
  let lo = max lo 0 and hi = min hi v.k in
  let count = ref 0 in
  let l = ref lo in
  while !count <= cap && !l < hi do
    let li = !l in
    if v.consider_left li then begin
      let p = v.left_partner li in
      let limit = if p < 0 then v.k else v.left_rank li p in
      (* Hoisted per row: for implicit profiles the partial application
         derives the row's permutation once instead of per probe. *)
      let order_li = v.left_order li in
      let rank = ref 0 in
      while !count <= cap && !rank < limit do
        let r = order_li !rank in
        (if v.consider_right r then begin
           let q = v.right_partner r in
           if q < 0 || v.right_rank r li < v.right_rank r q then incr count
         end);
        incr rank
      done
    end;
    incr l
  done;
  !count

let exists_blocking_rows v ~lo ~hi = count_blocking_rows ~cap:0 v ~lo ~hi > 0
let exists_blocking v = exists_blocking_rows v ~lo:0 ~hi:v.k
let count_blocking v = count_blocking_rows v ~lo:0 ~hi:v.k

(* ε-stability (Ostrovsky–Rosenbaum): at most ε·k² blocking pairs. The
   budget is ⌊ε·k²⌋, counted with early exit at budget+1. *)
let eps_budget ~eps k =
  if eps < 0. then invalid_arg "Verify: eps must be nonnegative";
  let b = eps *. float_of_int k *. float_of_int k in
  if b >= float_of_int max_int then max_int else int_of_float b

let is_eps_stable_view ~eps v =
  let budget = eps_budget ~eps v.k in
  count_blocking_rows ~cap:budget v ~lo:0 ~hi:v.k <= budget

let is_stable profile m = not (exists_blocking (view_of_matching profile m))
let instability profile m = count_blocking (view_of_matching profile m)
let is_eps_stable ~eps profile m = is_eps_stable_view ~eps (view_of_matching profile m)

(* List-building reference paths. These keep the original O(k²) scan and
   its output order (ascending left index, then ascending right index):
   tests and the distributed checker's violation reports depend on the
   order, and the property tests pin the fast paths above against these. *)
let blocking_pairs_partial profile ~left_partner ~right_partner ~consider_left
    ~consider_right =
  let k = Profile.k profile in
  let lp = Profile.left profile in
  let rp = Profile.right profile in
  (* [l] prefers [r] to its current situation: true when single (parties
     prefer any match to being alone) or when [r] ranks before the current
     partner. *)
  let left_wants l r =
    match left_partner l with
    | None -> true
    | Some r' -> (not (Int.equal r r')) && Prefs.prefers lp.(l) r r'
  in
  let right_wants r l =
    match right_partner r with
    | None -> true
    | Some l' -> (not (Int.equal l l')) && Prefs.prefers rp.(r) l l'
  in
  let pairs = ref [] in
  for l = k - 1 downto 0 do
    for r = k - 1 downto 0 do
      if consider_left l && consider_right r && left_wants l r && right_wants r l
      then pairs := { left = l; right = r } :: !pairs
    done
  done;
  !pairs

let blocking_pairs profile m =
  blocking_pairs_partial profile
    ~left_partner:(fun l -> Some (Matching.partner_of_left m l))
    ~right_partner:(fun r -> Some (Matching.partner_of_right m r))
    ~consider_left:all ~consider_right:all
