(** Stability checking and blocking-pair analysis.

    A pair [(l, r)] not matched together is {e blocking} when [l] prefers
    [r] to its partner and [r] prefers [l] to its partner. A matching is
    stable iff no blocking pair exists. For partial matchings an unmatched
    party prefers anyone to being alone (the paper's convention), so a
    mutually-acceptable unmatched pair always blocks.

    Two implementations coexist. The {!view}-based scan is early-exiting
    and allocation-free: per left row it probes only candidates ranked
    strictly before the row's partner, so checking a proposer-optimal
    matching costs O(Σ partner ranks) ≈ O(k log k) on random preferences
    instead of O(k²), and it powers {!is_stable}, {!instability},
    {!is_eps_stable} and the row-sharded parallel check in the harness.
    The list-building {!blocking_pairs} / {!blocking_pairs_partial} keep
    the original full scan and output order (ascending left, then
    ascending right index) for violation reports and as the reference
    the property tests pin the fast paths against. *)

type blocking_pair = {
  left : int;
  right : int;
}

(** On perfect matchings. *)

val blocking_pairs : Profile.t -> Matching.t -> blocking_pair list

(** Early-exit: stops at the first blocking pair found. *)
val is_stable : Profile.t -> Matching.t -> bool

(** [instability profile m] is the number of blocking pairs — the
    approximate-stability metric of Ostrovsky–Rosenbaum (PODC 2015) that we
    use to quantify how badly naive protocols fail under attack. Counts
    without materializing the pair list. *)
val instability : Profile.t -> Matching.t -> int

(** [is_eps_stable ~eps profile m] — are there at most ⌊ε·k²⌋ blocking
    pairs? This is the ε-stability relaxation of Ostrovsky–Rosenbaum
    (arXiv:1408.2782): the oracle-side half of their almost-stable fast
    path. Counting stops as soon as the budget is exceeded, so small
    budgets are nearly as cheap as {!is_stable}; [eps = 0.] agrees
    exactly with {!is_stable}. Raises [Invalid_argument] when
    [eps < 0.]. *)
val is_eps_stable : eps:float -> Profile.t -> Matching.t -> bool

(** {2 Allocation-free views}

    A {!view} abstracts the inputs of the fast scan: preference
    accessors as functions (so explicit [Profile.t] and implicit
    [Flat.t] instances share the scan) and partner maps as ints with
    [-1] meaning unmatched. *)

type view = {
  k : int;
  left_order : int -> int -> int;  (** [left_order l rank] = candidate *)
  left_rank : int -> int -> int;  (** [left_rank l r] = rank of [r] at [l] *)
  right_rank : int -> int -> int;
  left_partner : int -> int;  (** -1 when unmatched *)
  right_partner : int -> int;
  consider_left : int -> bool;
  consider_right : int -> bool;
}

val view_of_matching : Profile.t -> Matching.t -> view

val view_partial :
  Profile.t ->
  left_partner:(int -> int option) ->
  right_partner:(int -> int option) ->
  consider_left:(int -> bool) ->
  consider_right:(int -> bool) ->
  view

(** [count_blocking_rows ?cap v ~lo ~hi] counts blocking pairs whose
    left endpoint lies in rows [lo, hi) (clamped to [0, k)), giving up —
    and returning [cap + 1] — as soon as the count exceeds [cap]
    (default [max_int], i.e. exact). Disjoint row ranges partition the
    blocking pairs, so shard counts sum to the total: this is the unit
    of work of the pool-parallel large-k check. *)
val count_blocking_rows : ?cap:int -> view -> lo:int -> hi:int -> int

val exists_blocking_rows : view -> lo:int -> hi:int -> bool
val exists_blocking : view -> bool
val count_blocking : view -> int
val is_eps_stable_view : eps:float -> view -> bool

(** On partial matchings, given as [partner_of : int -> int option] maps
    for both sides (the distributed layer's view of honest outputs). *)

val blocking_pairs_partial :
  Profile.t ->
  left_partner:(int -> int option) ->
  right_partner:(int -> int option) ->
  consider_left:(int -> bool) ->
  consider_right:(int -> bool) ->
  blocking_pair list

val pp_blocking_pair : Format.formatter -> blocking_pair -> unit
