open Bsm_prelude

(* Implicit preference profiles for the large-k scale frontier.

   An explicit [Profile.t] stores 2k permutations of length k — ~2k²
   words plus rank tables, which is hundreds of gigabytes at k = 10⁶.
   Instead each party's preference list is a keyed pseudorandom
   permutation of [0, k): rank→candidate ([order]) is one PRP
   evaluation and candidate→rank ([rank]) is one inverse evaluation,
   both O(1) and allocation-free, so Gale–Shapley and the early-exit
   verifier run at k = 10⁵..10⁶ in O(k) memory. *)

module Perm = struct
  (* Format-preserving permutation of [0, n): a 4-round balanced
     Feistel network over the smallest even bit-width covering [n],
     cycle-walked back into the domain. Intermediate points of a walk
     lie outside [0, n), so walking the inverse network undoes the walk
     exactly; the domain is < 4n, so a walk takes < 4 steps in
     expectation. Round keys come from [Rng.mix64_absorb] chains, the
     repository's standard stateless mixer. *)
  type t = {
    n : int;
    half_bits : int;
    half_mask : int;
    keys : int64 array;
  }

  let rounds = 4

  let make ~key ~n =
    if n <= 0 then invalid_arg "Flat.Perm.make: n must be positive";
    let bits = ref 2 in
    while 1 lsl !bits < n do bits := !bits + 2 done;
    let keys = Array.init rounds (fun r -> Rng.mix64_absorb key r) in
    { n; half_bits = !bits / 2; half_mask = (1 lsl (!bits / 2)) - 1; keys }

  let round_f t i x = Int64.to_int (Rng.mix64_absorb t.keys.(i) x) land t.half_mask

  let encrypt_once t x =
    let l = ref (x lsr t.half_bits) and r = ref (x land t.half_mask) in
    for i = 0 to rounds - 1 do
      let l' = !r in
      let r' = !l lxor round_f t i !r in
      l := l';
      r := r'
    done;
    (!l lsl t.half_bits) lor !r

  let decrypt_once t x =
    let l = ref (x lsr t.half_bits) and r = ref (x land t.half_mask) in
    for i = rounds - 1 downto 0 do
      let r' = !l in
      let l' = !r lxor round_f t i !l in
      l := l';
      r := r'
    done;
    (!l lsl t.half_bits) lor !r

  let fwd t x =
    if x < 0 || x >= t.n then invalid_arg "Flat.Perm.fwd";
    let y = ref (encrypt_once t x) in
    while !y >= t.n do y := encrypt_once t !y done;
    !y

  let inv t y =
    if y < 0 || y >= t.n then invalid_arg "Flat.Perm.inv";
    let x = ref (decrypt_once t y) in
    while !x >= t.n do x := decrypt_once t !x done;
    !x
end

type family =
  | Uniform
  | Common_acceptors

let family_to_string = function
  | Uniform -> "uniform"
  | Common_acceptors -> "common-acceptors"

type t = {
  k : int;
  seed : int;
  family : family;
  geometry : Perm.t;  (* key-free template: shared n/bit split *)
}

let make ~family ~seed ~k =
  if k <= 0 then invalid_arg "Flat.make: k must be positive";
  { k; seed; family; geometry = Perm.make ~key:0L ~n:k }

let k t = t.k
let family t = t.family
let seed t = t.seed

(* Per-party permutation: same geometry, fresh round keys derived from
   (seed, side, index). Under [Common_acceptors] every right party
   shares one key — the common-preferences regime of
   Hirvonen–Ranjbaran (arXiv:2402.16532) on the accepting side. *)
let party_perm t side index =
  let index =
    match t.family, (side : Side.t) with
    | Common_acceptors, Right -> 0
    | (Uniform | Common_acceptors), _ -> index
  in
  let key =
    Rng.mix64_absorb
      (Rng.mix64_absorb (Rng.mix64 (Int64.of_int t.seed)) (Side.to_int side))
      index
  in
  { t.geometry with Perm.keys = Array.init Perm.rounds (Rng.mix64_absorb key) }

(* Staged: [left_order t l] derives the party's permutation once and
   returns a cheap probe — callers that scan a whole row (the verifier,
   the acceptor comparisons in GS) partially apply and reuse it. *)
let left_order t l =
  let p = party_perm t Side.Left l in
  fun rank -> Perm.fwd p rank

let left_rank t l =
  let p = party_perm t Side.Left l in
  fun r -> Perm.inv p r

let right_order t r =
  let p = party_perm t Side.Right r in
  fun rank -> Perm.fwd p rank

let right_rank t r =
  let p = party_perm t Side.Right r in
  fun l -> Perm.inv p l

(* Deferred acceptance on the implicit profile, left-proposing. Same
   round structure as [Gale_shapley.run_oriented] — every free proposer
   proposes once per round, acceptors keep the best — but the free set
   is an explicit worklist instead of a k-wide flag rescan, and all
   state lives in six preallocated int arrays. Within a round the
   "keep best" fold is order-independent, so the worklist order (which
   mixes displaced and rejected proposers) cannot affect the outcome:
   the matching and stats are bit-identical to the array-scan
   algorithm, which the tests pin via [to_profile]. *)
let gale_shapley t =
  let k = t.k in
  let next_rank = Array.make k 0 in
  let held = Array.make k (-1) in
  let cur = Array.init k Fun.id in
  let nxt = Array.make k 0 in
  let cur_n = ref k in
  let proposals = ref 0 in
  let rounds = ref 0 in
  while !cur_n > 0 do
    incr rounds;
    let nxt_n = ref 0 in
    for i = 0 to !cur_n - 1 do
      let p = cur.(i) in
      let a = left_order t p next_rank.(p) in
      next_rank.(p) <- next_rank.(p) + 1;
      incr proposals;
      let current = held.(a) in
      if current = -1 then held.(a) <- p
      else begin
        let rank_a = right_rank t a in
        if rank_a p < rank_a current then begin
          held.(a) <- p;
          nxt.(!nxt_n) <- current;
          incr nxt_n
        end
        else begin
          nxt.(!nxt_n) <- p;
          incr nxt_n
        end
      end
    done;
    Array.blit nxt 0 cur 0 !nxt_n;
    cur_n := !nxt_n
  done;
  let l2r = Array.make k (-1) in
  Array.iteri (fun a p -> l2r.(p) <- a) held;
  l2r, { Gale_shapley.proposals = !proposals; rounds = !rounds }

let verify_view t ~l2r =
  let k = t.k in
  if Array.length l2r <> k then invalid_arg "Flat.verify_view: wrong length";
  let r2l = Array.make k (-1) in
  Array.iteri (fun l r -> if r >= 0 then r2l.(r) <- l) l2r;
  {
    Verify.k;
    left_order = left_order t;
    left_rank = left_rank t;
    right_rank = right_rank t;
    left_partner = (fun l -> l2r.(l));
    right_partner = (fun r -> r2l.(r));
    consider_left = (fun _ -> true);
    consider_right = (fun _ -> true);
  }

(* Materialize as an explicit [Profile.t] — O(k²); small-k tests only. *)
let to_profile t =
  let list_of order who = List.init t.k (fun rank -> order t who rank) in
  let side order = Array.init t.k (fun who -> Prefs.of_list_exn (list_of order who)) in
  Profile.make_exn ~left:(side left_order) ~right:(side right_order)
