(** Fixed-size domain pool for deterministic parallel sweeps.

    The benchmark and attack harnesses replay many independent protocol
    executions ([Engine.run] is pure given its inputs: it touches no
    global mutable state, and each run owns its fibers, counters and
    trace). This pool spreads such runs across OCaml 5 domains while
    keeping the results {e bit-identical} to the sequential path:

    - {!map} returns results in input order, whatever order the tasks
      actually finished in;
    - task functions must be self-contained — derive any randomness from
      a per-task [Rng.make seed] inside the function, never from shared
      state (this is the same discipline the repository already follows:
      nothing touches the global [Random] state);
    - with [jobs = 1] no domain is spawned and tasks run inline, in
      order, on the calling domain — the sequential path is not merely
      equivalent but literally the same code path.

    The pool is a work-stealing-free shared queue: [jobs - 1] worker
    domains plus the submitting domain drain tasks FIFO. Do not call
    {!map} from inside a task of the same pool (the inner map could then
    starve waiting for workers that are all blocked on inner maps). *)

type t

(** [default_jobs ()] resolves the parallelism level: the [BSM_JOBS]
    environment variable when set (must parse as a positive integer),
    otherwise [Domain.recommended_domain_count ()]. A [BSM_JOBS] value
    above the recommended domain count is clamped to it (and a warning
    is logged on the [bsm.pool] source): oversubscribed domains
    time-share cores and contend on minor heaps, making every sweep
    slower. Explicit [?jobs] arguments to {!create}/{!with_pool} are
    taken verbatim, clamp-free. *)
val default_jobs : unit -> int

(** [create ?jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults
    to {!default_jobs}). Raises [Invalid_argument] when [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

(** Parallelism level the pool was created with (including the
    submitting domain). *)
val jobs : t -> int

(** [map pool f xs] applies [f] to every element of [xs], distributing
    calls over the pool's domains, and returns the results {e in input
    order}. If one or more calls raise, the exception of the
    lowest-indexed failing element is re-raised (with its backtrace)
    after all tasks have settled.

    Work is submitted as contiguous index-range chunks of size
    [max 1 (n / (4 * jobs))] — one queue entry and one condition signal
    per chunk — so the shared lock is taken O(jobs) times per call, not
    O(n). Elements remain independent: each gets its own outcome slot,
    so a raising element neither skips its chunk-mates nor masks a
    lower-indexed failure in another chunk. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [shutdown pool] signals the workers to exit and joins them.
    Idempotent. Calling {!map} after [shutdown] raises
    [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] brackets [create]/[shutdown] around [f]. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
