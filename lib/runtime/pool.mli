(** Persistent work-stealing domain pool for deterministic parallel
    sweeps.

    The benchmark and attack harnesses replay many independent protocol
    executions ([Engine.run] is pure given its inputs: it touches no
    global mutable state, and each run owns its fibers, counters and
    trace). This pool spreads such runs across OCaml 5 domains while
    keeping the results {e bit-identical} to the sequential path:

    - {!map} returns results in input order, whatever order the tasks
      actually ran or finished in — every element has its own
      index-addressed result slot, so scheduling (and steal order) is
      invisible in the output;
    - task functions must be self-contained — derive any randomness from
      a per-task [Rng.make seed] inside the function, never from shared
      state (this is the same discipline the repository already follows:
      nothing touches the global [Random] state);
    - with [jobs = 1] no domain is spawned and tasks run inline, in
      input order, on the calling domain — the sequential path is not
      merely equivalent but literally the same code path.

    {2 Scheduling}

    Worker domains are spawned {e lazily} on the first parallel {!map}
    and then {e persist}: every later [map] on the same pool (and, for
    {!global}, every [map] for the rest of the process) reuses them —
    no per-call domain spawns. Each of the [jobs] lanes (the submitting
    domain is lane 0) owns a Chase–Lev-style deque; [map] deals the
    element indices round-robin across the lanes, each lane drains its
    own deque in ascending index order, and a lane that runs dry steals
    single tasks from randomly-chosen victims. One element is one task —
    there are no static chunks — so a sweep mixing 1 ms and 100 ms cells
    (k = 2 protocol runs next to k = 160 pipelines) rebalances
    automatically instead of serializing behind the chunk that got the
    expensive cells. Lanes that find every deque empty block on a
    condition variable rather than spinning, so a straggler task does
    not have idle domains burning its CPU.

    Do not call {!map} from inside a task of the same (or any) pool —
    the nested call raises [Invalid_argument] instead of deadlocking.
    [map] may only be called from one caller at a time per pool (the
    harnesses always submit from the main domain). *)

type t

(** [default_jobs ()] resolves the parallelism level: the [BSM_JOBS]
    environment variable when set (must parse as a positive integer),
    otherwise [Domain.recommended_domain_count ()]. A [BSM_JOBS] value
    above the recommended domain count is clamped to it (and a warning
    is logged on the [bsm.pool] source, once per process — not once per
    call): oversubscribed domains time-share cores and contend on minor
    heaps, making every sweep slower. Explicit [?jobs] arguments to
    {!create}/{!with_pool}/{!resolve_jobs} are taken verbatim,
    clamp-free. *)
val default_jobs : unit -> int

(** [resolve_jobs ?jobs ()] is the CLI-flag precedence rule in one
    place: an explicit [jobs] (e.g. [--jobs]) wins verbatim — never
    clamped, never overridden by [BSM_JOBS] — and only when absent does
    {!default_jobs} (and hence the environment) apply. Raises
    [Invalid_argument] when [jobs < 1]. *)
val resolve_jobs : ?jobs:int -> unit -> int

(** [create ?jobs ()] makes a pool of [jobs] lanes ([jobs] defaults to
    {!default_jobs}). No domain is spawned yet: the [jobs - 1] workers
    start on the first parallel {!map} and persist until {!shutdown}.
    Raises [Invalid_argument] when [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

(** The process-wide persistent pool, created (with {!default_jobs}
    lanes) on first use and reused by every later call. An [at_exit]
    hook joins its domains so the process exits clean even under domain
    -leak debugging; {!shutdown_global} joins them earlier. If the
    global pool was shut down, the next [global ()] makes a fresh one. *)
val global : unit -> t

(** Join the global pool's domains now (idempotent; a no-op when
    {!global} was never called). *)
val shutdown_global : unit -> unit

(** Parallelism level the pool was created with (including the
    submitting domain). *)
val jobs : t -> int

(** [map pool f xs] applies [f] to every element of [xs], distributing
    calls over the pool's lanes, and returns the results {e in input
    order}. Every element runs even if others raise; if one or more
    calls raise, the exception of the lowest-indexed failing element is
    re-raised (with its backtrace) after all tasks have settled. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Cumulative scheduling counters since the pool was created. [tasks]
    counts executed elements, [steals] successful steals (0 on the
    [jobs = 1] path — nothing to steal), [batches] {!map} calls that ran
    at least one element. The sweep harness reports deltas of these in
    [BENCH_sweeps.json]; they describe scheduling only and never affect
    results. *)
type stats = {
  tasks : int;
  steals : int;
  batches : int;
}

val stats : t -> stats

(** [shutdown pool] signals the workers to exit and joins them.
    Idempotent, and safe to call from another domain while a {!map} is
    in flight — shutdown first waits for the current batch to retire
    (long-running processes, e.g. the serve daemon, reach this via
    {!shutdown_global} or its [at_exit] hook). Raises
    [Invalid_argument] when called from inside a pool task, where
    waiting for the batch would deadlock. Calling {!map} after
    [shutdown] raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] brackets [create]/[shutdown] around [f]. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(**/**)

(** Test hooks — not part of the public API. *)
module For_testing : sig
  (** Re-arm the once-per-process [BSM_JOBS] clamp warning so a test can
      observe exactly one emission. *)
  val reset_clamp_warning : unit -> unit
end
