(** Virtual point-to-point channels.

    Protocol machines are written against this interface rather than
    against {!Engine.env} directly, so the same protocol code runs over a
    physical fully-connected network (stride 1) or over the paper's
    simulated channels — majority proxy (Lemma 6), signature proxy
    (Lemma 8), or the timestamped relay of Lemma 10 — where one virtual
    round spans [stride] engine rounds. The channel implementations live in
    [Bsm_core.Channels]. *)

open Bsm_prelude

type t = {
  self : Party_id.t;
  stride : int;  (** engine rounds consumed per [sync] *)
  send : Party_id.t -> string -> unit;
      (** queue a virtual message for the current virtual round *)
  sync : unit -> (Party_id.t * string) list;
      (** advance one virtual round; returns messages sent to [self] in the
          previous virtual round, sorted by sender *)
  register_state : Engine.state_cell -> unit;
      (** forward a corruptible state cell to the engine's
          state-corruption seam ({!Engine.env.register_cell}); machines
          register their round-local state through this so scrambles
          reach protocol memory behind virtual channels too *)
}

(** Physical channels of the engine: one engine round per virtual round. *)
val direct : Engine.env -> t

(** [send_all t parties msg] sends to every listed party except [self]. *)
val send_all : t -> Party_id.t list -> string -> unit
