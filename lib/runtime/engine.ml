open Bsm_prelude
module Topology = Bsm_topology.Topology

let src = Logs.Src.create "bsm.engine" ~doc:"synchronous round engine"

module Log = (val Logs.src_log src : Logs.LOG)

type payload = string

type envelope = {
  src : Party_id.t;
  data : payload;
}

type env = {
  self : Party_id.t;
  k : int;
  round : unit -> int;
  send : Party_id.t -> payload -> unit;
  next_round : unit -> envelope list;
  output : payload -> unit;
  log : string -> unit;
}

let broadcast env targets msg =
  let send_unless_self p = if not (Party_id.equal p env.self) then env.send p msg in
  List.iter send_unless_self targets

type program = env -> unit

type link =
  | Of_topology of Topology.t
  | Custom of (Party_id.t -> Party_id.t -> bool)

type fault_model = { drop : round:int -> src:Party_id.t -> dst:Party_id.t -> bool }

let no_faults = { drop = (fun ~round:_ ~src:_ ~dst:_ -> false) }

type event = {
  event_round : int;
  event_src : Party_id.t;
  event_dst : Party_id.t;
  event_bytes : int;
  event_fate : [ `Delivered | `No_channel | `Omitted ];
}

let pp_event ppf e =
  let fate =
    match e.event_fate with
    | `Delivered -> "delivered"
    | `No_channel -> "no-channel"
    | `Omitted -> "omitted"
  in
  Format.fprintf ppf "r%d %a -> %a (%dB, %s)" e.event_round Party_id.pp e.event_src
    Party_id.pp e.event_dst e.event_bytes fate

type config = {
  k : int;
  link : link;
  max_rounds : int;
  faults : fault_model;
  trace_limit : int;
}

let config ?(max_rounds = 10_000) ?(faults = no_faults) ?(trace_limit = 0) ~k ~link () =
  if k <= 0 then invalid_arg "Engine.config: k must be positive";
  { k; link; max_rounds; faults; trace_limit }

type status =
  | Terminated
  | Out_of_rounds
  | Crashed of string

type party_result = {
  id : Party_id.t;
  status : status;
  out : payload option;
}

type metrics = {
  rounds_used : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped_topology : int;
  messages_dropped_fault : int;
  bytes_sent : int;
}

type result = {
  parties : party_result list;
  metrics : metrics;
  trace : event list;
}

(* --- Fiber machinery ------------------------------------------------- *)

type _ Effect.t +=
  | Send : Party_id.t * payload -> unit Effect.t
  | Next_round : envelope list Effect.t
  | Get_round : int Effect.t
  | Output : payload -> unit Effect.t
  | Log_line : string -> unit Effect.t

type fiber_state =
  | Waiting of (envelope list, unit) Effect.Deep.continuation
  | Finished
  | Failed of string

type cell = {
  id : Party_id.t;
  mutable state : fiber_state;
  mutable outbox : (Party_id.t * payload) list; (* reversed send order *)
  mutable inbox : envelope list; (* reversed arrival order *)
  mutable out : payload option;
}

let run cfg ~programs =
  let k = cfg.k in
  let roster = Party_id.all ~k in
  let connected =
    match cfg.link with
    | Of_topology t -> Topology.connected t
    | Custom f -> fun u v -> (not (Party_id.equal u v)) && f u v
  in
  let cells =
    Array.of_list
      (List.map
         (fun id -> { id; state = Finished; outbox = []; inbox = []; out = None })
         roster)
  in
  let cell_of id = cells.(Party_id.to_dense ~k id) in
  let iter_cells f = Array.iter f cells in
  let round = ref 0 in
  let trace = ref [] in
  let trace_count = ref 0 in
  let record event_src event_dst event_bytes event_fate =
    if !trace_count < cfg.trace_limit then begin
      incr trace_count;
      trace :=
        { event_round = !round; event_src; event_dst; event_bytes; event_fate }
        :: !trace
    end
  in
  let messages_sent = ref 0 in
  let messages_delivered = ref 0 in
  let dropped_topology = ref 0 in
  let dropped_fault = ref 0 in
  let bytes_sent = ref 0 in

  (* Runs [f ()] as [cell]'s fiber until it blocks on [Next_round],
     returns, or raises. *)
  let drive cell f =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> cell.state <- Finished);
        exnc =
          (fun exn ->
            Log.debug (fun m ->
                m "%a crashed: %s" Party_id.pp cell.id (Printexc.to_string exn));
            cell.state <- Failed (Printexc.to_string exn));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Send (dst, data) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  incr messages_sent;
                  cell.outbox <- (dst, data) :: cell.outbox;
                  continue cont ())
            | Next_round ->
              Some
                (fun (cont : (a, _) continuation) ->
                  cell.state <- Waiting cont)
            | Get_round -> Some (fun cont -> continue cont !round)
            | Output p ->
              Some
                (fun (cont : (a, _) continuation) ->
                  cell.out <- Some p;
                  continue cont ())
            | Log_line s ->
              Some
                (fun (cont : (a, _) continuation) ->
                  Log.debug (fun m -> m "r%d %a: %s" !round Party_id.pp cell.id s);
                  continue cont ())
            | _ -> None);
      }
  in

  let env_of id =
    {
      self = id;
      k;
      round = (fun () -> Effect.perform Get_round);
      send = (fun dst data -> Effect.perform (Send (dst, data)));
      next_round = (fun () -> Effect.perform Next_round);
      output = (fun p -> Effect.perform (Output p));
      log = (fun s -> Effect.perform (Log_line s));
    }
  in

  (* Round 0: start every fiber. *)
  iter_cells (fun cell ->
      let program = programs cell.id in
      drive cell (fun () -> program (env_of cell.id)));

  (* Deliver this round's traffic, then resume waiting fibers. *)
  let deliver () =
    let deliver_message src (dst, data) =
      if Party_id.index dst >= k || not (connected src dst) then begin
        incr dropped_topology;
        record src dst (String.length data) `No_channel;
        Log.debug (fun m ->
            m "r%d: dropped %a -> %a (no channel)" !round Party_id.pp src Party_id.pp
              dst)
      end
      else if cfg.faults.drop ~round:!round ~src ~dst then begin
        incr dropped_fault;
        record src dst (String.length data) `Omitted
      end
      else begin
        incr messages_delivered;
        bytes_sent := !bytes_sent + String.length data;
        record src dst (String.length data) `Delivered;
        (cell_of dst).inbox <- { src; data } :: (cell_of dst).inbox
      end
    in
    iter_cells (fun cell ->
        List.iter (deliver_message cell.id) (List.rev cell.outbox);
        cell.outbox <- [])
  in

  let some_waiting () =
    Array.exists
      (fun c ->
        match c.state with
        | Waiting _ -> true
        | Finished | Failed _ -> false)
      cells
  in

  while some_waiting () && !round < cfg.max_rounds do
    deliver ();
    incr round;
    iter_cells
      (fun cell ->
        match cell.state with
        | Waiting cont ->
          (* Stable inbox order: sort by sender, preserving per-sender send
             order (the list was built reversed, so re-reverse first). *)
          let inbox =
            List.stable_sort
              (fun a b -> Party_id.compare a.src b.src)
              (List.rev cell.inbox)
          in
          cell.inbox <- [];
          (* Resuming re-enters the deep handler installed by [drive], which
             updates [cell.state] on park / return / raise; pre-set Finished
             for the plain-return path before any effect fires. *)
          cell.state <- Finished;
          Effect.Deep.continue cont inbox
        | Finished | Failed _ -> ())
  done;
  (* Flush messages sent in the final round so accounting covers them even
     though no fiber is left to read them. *)
  deliver ();

  let party_result cell =
    let status =
      match cell.state with
      | Finished -> Terminated
      | Waiting _ -> Out_of_rounds
      | Failed msg -> Crashed msg
    in
    { id = cell.id; status; out = cell.out }
  in
  {
    parties = List.map party_result (Array.to_list cells);
    trace = List.rev !trace;
    metrics =
      {
        rounds_used = !round;
        messages_sent = !messages_sent;
        messages_delivered = !messages_delivered;
        messages_dropped_topology = !dropped_topology;
        messages_dropped_fault = !dropped_fault;
        bytes_sent = !bytes_sent;
      };
  }

let find_result_opt res p =
  List.find_opt (fun (r : party_result) -> Party_id.equal r.id p) res.parties

let find_result res p =
  match find_result_opt res p with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Engine.find_result: party %s not in roster of %d parties"
         (Party_id.to_string p)
         (List.length res.parties))
