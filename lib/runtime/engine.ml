open Bsm_prelude
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire

let src = Logs.Src.create "bsm.engine" ~doc:"synchronous round engine"

module Log = (val Logs.src_log src : Logs.LOG)

type payload = string

type envelope = {
  src : Party_id.t;
  data : Wire.Slice.t;
}

(* A corruptible state cell: one protocol-level mutable value exposed to
   the state-corruption plane through its canonical wire encoding.
   [cell_encode] snapshots the current value; [cell_set] decodes candidate
   bytes into the ref and reports whether they were well-formed (a decode
   failure leaves the value untouched). *)
type state_cell = {
  cell_encode : unit -> payload;
  cell_set : payload -> bool;
}

let state_cell (type a) (codec : a Wire.t) (r : a ref) : state_cell =
  {
    cell_encode = (fun () -> Wire.encode codec !r);
    cell_set =
      (fun bytes ->
        (* Codecs may validate in [inject] by raising; treat any failure
           as "not a well-formed state". *)
        match Wire.decode codec bytes with
        | Ok v ->
          r := v;
          true
        | Error _ | (exception _) -> false);
  }

type env = {
  self : Party_id.t;
  k : int;
  round : unit -> int;
  send : Party_id.t -> payload -> unit;
  send_w : 'a. 'a Wire.t -> Party_id.t -> 'a -> unit;
  send_slice : Party_id.t -> Wire.Slice.t -> unit;
  send_multi_w : 'a. 'a Wire.t -> Party_id.t list -> 'a -> unit;
  next_round : unit -> envelope list;
  output : payload -> unit;
  log : string -> unit;
  register_state : 'a. 'a Wire.t -> 'a ref -> unit;
  register_cell : state_cell -> unit;
}

let broadcast env targets msg =
  let send_unless_self p = if not (Party_id.equal p env.self) then env.send p msg in
  List.iter send_unless_self targets

let broadcast_w env c targets v =
  env.send_multi_w c
    (List.filter (fun p -> not (Party_id.equal p env.self)) targets)
    v

type program = env -> unit

type link =
  | Of_topology of Topology.t
  | Custom of (Party_id.t -> Party_id.t -> bool)

type fault_model = {
  drop : round:int -> src:Party_id.t -> dst:Party_id.t -> bool;
  drop_label : round:int -> src:Party_id.t -> dst:Party_id.t -> string option;
  corrupt :
    round:int ->
    src:Party_id.t ->
    dst:Party_id.t ->
    prev:payload option ->
    payload ->
    (payload * string) option;
  scramble :
    round:int ->
    party:Party_id.t ->
    cell:int ->
    attempt:int ->
    payload ->
    (payload * string) option;
}

let no_label ~round:_ ~src:_ ~dst:_ = None
let no_corrupt ~round:_ ~src:_ ~dst:_ ~prev:_ _ = None
let no_scramble ~round:_ ~party:_ ~cell:_ ~attempt:_ _ = None

let fault_model ?(label = no_label) ?(corrupt = no_corrupt)
    ?(scramble = no_scramble) drop =
  { drop; drop_label = label; corrupt; scramble }

let no_faults = fault_model (fun ~round:_ ~src:_ ~dst:_ -> false)

(* How many mutation attempts the scramble hook gets per (round, party,
   cell) before the cell is left untouched. A firing component keeps
   firing across attempts (the coin ignores [attempt]); only the mutated
   bytes vary, so the retry loop searches for a decodable — i.e.
   arbitrary but well-formed — state. *)
let max_scramble_attempts = 8

(* The one scramble sweep, shared verbatim by the in-process engine and
   the Live per-party-domain executor so seq == par stays bit-identical:
   per registered cell (in registration order), ask the hook; on a hit,
   retry with fresh bytes until a mutation decodes or the attempt budget
   runs out. [on_scrambled] fires once per cell whose state was actually
   replaced. *)
let scramble_cells ~scramble ~round ~party scells ~on_scrambled =
  List.iteri
    (fun ci c ->
      let payload = c.cell_encode () in
      let rec go attempt =
        if attempt < max_scramble_attempts then
          match scramble ~round ~party ~cell:ci ~attempt payload with
          | None -> ()
          | Some (bytes, label) ->
            if c.cell_set bytes then on_scrambled ~bytes ~label
            else go (attempt + 1)
      in
      go 0)
    scells

type event = {
  event_round : int;
  event_src : Party_id.t;
  event_dst : Party_id.t;
  event_bytes : int;
  event_fate : [ `Delivered | `No_channel | `Omitted | `Corrupted | `Scrambled ];
  event_label : string option;
}

let pp_event ppf e =
  let fate =
    match e.event_fate with
    | `Delivered -> "delivered"
    | `No_channel -> "no-channel"
    | `Omitted -> "omitted"
    | `Corrupted -> "corrupted"
    | `Scrambled -> "scrambled"
  in
  Format.fprintf ppf "r%d %a -> %a (%dB, %s%s)" e.event_round Party_id.pp e.event_src
    Party_id.pp e.event_dst e.event_bytes fate
    (match e.event_label with
    | None -> ""
    | Some l -> ": " ^ l)

type config = {
  k : int;
  link : link;
  max_rounds : int;
  faults : fault_model;
  trace_limit : int;
}

let config ?(max_rounds = 10_000) ?(faults = no_faults) ?(trace_limit = 0) ~k ~link () =
  if k <= 0 then invalid_arg "Engine.config: k must be positive";
  { k; link; max_rounds; faults; trace_limit }

type status =
  | Terminated
  | Out_of_rounds
  | Crashed of string

type party_result = {
  id : Party_id.t;
  status : status;
  out : payload option;
  finished_round : int option;
}

type metrics = {
  rounds_used : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped_topology : int;
  messages_dropped_fault : int;
  messages_corrupted : int;
  messages_dropped_by_label : (string * int) list;
  bytes_sent : int;
  bytes_delivered : int;
  cells_scrambled : int;
  first_scramble_round : int option;
}

type result = {
  parties : party_result list;
  metrics : metrics;
  trace : event list;
}

(* --- Binary trace log ------------------------------------------------- *)

(* Traces spill to fixed-width binary records instead of an in-memory
   event array: one [Bytes.t] grown geometrically (capped at
   [trace_limit] records) holds the whole log, so tracing costs zero
   per-event heap allocations. Layout, little-endian:

     round   : 4 bytes (int32)
     src     : 8 bytes (int64, [index lsl 1 lor side_bit])
     dst     : 8 bytes (same packing; dst may lie outside the roster)
     bytes   : 4 bytes (int32)
     fate    : 1 byte  (0 delivered, 1 no-channel, 2 omitted, 3 corrupted,
                        4 scrambled)
     label   : 2 bytes (intern-table id + 1; 0 = no label)

   Labels are interned once per distinct string (fault schedules use a
   handful of component names), so the u16 is not a practical limit.
   The log keeps the {e first} [trace_limit] events — identical
   truncation semantics to the old flat buffer — and is decoded back to
   [event list] only once, when the run returns. *)

let trace_rec_size = 27

type trace_log = {
  t_limit : int;
  mutable t_buf : Bytes.t;
  mutable t_count : int;
  mutable t_labels : (string * int) list; (* label -> id *)
  mutable t_labels_rev : string list; (* reversed intern order *)
  mutable t_nlabels : int;
}

let trace_log limit =
  {
    t_limit = max 0 limit;
    t_buf = Bytes.empty;
    t_count = 0;
    t_labels = [];
    t_labels_rev = [];
    t_nlabels = 0;
  }

let trace_intern t l =
  match List.assoc_opt l t.t_labels with
  | Some i -> i
  | None ->
    let i = t.t_nlabels in
    t.t_nlabels <- i + 1;
    t.t_labels <- (l, i) :: t.t_labels;
    t.t_labels_rev <- l :: t.t_labels_rev;
    i

let pack_pid p =
  (Party_id.index p lsl 1)
  lor (match Party_id.side p with Side.Left -> 0 | Side.Right -> 1)

let unpack_pid v =
  Party_id.make (if v land 1 = 0 then Side.Left else Side.Right) (v lsr 1)

let fate_code = function
  | `Delivered -> 0
  | `No_channel -> 1
  | `Omitted -> 2
  | `Corrupted -> 3
  | `Scrambled -> 4

let fate_of_code = function
  | 0 -> `Delivered
  | 1 -> `No_channel
  | 2 -> `Omitted
  | 4 -> `Scrambled
  | _ -> `Corrupted

let trace_record t ~round ~src ~dst ~bytes ~fate ~label =
  if t.t_count < t.t_limit then begin
    let need = (t.t_count + 1) * trace_rec_size in
    if Bytes.length t.t_buf < need then begin
      let cap =
        min (t.t_limit * trace_rec_size)
          (max (2 * Bytes.length t.t_buf) (64 * trace_rec_size))
      in
      let cap = max cap need in
      let b = Bytes.create cap in
      Bytes.blit t.t_buf 0 b 0 (t.t_count * trace_rec_size);
      t.t_buf <- b
    end;
    let b = t.t_buf and p = t.t_count * trace_rec_size in
    Bytes.set_int32_le b p (Int32.of_int round);
    Bytes.set_int64_le b (p + 4) (Int64.of_int (pack_pid src));
    Bytes.set_int64_le b (p + 12) (Int64.of_int (pack_pid dst));
    Bytes.set_int32_le b (p + 20) (Int32.of_int bytes);
    Bytes.set_uint8 b (p + 24) (fate_code fate);
    Bytes.set_uint16_le b (p + 25)
      (match label with None -> 0 | Some l -> trace_intern t l + 1);
    t.t_count <- t.t_count + 1
  end

let trace_round_at t i = Int32.to_int (Bytes.get_int32_le t.t_buf (i * trace_rec_size))

let trace_events t =
  let labels = Array.of_list (List.rev t.t_labels_rev) in
  let b = t.t_buf in
  List.init t.t_count (fun i ->
      let p = i * trace_rec_size in
      let label =
        match Bytes.get_uint16_le b (p + 25) with
        | 0 -> None
        | li -> Some labels.(li - 1)
      in
      {
        event_round = Int32.to_int (Bytes.get_int32_le b p);
        event_src = unpack_pid (Int64.to_int (Bytes.get_int64_le b (p + 4)));
        event_dst = unpack_pid (Int64.to_int (Bytes.get_int64_le b (p + 12)));
        event_bytes = Int32.to_int (Bytes.get_int32_le b (p + 20));
        event_fate = fate_of_code (Bytes.get_uint8 b (p + 24));
        event_label = label;
      })

(* --- Fiber machinery ------------------------------------------------- *)

type _ Effect.t +=
  | Send : Party_id.t * payload -> unit Effect.t
  | Send_w : 'a Wire.t * Party_id.t * 'a -> unit Effect.t
  | Send_slice : Party_id.t * Wire.Slice.t -> unit Effect.t
  | Send_multi_w : 'a Wire.t * Party_id.t list * 'a -> unit Effect.t
  | Next_round : envelope list Effect.t
  | Get_round : int Effect.t
  | Output : payload -> unit Effect.t
  | Log_line : string -> unit Effect.t
  | Register_state : state_cell -> unit Effect.t

type fiber_state =
  | Waiting of (envelope list, unit) Effect.Deep.continuation
  | Finished
  | Failed of string

(* Per-sender frame arena: every send this round appends its bytes into
   one shared encoder ([send_w] encodes in place — no per-message string
   exists at all), and frame [i] is the explicit span
   [out_offs.(i) .. out_offs.(i) + out_lens.(i)). Spans may be shared:
   a multicast ([send_multi_w]) encodes its value once and records the
   same span under every target, and [send] of the {e same} string it
   just appended ([last_data], physical equality — the
   [Engine.broadcast] pattern) reuses the existing span instead of
   appending again. Delivery freezes the arena into one immutable base
   string and hands out [(offset, len)] views of it; the encoder's
   storage is then reset and reused next round. *)
type outbox = {
  arena : Wire.Enc.t;
  mutable out_dsts : Party_id.t array;
  mutable out_offs : int array;
  mutable out_lens : int array;
  mutable out_len : int;
  mutable last_data : payload; (* last string appended via [Send] this round *)
  mutable last_off : int;
}

(* Per-recipient span vector: the round's delivery sweep appends
   [(sender, base, off, len)] rows in sender-dense order (the sweep
   walks sender cells in roster order), so the append order {e is} the
   inbox order — sorted by sender, send order preserved per sender —
   with no per-sender buckets and no sort. *)
type inbox = {
  mutable in_src : int array; (* sender dense id *)
  mutable in_base : string array;
  mutable in_off : int array;
  mutable in_len : int array;
  mutable in_count : int;
}

type cell = {
  id : Party_id.t;
  outbox : outbox;
  inbox : inbox;
  mutable state : fiber_state;
  mutable out : payload option;
  mutable scells : state_cell list; (* reverse registration order *)
  mutable finished : int option; (* round the fiber returned in *)
}

let no_strings : string array = [||]

let outbox_record ob dst ~off ~len =
  let cap = Array.length ob.out_dsts in
  if ob.out_len = cap then begin
    let cap' = max 8 (2 * cap) in
    let dsts' = Array.make cap' dst
    and offs' = Array.make cap' 0
    and lens' = Array.make cap' 0 in
    Array.blit ob.out_dsts 0 dsts' 0 ob.out_len;
    Array.blit ob.out_offs 0 offs' 0 ob.out_len;
    Array.blit ob.out_lens 0 lens' 0 ob.out_len;
    ob.out_dsts <- dsts';
    ob.out_offs <- offs';
    ob.out_lens <- lens'
  end;
  ob.out_dsts.(ob.out_len) <- dst;
  ob.out_offs.(ob.out_len) <- off;
  ob.out_lens.(ob.out_len) <- len;
  ob.out_len <- ob.out_len + 1

let inbox_push ib ~src_dense ~base ~off ~len =
  let cap = Array.length ib.in_src in
  if ib.in_count = cap then begin
    let cap' = max 8 (2 * cap) in
    let src' = Array.make cap' 0
    and base' = Array.make cap' ""
    and off' = Array.make cap' 0
    and len' = Array.make cap' 0 in
    Array.blit ib.in_src 0 src' 0 ib.in_count;
    Array.blit ib.in_base 0 base' 0 ib.in_count;
    Array.blit ib.in_off 0 off' 0 ib.in_count;
    Array.blit ib.in_len 0 len' 0 ib.in_count;
    ib.in_src <- src';
    ib.in_base <- base';
    ib.in_off <- off';
    ib.in_len <- len'
  end;
  ib.in_src.(ib.in_count) <- src_dense;
  ib.in_base.(ib.in_count) <- base;
  ib.in_off.(ib.in_count) <- off;
  ib.in_len.(ib.in_count) <- len;
  ib.in_count <- ib.in_count + 1

let run cfg ~programs =
  let k = cfg.k in
  let roster = Party_id.all ~k in
  let roster_arr = Array.of_list roster in
  let connected =
    match cfg.link with
    | Of_topology t -> Topology.connected t
    | Custom f -> fun u v -> (not (Party_id.equal u v)) && f u v
  in
  let cells =
    Array.map
      (fun id ->
        {
          id;
          outbox =
            {
              arena = Wire.Enc.create ();
              out_dsts = [||];
              out_offs = [||];
              out_lens = [||];
              out_len = 0;
              last_data = "";
              last_off = 0;
            };
          inbox =
            {
              in_src = [||];
              in_base = no_strings;
              in_off = [||];
              in_len = [||];
              in_count = 0;
            };
          state = Finished;
          out = None;
          scells = [];
          finished = None;
        })
      roster_arr
  in
  let cell_of id = cells.(Party_id.to_dense ~k id) in
  let iter_cells f = Array.iter f cells in
  let round = ref 0 in
  let tlog = trace_log cfg.trace_limit in
  let record ?(label = None) event_src event_dst event_bytes event_fate =
    trace_record tlog ~round:!round ~src:event_src ~dst:event_dst ~bytes:event_bytes
      ~fate:event_fate ~label
  in
  let messages_sent = ref 0 in
  let messages_delivered = ref 0 in
  let dropped_topology = ref 0 in
  let dropped_fault = ref 0 in
  (* Per-label omission counts; a handful of schedule components at most,
     so an assoc list beats a hash table. *)
  let dropped_by_label : (string * int ref) list ref = ref [] in
  let count_label l =
    match List.assoc_opt l !dropped_by_label with
    | Some r -> incr r
    | None -> dropped_by_label := (l, ref 1) :: !dropped_by_label
  in
  let messages_corrupted = ref 0 in
  let bytes_sent = ref 0 in
  let bytes_delivered = ref 0 in
  let cells_scrambled = ref 0 in
  let first_scramble_round = ref None in

  (* Replay support for corrupting fault models: the last payload
     {e delivered} on each ordered link in any {e earlier} round, indexed
     by [src_dense * 2k + dst_dense]. Updates are staged during a
     delivery sweep and committed only after it, so a replay mutation can
     never echo bytes from the round currently being delivered. Gated on
     physical inequality with [no_corrupt]: fault-free runs pay nothing
     (no per-frame string materialization, no staging). *)
  let track_prev = cfg.faults.corrupt != no_corrupt in
  let prev_frames : payload option array =
    if track_prev then Array.make (4 * k * k) None else [||]
  in
  let staged_prev : (int * payload) list ref = ref [] in
  let commit_prev () =
    List.iter (fun (i, p) -> prev_frames.(i) <- Some p) (List.rev !staged_prev);
    staged_prev := []
  in

  (* Runs [f ()] as [cell]'s fiber until it blocks on [Next_round],
     returns, or raises. *)
  let drive cell f =
    let open Effect.Deep in
    match_with f ()
      {
        retc =
          (fun () ->
            cell.state <- Finished;
            cell.finished <- Some !round);
        exnc =
          (fun exn ->
            Log.debug (fun m ->
                m "%a crashed: %s" Party_id.pp cell.id (Printexc.to_string exn));
            cell.state <- Failed (Printexc.to_string exn));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Send (dst, data) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  incr messages_sent;
                  let len = String.length data in
                  bytes_sent := !bytes_sent + len;
                  let ob = cell.outbox in
                  (* [Engine.broadcast] sends one string to many targets
                     back to back: physical equality with the last
                     appended string means the bytes are already in the
                     arena — share the span. *)
                  if data == ob.last_data && len > 0 then
                    outbox_record ob dst ~off:ob.last_off ~len
                  else begin
                    let off = Wire.Enc.length ob.arena in
                    Wire.Enc.append ob.arena data;
                    ob.last_data <- data;
                    ob.last_off <- off;
                    outbox_record ob dst ~off ~len
                  end;
                  continue cont ())
            | Send_w (c, dst, v) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  let arena = cell.outbox.arena in
                  let start = Wire.Enc.length arena in
                  match c.Wire.write arena v with
                  | () ->
                    incr messages_sent;
                    let len = Wire.Enc.length arena - start in
                    bytes_sent := !bytes_sent + len;
                    outbox_record cell.outbox dst ~off:start ~len;
                    continue cont ()
                  | exception exn ->
                    (* A codec that raises mid-write must not leave half a
                       frame in the shared arena. *)
                    Wire.Enc.truncate arena start;
                    discontinue cont exn)
            | Send_multi_w (c, dsts, v) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  (* One in-place encode, one span, many targets: the
                     relay/broadcast fan-out pattern without re-walking
                     the codec or duplicating the bytes per recipient. *)
                  let arena = cell.outbox.arena in
                  let start = Wire.Enc.length arena in
                  match c.Wire.write arena v with
                  | () ->
                    let len = Wire.Enc.length arena - start in
                    if dsts = [] then Wire.Enc.truncate arena start
                    else
                      List.iter
                        (fun dst ->
                          incr messages_sent;
                          bytes_sent := !bytes_sent + len;
                          outbox_record cell.outbox dst ~off:start ~len)
                        dsts;
                    continue cont ()
                  | exception exn ->
                    Wire.Enc.truncate arena start;
                    discontinue cont exn)
            | Send_slice (dst, s) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  incr messages_sent;
                  let len = Wire.Slice.length s in
                  bytes_sent := !bytes_sent + len;
                  let off = Wire.Enc.length cell.outbox.arena in
                  Wire.Enc.append_sub cell.outbox.arena s.Wire.Slice.base
                    ~off:s.Wire.Slice.off ~len:s.Wire.Slice.len;
                  outbox_record cell.outbox dst ~off ~len;
                  continue cont ())
            | Next_round ->
              Some
                (fun (cont : (a, _) continuation) ->
                  cell.state <- Waiting cont)
            | Get_round -> Some (fun cont -> continue cont !round)
            | Output p ->
              Some
                (fun (cont : (a, _) continuation) ->
                  cell.out <- Some p;
                  continue cont ())
            | Log_line s ->
              Some
                (fun (cont : (a, _) continuation) ->
                  Log.debug (fun m -> m "r%d %a: %s" !round Party_id.pp cell.id s);
                  continue cont ())
            | Register_state sc ->
              Some
                (fun (cont : (a, _) continuation) ->
                  cell.scells <- sc :: cell.scells;
                  continue cont ())
            | _ -> None);
      }
  in

  let env_of id =
    {
      self = id;
      k;
      round = (fun () -> Effect.perform Get_round);
      send = (fun dst data -> Effect.perform (Send (dst, data)));
      send_w = (fun c dst v -> Effect.perform (Send_w (c, dst, v)));
      send_slice = (fun dst s -> Effect.perform (Send_slice (dst, s)));
      send_multi_w = (fun c dsts v -> Effect.perform (Send_multi_w (c, dsts, v)));
      next_round = (fun () -> Effect.perform Next_round);
      output = (fun p -> Effect.perform (Output p));
      log = (fun s -> Effect.perform (Log_line s));
      register_state = (fun c r -> Effect.perform (Register_state (state_cell c r)));
      register_cell = (fun sc -> Effect.perform (Register_state sc));
    }
  in

  (* Round 0: start every fiber. *)
  iter_cells (fun cell ->
      let program = programs cell.id in
      drive cell (fun () -> program (env_of cell.id)));

  (* Deliver this round's traffic: freeze each sender's arena into one
     immutable base string and fan its [(offset, len)] spans out to the
     recipients' span vectors — one pass per sender, zero copies on the
     clean path. Drop precedence is unchanged: topology > fault-drop >
     corrupt. *)
  let deliver () =
    iter_cells (fun cell ->
        let ob = cell.outbox in
        if ob.out_len > 0 then begin
          let src = cell.id in
          let src_dense = Party_id.to_dense ~k src in
          let base = Wire.Enc.to_string ob.arena in
          for i = 0 to ob.out_len - 1 do
            let off = ob.out_offs.(i) in
            let len = ob.out_lens.(i) in
            let dst = ob.out_dsts.(i) in
            let dst_index = Party_id.index dst in
            if dst_index < 0 then
              invalid_arg
                (Printf.sprintf
                   "Engine.deliver_message: destination %s has a negative index \
                    (corrupt Party_id)"
                   (Party_id.to_string dst));
            if dst_index >= k || not (connected src dst) then begin
              incr dropped_topology;
              record src dst len `No_channel;
              Log.debug (fun m ->
                  m "r%d: dropped %a -> %a (no channel)" !round Party_id.pp src
                    Party_id.pp dst)
            end
            else if cfg.faults.drop ~round:!round ~src ~dst then begin
              incr dropped_fault;
              let label = cfg.faults.drop_label ~round:!round ~src ~dst in
              (match label with
              | Some l -> count_label l
              | None -> ());
              record ~label src dst len `Omitted
            end
            else begin
              let target = cell_of dst in
              if track_prev then begin
                (* The corrupt hook and its replay memory are string-based:
                   materialize a span-local copy so mutations never alias
                   the shared arena, and deliver whatever the hook returns
                   (bytes and replay memory both reflect the mutated
                   frame). *)
                let link_idx = (src_dense * 2 * k) + Party_id.to_dense ~k dst in
                let data = String.sub base off len in
                match
                  cfg.faults.corrupt ~round:!round ~src ~dst
                    ~prev:prev_frames.(link_idx) data
                with
                | None ->
                  incr messages_delivered;
                  bytes_delivered := !bytes_delivered + len;
                  record src dst len `Delivered;
                  staged_prev := (link_idx, data) :: !staged_prev;
                  inbox_push target.inbox ~src_dense ~base ~off ~len
                | Some (data', l) ->
                  incr messages_corrupted;
                  count_label l;
                  let len' = String.length data' in
                  incr messages_delivered;
                  bytes_delivered := !bytes_delivered + len';
                  record ~label:(Some l) src dst len' `Corrupted;
                  staged_prev := (link_idx, data') :: !staged_prev;
                  inbox_push target.inbox ~src_dense ~base:data' ~off:0 ~len:len'
              end
              else begin
                incr messages_delivered;
                bytes_delivered := !bytes_delivered + len;
                record src dst len `Delivered;
                inbox_push target.inbox ~src_dense ~base ~off ~len
              end
            end
          done;
          (* Reset keeps the encoder's storage for next round; the frozen
             base string is owned by the delivered spans alone. *)
          Wire.Enc.reset ob.arena;
          ob.out_len <- 0;
          ob.last_data <- "";
          ob.last_off <- 0
        end);
    if track_prev then commit_prev ()
  in

  (* Collect [cell]'s span vector into the inbox list the fiber sees.
     The vector was appended in sender-dense order with send order
     preserved per sender (the delivery sweep walks sender cells in
     roster order), so the list is exactly the old sorted-by-sender
     inbox — by construction, no sort. *)
  let collect_inbox cell =
    let ib = cell.inbox in
    if ib.in_count = 0 then []
    else begin
      let acc = ref [] in
      for i = ib.in_count - 1 downto 0 do
        acc :=
          {
            src = roster_arr.(ib.in_src.(i));
            data = Wire.Slice.make ib.in_base.(i) ~off:ib.in_off.(i) ~len:ib.in_len.(i);
          }
          :: !acc
      done;
      (* Drop the base-string references so arenas from this round are
         not retained past it by the reused vector. *)
      Array.fill ib.in_base 0 ib.in_count "";
      ib.in_count <- 0;
      !acc
    end
  in

  let some_waiting () =
    Array.exists
      (fun c ->
        match c.state with
        | Waiting _ -> true
        | Finished | Failed _ -> false)
      cells
  in

  (* State scrambling runs between rounds — after the previous round's
     delivery sweep, before any fiber resumes — against parties still in
     the protocol, so a corrupted cell is exactly "the value the party
     wakes up with". Gated on physical inequality like [track_prev]:
     scramble-free runs never touch the registries. *)
  let track_scramble = cfg.faults.scramble != no_scramble in
  let scramble_round () =
    if track_scramble then
      iter_cells (fun cell ->
          match cell.state with
          | Waiting _ ->
            scramble_cells ~scramble:cfg.faults.scramble ~round:!round
              ~party:cell.id (List.rev cell.scells)
              ~on_scrambled:(fun ~bytes ~label ->
                incr cells_scrambled;
                if !first_scramble_round = None then
                  first_scramble_round := Some !round;
                count_label label;
                record ~label:(Some label) cell.id cell.id (String.length bytes)
                  `Scrambled)
          | Finished | Failed _ -> ())
  in

  while some_waiting () && !round < cfg.max_rounds do
    deliver ();
    incr round;
    scramble_round ();
    iter_cells
      (fun cell ->
        match cell.state with
        | Waiting cont ->
          let inbox = collect_inbox cell in
          (* Resuming re-enters the deep handler installed by [drive], which
             updates [cell.state] on park / return / raise; pre-set Finished
             for the plain-return path before any effect fires. *)
          cell.state <- Finished;
          Effect.Deep.continue cont inbox
        | Finished | Failed _ -> ())
  done;
  (* Flush messages sent in the final round so accounting covers them even
     though no fiber is left to read them. [round] was last incremented
     before those fibers ran, so the flushed events carry the round their
     messages were sent in — the same convention as in-loop deliveries,
     keeping trace rounds monotone up to [rounds_used]. *)
  deliver ();
  assert (
    let ok = ref true in
    for i = 0 to tlog.t_count - 1 do
      let r = trace_round_at tlog i in
      if r > !round || (i > 0 && r < trace_round_at tlog (i - 1)) then ok := false
    done;
    !ok);

  let party_result cell =
    let status =
      match cell.state with
      | Finished -> Terminated
      | Waiting _ -> Out_of_rounds
      | Failed msg -> Crashed msg
    in
    { id = cell.id; status; out = cell.out; finished_round = cell.finished }
  in
  {
    parties = List.map party_result (Array.to_list cells);
    trace = trace_events tlog;
    metrics =
      {
        rounds_used = !round;
        messages_sent = !messages_sent;
        messages_delivered = !messages_delivered;
        messages_dropped_topology = !dropped_topology;
        messages_dropped_fault = !dropped_fault;
        messages_corrupted = !messages_corrupted;
        messages_dropped_by_label =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (List.map (fun (l, r) -> l, !r) !dropped_by_label);
        bytes_sent = !bytes_sent;
        bytes_delivered = !bytes_delivered;
        cells_scrambled = !cells_scrambled;
        first_scramble_round = !first_scramble_round;
      };
  }

let find_result_opt res p =
  List.find_opt (fun (r : party_result) -> Party_id.equal r.id p) res.parties

let find_result res p =
  match find_result_opt res p with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Engine.find_result: party %s not in roster of %d parties"
         (Party_id.to_string p)
         (List.length res.parties))
