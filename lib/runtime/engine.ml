open Bsm_prelude
module Topology = Bsm_topology.Topology

let src = Logs.Src.create "bsm.engine" ~doc:"synchronous round engine"

module Log = (val Logs.src_log src : Logs.LOG)

type payload = string

type envelope = {
  src : Party_id.t;
  data : payload;
}

type env = {
  self : Party_id.t;
  k : int;
  round : unit -> int;
  send : Party_id.t -> payload -> unit;
  next_round : unit -> envelope list;
  output : payload -> unit;
  log : string -> unit;
}

let broadcast env targets msg =
  let send_unless_self p = if not (Party_id.equal p env.self) then env.send p msg in
  List.iter send_unless_self targets

type program = env -> unit

type link =
  | Of_topology of Topology.t
  | Custom of (Party_id.t -> Party_id.t -> bool)

type fault_model = {
  drop : round:int -> src:Party_id.t -> dst:Party_id.t -> bool;
  drop_label : round:int -> src:Party_id.t -> dst:Party_id.t -> string option;
  corrupt :
    round:int ->
    src:Party_id.t ->
    dst:Party_id.t ->
    prev:payload option ->
    payload ->
    (payload * string) option;
}

let no_label ~round:_ ~src:_ ~dst:_ = None
let no_corrupt ~round:_ ~src:_ ~dst:_ ~prev:_ _ = None

let fault_model ?(label = no_label) ?(corrupt = no_corrupt) drop =
  { drop; drop_label = label; corrupt }

let no_faults = fault_model (fun ~round:_ ~src:_ ~dst:_ -> false)

type event = {
  event_round : int;
  event_src : Party_id.t;
  event_dst : Party_id.t;
  event_bytes : int;
  event_fate : [ `Delivered | `No_channel | `Omitted | `Corrupted ];
  event_label : string option;
}

let pp_event ppf e =
  let fate =
    match e.event_fate with
    | `Delivered -> "delivered"
    | `No_channel -> "no-channel"
    | `Omitted -> "omitted"
    | `Corrupted -> "corrupted"
  in
  Format.fprintf ppf "r%d %a -> %a (%dB, %s%s)" e.event_round Party_id.pp e.event_src
    Party_id.pp e.event_dst e.event_bytes fate
    (match e.event_label with
    | None -> ""
    | Some l -> ": " ^ l)

type config = {
  k : int;
  link : link;
  max_rounds : int;
  faults : fault_model;
  trace_limit : int;
}

let config ?(max_rounds = 10_000) ?(faults = no_faults) ?(trace_limit = 0) ~k ~link () =
  if k <= 0 then invalid_arg "Engine.config: k must be positive";
  { k; link; max_rounds; faults; trace_limit }

type status =
  | Terminated
  | Out_of_rounds
  | Crashed of string

type party_result = {
  id : Party_id.t;
  status : status;
  out : payload option;
}

type metrics = {
  rounds_used : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped_topology : int;
  messages_dropped_fault : int;
  messages_corrupted : int;
  messages_dropped_by_label : (string * int) list;
  bytes_sent : int;
}

type result = {
  parties : party_result list;
  metrics : metrics;
  trace : event list;
}

(* --- Fiber machinery ------------------------------------------------- *)

type _ Effect.t +=
  | Send : Party_id.t * payload -> unit Effect.t
  | Next_round : envelope list Effect.t
  | Get_round : int Effect.t
  | Output : payload -> unit Effect.t
  | Log_line : string -> unit Effect.t

type fiber_state =
  | Waiting of (envelope list, unit) Effect.Deep.continuation
  | Finished
  | Failed of string

(* Growable (destination, payload) vector reused across rounds: sends
   append, delivery scans [0 .. len-1] in natural send order (no list
   reversal), then the round resets [len] keeping the capacity. *)
type outbox = {
  mutable out_dsts : Party_id.t array;
  mutable out_data : payload array;
  mutable out_len : int;
}

(* One inbox bucket per sender: payloads in send order. Delivery fills
   buckets; the resume step walks senders in dense roster order, which
   yields exactly the old sorted-by-sender, per-sender-order-preserving
   inbox without any per-round sort. *)
type bucket = {
  mutable bkt_data : payload array;
  mutable bkt_len : int;
}

type cell = {
  id : Party_id.t;
  outbox : outbox;
  buckets : bucket array; (* 2k slots, indexed by sender dense id *)
  mutable inbox_count : int; (* messages across all buckets this round *)
  mutable state : fiber_state;
  mutable out : payload option;
}

let no_strings : payload array = [||]

let outbox_push ob dst data =
  let cap = Array.length ob.out_data in
  if ob.out_len = cap then begin
    let cap' = max 8 (2 * cap) in
    let dsts' = Array.make cap' dst and data' = Array.make cap' "" in
    Array.blit ob.out_dsts 0 dsts' 0 ob.out_len;
    Array.blit ob.out_data 0 data' 0 ob.out_len;
    ob.out_dsts <- dsts';
    ob.out_data <- data'
  end;
  ob.out_dsts.(ob.out_len) <- dst;
  ob.out_data.(ob.out_len) <- data;
  ob.out_len <- ob.out_len + 1

let bucket_push b data =
  let cap = Array.length b.bkt_data in
  if b.bkt_len = cap then begin
    let data' = Array.make (max 4 (2 * cap)) "" in
    Array.blit b.bkt_data 0 data' 0 b.bkt_len;
    b.bkt_data <- data'
  end;
  b.bkt_data.(b.bkt_len) <- data;
  b.bkt_len <- b.bkt_len + 1

let run cfg ~programs =
  let k = cfg.k in
  let roster = Party_id.all ~k in
  let roster_arr = Array.of_list roster in
  let connected =
    match cfg.link with
    | Of_topology t -> Topology.connected t
    | Custom f -> fun u v -> (not (Party_id.equal u v)) && f u v
  in
  let cells =
    Array.map
      (fun id ->
        {
          id;
          outbox = { out_dsts = [||]; out_data = no_strings; out_len = 0 };
          buckets =
            Array.init (2 * k) (fun _ -> { bkt_data = no_strings; bkt_len = 0 });
          inbox_count = 0;
          state = Finished;
          out = None;
        })
      roster_arr
  in
  let cell_of id = cells.(Party_id.to_dense ~k id) in
  let iter_cells f = Array.iter f cells in
  let round = ref 0 in
  (* Flat trace buffer: the trace keeps the {e first} [trace_limit] events,
     so a fixed-size array filled left to right replaces the old cons list
     (one allocation up front instead of one cons per event). *)
  let trace_buf =
    if cfg.trace_limit <= 0 then [||]
    else
      Array.make cfg.trace_limit
        {
          event_round = 0;
          event_src = Party_id.left 0;
          event_dst = Party_id.left 0;
          event_bytes = 0;
          event_fate = `Delivered;
          event_label = None;
        }
  in
  let trace_count = ref 0 in
  let record ?(label = None) event_src event_dst event_bytes event_fate =
    if !trace_count < cfg.trace_limit then begin
      trace_buf.(!trace_count) <-
        {
          event_round = !round;
          event_src;
          event_dst;
          event_bytes;
          event_fate;
          event_label = label;
        };
      incr trace_count
    end
  in
  let messages_sent = ref 0 in
  let messages_delivered = ref 0 in
  let dropped_topology = ref 0 in
  let dropped_fault = ref 0 in
  (* Per-label omission counts; a handful of schedule components at most,
     so an assoc list beats a hash table. *)
  let dropped_by_label : (string * int ref) list ref = ref [] in
  let count_label l =
    match List.assoc_opt l !dropped_by_label with
    | Some r -> incr r
    | None -> dropped_by_label := (l, ref 1) :: !dropped_by_label
  in
  let messages_corrupted = ref 0 in
  let bytes_sent = ref 0 in

  (* Replay support for corrupting fault models: the last payload
     {e delivered} on each ordered link in any {e earlier} round, indexed
     by [src_dense * 2k + dst_dense]. Updates are staged during a
     delivery sweep and committed only after it, so a replay mutation can
     never echo bytes from the round currently being delivered. Gated on
     physical inequality with [no_corrupt]: fault-free runs pay nothing. *)
  let track_prev = cfg.faults.corrupt != no_corrupt in
  let prev_frames : payload option array =
    if track_prev then Array.make (4 * k * k) None else [||]
  in
  let staged_prev : (int * payload) list ref = ref [] in
  let commit_prev () =
    List.iter (fun (i, p) -> prev_frames.(i) <- Some p) (List.rev !staged_prev);
    staged_prev := []
  in

  (* Runs [f ()] as [cell]'s fiber until it blocks on [Next_round],
     returns, or raises. *)
  let drive cell f =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> cell.state <- Finished);
        exnc =
          (fun exn ->
            Log.debug (fun m ->
                m "%a crashed: %s" Party_id.pp cell.id (Printexc.to_string exn));
            cell.state <- Failed (Printexc.to_string exn));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Send (dst, data) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  incr messages_sent;
                  outbox_push cell.outbox dst data;
                  continue cont ())
            | Next_round ->
              Some
                (fun (cont : (a, _) continuation) ->
                  cell.state <- Waiting cont)
            | Get_round -> Some (fun cont -> continue cont !round)
            | Output p ->
              Some
                (fun (cont : (a, _) continuation) ->
                  cell.out <- Some p;
                  continue cont ())
            | Log_line s ->
              Some
                (fun (cont : (a, _) continuation) ->
                  Log.debug (fun m -> m "r%d %a: %s" !round Party_id.pp cell.id s);
                  continue cont ())
            | _ -> None);
      }
  in

  let env_of id =
    {
      self = id;
      k;
      round = (fun () -> Effect.perform Get_round);
      send = (fun dst data -> Effect.perform (Send (dst, data)));
      next_round = (fun () -> Effect.perform Next_round);
      output = (fun p -> Effect.perform (Output p));
      log = (fun s -> Effect.perform (Log_line s));
    }
  in

  (* Round 0: start every fiber. *)
  iter_cells (fun cell ->
      let program = programs cell.id in
      drive cell (fun () -> program (env_of cell.id)));

  (* Deliver this round's traffic into the receivers' per-sender buckets,
     then resume waiting fibers. *)
  let deliver () =
    iter_cells (fun cell ->
        let ob = cell.outbox in
        if ob.out_len > 0 then begin
          let src = cell.id in
          let src_dense = Party_id.to_dense ~k src in
          for i = 0 to ob.out_len - 1 do
            let dst = ob.out_dsts.(i) in
            let data = ob.out_data.(i) in
            let len = String.length data in
            let dst_index = Party_id.index dst in
            if dst_index < 0 then
              invalid_arg
                (Printf.sprintf
                   "Engine.deliver_message: destination %s has a negative index \
                    (corrupt Party_id)"
                   (Party_id.to_string dst));
            if dst_index >= k || not (connected src dst) then begin
              incr dropped_topology;
              record src dst len `No_channel;
              Log.debug (fun m ->
                  m "r%d: dropped %a -> %a (no channel)" !round Party_id.pp src
                    Party_id.pp dst)
            end
            else if cfg.faults.drop ~round:!round ~src ~dst then begin
              incr dropped_fault;
              let label = cfg.faults.drop_label ~round:!round ~src ~dst in
              (match label with
              | Some l -> count_label l
              | None -> ());
              record ~label src dst len `Omitted
            end
            else begin
              let link_idx = (src_dense * 2 * k) + Party_id.to_dense ~k dst in
              let prev = if track_prev then prev_frames.(link_idx) else None in
              (* The wire carries whatever the corrupt hook returns; bytes
                 and the replay memory both reflect the mutated frame. *)
              let data, fate, label =
                match cfg.faults.corrupt ~round:!round ~src ~dst ~prev data with
                | None -> data, `Delivered, None
                | Some (data', l) ->
                  incr messages_corrupted;
                  count_label l;
                  data', `Corrupted, Some l
              in
              let len = String.length data in
              incr messages_delivered;
              bytes_sent := !bytes_sent + len;
              record ~label src dst len fate;
              if track_prev then staged_prev := (link_idx, data) :: !staged_prev;
              let target = cell_of dst in
              bucket_push target.buckets.(src_dense) data;
              target.inbox_count <- target.inbox_count + 1
            end
          done;
          (* Reset, dropping payload references so delivered strings are not
             retained past the round by the reused storage. *)
          Array.fill ob.out_data 0 ob.out_len "";
          ob.out_len <- 0
        end);
    if track_prev then commit_prev ()
  in

  (* Collect [cell]'s buckets into the inbox list the fiber sees: senders
     in dense roster order (= sorted by [Party_id.compare]), send order
     preserved within each sender — the invariant the old
     [List.stable_sort] established, now true by construction. *)
  let collect_inbox cell =
    if cell.inbox_count = 0 then []
    else begin
      let acc = ref [] in
      for sender = 2 * k - 1 downto 0 do
        let b = cell.buckets.(sender) in
        if b.bkt_len > 0 then begin
          let src = roster_arr.(sender) in
          for i = b.bkt_len - 1 downto 0 do
            acc := { src; data = b.bkt_data.(i) } :: !acc
          done;
          Array.fill b.bkt_data 0 b.bkt_len "";
          b.bkt_len <- 0
        end
      done;
      cell.inbox_count <- 0;
      !acc
    end
  in

  let some_waiting () =
    Array.exists
      (fun c ->
        match c.state with
        | Waiting _ -> true
        | Finished | Failed _ -> false)
      cells
  in

  while some_waiting () && !round < cfg.max_rounds do
    deliver ();
    incr round;
    iter_cells
      (fun cell ->
        match cell.state with
        | Waiting cont ->
          let inbox = collect_inbox cell in
          (* Resuming re-enters the deep handler installed by [drive], which
             updates [cell.state] on park / return / raise; pre-set Finished
             for the plain-return path before any effect fires. *)
          cell.state <- Finished;
          Effect.Deep.continue cont inbox
        | Finished | Failed _ -> ())
  done;
  (* Flush messages sent in the final round so accounting covers them even
     though no fiber is left to read them. [round] was last incremented
     before those fibers ran, so the flushed events carry the round their
     messages were sent in — the same convention as in-loop deliveries,
     keeping trace rounds monotone up to [rounds_used]. *)
  deliver ();
  assert (
    let ok = ref true in
    for i = 0 to !trace_count - 1 do
      let r = trace_buf.(i).event_round in
      if r > !round || (i > 0 && r < trace_buf.(i - 1).event_round) then ok := false
    done;
    !ok);

  let party_result cell =
    let status =
      match cell.state with
      | Finished -> Terminated
      | Waiting _ -> Out_of_rounds
      | Failed msg -> Crashed msg
    in
    { id = cell.id; status; out = cell.out }
  in
  {
    parties = List.map party_result (Array.to_list cells);
    trace = List.init !trace_count (fun i -> trace_buf.(i));
    metrics =
      {
        rounds_used = !round;
        messages_sent = !messages_sent;
        messages_delivered = !messages_delivered;
        messages_dropped_topology = !dropped_topology;
        messages_dropped_fault = !dropped_fault;
        messages_corrupted = !messages_corrupted;
        messages_dropped_by_label =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (List.map (fun (l, r) -> l, !r) !dropped_by_label);
        bytes_sent = !bytes_sent;
      };
  }

let find_result_opt res p =
  List.find_opt (fun (r : party_result) -> Party_id.equal r.id p) res.parties

let find_result res p =
  match find_result_opt res p with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Engine.find_result: party %s not in roster of %d parties"
         (Party_id.to_string p)
         (List.length res.parties))
