let src = Logs.Src.create "bsm.pool" ~doc:"persistent work-stealing domain pool"

module Log = (val Logs.src_log src : Logs.LOG)

(* BSM_JOBS beyond the hardware's recommended domain count makes every
   sweep slower (domains time-share cores and fight over the minor heaps),
   so oversubscription is clamped — warned once per process, not once per
   map. Explicit [~jobs] arguments are not clamped: tests deliberately
   oversubscribe. *)
let clamp_warned = Atomic.make false

let default_jobs () =
  let recommended = Domain.recommended_domain_count () in
  match Sys.getenv_opt "BSM_JOBS" with
  | None -> recommended
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 ->
      if n > recommended then begin
        if not (Atomic.exchange clamp_warned true) then
          Log.warn (fun m ->
              m
                "BSM_JOBS=%d oversubscribes this machine (%d domain(s) \
                 recommended); clamping to %d"
                n recommended recommended);
        recommended
      end
      else n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "BSM_JOBS=%S: expected a positive integer" s))

let resolve_jobs ?jobs () =
  match jobs with
  | None -> default_jobs ()
  | Some n when n >= 1 -> n
  | Some n ->
    invalid_arg (Printf.sprintf "Pool.resolve_jobs: jobs=%d must be >= 1" n)

(* --- Chase-Lev-style deque of task indices ------------------------------- *)

(* One deque per lane, filled completely before the batch is published
   (the publish happens under the pool mutex, giving the workers a
   happens-before edge on [buf]) and never pushed to afterwards. The
   owner pops at [bottom], thieves steal at [top]; with no concurrent
   pushes the buffer needs no resizing or wraparound, and "top >= bottom"
   is a {e permanent} emptiness verdict — a lane that observes every
   deque empty can stop hunting, because no new work can appear
   mid-batch. *)
module Deque = struct
  type t = {
    buf : int array;
    top : int Atomic.t;
    bottom : int Atomic.t;
  }

  (* Lane [lane] owns indices lane, lane + lanes, lane + 2*lanes, ... —
     stored descending so the owner's bottom-end pops run them in
     ascending index order (thieves take the highest indices first). *)
  let of_lane ~lane ~lanes ~n =
    let size = if lane >= n then 0 else ((n - lane - 1) / lanes) + 1 in
    let buf = Array.make (max size 1) (-1) in
    for j = 0 to size - 1 do
      buf.(size - 1 - j) <- lane + (j * lanes)
    done;
    { buf; top = Atomic.make 0; bottom = Atomic.make size }

  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b > t then Some d.buf.(b)
    else if b = t then begin
      (* Last element: race the thieves for it via top. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then Some d.buf.(b) else None
    end
    else begin
      Atomic.set d.bottom t;
      None
    end

  type steal_result =
    | Stolen of int
    | Empty
    | Retry  (** lost a CAS race; the deque may still hold work *)

  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then Empty
    else
      let x = d.buf.(t) in
      if Atomic.compare_and_set d.top t (t + 1) then Stolen x else Retry
end

(* --- pool ----------------------------------------------------------------- *)

type batch = {
  epoch : int;
  run : int -> unit;  (** execute element [i]; never raises *)
  deques : Deque.t array;
  remaining : int Atomic.t;  (** elements not yet completed *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (** new batch published, or shutdown *)
  batch_done : Condition.t;  (** [remaining] reached 0 *)
  mutable current : batch option;
  mutable epoch : int;
  mutable closed : bool;
  mutable workers : unit Domain.t array;  (** spawned lazily, then persistent *)
  tasks_total : int Atomic.t;
  steals_total : int Atomic.t;
  batches_total : int Atomic.t;
}

type stats = {
  tasks : int;
  steals : int;
  batches : int;
}

let stats t =
  {
    tasks = Atomic.get t.tasks_total;
    steals = Atomic.get t.steals_total;
    batches = Atomic.get t.batches_total;
  }

let create ?jobs () =
  let jobs = resolve_jobs ?jobs () in
  {
    jobs;
    mutex = Mutex.create ();
    work_available = Condition.create ();
    batch_done = Condition.create ();
    current = None;
    epoch = 0;
    closed = false;
    workers = [||];
    tasks_total = Atomic.make 0;
    steals_total = Atomic.make 0;
    batches_total = Atomic.make 0;
  }

let jobs t = t.jobs

(* Guards against Pool.map called from inside a pool task: the nested map
   would wait for lanes that are all busy running its ancestors. *)
let in_task_key = Domain.DLS.new_key (fun () -> ref false)

let exec t b i =
  b.run i;
  if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
    (* Last element of the batch: wake the submitter if it is parked in
       [batch_done]. The lock closes the check-then-wait race. *)
    Mutex.lock t.mutex;
    Condition.broadcast t.batch_done;
    Mutex.unlock t.mutex
  end

(* Drain the lane's own deque in index order, then steal single tasks
   from randomized victims until one full sweep of all deques comes back
   Empty with no Retry — conclusive, since batches never grow. *)
let run_lane t b ~lane =
  let d = b.deques.(lane) in
  let rec own () =
    match Deque.pop d with
    | Some i ->
      exec t b i;
      own ()
    | None -> ()
  in
  own ();
  let lanes = Array.length b.deques in
  if lanes > 1 then begin
    (* Victim order only affects scheduling, never results (slots are
       index-addressed), so a throwaway LCG is enough — and it must not
       be the global Random state. *)
    let rng = ref ((b.epoch * 0x9e3779b9) lxor (lane * 0x85ebca6b) lxor 1) in
    let next_victim () =
      let x = !rng in
      let x = x lxor (x lsr 12) in
      let x = x lxor (x lsl 25) in
      let x = x lxor (x lsr 27) in
      rng := x;
      ((x * 0x2545F4914F6CDD1D) lsr 33) mod lanes
    in
    let rec hunt () =
      let stolen = ref None in
      let contended = ref false in
      let start = next_victim () in
      let i = ref 0 in
      while !stolen = None && !i < lanes do
        let v = (start + !i) mod lanes in
        if v <> lane then begin
          match Deque.steal b.deques.(v) with
          | Deque.Stolen x -> stolen := Some x
          | Deque.Retry -> contended := true
          | Deque.Empty -> ()
        end;
        incr i
      done;
      match !stolen with
      | Some x ->
        Atomic.incr t.steals_total;
        exec t b x;
        hunt ()
      | None ->
        if !contended then begin
          Domain.cpu_relax ();
          hunt ()
        end
    in
    hunt ()
  end

let worker_loop t ~lane =
  let rec loop last_epoch =
    Mutex.lock t.mutex;
    (* A published batch wins over [closed]: if shutdown races a map, the
       workers still help drain the in-flight batch before exiting. *)
    let rec await () =
      match t.current with
      | Some b when b.epoch <> last_epoch -> Some b
      | Some _ | None ->
        if t.closed then None
        else begin
          Condition.wait t.work_available t.mutex;
          await ()
        end
    in
    let b = await () in
    Mutex.unlock t.mutex;
    match b with
    | None -> ()
    | Some b ->
      run_lane t b ~lane;
      loop b.epoch
  in
  loop 0

(* Only the (single) submitting caller reaches this, so [t.workers] has
   no writer races; domains spawn once and then serve every later map. *)
let ensure_workers t =
  if Array.length t.workers = 0 && t.jobs > 1 then
    t.workers <-
      Array.init (t.jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~lane:(i + 1)))

type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let collect slots n =
  let first_failure = ref None in
  for i = n - 1 downto 0 do
    match slots.(i) with
    | Raised (e, bt) -> first_failure := Some (e, bt)
    | Done _ -> ()
    | Pending -> assert false
  done;
  (match !first_failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.to_list
    (Array.map
       (function
         | Done v -> v
         | Pending | Raised _ -> assert false)
       slots)

let map t f xs =
  if !(Domain.DLS.get in_task_key) then
    invalid_arg "Pool.map: nested call from inside a pool task";
  if t.closed then invalid_arg "Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | [ x ] ->
    Atomic.incr t.tasks_total;
    Atomic.incr t.batches_total;
    [ f x ]
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    (* Slots are written at distinct indices from distinct domains — no
       two tasks share a cell, so plain writes are race-free, and steal
       order cannot reach the output. *)
    let slots = Array.make n Pending in
    let run i =
      let flag = Domain.DLS.get in_task_key in
      flag := true;
      slots.(i) <-
        (match f items.(i) with
        | v -> Done v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ()));
      flag := false
    in
    Atomic.fetch_and_add t.tasks_total n |> ignore;
    Atomic.incr t.batches_total;
    if t.jobs = 1 then
      (* The sequential path: inline, in input order, no domains. *)
      for i = 0 to n - 1 do
        run i
      done
    else begin
      ensure_workers t;
      let deques =
        Array.init t.jobs (fun lane -> Deque.of_lane ~lane ~lanes:t.jobs ~n)
      in
      Mutex.lock t.mutex;
      t.epoch <- t.epoch + 1;
      let b = { epoch = t.epoch; run; deques; remaining = Atomic.make n } in
      t.current <- Some b;
      Condition.broadcast t.work_available;
      Mutex.unlock t.mutex;
      (* The submitter is lane 0: it works its own share and steals like
         any worker, then parks until in-flight stragglers settle. *)
      run_lane t b ~lane:0;
      Mutex.lock t.mutex;
      while Atomic.get b.remaining > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      t.current <- None;
      (* A concurrent [shutdown] parks on [batch_done] until [current]
         clears; wake it now that the batch is fully retired. *)
      Condition.broadcast t.batch_done;
      Mutex.unlock t.mutex
    end;
    collect slots n

(* Long-running processes (the serve daemon) may call [shutdown] — via
   [shutdown_global] or the [at_exit] hook — from a domain other than the
   one currently holding the pool in a [map]. Closing mid-batch would
   either strand the batch's unclaimed tasks (workers exit before
   draining their deques) or tear domains out from under the submitter,
   so shutdown first waits for any in-flight batch to retire, then
   closes and joins. Idempotent: late callers wait for the same drain and
   find [closed] already set; only the first joins the domains. *)
let shutdown t =
  if !(Domain.DLS.get in_task_key) then
    invalid_arg "Pool.shutdown: called from inside a pool task";
  Mutex.lock t.mutex;
  while t.current <> None do
    Condition.wait t.batch_done t.mutex
  done;
  let first = not t.closed in
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if first then begin
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- the process-wide persistent pool ------------------------------------ *)

let global_pool : t option ref = ref None
let global_at_exit_registered = ref false

let global () =
  match !global_pool with
  | Some p when not p.closed -> p
  | Some _ | None ->
    let p = create () in
    global_pool := Some p;
    if not !global_at_exit_registered then begin
      global_at_exit_registered := true;
      (* Join the persistent domains at exit so `dune runtest` and the
         CLI leave no leaked domains behind under runtime debugging. *)
      Stdlib.at_exit (fun () ->
          match !global_pool with Some p -> shutdown p | None -> ())
    end;
    p

let shutdown_global () =
  match !global_pool with Some p -> shutdown p | None -> ()

module For_testing = struct
  let reset_clamp_warning () = Atomic.set clamp_warned false
end
