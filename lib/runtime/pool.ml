let src = Logs.Src.create "bsm.pool" ~doc:"fixed-size domain pool"

module Log = (val Logs.src_log src : Logs.LOG)

type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* BSM_JOBS beyond the hardware's recommended domain count makes every
   sweep slower (domains time-share cores and fight over the minor heaps),
   so oversubscription is clamped, with a warning. Explicit [~jobs]
   arguments are not clamped: tests deliberately oversubscribe. *)
let default_jobs () =
  let recommended = Domain.recommended_domain_count () in
  match Sys.getenv_opt "BSM_JOBS" with
  | None -> recommended
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 ->
      if n > recommended then begin
        Log.warn (fun m ->
            m
              "BSM_JOBS=%d oversubscribes this machine (%d domain(s) \
               recommended); clamping to %d"
              n recommended recommended);
        recommended
      end
      else n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "BSM_JOBS=%S: expected a positive integer" s))

(* Workers block until a task is queued or the pool closes; the queue is
   FIFO so tasks start in submission order. *)
let worker_loop t =
  let rec take () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.closed then None
    else begin
      Condition.wait t.work_available t.mutex;
      take ()
    end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let task = take () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
      task ();
      loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let take_task t =
  Mutex.lock t.mutex;
  let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  task

(* One queue entry per contiguous index range instead of one per item:
   a sweep of [n] cells costs O(chunks) = O(4 * jobs) lock acquisitions
   rather than O(n). Chunks are deliberately smaller than [n / jobs] so a
   slow cell (the largest k of a sweep) cannot serialize the tail. *)
let chunk_size ~jobs n = max 1 (n / (4 * jobs))

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    (* Slots are written at distinct indices from distinct domains — no
       two tasks share a cell, so plain writes are race-free. *)
    let slots = Array.make n Pending in
    let chunk = chunk_size ~jobs:t.jobs n in
    let chunks = (n + chunk - 1) / chunk in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref chunks in
    (* Items stay independent inside a chunk: each gets its own outcome
       slot, so one raising item neither skips its chunk-mates nor masks a
       lower-indexed failure elsewhere. *)
    let run_chunk lo hi () =
      for i = lo to hi do
        slots.(i) <-
          (match f items.(i) with
          | v -> Done v
          | exception e -> Raised (e, Printexc.get_raw_backtrace ()))
      done;
      Mutex.lock batch_mutex;
      decr remaining;
      (* Only the submitting domain ever waits on [batch_done], and only
         the last chunk can release it — signal once instead of
         broadcasting on every completion. *)
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_mutex
    in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for c = 0 to chunks - 1 do
      let lo = c * chunk in
      let hi = min (lo + chunk - 1) (n - 1) in
      Queue.push (run_chunk lo hi) t.queue;
      (* Wake one worker per chunk; a signal with no waiter is lost, but
         then every worker is already awake and draining the queue. *)
      Condition.signal t.work_available
    done;
    Mutex.unlock t.mutex;
    (* The submitting domain is the pool's jobs-th lane: it drains the
       queue alongside the workers, then sleeps until in-flight chunks
       settle. With jobs = 1 there are no workers and this loop runs
       every chunk inline, in index order — the sequential path. *)
    let rec help () =
      match take_task t with
      | Some task ->
        task ();
        help ()
      | None ->
        Mutex.lock batch_mutex;
        let finished = !remaining = 0 in
        if not finished then Condition.wait batch_done batch_mutex;
        Mutex.unlock batch_mutex;
        if not finished then help ()
    in
    help ();
    let first_failure = ref None in
    for i = n - 1 downto 0 do
      match slots.(i) with
      | Raised (e, bt) -> first_failure := Some (e, bt)
      | Done _ -> ()
      | Pending -> assert false
    done;
    (match !first_failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Raised _ -> assert false)
         slots)
