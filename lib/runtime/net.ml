open Bsm_prelude

type t = {
  self : Party_id.t;
  stride : int;
  send : Party_id.t -> string -> unit;
  sync : unit -> (Party_id.t * string) list;
  register_state : Engine.state_cell -> unit;
}

let direct (env : Engine.env) =
  {
    self = env.self;
    stride = 1;
    send = env.send;
    sync =
      (fun () ->
        List.map
          (fun (e : Engine.envelope) -> e.src, Bsm_wire.Wire.Slice.to_string e.data)
          (env.next_round ()));
    register_state = env.register_cell;
  }

let send_all t parties msg =
  List.iter (fun p -> if not (Party_id.equal p t.self) then t.send p msg) parties
