(** Synchronous round-based execution engine.

    This is the executable instantiation of the paper's network model: a
    synchronous network of [n = 2k] parties with pairwise authenticated
    channels, operating in lockstep rounds (Δ = 1 round). A message sent in
    round [r] is delivered at the start of round [r+1] — or never, when the
    configured fault model drops it (the omission semantics of Lemma 10 and
    Theorems 8–9) or when it is sent along a channel that does not exist in
    the topology (byzantine parties cannot violate the communication
    graph; channels are authenticated, so the receiver always learns the
    true sender).

    Each party runs as a cooperative fiber built on OCaml 5 effects, so
    protocol code is written in direct style, mirroring the paper's
    pseudocode: [send] queues messages for the current round and
    [next_round] ends the round, returning the new round's inbox. Byzantine
    parties are simply fibers running arbitrary programs. Execution is
    deterministic.

    Concurrency: [run] touches no global mutable state — every counter,
    fiber, inbox and trace lives in the call's own frame, and effect
    handlers are per-domain — so independent runs may execute on
    different domains simultaneously (this is what {!Pool} and the
    harness sweep layer rely on). The only module-level value is the
    [Logs] source, which is created once at load time; the default nop
    reporter makes concurrent [log] calls safe, but a custom reporter
    must itself be domain-safe when sweeps run in parallel. *)

open Bsm_prelude

(** Raw message bytes; protocols serialize with {!Bsm_wire.Wire}. *)
type payload = string

(** An inbox frame: a zero-copy [(offset, len)] view into the sender's
    frozen per-round frame arena. Decode directly with
    {!Bsm_wire.Wire.decode_slice}; [Wire.Slice.to_string] materializes
    when bytes must outlive the view's backing. *)
type envelope = {
  src : Party_id.t;
  data : Bsm_wire.Wire.Slice.t;
}

(** A corruptible state cell, the unit of the state-corruption plane: one
    protocol-level mutable value exposed as its canonical wire encoding.
    [cell_encode] snapshots the current value; [cell_set] decodes
    candidate bytes into the underlying ref, returning [false] (value
    untouched) when they are not a well-formed encoding. Build one with
    {!state_cell}, or hand-roll the closures for state that has no single
    codec. *)
type state_cell = {
  cell_encode : unit -> payload;
  cell_set : payload -> bool;
}

(** [state_cell codec r] exposes [r] through [codec]. Decode failures —
    [Error] or a raising validator — leave [r] untouched and report
    [false]. *)
val state_cell : 'a Bsm_wire.Wire.t -> 'a ref -> state_cell

(** The capabilities handed to a party's fiber. Attack constructions wrap
    these closures to build covering systems, so keep protocols programming
    against [env] rather than against the engine directly. *)
type env = {
  self : Party_id.t;
  k : int;
  round : unit -> int;  (** current round, starting at 0 *)
  send : Party_id.t -> payload -> unit;
      (** queue a message for delivery at the start of the next round;
          silently dropped if no channel exists. A destination outside
          the roster [L0..Lk-1, R0..Rk-1] counts as a non-existent
          channel, except that a [Party_id.t] with a negative index
          (impossible through the public [Party_id] API — it would mean
          memory corruption or unsafe casts) raises [Invalid_argument]
          at delivery time rather than being dropped. *)
  send_w : 'a. 'a Bsm_wire.Wire.t -> Party_id.t -> 'a -> unit;
      (** [send_w codec dst v] is [send dst (Wire.encode codec v)]
          without the intermediate string: the value is encoded in place
          into the sender's round arena. The hot path for protocol
          messages. A codec that raises mid-write leaves no partial
          frame behind (the arena is rolled back) and the exception
          propagates to the fiber. *)
  send_slice : Party_id.t -> Bsm_wire.Wire.Slice.t -> unit;
      (** forward bytes already in hand (typically a received envelope's
          [data]) without materializing a string: the view's bytes are
          appended into the round arena. *)
  send_multi_w : 'a. 'a Bsm_wire.Wire.t -> Party_id.t list -> 'a -> unit;
      (** [send_multi_w codec dsts v] encodes [v] {e once} into the round
          arena and queues the same span for every destination in [dsts],
          in list order — the fan-out pattern (relay requests, protocol
          broadcasts) without re-walking the codec or duplicating the
          bytes per recipient. Observationally identical to
          [List.iter (fun d -> send_w codec d v) dsts]: each destination
          counts as its own message in the metrics and the trace, and
          topology/fault/corruption checks still run per destination. A
          codec that raises leaves no partial frame and sends nothing. *)
  next_round : unit -> envelope list;
      (** finish the current round; returns the next round's inbox, sorted
          by sender (send order preserved per sender) *)
  output : payload -> unit;  (** record this party's protocol output *)
  log : string -> unit;
  register_state : 'a. 'a Bsm_wire.Wire.t -> 'a ref -> unit;
      (** [register_state codec r] exposes [r] to the state-corruption
          plane: between rounds, the fault model's [scramble] hook may
          replace its contents with arbitrary well-formed bytes (the
          self-stabilization adversary of the Byzantine Brides model).
          Cells are indexed in registration order per party; protocols
          should register their round-local state once, up front, so the
          indexing is deterministic. Free when the run's fault model never
          scrambles. *)
  register_cell : state_cell -> unit;
      (** the serialized-blob seam under {!register_state}: register an
          already-built {!state_cell} (used by plumbing that forwards
          cells built elsewhere, e.g. broadcast machines registered by a
          session). *)
}

(** [broadcast env targets msg] sends [msg] to every party in [targets]
    (not to [env.self] even if listed). *)
val broadcast : env -> Party_id.t list -> payload -> unit

(** [broadcast_w env codec targets v] is {!broadcast} through
    {!type-env.send_w}: one in-place arena encode per target, no
    intermediate string. *)
val broadcast_w : env -> 'a Bsm_wire.Wire.t -> Party_id.t list -> 'a -> unit

(** A party's program. Returning terminates the party; a party that never
    returns within the round budget is reported as not terminated. *)
type program = env -> unit

(** Communication graph: one of the paper's topologies, or an arbitrary
    symmetric edge relation (used by the covering-system attacks, which run
    protocols on non-standard networks). *)
type link =
  | Of_topology of Bsm_topology.Topology.t
  | Custom of (Party_id.t -> Party_id.t -> bool)

type fault_model = {
  drop : round:int -> src:Party_id.t -> dst:Party_id.t -> bool;
      (** [drop] is consulted for every message on an {e existing}
          channel; [true] omits it. Models the omission failures of
          Section 5.2. Precedence is fixed: a message sent along a
          non-existent channel is a topology drop and the fault model is
          never consulted for it, so every message counts against
          exactly one of [messages_dropped_topology] /
          [messages_dropped_fault] (topology wins). *)
  drop_label : round:int -> src:Party_id.t -> dst:Party_id.t -> string option;
      (** consulted only after [drop] returned [true]; attributes the
          omission to a fault-schedule component. The label lands on the
          trace event and in [messages_dropped_by_label]. Must be pure
          (runs may execute on any domain). *)
  corrupt :
    round:int ->
    src:Party_id.t ->
    dst:Party_id.t ->
    prev:payload option ->
    payload ->
    (payload * string) option;
      (** the in-flight mutation hook, the engine half of active byzantine
          wire chaos: consulted for every message that survived both the
          topology and [drop] checks. [Some (bytes, label)] delivers
          [bytes] in place of the sent payload and attributes the
          corruption to the labelled schedule component; [None] delivers
          the frame untouched. [prev] is the last payload {e delivered}
          (post-corruption) on this ordered link in any strictly earlier
          round — [None] until one exists — which is what replay
          mutations echo; frames of the round being delivered are never
          visible in [prev], so same-round frames cannot replay each
          other. Must be pure (runs may execute on any domain). The
          per-link replay memory is only maintained when [corrupt] is not
          (physically) {!no_corrupt}, so fault-free runs pay nothing. *)
  scramble :
    round:int ->
    party:Party_id.t ->
    cell:int ->
    attempt:int ->
    payload ->
    (payload * string) option;
      (** the state-corruption hook, the engine half of the
          self-stabilization chaos plane: consulted between rounds —
          after round [round - 1]'s delivery sweep, before any fiber
          resumes in round [round] — for every state cell a still-running
          party registered, in registration order ([cell] is the index).
          [payload] is the cell's current canonical encoding.
          [Some (bytes, label)] asks the engine to replace the cell's
          value with [bytes]; if they fail to decode, the hook is retried
          with [attempt + 1] (fresh bytes, same firing decision) up to
          {!max_scramble_attempts} times, after which the cell is left
          untouched and nothing is counted. [None] on attempt 0 means the
          hook does not fire for this (round, party, cell). Must be pure
          (runs may execute on any domain); the same staged discipline as
          [corrupt] applies — a scramble can never observe the round
          currently being delivered, because it runs strictly after the
          sweep commits. Gated on physical inequality with
          {!no_scramble}: scramble-free runs never touch the
          registries. *)
}

(** [fault_model ?label ?corrupt ?scramble drop] — [label] defaults to no
    attribution, [corrupt] to {!no_corrupt} (deliver untouched),
    [scramble] to {!no_scramble} (state never corrupted). *)
val fault_model :
  ?label:(round:int -> src:Party_id.t -> dst:Party_id.t -> string option) ->
  ?corrupt:
    (round:int ->
    src:Party_id.t ->
    dst:Party_id.t ->
    prev:payload option ->
    payload ->
    (payload * string) option) ->
  ?scramble:
    (round:int ->
    party:Party_id.t ->
    cell:int ->
    attempt:int ->
    payload ->
    (payload * string) option) ->
  (round:int -> src:Party_id.t -> dst:Party_id.t -> bool) ->
  fault_model

(** The default [corrupt] hook: always [None]. *)
val no_corrupt :
  round:int ->
  src:Party_id.t ->
  dst:Party_id.t ->
  prev:payload option ->
  payload ->
  (payload * string) option

(** The default [scramble] hook: always [None]. *)
val no_scramble :
  round:int ->
  party:Party_id.t ->
  cell:int ->
  attempt:int ->
  payload ->
  (payload * string) option

val no_faults : fault_model

(** Mutation-attempt budget per (round, party, cell) — see
    {!type-fault_model.scramble}. *)
val max_scramble_attempts : int

(** [scramble_cells ~scramble ~round ~party cells ~on_scrambled] is the
    one scramble sweep, exported so the {!Bsm_serve} Live executor runs
    literally the same loop as the engine (seq == par bit-identity):
    for each cell in order, consult [scramble] and retry until a mutation
    decodes or the attempt budget runs out; [on_scrambled] fires once per
    cell actually replaced, with the winning bytes and component label. *)
val scramble_cells :
  scramble:
    (round:int ->
    party:Party_id.t ->
    cell:int ->
    attempt:int ->
    payload ->
    (payload * string) option) ->
  round:int ->
  party:Party_id.t ->
  state_cell list ->
  on_scrambled:(bytes:payload -> label:string -> unit) ->
  unit

(** One message-level event, for execution traces. *)
type event = {
  event_round : int;
  event_src : Party_id.t;
  event_dst : Party_id.t;
  event_bytes : int;
  event_fate : [ `Delivered | `No_channel | `Omitted | `Corrupted | `Scrambled ];
      (** [`Corrupted] frames were delivered, with mutated bytes.
          [`Scrambled] is not a message at all: a state cell of
          [event_src = event_dst] was replaced between rounds
          ([event_bytes] is the new encoding's length). *)
  event_label : string option;
      (** fault-model attribution; only ever [Some] on [`Omitted],
          [`Corrupted] and [`Scrambled] *)
}

val pp_event : Format.formatter -> event -> unit

type config = {
  k : int;  (** parties per side; [n = 2k] *)
  link : link;
  max_rounds : int;  (** hard stop; protocols must finish before this *)
  faults : fault_model;
  trace_limit : int;
      (** record up to this many message events (0 = tracing off) *)
}

val config :
  ?max_rounds:int ->
  ?faults:fault_model ->
  ?trace_limit:int ->
  k:int ->
  link:link ->
  unit ->
  config

type status =
  | Terminated  (** fiber returned *)
  | Out_of_rounds  (** still waiting on [next_round] at [max_rounds] *)
  | Crashed of string  (** fiber raised; the exception text *)

type party_result = {
  id : Party_id.t;
  status : status;
  out : payload option;  (** last value passed to [output], if any *)
  finished_round : int option;
      (** the round the fiber returned in; [Some] exactly when [status]
          is [Terminated]. The convergence oracle reads recovery times
          off this. *)
}

type metrics = {
  rounds_used : int;
  messages_sent : int;  (** send calls *)
  messages_delivered : int;
  messages_dropped_topology : int;  (** sent along non-existent channels *)
  messages_dropped_fault : int;  (** omitted by the fault model *)
  messages_corrupted : int;
      (** delivered with bytes rewritten by the [corrupt] hook; these
          also count in [messages_delivered] — corruption changes the
          payload, not the fact of delivery *)
  messages_dropped_by_label : (string * int) list;
      (** omissions, corruptions {e and} state scrambles broken down by
          component attribution ([drop_label] / the [corrupt] and
          [scramble] hooks' labels), sorted by label; unlabelled
          omissions are not listed, so the counts sum to at most
          [messages_dropped_fault + messages_corrupted +
          cells_scrambled]. Empty when the fault model never labels. *)
  bytes_sent : int;
      (** payload bytes of every [send]/[send_w]/[send_slice] call, at
          the length the sender wrote — the symmetric counterpart of
          [messages_sent], counted before topology, omission, or
          corruption touch the frame. *)
  bytes_delivered : int;
      (** payload bytes of {e delivered} messages — the communication the
          network actually carried, counting corrupted frames at their
          mutated length. Messages dropped by the topology or omitted by
          the fault model contribute to their drop counters but never to
          [bytes_delivered], so [bytes_delivered] and
          [messages_delivered] describe the same message set. (This is
          the quantity the communication-complexity experiments and the
          metrics fingerprints use.) *)
  cells_scrambled : int;
      (** state cells actually replaced by the [scramble] hook (mutations
          that never decoded within the attempt budget don't count) *)
  first_scramble_round : int option;
      (** the round of the first successful scramble — the epoch the
          convergence oracle measures recovery from; [None] when no
          scramble landed *)
}

type result = {
  parties : party_result list;  (** roster order: L0..Lk-1, R0..Rk-1 *)
  metrics : metrics;
  trace : event list;
      (** chronological, at most [trace_limit] events (the {e first} so
          many — truncation drops the tail); empty when tracing is off.
          Each event carries the round its message was {e sent} in, so
          rounds are non-decreasing along the list and never exceed
          [metrics.rounds_used]; the final round's sends (flushed after
          the last round ends) appear with [event_round = rounds_used]. *)
}

(** [run cfg ~programs] executes one synchronous protocol. [programs] is
    consulted once per roster party. *)
val run : config -> programs:(Party_id.t -> program) -> result

(** [find_result res p] looks up one party's result. Raises
    [Invalid_argument] naming the party and the roster size when [p] is
    not in the roster. *)
val find_result : result -> Party_id.t -> party_result

val find_result_opt : result -> Party_id.t -> party_result option
