type state =
  | Submitted
  | Running
  | Matched
  | Failed
  | Timed_out

let state_to_string = function
  | Submitted -> "submitted"
  | Running -> "running"
  | Matched -> "matched"
  | Failed -> "failed"
  | Timed_out -> "timed-out"

let state_index = function
  | Submitted -> 0
  | Running -> 1
  | Matched -> 2
  | Failed -> 3
  | Timed_out -> 4

let final_of_outcome = function
  | Frame.Matched _ -> Matched
  | Frame.Failed _ -> Failed
  | Frame.Timed_out -> Timed_out

type record = {
  spec : Frame.spec;
  arrival_tick : int;
  mutable state : state;
  mutable outcome : Frame.outcome option;
  mutable done_tick : int;
}

type t = {
  tables : (int, record) Hashtbl.t array;
  counts : int array; (* by state_index *)
  mutable total : int;
}

let create ~shards () =
  if shards < 1 then invalid_arg "Instances.create: shards < 1";
  {
    tables = Array.init shards (fun _ -> Hashtbl.create 64);
    counts = Array.make 5 0;
    total = 0;
  }

let shards t = Array.length t.tables
let table t req_id = t.tables.(abs req_id mod Array.length t.tables)
let mem t req_id = Hashtbl.mem (table t req_id) req_id
let find t req_id = Hashtbl.find_opt (table t req_id) req_id

let add t ~tick (spec : Frame.spec) =
  if mem t spec.req_id then
    invalid_arg (Printf.sprintf "Instances.add: duplicate req_id %d" spec.req_id);
  let record =
    { spec; arrival_tick = tick; state = Submitted; outcome = None; done_tick = -1 }
  in
  Hashtbl.replace (table t spec.req_id) spec.req_id record;
  t.counts.(state_index Submitted) <- t.counts.(state_index Submitted) + 1;
  t.total <- t.total + 1;
  record

(* The only legal moves. Finality is absorbing: nothing leaves
   Matched/Failed/Timed_out. *)
let legal from into =
  match from, into with
  | Submitted, Running -> true
  | Running, (Matched | Failed | Timed_out) -> true
  | _ -> false

let transition t record into =
  if not (legal record.state into) then
    invalid_arg
      (Printf.sprintf "Instances.transition: %s -> %s (req #%d)"
         (state_to_string record.state) (state_to_string into)
         record.spec.Frame.req_id);
  t.counts.(state_index record.state) <- t.counts.(state_index record.state) - 1;
  t.counts.(state_index into) <- t.counts.(state_index into) + 1;
  record.state <- into

let finish t record ~tick outcome =
  transition t record (final_of_outcome outcome);
  record.outcome <- Some outcome;
  record.done_tick <- tick

let count t state = t.counts.(state_index state)
let pending t = count t Submitted + count t Running
let total t = t.total

let iter_shard t shard f =
  Hashtbl.iter (fun _ record -> f record) t.tables.(shard)
