(** The serve wire protocol: what a matchmaking client and the daemon
    exchange, over in-process rings or a Unix-domain socket.

    Frames are {!Bsm_wire.Wire} values like every other message in the
    repository, for the same reasons: clients can be byzantine (the
    fuzzer mutates these codecs — {!register_codecs} puts them in
    {!Bsm_chaos.Codec_corpus}), sizes are accountable, and the encoding
    is canonical. A {e workload} names one matching instance as plain
    data — implicit GS instance or full bSM scenario — so a submission
    is replayable from its bytes alone. *)

open Bsm_prelude
module SM := Bsm_stable_matching
module Core := Bsm_core
module Topology := Bsm_topology.Topology

(** One matching instance, as data.

    - [Gs]: centralized Gale–Shapley on an implicit {!SM.Flat} instance,
      stability-checked with the early-exit verifier — the high-volume
      workload (k up to the scale frontier).
    - [Bsm]: a full byzantine protocol execution: the setting's
      protocol is selected and run against [coalition] scripted
      byzantine parties (a maximal admissible random coalition) and,
      in chaos mode, a fault schedule compiled onto the wire. *)
type workload =
  | Gs of {
      k : int;
      seed : int;
      family : SM.Flat.family;
    }
  | Bsm of {
      k : int;
      topology : Topology.t;
      auth : Core.Setting.auth;
      t_left : int;
      t_right : int;
      profile_seed : int;
      scenario_seed : int;
      coalition : bool;
    }

type spec = {
  req_id : int;  (** client-chosen, echoed on every response *)
  workload : workload;
}

type request =
  | Submit of spec
  | Bye  (** orderly goodbye; the daemon drops the connection *)

(** Typed load-shed: admission control names why it refused. *)
type reject_reason =
  | Queue_full  (** backpressure — retry later *)
  | Too_large  (** k above the daemon's configured ceiling *)
  | Unsolvable  (** invalid setting (budget/topology out of range) *)
  | Shutting_down

type outcome =
  | Matched of {
      fingerprint : int64;  (** splitmix64 hash of the matching *)
      rounds : int;  (** GS proposal rounds / engine rounds used *)
    }
  | Failed of string  (** verifier or oracle found a violation *)
  | Timed_out  (** a party ran out of rounds *)

type response =
  | Accepted of { req_id : int }
  | Rejected of {
      req_id : int;
      reason : reject_reason;
    }
  | Done of {
      req_id : int;
      outcome : outcome;
      arrival_tick : int;
      done_tick : int;  (** latency = [done_tick - arrival_tick] *)
    }

val workload_k : workload -> int
val reject_reason_to_string : reject_reason -> string
val pp_response : Format.formatter -> response -> unit

val workload_codec : workload Bsm_wire.Wire.t
val request_codec : request Bsm_wire.Wire.t
val response_codec : response Bsm_wire.Wire.t

(** Fuzz generators (exposed for the corpus and tests). *)

val gen_workload : Rng.t -> workload
val gen_request : Rng.t -> request
val gen_response : Rng.t -> response

(** Add the three serve codecs to {!Bsm_chaos.Codec_corpus} (under
    names [serve.workload], [serve.request], [serve.response]).
    Idempotent; call before fuzzing. *)
val register_codecs : unit -> unit
