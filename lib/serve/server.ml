open Bsm_prelude
module Pool = Bsm_runtime.Pool
module SM = Bsm_stable_matching
module Core = Bsm_core
module Sweep = Bsm_harness.Sweep
module Scenario = Bsm_harness.Scenario
module Schedule = Bsm_chaos.Schedule
module Oracle = Bsm_chaos.Oracle

type config = {
  queue_capacity : int;
  batch : int;
  max_k : int;
  max_rounds : int option;
  chaos : bool;
  chaos_seed : int;
}

let default_config =
  {
    queue_capacity = 256;
    batch = 64;
    max_k = 4096;
    max_rounds = None;
    chaos = false;
    chaos_seed = 0;
  }

type t = {
  config : config;
  pool : Pool.t;
  queue : Frame.spec Ring.t;
  instances : Instances.t;
  mutable closing : bool;
  mutable violations : int;
}

let create ?pool ?(config = default_config) () =
  if config.queue_capacity < 1 then invalid_arg "Server.create: queue_capacity < 1";
  if config.batch < 1 then invalid_arg "Server.create: batch < 1";
  let pool = match pool with Some p -> p | None -> Pool.global () in
  {
    config;
    pool;
    queue = Ring.create ~capacity:config.queue_capacity ();
    instances = Instances.create ~shards:(Pool.jobs pool) ();
    closing = false;
    violations = 0;
  }

let config t = t.config
let instances t = t.instances
let violations t = t.violations
let pending t = Instances.pending t.instances
let close t = t.closing <- true

(* --- execution (pure; runs on pool domains) ------------------------------ *)

let fingerprint_salt = 0x5E27EL

let gs_fingerprint l2r =
  Array.fold_left Rng.mix64_absorb (Rng.mix64 fingerprint_salt) l2r

(* A deterministic digest of a bSM run: there is no single matching
   array to hash (honest parties output pairings individually), so
   fingerprint the run's observable metrics instead — stable across
   job counts because the execution itself is. *)
let metrics_fingerprint (m : Bsm_runtime.Engine.metrics) =
  let h = Rng.mix64 fingerprint_salt in
  let h = Rng.mix64_absorb h m.rounds_used in
  let h = Rng.mix64_absorb h m.messages_sent in
  let h = Rng.mix64_absorb h m.messages_delivered in
  let h = Rng.mix64_absorb h m.bytes_delivered in
  h

(* Within-budget fault schedules for chaos-on-live traffic: each
   charges at most R0 (and the bench's chaos workloads grant the right
   side the full spare budget t_right = k), so the oracle must answer
   [Ok] — any [Violation] is a real protocol bug. *)
let live_schedules ~k =
  let r0 = Party_id.make Side.Right 0 in
  ignore k;
  [
    Schedule.never;
    Schedule.during ~from_round:0 ~until_round:6
      (Schedule.send_omission ~rate:0.4 r0);
    Schedule.during ~from_round:0 ~until_round:6
      (Schedule.receive_omission ~rate:0.4 r0);
    Schedule.crash r0 ~at_round:1;
    Schedule.during ~from_round:0 ~until_round:4
      (Schedule.corrupt ~rate:0.3 ~kind:Bsm_chaos.Mutation.Bit_flip r0);
  ]

let describe_violation v = Format.asprintf "%a" Core.Problem.pp_violation v

let execute_bsm ~chaos ~chaos_seed ~max_rounds ~req_id ~k ~topology ~auth ~t_left
    ~t_right ~profile_seed ~scenario_seed ~coalition =
  match Core.Setting.make ~k ~topology ~auth ~t_left ~t_right with
  | Error msg -> Frame.Failed ("invalid setting: " ^ msg), false
  | Ok setting -> (
    let adversary = if coalition then Sweep.Random_coalition else Sweep.Honest in
    let case = Sweep.case ~profile_seed ~scenario_seed ~adversary setting in
    match Core.Select.plan setting with
    | Error _ -> Frame.Failed "unsolvable setting", false
    | Ok _ ->
      if chaos then begin
        let schedules = live_schedules ~k in
        let h = Rng.mix64_absorb (Rng.mix64 (Int64.of_int chaos_seed)) req_id in
        let pick =
          Int64.to_int (Int64.rem (Int64.logand h Int64.max_int)
                          (Int64.of_int (List.length schedules)))
        in
        let schedule = List.nth schedules pick in
        let seed = Int64.to_int (Int64.logand (Rng.mix64_absorb h 1) 0x3FFFFFFFL) in
        let report = Oracle.run ?max_rounds ~seed ~schedule case in
        match report.Oracle.verdict with
        | Oracle.Violation ->
          let detail =
            match report.Oracle.violations with
            | v :: _ -> describe_violation v
            | [] -> "unknown"
          in
          Frame.Failed ("VIOLATION: " ^ detail), true
        | Oracle.Expected_degradation ->
          Frame.Failed "degraded: fault budget exceeded", false
        | Oracle.Ok ->
          ( Frame.Matched
              {
                fingerprint = metrics_fingerprint report.Oracle.metrics;
                rounds = report.Oracle.metrics.rounds_used;
              },
            false )
      end
      else begin
        let scenario = Sweep.scenario_of_case case in
        let report = Scenario.run ?max_rounds scenario in
        match report.Scenario.violations with
        | [] ->
          ( Frame.Matched
              {
                fingerprint = metrics_fingerprint report.Scenario.metrics;
                rounds = report.Scenario.metrics.rounds_used;
              },
            false )
        | Core.Problem.Termination _ :: _ -> Frame.Timed_out, false
        | v :: _ -> Frame.Failed (describe_violation v), false
      end)

let execute ~chaos ~chaos_seed ~max_rounds (spec : Frame.spec) =
  match spec.workload with
  | Frame.Gs { k; seed; family } ->
    let flat = SM.Flat.make ~family ~seed ~k in
    let l2r, stats = SM.Flat.gale_shapley flat in
    if SM.Verify.exists_blocking (SM.Flat.verify_view flat ~l2r) then
      Frame.Failed "unstable matching", false
    else
      ( Frame.Matched
          { fingerprint = gs_fingerprint l2r; rounds = stats.SM.Gale_shapley.rounds },
        false )
  | Frame.Bsm { k; topology; auth; t_left; t_right; profile_seed; scenario_seed; coalition }
    ->
    execute_bsm ~chaos ~chaos_seed ~max_rounds ~req_id:spec.req_id ~k ~topology
      ~auth ~t_left ~t_right ~profile_seed ~scenario_seed ~coalition

(* --- admission ----------------------------------------------------------- *)

let solvable (workload : Frame.workload) =
  match workload with
  | Frame.Gs _ -> true
  | Frame.Bsm { k; topology; auth; t_left; t_right; _ } -> (
    match Core.Setting.make ~k ~topology ~auth ~t_left ~t_right with
    | Error _ -> false
    | Ok setting -> Result.is_ok (Core.Select.plan setting))

let submit t ~tick (spec : Frame.spec) =
  let reject reason = Frame.Rejected { req_id = spec.req_id; reason } in
  if t.closing then reject Frame.Shutting_down
  else if Frame.workload_k spec.workload > t.config.max_k then reject Frame.Too_large
  else if Instances.mem t.instances spec.req_id || not (solvable spec.workload) then
    reject Frame.Unsolvable
  else if not (Ring.try_push t.queue spec) then reject Frame.Queue_full
  else begin
    ignore (Instances.add t.instances ~tick spec);
    Frame.Accepted { req_id = spec.req_id }
  end

(* --- scheduling ---------------------------------------------------------- *)

let tick t ~tick =
  let rec take n acc =
    if n = 0 then List.rev acc
    else
      match Ring.try_pop t.queue with
      | None -> List.rev acc
      | Some spec -> take (n - 1) (spec :: acc)
  in
  match take t.config.batch [] with
  | [] -> []
  | specs ->
    List.iter
      (fun (spec : Frame.spec) ->
        match Instances.find t.instances spec.req_id with
        | Some record -> Instances.transition t.instances record Instances.Running
        | None -> assert false)
      specs;
    let { chaos; chaos_seed; max_rounds; _ } = t.config in
    let outcomes =
      Pool.map t.pool (execute ~chaos ~chaos_seed ~max_rounds) specs
    in
    List.map2
      (fun (spec : Frame.spec) (outcome, violation) ->
        if violation then t.violations <- t.violations + 1;
        let record = Option.get (Instances.find t.instances spec.req_id) in
        Instances.finish t.instances record ~tick outcome;
        Frame.Done
          {
            req_id = spec.req_id;
            outcome;
            arrival_tick = record.Instances.arrival_tick;
            done_tick = tick;
          })
      specs outcomes
