(** The open-loop serving benchmark behind [bsm load] and
    [BENCH_serve.json].

    A synthetic client submits [instances] workloads on a deterministic
    arrival schedule (inter-arrival gaps are stateless splitmix64 draws
    from [seed]), through the real wire path: requests are encoded with
    a reused {!Bsm_wire.Wire.Enc} into an SPSC {!Ring}, decoded and
    admitted by the {!Server}, and answered over a response ring — the
    in-process twin of the socket transport. A [Queue_full] reject is
    retried next tick, so the measured latencies include genuine
    queueing delay under backpressure.

    Time is virtual (scheduler ticks), which is what makes the whole
    run — and the default JSON — bit-identical across repetitions
    {e and job counts}: executions are pure, [Pool.map] preserves
    order, and the schedule depends only on [seed]. Wall-clock numbers
    (instances/sec, millisecond latencies) are printed, and included in
    the JSON only under [~wall:true], clearly fenced as
    environment-dependent. *)

type params = {
  instances : int;
  seed : int;
  jobs : int;  (** pool lanes; 1 = inline sequential *)
  queue_capacity : int;
  batch : int;
  k_min : int;  (** GS instance size range (inclusive) *)
  k_max : int;
  mean_gap : int;  (** mean inter-arrival gap in ticks (0 = all at once) *)
  chaos : bool;
      (** submit bSM workloads and run each under a within-budget
          fault/mutation schedule, oracle-judged *)
  max_rounds : int option;
}

(** 1000 GS instances, k ∈ [8, 64], mean gap 1 tick, queue 256,
    batch 64, jobs 1, seed 1. *)
val default_params : params

type results = {
  params : params;
  ticks : int;  (** virtual ticks to drain the load *)
  matched : int;
  failed : int;
  timed_out : int;
  violations : int;  (** oracle violations (chaos mode) *)
  queue_rejects : int;  (** [Queue_full] answers (each retried) *)
  p50_ticks : int;
  p99_ticks : int;
  max_ticks : int;
  fingerprint : int64;  (** digest of every Done response, in req order *)
  request_bytes : int;  (** encoded request traffic *)
  response_bytes : int;
  wall_ms : float;  (** whole-run wall clock (not in default JSON) *)
}

(** [spec_of ~params i] — the deterministic i-th workload of the load
    schedule (what [bsm load --connect] replays against a remote
    daemon). *)
val spec_of : params:params -> int -> Frame.spec

val run : params -> results

(** Instances per wall second — the headline throughput number. *)
val instances_per_sec : results -> float

(** [to_json ?wall results] — deterministic by default; [~wall:true]
    appends the environment-dependent wall block. *)
val to_json : ?wall:bool -> results -> string

val write_json : path:string -> string -> unit
val pp_results : Format.formatter -> results -> unit

(** [live_check ~k ~seed] — run fault-free distributed Gale–Shapley
    once through {!Live} (one domain per party, ring channels) and once
    through the engine, and compare every party's output bytes and
    status. [Ok matching_size] on agreement, [Error] describing the
    first divergence. The seq==live determinism gate [bsm load
    --live-check] and the tests call. *)
val live_check : k:int -> seed:int -> (int, string) result
