open Bsm_prelude
module Wire = Bsm_wire.Wire
module Fuzz = Bsm_wire.Fuzz
module SM = Bsm_stable_matching
module Core = Bsm_core
module Topology = Bsm_topology.Topology

type workload =
  | Gs of {
      k : int;
      seed : int;
      family : SM.Flat.family;
    }
  | Bsm of {
      k : int;
      topology : Topology.t;
      auth : Core.Setting.auth;
      t_left : int;
      t_right : int;
      profile_seed : int;
      scenario_seed : int;
      coalition : bool;
    }

type spec = {
  req_id : int;
  workload : workload;
}

type request =
  | Submit of spec
  | Bye

type reject_reason =
  | Queue_full
  | Too_large
  | Unsolvable
  | Shutting_down

type outcome =
  | Matched of {
      fingerprint : int64;
      rounds : int;
    }
  | Failed of string
  | Timed_out

type response =
  | Accepted of { req_id : int }
  | Rejected of {
      req_id : int;
      reason : reject_reason;
    }
  | Done of {
      req_id : int;
      outcome : outcome;
      arrival_tick : int;
      done_tick : int;
    }

let workload_k = function Gs { k; _ } | Bsm { k; _ } -> k

let reject_reason_to_string = function
  | Queue_full -> "queue-full"
  | Too_large -> "too-large"
  | Unsolvable -> "unsolvable"
  | Shutting_down -> "shutting-down"

let pp_response ppf = function
  | Accepted { req_id } -> Format.fprintf ppf "accepted #%d" req_id
  | Rejected { req_id; reason } ->
    Format.fprintf ppf "rejected #%d (%s)" req_id (reject_reason_to_string reason)
  | Done { req_id; outcome; arrival_tick; done_tick } -> (
    match outcome with
    | Matched { fingerprint; rounds } ->
      Format.fprintf ppf "done #%d matched fp=%Lx rounds=%d latency=%d" req_id
        fingerprint rounds (done_tick - arrival_tick)
    | Failed msg -> Format.fprintf ppf "done #%d failed: %s" req_id msg
    | Timed_out -> Format.fprintf ppf "done #%d timed out" req_id)

(* --- codecs -------------------------------------------------------------- *)

let malformed fmt = Printf.ksprintf (fun s -> raise (Wire.Malformed s)) fmt

let family_codec =
  Wire.map Wire.uint
    ~inject:(function
      | 0 -> SM.Flat.Uniform
      | 1 -> SM.Flat.Common_acceptors
      | n -> malformed "serve.family: tag %d" n)
    ~project:(function SM.Flat.Uniform -> 0 | SM.Flat.Common_acceptors -> 1)

let topology_codec =
  Wire.map Wire.uint
    ~inject:(function
      | 0 -> Topology.Fully_connected
      | 1 -> Topology.One_sided
      | 2 -> Topology.Bipartite
      | n -> malformed "serve.topology: tag %d" n)
    ~project:(function
      | Topology.Fully_connected -> 0
      | Topology.One_sided -> 1
      | Topology.Bipartite -> 2)

let auth_codec =
  Wire.map Wire.uint
    ~inject:(function
      | 0 -> Core.Setting.Unauthenticated
      | 1 -> Core.Setting.Authenticated
      | n -> malformed "serve.auth: tag %d" n)
    ~project:(function
      | Core.Setting.Unauthenticated -> 0
      | Core.Setting.Authenticated -> 1)

(* Fingerprints are full 64-bit hashes; varints carry OCaml ints, so
   split into two 32-bit halves (low, high). Decoding rejects halves
   outside 32 bits — the canonical encoding never produces them. *)
let int64_codec =
  Wire.map
    (Wire.pair Wire.uint Wire.uint)
    ~inject:(fun (lo, hi) ->
      if lo < 0 || lo > 0xFFFFFFFF || hi < 0 || hi > 0xFFFFFFFF then
        malformed "serve.int64: half out of range"
      else Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))
    ~project:(fun v ->
      ( Int64.to_int (Int64.logand v 0xFFFFFFFFL),
        Int64.to_int (Int64.shift_right_logical v 32) ))

let workload_codec =
  let gs =
    Wire.case 0
      (Wire.triple Wire.uint Wire.int family_codec)
      ~inject:(fun (k, seed, family) ->
        if k < 1 then malformed "serve.workload: gs k < 1" else Gs { k; seed; family })
      ~match_:(function Gs { k; seed; family } -> Some (k, seed, family) | _ -> None)
  in
  let bsm =
    Wire.case 1
      (Wire.pair
         (Wire.triple Wire.uint topology_codec auth_codec)
         (Wire.triple (Wire.pair Wire.uint Wire.uint)
            (Wire.pair Wire.int Wire.int)
            Wire.bool))
      ~inject:(fun ((k, topology, auth), ((t_left, t_right), (profile_seed, scenario_seed), coalition)) ->
        if k < 1 then malformed "serve.workload: bsm k < 1"
        else if t_left > k || t_right > k then
          malformed "serve.workload: corruption budget beyond k"
        else
          Bsm { k; topology; auth; t_left; t_right; profile_seed; scenario_seed; coalition })
      ~match_:(function
        | Bsm { k; topology; auth; t_left; t_right; profile_seed; scenario_seed; coalition }
          ->
          Some
            ( (k, topology, auth),
              ((t_left, t_right), (profile_seed, scenario_seed), coalition) )
        | _ -> None)
  in
  Wire.variant ~name:"serve.workload" [ Wire.pack gs; Wire.pack bsm ]

let spec_codec =
  Wire.map
    (Wire.pair Wire.uint workload_codec)
    ~inject:(fun (req_id, workload) -> { req_id; workload })
    ~project:(fun { req_id; workload } -> (req_id, workload))

let request_codec =
  let submit =
    Wire.case 0 spec_codec
      ~inject:(fun spec -> Submit spec)
      ~match_:(function Submit spec -> Some spec | Bye -> None)
  in
  let bye =
    Wire.case 1 Wire.unit
      ~inject:(fun () -> Bye)
      ~match_:(function Bye -> Some () | Submit _ -> None)
  in
  Wire.variant ~name:"serve.request" [ Wire.pack submit; Wire.pack bye ]

let reject_reason_codec =
  Wire.map Wire.uint
    ~inject:(function
      | 0 -> Queue_full
      | 1 -> Too_large
      | 2 -> Unsolvable
      | 3 -> Shutting_down
      | n -> malformed "serve.reject: tag %d" n)
    ~project:(function
      | Queue_full -> 0
      | Too_large -> 1
      | Unsolvable -> 2
      | Shutting_down -> 3)

let outcome_codec =
  let matched =
    Wire.case 0
      (Wire.pair int64_codec Wire.uint)
      ~inject:(fun (fingerprint, rounds) -> Matched { fingerprint; rounds })
      ~match_:(function
        | Matched { fingerprint; rounds } -> Some (fingerprint, rounds) | _ -> None)
  in
  let failed =
    Wire.case 1 Wire.string
      ~inject:(fun msg -> Failed msg)
      ~match_:(function Failed msg -> Some msg | _ -> None)
  in
  let timed_out =
    Wire.case 2 Wire.unit
      ~inject:(fun () -> Timed_out)
      ~match_:(function Timed_out -> Some () | _ -> None)
  in
  Wire.variant ~name:"serve.outcome"
    [ Wire.pack matched; Wire.pack failed; Wire.pack timed_out ]

let response_codec =
  let accepted =
    Wire.case 0 Wire.uint
      ~inject:(fun req_id -> Accepted { req_id })
      ~match_:(function Accepted { req_id } -> Some req_id | _ -> None)
  in
  let rejected =
    Wire.case 1
      (Wire.pair Wire.uint reject_reason_codec)
      ~inject:(fun (req_id, reason) -> Rejected { req_id; reason })
      ~match_:(function
        | Rejected { req_id; reason } -> Some (req_id, reason) | _ -> None)
  in
  let done_ =
    Wire.case 2
      (Wire.pair
         (Wire.pair Wire.uint outcome_codec)
         (Wire.pair Wire.uint Wire.uint))
      ~inject:(fun ((req_id, outcome), (arrival_tick, done_tick)) ->
        Done { req_id; outcome; arrival_tick; done_tick })
      ~match_:(function
        | Done { req_id; outcome; arrival_tick; done_tick } ->
          Some ((req_id, outcome), (arrival_tick, done_tick))
        | _ -> None)
  in
  Wire.variant ~name:"serve.response"
    [ Wire.pack accepted; Wire.pack rejected; Wire.pack done_ ]

(* --- fuzz generators ----------------------------------------------------- *)

let gen_workload rng =
  if Rng.bool rng then
    Gs
      {
        k = 1 + Rng.int rng 32;
        seed = Rng.int rng 10_000;
        family = (if Rng.bool rng then SM.Flat.Uniform else SM.Flat.Common_acceptors);
      }
  else begin
    let k = 1 + Rng.int rng 6 in
    Bsm
      {
        k;
        topology =
          Rng.choose rng
            [ Topology.Fully_connected; Topology.One_sided; Topology.Bipartite ];
        auth =
          (if Rng.bool rng then Core.Setting.Authenticated
           else Core.Setting.Unauthenticated);
        t_left = Rng.int rng (k + 1);
        t_right = Rng.int rng (k + 1);
        profile_seed = Rng.int rng 10_000;
        scenario_seed = Rng.int rng 10_000;
        coalition = Rng.bool rng;
      }
  end

let gen_spec rng = { req_id = Rng.int rng 1_000_000; workload = gen_workload rng }

let gen_request rng = if Rng.int rng 8 = 0 then Bye else Submit (gen_spec rng)

let gen_outcome rng =
  match Rng.int rng 3 with
  | 0 ->
    Matched
      {
        fingerprint = Rng.mix64 (Int64.of_int (Rng.int rng 1_000_000));
        rounds = Rng.int rng 1_000;
      }
  | 1 -> Failed (String.init (Rng.int rng 16) (fun _ -> Char.chr (32 + Rng.int rng 95)))
  | _ -> Timed_out

let gen_response rng =
  let req_id = Rng.int rng 1_000_000 in
  match Rng.int rng 3 with
  | 0 -> Accepted { req_id }
  | 1 ->
    Rejected
      {
        req_id;
        reason = Rng.choose rng [ Queue_full; Too_large; Unsolvable; Shutting_down ];
      }
  | _ ->
    let arrival = Rng.int rng 10_000 in
    Done
      {
        req_id;
        outcome = gen_outcome rng;
        arrival_tick = arrival;
        done_tick = arrival + Rng.int rng 1_000;
      }

let registered = ref false

let register_codecs () =
  if not !registered then begin
    registered := true;
    Bsm_chaos.Codec_corpus.register (fun () ->
        [
          Fuzz.entry ~name:"serve.workload" ~gen:gen_workload ~equal:( = )
            workload_codec;
          Fuzz.entry ~name:"serve.request" ~gen:gen_request ~equal:( = )
            request_codec;
          Fuzz.entry ~name:"serve.response" ~gen:gen_response ~equal:( = )
            response_codec;
        ])
  end
