open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire
module Topology = Bsm_topology.Topology

(* Two-phase lockstep: phase one ends the round's sends (after it, every
   ring holds exactly the round's frames), phase two ends its deliveries
   (after it, every ring is empty again). All 2k domains — live parties
   and ghosts alike — pass both phases of every generation, so the
   whole system is always in one well-defined round and the stop
   decisions (round cap before phase one, everyone-finished between the
   phases) are taken unanimously. *)
type barrier = {
  m : Mutex.t;
  c : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable gen : int;
}

let barrier parties =
  { m = Mutex.create (); c = Condition.create (); parties; arrived = 0; gen = 0 }

let await b =
  Mutex.lock b.m;
  let g = b.gen in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.gen <- g + 1;
    Condition.broadcast b.c
  end
  else
    while b.gen = g do
      Condition.wait b.c b.m
    done;
  Mutex.unlock b.m

exception Out_of_rounds_

(* Rings carry one span batch per (src, dst) channel per round: the
   sender accumulates the round's frames contiguously in a per-channel
   arena and pushes a single frozen (base, ends) element at round end,
   so ring traffic is O(channels) per round instead of O(messages) and
   the receiver hands out zero-copy [(offset, len)] views. [ends.(j)]
   is where frame [j] ends; frame [j] starts at [ends.(j-1)] (0 for
   [j = 0]). *)
type batch = {
  base : string;
  ends : int array;
  count : int;
}

(* Sender-side accumulator for one channel's current round. *)
type accum = {
  buf : Buffer.t;
  mutable acc_ends : int array;
  mutable acc_count : int;
}

let accum () = { buf = Buffer.create 64; acc_ends = [||]; acc_count = 0 }

let accum_push a data =
  Buffer.add_string a.buf data;
  let cap = Array.length a.acc_ends in
  if a.acc_count = cap then begin
    let ends' = Array.make (max 8 (2 * cap)) 0 in
    Array.blit a.acc_ends 0 ends' 0 a.acc_count;
    a.acc_ends <- ends'
  end;
  a.acc_ends.(a.acc_count) <- Buffer.length a.buf;
  a.acc_count <- a.acc_count + 1

let accum_flush a ring =
  if a.acc_count > 0 then begin
    let b =
      {
        base = Buffer.contents a.buf;
        ends = Array.sub a.acc_ends 0 a.acc_count;
        count = a.acc_count;
      }
    in
    Buffer.clear a.buf;
    a.acc_count <- 0;
    if not (Ring.try_push ring b) then
      failwith "Live: per-channel ring overflow (raise ring_capacity)"
  end

let drain ring =
  let rec go acc =
    match Ring.try_pop ring with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let run ?(max_rounds = 10_000) ?(faults = Engine.no_faults) ?(ring_capacity = 1024)
    ~k ~link ~programs () =
  if k < 1 then invalid_arg "Live.run: k < 1";
  let n = 2 * k in
  if n > 64 then invalid_arg "Live.run: one domain per party; keep 2k <= 64";
  let roster = Array.of_list (Party_id.all ~k) in
  let connected u v =
    (not (Party_id.equal u v))
    &&
    match link with
    | Engine.Of_topology t -> Topology.connected t u v
    | Engine.Custom f -> f u v
  in
  let rings =
    Array.init n (fun s ->
        Array.init n (fun d ->
            if connected roster.(s) roster.(d) then
              Some (Ring.create ~capacity:ring_capacity ())
            else None))
  in
  let track_prev = faults.Engine.corrupt != Engine.no_corrupt in
  let track_scramble = faults.Engine.scramble != Engine.no_scramble in
  let b1 = barrier n and b2 = barrier n in
  let finished = Atomic.make 0 in
  let worker i =
    let self = roster.(i) in
    let round = ref 0 in
    let out = ref None in
    (* Per-link replay memory for the corrupt hook: last payload
       delivered (post-corruption) from each sender in a strictly
       earlier round — the engine's [prev] semantics. Only maintained
       when the hook is live, like the engine. *)
    let prev = Array.make n None in
    (* This worker's per-destination round arenas, created lazily on
       first send down a channel. *)
    let accums : accum option array = Array.make n None in
    (* This party's corruptible state registry, reverse registration
       order — the engine's [cell.scells] discipline. Only this domain
       ever touches it (registration and scrambling both happen on the
       owner's fiber), so no synchronization is needed. *)
    let scells : Engine.state_cell list ref = ref [] in
    let send dst data =
      if Party_id.index dst >= k then () (* outside the roster: no channel *)
      else
        let d = Party_id.to_dense ~k dst in
        match rings.(i).(d) with
        | None -> () (* topology drop *)
        | Some _ ->
          let a =
            match accums.(d) with
            | Some a -> a
            | None ->
              let a = accum () in
              accums.(d) <- Some a;
              a
          in
          accum_push a data
    in
    let send_w c dst v = send dst (Wire.encode c v) in
    let send_slice dst s = send dst (Wire.Slice.to_string s) in
    (* Per-destination accumulators can't share one span, but the encode
       still happens only once. *)
    let send_multi_w c dsts v =
      let body = Wire.encode c v in
      List.iter (fun dst -> send dst body) dsts
    in
    (* Freeze every non-empty accumulator into its ring — once per round
       at [next_round], and once more when the program stops, so frames
       sent before a return or crash are still delivered. *)
    let flush_accums () =
      for d = 0 to n - 1 do
        match accums.(d) with
        | Some a -> (
          match rings.(i).(d) with
          | Some ring -> accum_flush a ring
          | None -> ())
        | None -> ()
      done
    in
    let next_round () =
      if !round >= max_rounds then raise Out_of_rounds_;
      flush_accums ();
      await b1;
      let r = !round in
      let inbox = ref [] in
      for s = n - 1 downto 0 do
        match rings.(s).(i) with
        | None -> ()
        | Some ring ->
          let src = roster.(s) in
          let last_delivered = ref None in
          let delivered = ref [] in
          List.iter
            (fun b ->
              let start = ref 0 in
              for j = 0 to b.count - 1 do
                let off = !start in
                let len = b.ends.(j) - off in
                start := b.ends.(j);
                if not (faults.Engine.drop ~round:r ~src ~dst:self) then begin
                  if track_prev then begin
                    let data = String.sub b.base off len in
                    match
                      faults.Engine.corrupt ~round:r ~src ~dst:self ~prev:prev.(s)
                        data
                    with
                    | None ->
                      last_delivered := Some data;
                      delivered :=
                        { Engine.src; data = Wire.Slice.make b.base ~off ~len }
                        :: !delivered
                    | Some (data', _label) ->
                      last_delivered := Some data';
                      delivered :=
                        { Engine.src; data = Wire.Slice.of_string data' }
                        :: !delivered
                  end
                  else
                    delivered :=
                      { Engine.src; data = Wire.Slice.make b.base ~off ~len }
                      :: !delivered
                end
              done)
            (drain ring);
          (match !last_delivered with
          | Some data -> prev.(s) <- Some data
          | None -> ());
          inbox := List.rev_append !delivered !inbox
      done;
      await b2;
      incr round;
      (* Between-rounds state corruption, the engine's placement exactly:
         after the previous round's deliveries committed, before this
         party resumes in the new round. [Engine.scramble_cells] is the
         same sweep the in-process engine runs, so live == engine stays
         bit-identical; the hook is pure, and only this party's cells are
         touched, so domains never race. *)
      if track_scramble then
        Engine.scramble_cells ~scramble:faults.Engine.scramble ~round:!round
          ~party:self (List.rev !scells)
          ~on_scrambled:(fun ~bytes:_ ~label:_ -> ());
      !inbox
    in
    let status =
      match
        programs self
          {
            Engine.self;
            k;
            round = (fun () -> !round);
            send;
            send_w;
            send_slice;
            send_multi_w;
            next_round;
            output = (fun p -> out := Some p);
            log = ignore;
            register_state = (fun c r -> scells := Engine.state_cell c r :: !scells);
            register_cell = (fun sc -> scells := sc :: !scells);
          }
      with
      | () -> Engine.Terminated
      | exception Out_of_rounds_ -> Engine.Out_of_rounds
      | exception exn -> Engine.Crashed (Printexc.to_string exn)
    in
    (* [!round] still holds the round the program stopped in; capture the
       termination round before the ghost loop advances it. *)
    let finished_round =
      match status with
      | Engine.Terminated -> Some !round
      | Engine.Out_of_rounds | Engine.Crashed _ -> None
    in
    (* Frames queued before the program stopped still belong to the
       round in flight. *)
    flush_accums ();
    (* Ghost: keep the lockstep alive (and this party's rings drained)
       until everyone finished or the round cap stops the world. *)
    Atomic.incr finished;
    let live = ref (!round < max_rounds) in
    while !live do
      await b1;
      if Atomic.get finished = n then live := false
      else begin
        for s = 0 to n - 1 do
          match rings.(s).(i) with
          | None -> ()
          | Some ring ->
            while Ring.try_pop ring <> None do
              ()
            done
        done;
        await b2;
        incr round;
        if !round >= max_rounds then live := false
      end
    done;
    { Engine.id = self; status; out = !out; finished_round }
  in
  let domains = Array.init n (fun i -> Domain.spawn (fun () -> worker i)) in
  Array.to_list (Array.map Domain.join domains)
