open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology

(* Two-phase lockstep: phase one ends the round's sends (after it, every
   ring holds exactly the round's frames), phase two ends its deliveries
   (after it, every ring is empty again). All 2k domains — live parties
   and ghosts alike — pass both phases of every generation, so the
   whole system is always in one well-defined round and the stop
   decisions (round cap before phase one, everyone-finished between the
   phases) are taken unanimously. *)
type barrier = {
  m : Mutex.t;
  c : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable gen : int;
}

let barrier parties =
  { m = Mutex.create (); c = Condition.create (); parties; arrived = 0; gen = 0 }

let await b =
  Mutex.lock b.m;
  let g = b.gen in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.gen <- g + 1;
    Condition.broadcast b.c
  end
  else
    while b.gen = g do
      Condition.wait b.c b.m
    done;
  Mutex.unlock b.m

exception Out_of_rounds_

let drain ring =
  let rec go acc =
    match Ring.try_pop ring with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let run ?(max_rounds = 10_000) ?(faults = Engine.no_faults) ?(ring_capacity = 1024)
    ~k ~link ~programs () =
  if k < 1 then invalid_arg "Live.run: k < 1";
  let n = 2 * k in
  if n > 64 then invalid_arg "Live.run: one domain per party; keep 2k <= 64";
  let roster = Array.of_list (Party_id.all ~k) in
  let connected u v =
    (not (Party_id.equal u v))
    &&
    match link with
    | Engine.Of_topology t -> Topology.connected t u v
    | Engine.Custom f -> f u v
  in
  let rings =
    Array.init n (fun s ->
        Array.init n (fun d ->
            if connected roster.(s) roster.(d) then
              Some (Ring.create ~capacity:ring_capacity ())
            else None))
  in
  let b1 = barrier n and b2 = barrier n in
  let finished = Atomic.make 0 in
  let worker i =
    let self = roster.(i) in
    let round = ref 0 in
    let out = ref None in
    (* Per-link replay memory for the corrupt hook: last payload
       delivered (post-corruption) from each sender in a strictly
       earlier round — the engine's [prev] semantics. *)
    let prev = Array.make n None in
    let send dst data =
      if Party_id.index dst >= k then () (* outside the roster: no channel *)
      else
        match rings.(i).(Party_id.to_dense ~k dst) with
        | None -> () (* topology drop *)
        | Some ring ->
          if not (Ring.try_push ring data) then
            failwith "Live: per-channel ring overflow (raise ring_capacity)"
    in
    let next_round () =
      if !round >= max_rounds then raise Out_of_rounds_;
      await b1;
      let r = !round in
      let inbox = ref [] in
      for s = n - 1 downto 0 do
        match rings.(s).(i) with
        | None -> ()
        | Some ring ->
          let src = roster.(s) in
          let last_delivered = ref None in
          let delivered =
            List.filter_map
              (fun data ->
                if faults.Engine.drop ~round:r ~src ~dst:self then None
                else begin
                  let data =
                    match
                      faults.Engine.corrupt ~round:r ~src ~dst:self ~prev:prev.(s)
                        data
                    with
                    | Some (bytes, _label) -> bytes
                    | None -> data
                  in
                  last_delivered := Some data;
                  Some { Engine.src; data }
                end)
              (drain ring)
          in
          (match !last_delivered with
          | Some data -> prev.(s) <- Some data
          | None -> ());
          inbox := delivered @ !inbox
      done;
      await b2;
      incr round;
      !inbox
    in
    let status =
      match
        programs self
          {
            Engine.self;
            k;
            round = (fun () -> !round);
            send;
            next_round;
            output = (fun p -> out := Some p);
            log = ignore;
          }
      with
      | () -> Engine.Terminated
      | exception Out_of_rounds_ -> Engine.Out_of_rounds
      | exception exn -> Engine.Crashed (Printexc.to_string exn)
    in
    (* Ghost: keep the lockstep alive (and this party's rings drained)
       until everyone finished or the round cap stops the world. *)
    Atomic.incr finished;
    let live = ref (!round < max_rounds) in
    while !live do
      await b1;
      if Atomic.get finished = n then live := false
      else begin
        for s = 0 to n - 1 do
          match rings.(s).(i) with
          | None -> ()
          | Some ring ->
            while Ring.try_pop ring <> None do
              ()
            done
        done;
        await b2;
        incr round;
        if !round >= max_rounds then live := false
      end
    done;
    { Engine.id = self; status; out = !out }
  in
  let domains = Array.init n (fun i -> Domain.spawn (fun () -> worker i)) in
  Array.to_list (Array.map Domain.join domains)
