(* SPSC ring: the producer owns [tail], the consumer owns [head]; both
   are monotonic ints (never wrapped — at 10^9 ops/s an OCaml int lasts
   centuries), masked into the slot array. Publication protocol: write
   the slot, then release-store the counter; the reader acquire-loads
   the counter before touching the slot, so the plain array accesses are
   ordered by the OCaml memory model's atomics guarantees.

   Blocking is strictly a slow path. Sleepers announce themselves in
   [waiters] (atomic) before re-checking the ring, and the opposite side
   only touches the mutex when it observes [waiters > 0] after its
   counter store — either order of the race leaves the sleeper seeing
   the new element/slot on its re-check under the mutex, or the waker
   seeing the sleeper and signalling. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  head : int Atomic.t; (* next index to pop; consumer-owned *)
  tail : int Atomic.t; (* next index to push; producer-owned *)
  closed : bool Atomic.t;
  waiters : int Atomic.t; (* sleepers of either side *)
  mutex : Mutex.t;
  wake : Condition.t;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  let cap = ref 2 in
  while !cap < capacity do cap := !cap * 2 done;
  {
    slots = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
    waiters = Atomic.make 0;
    mutex = Mutex.create ();
    wake = Condition.create ();
  }

let capacity t = Array.length t.slots
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let closed t = Atomic.get t.closed

let signal t =
  if Atomic.get t.waiters > 0 then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex
  end

(* Raw slot moves, no wake-up: what [await]'s predicates use (they run
   with [t.mutex] already held, so they must not re-enter [signal]). *)
let push_slot t x =
  if Atomic.get t.closed then false
  else begin
    let tail = Atomic.get t.tail in
    if tail - Atomic.get t.head >= Array.length t.slots then false
    else begin
      t.slots.(tail land t.mask) <- Some x;
      Atomic.set t.tail (tail + 1);
      true
    end
  end

let pop_slot t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail - head <= 0 then None
  else begin
    let slot = head land t.mask in
    let v = t.slots.(slot) in
    t.slots.(slot) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let try_push t x =
  if push_slot t x then begin
    signal t;
    true
  end
  else false

let try_pop t =
  match pop_slot t with
  | Some _ as v ->
    signal t;
    v
  | None -> None

(* Park until [ready ()]; returns its last value. The atomic
   increment of [waiters] happens before the re-check, so a concurrent
   [signal] either sees us (and will take the mutex we sleep under) or
   happened before our re-check (which then succeeds). On exit we
   broadcast under the still-held mutex: a successful predicate moved a
   slot, which may be exactly what the opposite side is sleeping on. *)
let await t ready =
  Mutex.lock t.mutex;
  Atomic.incr t.waiters;
  let rec go () =
    match ready () with
    | Some v ->
      Atomic.decr t.waiters;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      v
    | None ->
      Condition.wait t.wake t.mutex;
      go ()
  in
  go ()

let push t x =
  if try_push t x then true
  else
    await t (fun () ->
        if Atomic.get t.closed then Some false
        else if push_slot t x then Some true
        else None)

let pop t =
  match try_pop t with
  | Some _ as v -> v
  | None ->
    await t (fun () ->
        match pop_slot t with
        | Some _ as v -> Some v
        | None -> if Atomic.get t.closed then Some None else None)

let close t =
  Atomic.set t.closed true;
  Mutex.lock t.mutex;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex
