(** Live execution: the engine's channel interface over real
    concurrency.

    {!Bsm_runtime.Engine.run} simulates the synchronous network inside
    one domain; [Live.run] executes the {e same programs} against the
    same [Engine.env] interface, but with one OS-level domain per party
    and one SPSC {!Ring} per ordered channel — an actual message-passing
    system. The deterministic seam is preserved: rounds advance through
    a two-phase lockstep barrier (phase one ends the round's sends,
    phase two ends its deliveries), inboxes are drained per-link in
    sender order, and the fault model — including the corrupt-in-flight
    hook with its per-link replay memory — is applied at delivery with
    exactly the engine's semantics. Consequently a protocol's outputs
    and statuses over [Live] are bit-identical to [Engine.run] of the
    same configuration (the test suite pins this, faults included),
    which is the property that lets protocol code debugged in replay be
    trusted live.

    Differences from the engine, by design: parties run concurrently
    (2k domains — keep k small), there is no trace, and metrics are not
    collected. A party whose program raises is [Crashed]; its domain
    keeps participating in barriers as a ghost (draining its rings) so
    the others run on, matching the engine's containment. *)

module Engine := Bsm_runtime.Engine

(** [run ?max_rounds ?faults ?ring_capacity ~k ~link ~programs ()] —
    execute one synchronous protocol live. [ring_capacity] bounds each
    channel's per-round traffic (default 1024 frames; exceeding it is a
    protocol error and crashes the sender). Results come back in roster
    order (L0..Lk-1, R0..Rk-1), like the engine's. *)
val run :
  ?max_rounds:int ->
  ?faults:Engine.fault_model ->
  ?ring_capacity:int ->
  k:int ->
  link:Engine.link ->
  programs:(Bsm_prelude.Party_id.t -> Engine.program) ->
  unit ->
  Engine.party_result list
