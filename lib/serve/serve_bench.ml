open Bsm_prelude
module Wire = Bsm_wire.Wire
module Pool = Bsm_runtime.Pool
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology
module SM = Bsm_stable_matching
module Core = Bsm_core

type params = {
  instances : int;
  seed : int;
  jobs : int;
  queue_capacity : int;
  batch : int;
  k_min : int;
  k_max : int;
  mean_gap : int;
  chaos : bool;
  max_rounds : int option;
}

let default_params =
  {
    instances = 1000;
    seed = 1;
    jobs = 1;
    queue_capacity = 256;
    batch = 64;
    k_min = 8;
    k_max = 64;
    mean_gap = 1;
    chaos = false;
    max_rounds = None;
  }

type results = {
  params : params;
  ticks : int;
  matched : int;
  failed : int;
  timed_out : int;
  violations : int;
  queue_rejects : int;
  p50_ticks : int;
  p99_ticks : int;
  max_ticks : int;
  fingerprint : int64;
  request_bytes : int;
  response_bytes : int;
  wall_ms : float;
}

(* --- deterministic load generation --------------------------------------- *)

let salt = 0x10ADL

let draw ~seed ~i ~lane ~span =
  if span <= 0 then 0
  else
    let h = Rng.mix64_absorb (Rng.mix64_absorb (Rng.mix64 salt) seed) ((i * 8) + lane) in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int span))

let spec_of ~params i : Frame.spec =
  let { seed; k_min; k_max; chaos; _ } = params in
  let workload =
    if chaos then begin
      (* Small full protocol runs: FC/Auth with a spare right-side
         budget (t_right = k), so the within-budget live schedules
         (which charge at most R0) must leave the oracle at [Ok]. *)
      let k = 2 + draw ~seed ~i ~lane:1 ~span:2 in
      Frame.Bsm
        {
          k;
          topology = Topology.Fully_connected;
          auth = Core.Setting.Authenticated;
          t_left = k / 3;
          t_right = k;
          profile_seed = draw ~seed ~i ~lane:2 ~span:1_000_000;
          scenario_seed = draw ~seed ~i ~lane:3 ~span:1_000_000;
          coalition = false;
        }
    end
    else
      Frame.Gs
        {
          k = k_min + draw ~seed ~i ~lane:1 ~span:(k_max - k_min + 1);
          seed = draw ~seed ~i ~lane:2 ~span:1_000_000;
          family =
            (if draw ~seed ~i ~lane:3 ~span:2 = 0 then SM.Flat.Uniform
             else SM.Flat.Common_acceptors);
        }
  in
  { Frame.req_id = i; workload }

let arrivals ~params =
  let a = Array.make params.instances 0 in
  let t = ref 0 in
  for i = 0 to params.instances - 1 do
    t := !t + draw ~seed:params.seed ~i ~lane:0 ~span:((2 * params.mean_gap) + 1);
    a.(i) <- !t
  done;
  a

(* --- the open-loop run --------------------------------------------------- *)

let absorb_outcome h (outcome : Frame.outcome) =
  match outcome with
  | Frame.Matched { fingerprint; rounds } ->
    let h = Rng.mix64_absorb h 1 in
    let h = Rng.mix64_absorb h (Int64.to_int (Int64.logand fingerprint 0x3FFFFFFFFFFFFFFFL)) in
    Rng.mix64_absorb h rounds
  | Frame.Failed msg -> Rng.mix64_absorb (Rng.mix64_absorb h 2) (Hashtbl.hash msg)
  | Frame.Timed_out -> Rng.mix64_absorb h 3

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.((n - 1) * q / 100)

let run params =
  if params.instances < 1 then invalid_arg "Serve_bench.run: instances < 1";
  if params.k_min < 1 || params.k_max < params.k_min then
    invalid_arg "Serve_bench.run: bad k range";
  let pool = Pool.create ~jobs:params.jobs () in
  let t0 = Unix.gettimeofday () in
  let server =
    Server.create ~pool
      ~config:
        {
          Server.queue_capacity = params.queue_capacity;
          batch = params.batch;
          max_k = params.k_max;
          max_rounds = params.max_rounds;
          chaos = params.chaos;
          chaos_seed = params.seed;
        }
      ()
  in
  let req_ring : string Ring.t = Ring.create ~capacity:4096 () in
  let resp_ring : string Ring.t = Ring.create ~capacity:4096 () in
  let client_enc = Wire.Enc.create () in
  let server_enc = Wire.Enc.create () in
  let arrivals = arrivals ~params in
  let to_send = Queue.create () in
  let next_arrival = ref 0 in
  let completed = ref 0 in
  let matched = ref 0 and failed = ref 0 and timed_out = ref 0 in
  let queue_rejects = ref 0 and shed = ref 0 in
  let latencies = Array.make params.instances 0 in
  let fingerprint = ref (Rng.mix64 salt) in
  let request_bytes = ref 0 and response_bytes = ref 0 in
  let tick = ref 0 in
  let budget = (params.instances * 2000) + 100_000 in
  while !completed + !shed < params.instances do
    if !tick > budget then failwith "Serve_bench.run: load failed to drain";
    let t = !tick in
    (* Client: queue this tick's arrivals, pump the request ring. *)
    while !next_arrival < params.instances && arrivals.(!next_arrival) <= t do
      Queue.add (spec_of ~params !next_arrival) to_send;
      incr next_arrival
    done;
    let pumping = ref true in
    while !pumping && not (Queue.is_empty to_send) do
      let spec = Queue.peek to_send in
      let bytes = Wire.encode_into client_enc Frame.request_codec (Frame.Submit spec) in
      if Ring.try_push req_ring bytes then begin
        ignore (Queue.pop to_send);
        request_bytes := !request_bytes + String.length bytes
      end
      else pumping := false
    done;
    (* Server: decode + admit, then one scheduling quantum. *)
    let rec admit () =
      match Ring.try_pop req_ring with
      | None -> ()
      | Some bytes ->
        (match Wire.decode Frame.request_codec bytes with
        | Ok (Frame.Submit spec) ->
          let resp = Server.submit server ~tick:t spec in
          let out = Wire.encode_into server_enc Frame.response_codec resp in
          if not (Ring.try_push resp_ring out) then
            failwith "Serve_bench.run: response ring overflow";
          response_bytes := !response_bytes + String.length out
        | Ok Frame.Bye | Error _ -> ());
        admit ()
    in
    admit ();
    List.iter
      (fun resp ->
        let out = Wire.encode_into server_enc Frame.response_codec resp in
        if not (Ring.try_push resp_ring out) then
          failwith "Serve_bench.run: response ring overflow";
        response_bytes := !response_bytes + String.length out)
      (Server.tick server ~tick:t);
    (* Client: drain responses. *)
    let rec collect () =
      match Ring.try_pop resp_ring with
      | None -> ()
      | Some bytes ->
        (match Wire.decode_exn Frame.response_codec bytes with
        | Frame.Accepted _ -> ()
        | Frame.Rejected { req_id; reason = Frame.Queue_full } ->
          incr queue_rejects;
          Queue.add (spec_of ~params req_id) to_send
        | Frame.Rejected { req_id; reason } ->
          incr shed;
          fingerprint :=
            Rng.mix64_absorb
              (Rng.mix64_absorb !fingerprint req_id)
              (4 + Hashtbl.hash (Frame.reject_reason_to_string reason))
        | Frame.Done { req_id; outcome; arrival_tick; done_tick } ->
          incr completed;
          (* Client-perspective latency: from the schedule's arrival,
             so time spent retrying against a full queue counts —
             [arrival_tick] (admission) would hide the backpressure. *)
          latencies.(req_id) <- done_tick - arrivals.(req_id);
          ignore arrival_tick;
          (match outcome with
          | Frame.Matched _ -> incr matched
          | Frame.Failed _ -> incr failed
          | Frame.Timed_out -> incr timed_out);
          let h = Rng.mix64_absorb !fingerprint req_id in
          let h = absorb_outcome h outcome in
          let h = Rng.mix64_absorb h arrival_tick in
          fingerprint := Rng.mix64_absorb h done_tick);
        collect ()
    in
    collect ();
    incr tick
  done;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Pool.shutdown pool;
  let sorted = Array.sub latencies 0 params.instances in
  Array.sort compare sorted;
  {
    params;
    ticks = !tick;
    matched = !matched;
    failed = !failed;
    timed_out = !timed_out;
    violations = Server.violations server;
    queue_rejects = !queue_rejects;
    p50_ticks = percentile sorted 50;
    p99_ticks = percentile sorted 99;
    max_ticks = percentile sorted 100;
    fingerprint = !fingerprint;
    request_bytes = !request_bytes;
    response_bytes = !response_bytes;
    wall_ms;
  }

let instances_per_sec r =
  if r.wall_ms <= 0. then 0. else float_of_int r.params.instances /. (r.wall_ms /. 1000.)

(* --- reporting ----------------------------------------------------------- *)

let workload_name params = if params.chaos then "bsm-chaos" else "gs"

let to_json ?(wall = false) r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"_comment\": \"serve bench: open-loop client driving the daemon over \
     the in-process ring transport. Deterministic in (params): every field \
     except the optional wall block is bit-identical across runs and job \
     counts; latencies are scheduler ticks, not wall time.\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" r.params.jobs);
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" r.params.seed);
  Buffer.add_string buf "  \"workloads\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"workload\": \"%s\", \"instances\": %d, \"k_min\": %d, \"k_max\": \
        %d, \"mean_gap\": %d, \"queue_capacity\": %d, \"batch\": %d, \
        \"matched\": %d, \"failed\": %d, \"timed_out\": %d, \"violations\": %d, \
        \"queue_rejects\": %d, \"ticks\": %d, \"p50_ticks\": %d, \"p99_ticks\": \
        %d, \"max_ticks\": %d, \"request_bytes\": %d, \"response_bytes\": %d, \
        \"fingerprint\": \"%Lx\"}\n"
       (workload_name r.params) r.params.instances r.params.k_min r.params.k_max
       r.params.mean_gap r.params.queue_capacity r.params.batch r.matched
       r.failed r.timed_out r.violations r.queue_rejects r.ticks r.p50_ticks
       r.p99_ticks r.max_ticks r.request_bytes r.response_bytes r.fingerprint);
  Buffer.add_string buf "  ]";
  if wall then
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"wall\": {\"wall_ms\": %.3f, \"instances_per_sec\": %.1f, \
          \"p50_ms_est\": %.3f, \"p99_ms_est\": %.3f}"
         r.wall_ms (instances_per_sec r)
         (float_of_int r.p50_ticks *. r.wall_ms /. float_of_int (max 1 r.ticks))
         (float_of_int r.p99_ticks *. r.wall_ms /. float_of_int (max 1 r.ticks)));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write_json ~path json =
  let oc = open_out path in
  output_string oc json;
  close_out oc

let pp_results ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d instances in %d ticks (%.1f ms wall, %.0f inst/s)@,\
     matched %d, failed %d, timed out %d, violations %d, queue rejects %d@,\
     latency ticks: p50 %d, p99 %d, max %d@,\
     wire: %d request bytes, %d response bytes@,\
     fingerprint %Lx@]" (workload_name r.params) r.params.instances r.ticks
    r.wall_ms (instances_per_sec r) r.matched r.failed r.timed_out r.violations
    r.queue_rejects r.p50_ticks r.p99_ticks r.max_ticks r.request_bytes
    r.response_bytes r.fingerprint

(* --- live-vs-engine determinism gate ------------------------------------- *)

let live_check ~k ~seed =
  let profile = SM.Profile.random (Rng.make seed) k in
  let programs p =
    Core.Distributed_gs.program ~input:(SM.Profile.prefs profile p) ~self:p
  in
  let max_rounds = Core.Distributed_gs.rounds_bound ~k + 2 in
  let link = Engine.Of_topology Topology.Bipartite in
  let cfg = Engine.config ~k ~max_rounds ~link () in
  let engine = (Engine.run cfg ~programs).Engine.parties in
  let live = Live.run ~max_rounds ~k ~link ~programs () in
  if List.length engine <> List.length live then Error "roster size mismatch"
  else
    let divergence =
      List.find_map
        (fun ((e : Engine.party_result), (l : Engine.party_result)) ->
          if not (Party_id.equal e.Engine.id l.Engine.id) then
            Some (Format.asprintf "roster order differs at %a" Party_id.pp e.Engine.id)
          else if e.Engine.status <> l.Engine.status then
            Some (Format.asprintf "%a: status differs" Party_id.pp e.Engine.id)
          else if e.Engine.out <> l.Engine.out then
            Some (Format.asprintf "%a: output differs" Party_id.pp e.Engine.id)
          else None)
        (List.combine engine live)
    in
    match divergence with Some msg -> Error msg | None -> Ok k
