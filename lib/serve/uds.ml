module Wire = Bsm_wire.Wire

let max_frame_bytes = 1 lsl 20

(* --- varint stream framing ----------------------------------------------- *)

let add_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let frame_bytes payload =
  let buf = Buffer.create (String.length payload + 4) in
  add_varint buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Parse one frame out of [s] starting at [pos]: [`Frame (payload, next)],
   [`More] (incomplete), or [`Bad reason]. *)
let parse_frame s pos =
  let len = String.length s in
  let rec varint acc shift i =
    if i >= len then `More
    else if i - pos >= 10 then `Bad "varint too long"
    else begin
      let b = Char.code s.[i] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then
        if acc < 0 then `Bad "negative frame length" else `Len (acc, i + 1)
      else varint acc (shift + 7) (i + 1)
    end
  in
  match varint 0 0 pos with
  | `More -> `More
  | `Bad _ as bad -> bad
  | `Len (flen, body) ->
    if flen > max_frame_bytes then `Bad "frame too large"
    else if len - body < flen then `More
    else `Frame (String.sub s body flen, body + flen)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

(* --- daemon side --------------------------------------------------------- *)

type conn_id = int

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
}

type listener = {
  sock : Unix.file_descr;
  path : string;
  conns : (conn_id, conn) Hashtbl.t;
  mutable next_id : int;
  mutable open_ : bool;
}

type event =
  | Connect of conn_id
  | Request of conn_id * Frame.request
  | Bad_frame of conn_id * string
  | Disconnect of conn_id

let listen ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock sock;
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  { sock; path; conns = Hashtbl.create 16; next_id = 0; open_ = true }

let drop l id =
  match Hashtbl.find_opt l.conns id with
  | None -> ()
  | Some conn ->
    Hashtbl.remove l.conns id;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* Extract every complete frame from [conn]'s buffer; compact the
   leftover. Returns the events (in order); a bad frame ends the
   connection. *)
let extract l id conn events =
  let s = Buffer.contents conn.inbuf in
  let rec go pos events =
    match parse_frame s pos with
    | `More ->
      Buffer.clear conn.inbuf;
      Buffer.add_substring conn.inbuf s pos (String.length s - pos);
      events
    | `Bad reason ->
      drop l id;
      Bad_frame (id, reason) :: events
    | `Frame (payload, next) -> (
      match Wire.decode Frame.request_codec payload with
      | Ok request -> go next (Request (id, request) :: events)
      | Error reason ->
        drop l id;
        Bad_frame (id, reason) :: events)
  in
  go 0 events

let poll l ~timeout_s =
  if not l.open_ then []
  else begin
    (* poll(2), not select: the daemon must survive >1024 fds, which is
       where [Unix.select]'s fd_set silently stops working. Slot 0 is
       the listening socket; slot [i+1] is connection [i]. *)
    let conns = Hashtbl.fold (fun id c acc -> (id, c) :: acc) l.conns [] in
    let fds = Array.make (1 + List.length conns) l.sock in
    List.iteri (fun i (_, c) -> fds.(i + 1) <- c.fd) conns;
    let ready = Readiness.readable fds ~timeout_s in
    let events = ref [] in
    if ready.(0) then begin
      let rec accept_all () =
        match Unix.accept l.sock with
        | fd, _ ->
          Unix.set_nonblock fd;
          let id = l.next_id in
          l.next_id <- id + 1;
          Hashtbl.replace l.conns id { fd; inbuf = Buffer.create 256 };
          events := Connect id :: !events;
          accept_all ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      in
      accept_all ()
    end;
    let chunk = Bytes.create 4096 in
    List.iteri
      (fun i (id, conn) ->
        if ready.(i + 1) then begin
          let rec read_all () =
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              drop l id;
              events := Disconnect id :: !events
            | n ->
              Buffer.add_subbytes conn.inbuf chunk 0 n;
              read_all ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              events := extract l id conn !events
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
              drop l id;
              events := Disconnect id :: !events
          in
          read_all ()
        end)
      conns;
    List.rev !events
  end

let respond l id response =
  match Hashtbl.find_opt l.conns id with
  | None -> ()
  | Some conn -> (
    let bytes = frame_bytes (Wire.encode Frame.response_codec response) in
    try
      (* Writes block until drained: responses are small and the
         listener never queues unbounded output. *)
      Unix.clear_nonblock conn.fd;
      write_all conn.fd (Bytes.of_string bytes) 0 (String.length bytes);
      Unix.set_nonblock conn.fd
    with Unix.Unix_error _ -> drop l id)

let shutdown l =
  if l.open_ then begin
    l.open_ <- false;
    Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) l.conns;
    Hashtbl.reset l.conns;
    (try Unix.close l.sock with Unix.Unix_error _ -> ());
    try Unix.unlink l.path with Unix.Unix_error _ -> ()
  end

(* --- client side --------------------------------------------------------- *)

type client = {
  cfd : Unix.file_descr;
  mutable eof : bool;
}

let connect ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { cfd = fd; eof = false }

let send c request =
  let bytes = frame_bytes (Wire.encode Frame.request_codec request) in
  write_all c.cfd (Bytes.of_string bytes) 0 (String.length bytes)

let read_byte c =
  let b = Bytes.create 1 in
  match Unix.read c.cfd b 0 1 with 0 -> None | _ -> Some (Char.code (Bytes.get b 0))

let recv c =
  if c.eof then None
  else begin
    let rec varint acc shift count =
      if count >= 10 then failwith "Uds.recv: varint too long"
      else
        match read_byte c with
        | None -> None
        | Some b ->
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if b land 0x80 = 0 then Some acc else varint acc (shift + 7) (count + 1)
    in
    match varint 0 0 0 with
    | None ->
      c.eof <- true;
      None
    | Some len ->
      if len < 0 || len > max_frame_bytes then failwith "Uds.recv: bad frame length";
      let buf = Bytes.create len in
      let rec fill pos =
        if pos < len then begin
          match Unix.read c.cfd buf pos (len - pos) with
          | 0 -> failwith "Uds.recv: truncated frame"
          | n -> fill (pos + n)
        end
      in
      fill 0;
      (match Wire.decode Frame.response_codec (Bytes.to_string buf) with
      | Ok response -> Some response
      | Error msg -> failwith ("Uds.recv: " ^ msg))
  end

let close c =
  c.eof <- true;
  try Unix.close c.cfd with Unix.Unix_error _ -> ()
