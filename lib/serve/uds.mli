(** Unix-domain-socket transport for the serve daemon.

    Stream framing is one {!Bsm_wire.Wire} varint length prefix
    followed by that many payload bytes; the payload is a
    {!Frame.request} (client → daemon) or {!Frame.response}
    (daemon → client). The listener is non-blocking and poll-driven
    (via {!Readiness}, so it survives more than [FD_SETSIZE] open
    connections) and the daemon's single coordinator thread can
    interleave socket traffic with scheduler ticks; clients are
    blocking (they are either humans' tools or the load generator,
    which wants backpressure).

    Decoder hardening carries over from the wire layer: length prefixes
    are capped (a forged 8 EiB prefix is a [Bad_frame], not an
    allocation), and any [Malformed] payload drops the connection with
    a [Bad_frame] event — byzantine clients are a first-class case. *)

module Frame := Frame

(** Frames above this many payload bytes are rejected. *)
val max_frame_bytes : int

(** {2 Daemon side} *)

type listener
type conn_id = int

type event =
  | Connect of conn_id
  | Request of conn_id * Frame.request
  | Bad_frame of conn_id * string  (** connection dropped *)
  | Disconnect of conn_id

(** [listen ~path] binds and listens on [path] (unlinking any stale
    socket file first). *)
val listen : path:string -> listener

(** [poll l ~timeout_s] — wait up to [timeout_s] for socket activity;
    accept connections, read what's available, return the completed
    events in arrival order. *)
val poll : listener -> timeout_s:float -> event list

(** [respond l conn response] — frame and write (blocking). Unknown or
    dropped connections are ignored (the client may have gone). *)
val respond : listener -> conn_id -> Frame.response -> unit

val drop : listener -> conn_id -> unit

(** Close every connection, the listening socket, and unlink the path. *)
val shutdown : listener -> unit

(** {2 Client side} *)

type client

val connect : path:string -> client
val send : client -> Frame.request -> unit

(** Blocking; [None] on server EOF. Raises [Failure] on a malformed or
    oversized server frame. *)
val recv : client -> Frame.response option

val close : client -> unit
