(** The daemon's instance table: every admitted submission, sharded by
    request id, with an enforced lifecycle.

    States move strictly forward:
    [Submitted → Running → Matched | Failed | Timed_out] — any other
    transition raises [Invalid_argument] (a scheduler bug, not a client
    error). Shard count mirrors the pool's lanes so a full table walk
    partitions into per-lane chunks, and per-state counters make the
    admission/consistency checks O(1).

    The table itself is single-writer (the daemon's coordinator domain
    admits and retires; pool tasks only compute outcomes), so access is
    not synchronized. *)

module Frame := Frame

type state =
  | Submitted
  | Running
  | Matched
  | Failed
  | Timed_out

val state_to_string : state -> string

(** [final_of_outcome o] — the terminal state a {!Frame.outcome} lands
    in. *)
val final_of_outcome : Frame.outcome -> state

type record = {
  spec : Frame.spec;
  arrival_tick : int;
  mutable state : state;
  mutable outcome : Frame.outcome option;  (** set on the final states *)
  mutable done_tick : int;  (** -1 until final *)
}

type t

(** [create ~shards ()] — raises [Invalid_argument] when [shards < 1]. *)
val create : shards:int -> unit -> t

val shards : t -> int

(** [add t ~tick spec] registers a [Submitted] record. Raises
    [Invalid_argument] on a duplicate live [req_id] (admission must
    reject those first — see {!mem}). *)
val add : t -> tick:int -> Frame.spec -> record

val mem : t -> int -> bool
val find : t -> int -> record option

(** [transition t record state] — enforces the lifecycle; final states
    additionally require {!finish}. *)
val transition : t -> record -> state -> unit

(** [finish t record ~tick outcome] — transition to the outcome's final
    state, recording outcome and completion tick. *)
val finish : t -> record -> tick:int -> Frame.outcome -> unit

(** Live records (submitted or running). *)
val pending : t -> int

(** Records in the given state. *)
val count : t -> state -> int

(** Total records ever admitted. *)
val total : t -> int

(** Walk one shard's records (unspecified order). *)
val iter_shard : t -> int -> (record -> unit) -> unit
