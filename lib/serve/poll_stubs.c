/* poll(2) readiness for the Uds listener.

   Unix.select caps out at FD_SETSIZE (typically 1024) descriptors; a
   daemon holding more connections than that corrupts the fd_set. poll
   has no such ceiling, so the listener's readiness sweep goes through
   this stub instead. Unix file descriptors are plain ints in the OCaml
   runtime, so no unixsupport glue is needed. */

#include <poll.h>
#include <errno.h>
#include <stdlib.h>
#include <string.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

/* bsm_poll_readable(fds, timeout_ms) -> bool array

   fds is an array of Unix file descriptors; timeout_ms < 0 blocks
   indefinitely. Returns one flag per descriptor: readable, hung up, or
   errored (the read path must run to observe EOF/errors, exactly as
   with select). EINTR is reported as nothing-ready rather than an
   exception so callers just poll again on their next tick. */
CAMLprim value bsm_poll_readable(value v_fds, value v_timeout_ms)
{
  CAMLparam2(v_fds, v_timeout_ms);
  CAMLlocal1(v_res);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  int rc;
  mlsize_t i;

  if (n > 0) {
    pfds = calloc(n, sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = POLLIN;
    }
  }

  caml_release_runtime_system();
  rc = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (rc < 0 && errno != EINTR) {
    int err = errno;
    char msg[128];
    free(pfds);
    snprintf(msg, sizeof(msg), "poll: %s", strerror(err));
    caml_failwith(msg);
  }

  v_res = caml_alloc(n, 0);
  for (i = 0; i < n; i++) {
    int ready =
        rc > 0 && (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    Store_field(v_res, i, Val_bool(ready));
  }
  free(pfds);
  CAMLreturn(v_res);
}
