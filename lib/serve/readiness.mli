(** Readiness sweep over a set of file descriptors, built on [poll(2)].

    [Unix.select] silently caps out (and corrupts its [fd_set]s) past
    [FD_SETSIZE] descriptors — typically 1024 — so a daemon holding more
    connections than that cannot use it. [poll] has no such ceiling;
    the {!Uds} listener runs its readiness sweep through this module. *)

(** [readable fds ~timeout_s] waits up to [timeout_s] seconds (negative
    blocks indefinitely; [0.] polls) and returns one flag per
    descriptor in [fds]: [true] when it is readable, hung up, or
    errored — in each case a [read] must run to observe the data, EOF,
    or error, matching [select] semantics. An interrupted wait (EINTR)
    reports nothing ready; callers simply sweep again. Raises [Failure]
    on any other [poll] error. *)
val readable : Unix.file_descr array -> timeout_s:float -> bool array
