(** The matchmaking daemon's core: admission, scheduling, execution.

    A server owns a bounded submission queue (a {!Ring}), an
    {!Instances} table sharded across the pool's lanes, and a
    {!Bsm_runtime.Pool} the instance executions fan out over. Time is
    the caller's {e tick} counter — the daemon loop (or the open-loop
    bench) advances it; latencies are tick deltas, which is what makes
    a whole serve run bit-replayable from its seed.

    One {!tick} is one scheduling quantum: pop at most [batch] queued
    specs, run them across the pool ([Pool.map] keeps input order, and
    every execution is a pure function of its spec, so the emitted
    [Done] responses are bit-identical whatever the job count), retire
    them in the table, emit responses.

    Admission ({!submit}) never raises on client input — it answers
    with a typed {!Frame.reject_reason} instead: [Queue_full] is the
    backpressure signal, [Too_large] the configured k ceiling,
    [Unsolvable] a setting the paper's characterization rules out (or a
    duplicate live request id), [Shutting_down] a closed server. *)

module Frame := Frame

type config = {
  queue_capacity : int;  (** bounded submission queue (backpressure) *)
  batch : int;  (** max instances retired per tick *)
  max_k : int;  (** admission ceiling on instance size *)
  max_rounds : int option;  (** bSM engine round budget override *)
  chaos : bool;  (** run bSM instances under fault schedules *)
  chaos_seed : int;  (** schedule compilation seed *)
}

(** [queue_capacity 256; batch 64; max_k 4096; no chaos]. *)
val default_config : config

type t

(** [create ?pool ?config ()] — [pool] defaults to the process-global
    pool ({!Bsm_runtime.Pool.global}); the server never shuts a pool
    down (the global pool's [at_exit]/[shutdown_global] handles it —
    safe mid-serve since [Pool.shutdown] waits out in-flight
    batches). *)
val create : ?pool:Bsm_runtime.Pool.t -> ?config:config -> unit -> t

val config : t -> config
val instances : t -> Instances.t

(** Oracle violations observed so far (chaos mode; 0 otherwise). *)
val violations : t -> int

(** [submit t ~tick spec] — admit or reject; [Accepted] means the spec
    is queued and will be retired by a later {!tick}. *)
val submit : t -> tick:int -> Frame.spec -> Frame.response

(** [tick t ~tick] — run one scheduling quantum; returns the [Done]
    responses of the instances retired this quantum, in admission
    order. *)
val tick : t -> tick:int -> Frame.response list

(** Queued + running instances. *)
val pending : t -> int

(** [close t] — stop admitting ([Shutting_down] from now on); queued
    work still drains through {!tick}. *)
val close : t -> unit

(** [execute ~chaos ~chaos_seed ~max_rounds spec] — one instance,
    pure; what the pool tasks run. Exposed for tests.
    Returns the outcome and whether it counts as an oracle
    violation. *)
val execute :
  chaos:bool ->
  chaos_seed:int ->
  max_rounds:int option ->
  Frame.spec ->
  Frame.outcome * bool
