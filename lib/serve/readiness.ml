external poll_readable : Unix.file_descr array -> int -> bool array
  = "bsm_poll_readable"

let readable fds ~timeout_s =
  let timeout_ms =
    if timeout_s < 0. then -1
    else
      (* Round up so a positive sub-millisecond timeout still waits one
         tick instead of busy-polling. *)
      int_of_float (ceil (timeout_s *. 1000.))
  in
  poll_readable fds timeout_ms
