(** Bounded single-producer / single-consumer ring buffer.

    The serve layer's in-process transport: the load generator feeds the
    daemon through one ring and reads responses off another, and the
    {!Live} executor gives every ordered channel its own ring. Exactly
    one domain may push and one may pop (they can be the same domain —
    the in-process client is), which is what makes the lock-free fast
    path sound: the producer owns [tail], the consumer owns [head], and
    each publishes its moves with a release store the other side
    acquires. Slots are cleared on pop so the ring never pins popped
    values for the GC.

    [try_push]/[try_pop] never block — a full ring is the backpressure
    signal admission control turns into a typed reject. [push]/[pop]
    park on a condition variable (no spinning; the container may well be
    single-core) and are woken by the opposite side. *)

type 'a t

(** [create ~capacity ()] — capacity is rounded up to the next power of
    two (minimum 2). Raises [Invalid_argument] when [capacity < 1]. *)
val create : capacity:int -> unit -> 'a t

(** Slots the ring can hold (the rounded-up power of two). *)
val capacity : 'a t -> int

(** Elements currently queued. Exact from either endpoint's own domain;
    a racing snapshot from anywhere else. *)
val length : 'a t -> int

(** [try_push t x] — [false] when the ring is full or closed. *)
val try_push : 'a t -> 'a -> bool

(** [try_pop t] — [None] when the ring is empty (closed or not). *)
val try_pop : 'a t -> 'a option

(** [push t x] blocks while the ring is full; [false] iff the ring was
    closed before the element could be queued. *)
val push : 'a t -> 'a -> bool

(** [pop t] blocks while the ring is empty; [None] once the ring is
    closed {e and} drained — the consumer's end-of-stream. *)
val pop : 'a t -> 'a option

(** [close t] — subsequent pushes fail; pops drain what remains then
    report end-of-stream. Idempotent; wakes both blocked sides. *)
val close : 'a t -> unit

val closed : 'a t -> bool
