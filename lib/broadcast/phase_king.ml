open Bsm_prelude
module Wire = Bsm_wire.Wire

module Msg = struct
  type t =
    | Value of string
    | Propose of string
    | King of string
    | Echo of string
    | Sender of string

  let codec =
    let open Wire in
    variant ~name:"phase_king_msg"
      [
        pack
          (case 0 string
             ~inject:(fun v -> Value v)
             ~match_:(function
               | Value v -> Some v
               | Propose _ | King _ | Echo _ | Sender _ -> None));
        pack
          (case 1 string
             ~inject:(fun v -> Propose v)
             ~match_:(function
               | Propose v -> Some v
               | Value _ | King _ | Echo _ | Sender _ -> None));
        pack
          (case 2 string
             ~inject:(fun v -> King v)
             ~match_:(function
               | King v -> Some v
               | Value _ | Propose _ | Echo _ | Sender _ -> None));
        pack
          (case 3 string
             ~inject:(fun v -> Echo v)
             ~match_:(function
               | Echo v -> Some v
               | Value _ | Propose _ | King _ | Sender _ -> None));
        pack
          (case 4 string
             ~inject:(fun v -> Sender v)
             ~match_:(function
               | Sender v -> Some v
               | Value _ | Propose _ | King _ | Echo _ -> None));
      ]
end

type params = {
  structure : Adversary_structure.t;
  participants : Party_id.t list;
  kings : Party_id.t list;
}

let params ~structure ~participants =
  {
    structure;
    participants;
    kings = Adversary_structure.king_sequence structure ~participants;
  }

let rounds p = 3 * List.length p.kings

(* Decode, dedupe to one message per sender, and keep only payloads of the
   expected shape — anything else is byzantine noise. *)
let relevant extract inbox =
  List.filter_map
    (fun (src, payload) ->
      match Wire.decode Msg.codec payload with
      | Ok msg -> Option.map (fun v -> src, v) (extract msg)
      | Error _ -> None)
    (Machine.first_per_sender inbox)

(* Group received (sender, value) pairs by value: (value, sender set). *)
let tally pairs =
  Util.group_by ~key:snd ~equal_key:String.equal pairs
  |> List.map (fun (v, items) -> v, Party_set.of_list (List.map fst items))

let make_with_peek p ~self ~input =
  let v = ref input in
  let locked = ref false in
  let my_proposal = ref None in
  let all = p.participants in
  let structure = p.structure in
  let everyone_set = Party_set.of_list all in
  let complement s = Party_set.diff everyone_set s in
  let possibly_corrupt = Adversary_structure.possibly_corrupt structure in
  (* One encoder per machine, reused for every outgoing message: the
     machine is single-fiber, so no two encodes overlap. *)
  let enc = Wire.Enc.create () in
  let to_all msg =
    let payload = Wire.encode_into enc Msg.codec msg in
    List.filter_map
      (fun dst -> if Party_id.equal dst self then None else Some (dst, payload))
      all
  in
  (* Deterministic choice among tallied candidates satisfying [pred]:
     largest support first, then lexicographic value. Under Q3 at most one
     candidate can satisfy the predicates we use, but byzantine behaviour
     must not be able to crash us. *)
  let pick pred tallied =
    let candidates = List.filter (fun (_, senders) -> pred senders) tallied in
    let by_support (v1, s1) (v2, s2) =
      match Int.compare (Party_set.cardinal s2) (Party_set.cardinal s1) with
      | 0 -> String.compare v1 v2
      | c -> c
    in
    match List.sort by_support candidates with
    | [] -> None
    | (value, _) :: _ -> Some value
  in
  let num_kings = List.length p.kings in
  let step ~round ~inbox =
    (* Rounds are grouped in threes per king iteration:
       phase 1 = values arrived, send proposal;
       phase 2 = proposals arrived, adopt + king sends;
       phase 3 = king's value arrived, adopt unless locked. *)
    let iteration = (round - 1) / 3 in
    let king = List.nth p.kings iteration in
    match (round - 1) mod 3 with
    | 0 ->
      let values =
        relevant
          (function
            | Msg.Value x -> Some x
            | Msg.Propose _ | Msg.King _ | Msg.Echo _ | Msg.Sender _ -> None)
          inbox
      in
      (* Own value counts too: the paper's parties send to "all parties"
         including themselves; self-delivery is implicit here. *)
      let values = (self, !v) :: values in
      let proposal =
        pick (fun senders -> possibly_corrupt (complement senders)) (tally values)
      in
      my_proposal := proposal;
      (match proposal with
      | Some w -> to_all (Msg.Propose w)
      | None -> [])
    | 1 ->
      let proposals =
        relevant
          (function
            | Msg.Propose x -> Some x
            | Msg.Value _ | Msg.King _ | Msg.Echo _ | Msg.Sender _ -> None)
          inbox
      in
      let proposals =
        match !my_proposal with
        | Some w -> (self, w) :: proposals
        | None -> proposals
      in
      let tallied = tally proposals in
      (match pick (fun senders -> not (possibly_corrupt senders)) tallied with
      | Some w -> v := w
      | None -> ());
      locked :=
        List.exists (fun (_, senders) -> possibly_corrupt (complement senders)) tallied;
      if Party_id.equal self king then to_all (Msg.King !v) else []
    | _ ->
      let king_value =
        List.find_map
          (fun (src, payload) ->
            if not (Party_id.equal src king) then None
            else
              match Wire.decode Msg.codec payload with
              | Ok (Msg.King x) -> Some x
              | Ok (Msg.Value _ | Msg.Propose _ | Msg.Echo _ | Msg.Sender _)
              | Error _ -> None)
          inbox
      in
      (match king_value with
      | Some x when not !locked -> v := x
      | Some _ | None -> ());
      let last_iteration = iteration = num_kings - 1 in
      if last_iteration then [] else to_all (Msg.Value !v)
  in
  let machine =
    {
      Machine.initial = to_all (Msg.Value input);
      rounds = 3 * num_kings;
      step;
      finish = (fun () -> !v);
      cells =
        [
          Bsm_runtime.Engine.state_cell Wire.string v;
          Bsm_runtime.Engine.state_cell Wire.bool locked;
          Bsm_runtime.Engine.state_cell (Wire.option Wire.string) my_proposal;
        ];
    }
  in
  machine, fun () -> !v

let make p ~self ~input = fst (make_with_peek p ~self ~input)
