open Bsm_prelude
module Wire = Bsm_wire.Wire

let rounds p = Phase_king.rounds p + 1

let make (p : Phase_king.params) ~self ~input =
  let king_machine, peek = Phase_king.make_with_peek p ~self ~input in
  let king_rounds = king_machine.Machine.rounds in
  let output = ref None in
  let everyone_set = Party_set.of_list p.participants in
  let possibly_corrupt = Adversary_structure.possibly_corrupt p.structure in
  (* Reused across this machine's messages; the machine is single-fiber. *)
  let enc = Wire.Enc.create () in
  let to_all msg =
    let payload = Wire.encode_into enc Phase_king.Msg.codec msg in
    List.filter_map
      (fun dst -> if Party_id.equal dst self then None else Some (dst, payload))
      p.participants
  in
  let step ~round ~inbox =
    if round <= king_rounds then begin
      let outbox = king_machine.Machine.step ~round ~inbox in
      (* The king protocol's final step sends nothing; append the echo of
         the value it settled on. *)
      if round = king_rounds then outbox @ to_all (Phase_king.Msg.Echo (peek ()))
      else outbox
    end
    else begin
      (* Echo round: output z iff the non-echoers of z form a
         possibly-corrupt set ("same value from k − t parties"). *)
      let echoes =
        List.filter_map
          (fun (src, payload) ->
            match Wire.decode Phase_king.Msg.codec payload with
            | Ok (Phase_king.Msg.Echo z) -> Some (src, z)
            | Ok
                ( Phase_king.Msg.Value _ | Phase_king.Msg.Propose _
                | Phase_king.Msg.King _ | Phase_king.Msg.Sender _ )
            | Error _ -> None)
          (Machine.first_per_sender inbox)
      in
      let echoes = (self, peek ()) :: echoes in
      let grouped = Util.group_by ~key:snd ~equal_key:String.equal echoes in
      let accepted =
        List.find_map
          (fun (z, items) ->
            let senders = Party_set.of_list (List.map fst items) in
            if possibly_corrupt (Party_set.diff everyone_set senders) then Some z
            else None)
          grouped
      in
      output := accepted;
      []
    end
  in
  {
    Machine.initial = king_machine.Machine.initial;
    rounds = king_rounds + 1;
    step;
    finish = (fun () -> !output);
    cells =
      king_machine.Machine.cells
      @ [ Bsm_runtime.Engine.state_cell (Wire.option Wire.string) output ];
  }
