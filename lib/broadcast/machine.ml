open Bsm_prelude
module Net = Bsm_runtime.Net
module Engine = Bsm_runtime.Engine

type 'out t = {
  initial : (Party_id.t * string) list;
  rounds : int;
  step : round:int -> inbox:(Party_id.t * string) list -> (Party_id.t * string) list;
  finish : unit -> 'out;
  cells : Engine.state_cell list;
}

let map f m = { m with finish = (fun () -> f (m.finish ())) }

let run (net : Net.t) m =
  List.iter net.register_state m.cells;
  List.iter (fun (dst, msg) -> net.send dst msg) m.initial;
  for round = 1 to m.rounds do
    let inbox = net.sync () in
    let outbox = m.step ~round ~inbox in
    List.iter (fun (dst, msg) -> net.send dst msg) outbox
  done;
  m.finish ()

let silent ~rounds out =
  {
    initial = [];
    rounds;
    step = (fun ~round:_ ~inbox:_ -> []);
    finish = (fun () -> out);
    cells = [];
  }

let first_per_sender inbox =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (src, _) ->
      if Hashtbl.mem seen (Party_id.to_string src) then false
      else begin
        Hashtbl.add seen (Party_id.to_string src) ();
        true
      end)
    inbox
