open Bsm_prelude
module Wire = Bsm_wire.Wire

type params = {
  structure : Adversary_structure.t;
  participants : Party_id.t list;
}

let rounds = 3

type verdict = {
  value : string option;
  grade : int;
}

type msg =
  | Value of string
  | Echo of string
  | Ready of string

let codec =
  let open Wire in
  variant ~name:"gradecast_msg"
    [
      pack
        (case 0 string
           ~inject:(fun v -> Value v)
           ~match_:(function
             | Value v -> Some v
             | Echo _ | Ready _ -> None));
      pack
        (case 1 string
           ~inject:(fun v -> Echo v)
           ~match_:(function
             | Echo v -> Some v
             | Value _ | Ready _ -> None));
      pack
        (case 2 string
           ~inject:(fun v -> Ready v)
           ~match_:(function
             | Ready v -> Some v
             | Value _ | Echo _ -> None));
    ]

let make p ~self ~sender ~input =
  let everyone = Party_set.of_list p.participants in
  let possibly_corrupt = Adversary_structure.possibly_corrupt p.structure in
  let complement s = Party_set.diff everyone s in
  (* Reused across this machine's messages; the machine is single-fiber. *)
  let enc = Wire.Enc.create () in
  let to_all msg =
    let payload = Wire.encode_into enc codec msg in
    List.filter_map
      (fun dst -> if Party_id.equal dst self then None else Some (dst, payload))
      p.participants
  in
  let extract shape inbox =
    List.filter_map
      (fun (src, payload) ->
        match Wire.decode codec payload with
        | Ok m -> Option.map (fun v -> src, v) (shape m)
        | Error _ -> None)
      (Machine.first_per_sender inbox)
  in
  let tally pairs =
    Util.group_by ~key:snd ~equal_key:String.equal pairs
    |> List.map (fun (v, items) -> v, Party_set.of_list (List.map fst items))
  in
  let my_echo = ref None in
  let my_ready = ref None in
  let result = ref { value = None; grade = 0 } in
  let initial = if Party_id.equal self sender then to_all (Value input) else [] in
  let step ~round ~inbox =
    match round with
    | 1 ->
      (* Echo whatever the sender (verifiably, over the authenticated
         channel) sent; stay silent when nothing arrived. *)
      let received =
        if Party_id.equal self sender then Some input
        else
          List.find_map
            (fun (src, v) -> if Party_id.equal src sender then Some v else None)
            (extract
               (function
                 | Value v -> Some v
                 | Echo _ | Ready _ -> None)
               inbox)
      in
      my_echo := received;
      (match received with
      | Some v -> to_all (Echo v)
      | None -> [])
    | 2 ->
      let echoes =
        extract
          (function
            | Echo v -> Some v
            | Value _ | Ready _ -> None)
          inbox
      in
      let echoes =
        match !my_echo with
        | Some v -> (self, v) :: echoes
        | None -> echoes
      in
      let ready =
        List.find_map
          (fun (v, senders) ->
            if possibly_corrupt (complement senders) then Some v else None)
          (tally echoes)
      in
      my_ready := ready;
      (match ready with
      | Some v -> to_all (Ready v)
      | None -> [])
    | _ ->
      let readies =
        extract
          (function
            | Ready v -> Some v
            | Value _ | Echo _ -> None)
          inbox
      in
      let readies =
        match !my_ready with
        | Some v -> (self, v) :: readies
        | None -> readies
      in
      let graded =
        List.filter_map
          (fun (v, senders) ->
            if possibly_corrupt (complement senders) then Some (v, 2)
            else if not (possibly_corrupt senders) then Some (v, 1)
            else None)
          (tally readies)
      in
      (* At most one value can reach grade >= 1 under Q3; pick the highest
         grade defensively. *)
      (result :=
         match List.sort (fun (_, a) (_, b) -> Int.compare b a) graded with
         | (v, g) :: _ -> { value = Some v; grade = g }
         | [] -> { value = None; grade = 0 });
      []
  in
  let verdict_codec =
    Wire.map
      ~inject:(fun (value, grade) -> { value; grade })
      ~project:(fun { value; grade } -> value, grade)
      (Wire.pair (Wire.option Wire.string) Wire.uint)
  in
  {
    Machine.initial;
    rounds;
    step;
    finish = (fun () -> !result);
    cells =
      [
        Bsm_runtime.Engine.state_cell (Wire.option Wire.string) my_echo;
        Bsm_runtime.Engine.state_cell (Wire.option Wire.string) my_ready;
        Bsm_runtime.Engine.state_cell verdict_codec result;
      ];
  }
