open Bsm_prelude
module Wire = Bsm_wire.Wire

let rounds p = 1 + Pi_ba.rounds p

let make (p : Phase_king.params) ~self ~sender ~input ~default =
  let ba = ref None in
  let initial =
    if Party_id.equal self sender then begin
      let payload = Wire.encode Phase_king.Msg.codec (Phase_king.Msg.Sender input) in
      List.filter_map
        (fun dst -> if Party_id.equal dst self then None else Some (dst, payload))
        p.participants
    end
    else []
  in
  let step ~round ~inbox =
    if round = 1 then begin
      let received =
        List.find_map
          (fun (src, payload) ->
            if not (Party_id.equal src sender) then None
            else
              match Wire.decode Phase_king.Msg.codec payload with
              | Ok (Phase_king.Msg.Sender v) -> Some v
              | Ok
                  ( Phase_king.Msg.Value _ | Phase_king.Msg.Propose _
                  | Phase_king.Msg.King _ | Phase_king.Msg.Echo _ )
              | Error _ -> None)
          inbox
      in
      let ba_input =
        if Party_id.equal self sender then input
        else Option.value received ~default
      in
      let machine = Pi_ba.make p ~self ~input:ba_input in
      ba := Some machine;
      machine.Machine.initial
    end
    else begin
      match !ba with
      | Some machine -> machine.Machine.step ~round:(round - 1) ~inbox
      | None -> []
    end
  in
  let finish () =
    match !ba with
    | Some machine -> machine.Machine.finish ()
    | None -> None
  in
  (* The inner Π_BA machine is built lazily at round 1 (its input is the
     sender's round-0 message), after session-time registration — so its
     cells cannot be exposed here; only eagerly-created state can. *)
  { Machine.initial; rounds = rounds p; step; finish; cells = [] }
