open Bsm_prelude
module Wire = Bsm_wire.Wire
module Crypto = Bsm_crypto.Crypto

type params = {
  participants : Party_id.t list;
  t : int;
  verifier : Crypto.Verifier.t;
}

let rounds p = p.t + 1

module Chain = struct
  type t = {
    value : string;
    links : (Party_id.t * Crypto.Signature.t) list;
  }

  let codec =
    Wire.map
      ~inject:(fun (value, links) -> { value; links })
      ~project:(fun c -> c.value, c.links)
      (Wire.pair Wire.string
         (Wire.list (Wire.pair Wire.party_id Crypto.Signature.codec)))

  (* Link [i] signs the value together with all previous links, so a chain
     cannot be truncated or reordered without breaking verification. *)
  let link_payload value previous =
    Wire.encode
      (Wire.pair Wire.string (Wire.list (Wire.pair Wire.party_id Crypto.Signature.codec)))
      (value, previous)

  let start signer value =
    let signature = Crypto.Signer.sign signer (link_payload value []) in
    { value; links = [ Crypto.Signer.id signer, signature ] }

  let sign_onto signer c =
    let signature = Crypto.Signer.sign signer (link_payload c.value c.links) in
    { c with links = c.links @ [ Crypto.Signer.id signer, signature ] }

  let valid p ~sender ~length c =
    List.length c.links = length
    && (match c.links with
       | (first, _) :: _ -> Party_id.equal first sender
       | [] -> false)
    && (let signers = List.map fst c.links in
        List.length (List.sort_uniq Party_id.compare signers) = length)
    && List.for_all (fun s -> List.mem s p.participants) (List.map fst c.links)
    &&
    let rec verify_links previous = function
      | [] -> true
      | (signer, signature) :: rest ->
        Crypto.Verifier.verify p.verifier ~signer ~msg:(link_payload c.value previous)
          signature
        && verify_links (previous @ [ signer, signature ]) rest
    in
    verify_links [] c.links
end

let make p ~signer ~sender ~input ~default =
  let self = Crypto.Signer.id signer in
  let extracted = ref [] in
  (* Reused across this machine's messages; the machine is single-fiber. *)
  let enc = Wire.Enc.create () in
  let to_all chain =
    let payload = Wire.encode_into enc Chain.codec chain in
    List.filter_map
      (fun dst -> if Party_id.equal dst self then None else Some (dst, payload))
      p.participants
  in
  let initial =
    if Party_id.equal self sender then begin
      let chain = Chain.start signer input in
      extracted := [ input ];
      to_all chain
    end
    else []
  in
  let step ~round ~inbox =
    let relay = ref [] in
    let accept (_, payload) =
      match Wire.decode Chain.codec payload with
      | Error _ -> ()
      | Ok chain ->
        (* Accept a value with [round] valid signatures, not already
           extracted; keep at most two extracted values (two already prove
           the sender byzantine, so further ones change nothing). *)
        if
          List.length !extracted < 2
          && (not (List.mem chain.Chain.value !extracted))
          && Chain.valid p ~sender ~length:round chain
        then begin
          extracted := chain.Chain.value :: !extracted;
          if round <= p.t then relay := to_all (Chain.sign_onto signer chain) @ !relay
        end
    in
    List.iter accept inbox;
    !relay
  in
  let finish () =
    match !extracted with
    | [ v ] -> v
    | [] | _ :: _ :: _ -> default
  in
  {
    Machine.initial;
    rounds = rounds p;
    step;
    finish;
    cells = [ Bsm_runtime.Engine.state_cell (Wire.list Wire.string) extracted ];
  }
