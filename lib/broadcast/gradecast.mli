(** Gradecast (graded broadcast, Feldman–Micali), generalized to adversary
    structures.

    A one-shot, constant-round relative of byzantine broadcast: each party
    outputs a value with a {e grade} in {0, 1, 2} quantifying its
    confidence. Under the Q3 condition:

    - {b validity}: an honest sender's value is output by every honest
      party with grade 2;
    - {b graded consistency}: if some honest party outputs [(v, 2)], every
      honest party outputs [(v, 1)] or [(v, 2)] — grades of honest parties
      never differ by more than one, and all honest parties with grade ≥ 1
      hold the same value.

    This is the same accept-by-quorum structure as Π_BA's final echo round
    (a grade-1-vs-grade-2 distinction collapsed to "output or ⊥"); exposed
    as its own primitive because composed protocols often need the full
    grade — e.g. to decide whether to adopt a value (grade 2), carry it
    tentatively (grade 1), or fall back to a default (grade 0).

    Three virtual rounds: value, echo, ready. *)

open Bsm_prelude

type params = {
  structure : Adversary_structure.t;
  participants : Party_id.t list;
}

(** Virtual rounds consumed: 3. *)
val rounds : int

(** Output: the value (if any) and its grade; grade 0 always carries
    [None]. *)
type verdict = {
  value : string option;
  grade : int;
}

val make :
  params ->
  self:Party_id.t ->
  sender:Party_id.t ->
  input:string ->
  verdict Machine.t

(** {2 Wire format}

    The message format, exposed for the decoder fuzzer. *)

type msg =
  | Value of string
  | Echo of string
  | Ready of string

val codec : msg Bsm_wire.Wire.t
