(** Round machines: synchronous protocols as explicit step functions.

    A machine describes one party's role in one protocol instance. Its
    lifecycle over virtual rounds (see {!Bsm_runtime.Net}):

    - virtual round 0: the [initial] messages are sent;
    - virtual rounds [1 .. rounds]: the previous round's inbox is passed to
      [step], which returns the messages to send;
    - after the final step, [finish] yields the output.

    Machines are written once and composed freely: {!run} drives a single
    machine over a net; {!Session.run_parallel} multiplexes many machines
    over one net (the paper's "join an invocation of Π_BA for every party"
    pattern). Machines are stateful one-shot values: create a fresh one per
    execution. *)

open Bsm_prelude

type 'out t = {
  initial : (Party_id.t * string) list;
  rounds : int;
  step : round:int -> inbox:(Party_id.t * string) list -> (Party_id.t * string) list;
  finish : unit -> 'out;
  cells : Bsm_runtime.Engine.state_cell list;
      (** the machine's round-local state, exposed to the
          state-corruption plane; {!run} and {!Session.run_parallel}
          register these against the net before the first round. Machines
          whose state is created lazily mid-protocol (e.g. a nested
          machine built on first input) expose only what exists at
          construction time. *)
}

(** [map f m] post-processes the output. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [run net m] drives [m] over [net] — [m.rounds + ...] no extra rounds:
    exactly [m.rounds] calls to [Net.sync]. *)
val run : Bsm_runtime.Net.t -> 'out t -> 'out

(** [silent ~rounds out] participates without ever sending; used for
    default/placeholder roles. *)
val silent : rounds:int -> 'out -> 'out t

(** Keep at most the first message of each sender (protocol steps must
    count each sender once, or byzantine floods would inflate quorums). *)
val first_per_sender : (Party_id.t * 'a) list -> (Party_id.t * 'a) list
