module Wire = Bsm_wire.Wire
module Net = Bsm_runtime.Net

let tagged = Wire.pair Wire.string Wire.string

let wrap tag payload = Wire.encode tagged (tag, payload)

let unwrap payload =
  match Wire.decode tagged payload with
  | Ok pair -> Some pair
  | Error _ -> None

let rounds_needed machines =
  List.fold_left (fun acc (_, m) -> max acc m.Machine.rounds) 0 machines

let run_parallel (net : Net.t) machines =
  let tags = List.map fst machines in
  if List.length (List.sort_uniq String.compare tags) <> List.length tags then
    invalid_arg "Session.run_parallel: duplicate tags";
  let total_rounds = rounds_needed machines in
  let send_tagged tag (dst, payload) = net.send dst (wrap tag payload) in
  (* Expose every machine's round-local state to the state-corruption
     plane before any round runs, in machine-list order, so cell indices
     are deterministic across executors. *)
  List.iter
    (fun (_, m) -> List.iter net.register_state m.Machine.cells)
    machines;
  List.iter
    (fun (tag, m) -> List.iter (send_tagged tag) m.Machine.initial)
    machines;
  for round = 1 to total_rounds do
    let inbox = net.sync () in
    (* Route each message to its machine's inbox, preserving order. *)
    let routed = Hashtbl.create 16 in
    List.iter
      (fun (src, payload) ->
        match unwrap payload with
        | Some (tag, inner) ->
          let existing = try Hashtbl.find routed tag with Not_found -> [] in
          Hashtbl.replace routed tag ((src, inner) :: existing)
        | None -> ())
      inbox;
    List.iter
      (fun (tag, m) ->
        if round <= m.Machine.rounds then begin
          let mine = List.rev (try Hashtbl.find routed tag with Not_found -> []) in
          let outbox = m.Machine.step ~round ~inbox:mine in
          List.iter (send_tagged tag) outbox
        end)
      machines
  done;
  List.map (fun (tag, m) -> tag, m.Machine.finish ()) machines
