open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module Pool = Bsm_runtime.Pool

type adversary =
  | Honest
  | Random_coalition
  | Scripted of (Party_id.t * Engine.program) list

type case = {
  label : string;
  setting : Core.Setting.t;
  profile_seed : int;
  scenario_seed : int;
  adversary : adversary;
}

let case ?label ?(profile_seed = 0) ?(scenario_seed = 0) ?(adversary = Honest)
    setting =
  let label =
    match label with
    | Some l -> l
    | None -> Format.asprintf "%a" Core.Setting.pp setting
  in
  { label; setting; profile_seed; scenario_seed; adversary }

let scenario_of_case c =
  let rng = Rng.make c.profile_seed in
  let profile = SM.Profile.random rng c.setting.Core.Setting.k in
  let byzantine =
    match c.adversary with
    | Honest -> []
    | Scripted coalition -> coalition
    | Random_coalition ->
      Adversaries.random_coalition rng ~setting:c.setting ~seed:c.scenario_seed
        ~profile
  in
  Scenario.make_exn ~byzantine ~seed:c.scenario_seed c.setting profile

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Pool.map pool f xs

let run_cases ?pool ?max_rounds cases =
  map ?pool (fun c -> c, Scenario.run ?max_rounds (scenario_of_case c)) cases
