open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module Pool = Bsm_runtime.Pool

type adversary =
  | Honest
  | Random_coalition
  | Scripted of (Party_id.t * Engine.program) list

type case = {
  label : string;
  setting : Core.Setting.t;
  profile_seed : int;
  scenario_seed : int;
  adversary : adversary;
}

let case ?label ?(profile_seed = 0) ?(scenario_seed = 0) ?(adversary = Honest)
    setting =
  let label =
    match label with
    | Some l -> l
    | None -> Format.asprintf "%a" Core.Setting.pp setting
  in
  { label; setting; profile_seed; scenario_seed; adversary }

let scenario_of_case c =
  let rng = Rng.make c.profile_seed in
  let profile = SM.Profile.random rng c.setting.Core.Setting.k in
  let byzantine =
    match c.adversary with
    | Honest -> []
    | Scripted coalition -> coalition
    | Random_coalition ->
      Adversaries.random_coalition rng ~setting:c.setting ~seed:c.scenario_seed
        ~profile
  in
  Scenario.make_exn ~byzantine ~seed:c.scenario_seed c.setting profile

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Pool.map pool f xs

let run_cases ?pool ?max_rounds cases =
  map ?pool (fun c -> c, Scenario.run ?max_rounds (scenario_of_case c)) cases

type measurement = {
  wall_ms : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let measure f =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let g1 = Gc.quick_stat () in
  ( v,
    {
      wall_ms;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    } )

(* --- fused scheduler ------------------------------------------------------ *)

module Fused = struct
  type table_stats = {
    table : string;
    tasks : int;
    task_ms_total : float;
    task_ms_max : float;
    minor_words : float;
    major_words : float;
  }

  type run_stats = {
    wall_ms : float;
    tasks : int;
    steals : int;
    jobs : int;
    tables : table_stats list;
  }

  (* One registered table, its element type hidden behind the [run]
     closure; per-task instrumentation lands in the plain float arrays
     (distinct indices from distinct domains — race-free, like the
     pool's result slots). *)
  type entry = {
    entry_table : string;
    entry_n : int;
    entry_run : int -> unit;
    entry_wall : float array;
    entry_minor : float array;
    entry_major : float array;
  }

  type t = {
    mutable entries : entry list;  (** reversed: latest first *)
    mutable drained : bool;
  }

  type 'b handle = {
    h_batch : t;
    h_entry : entry;
    h_out : 'b option array;
  }

  let create () = { entries = []; drained = false }

  let add t ~table f cells =
    if t.drained then invalid_arg "Sweep.Fused.add: batch already drained";
    let items = Array.of_list cells in
    let n = Array.length items in
    let out = Array.make n None in
    let wall = Array.make n 0. in
    let minor = Array.make n 0. in
    let major = Array.make n 0. in
    (* Per-task Gc.quick_stat deltas are exact per-task attribution: a
       task runs start-to-finish on one domain, and that domain runs
       nothing else meanwhile, so the domain-local counters move only
       for this task. *)
    let run i =
      let g0 = Gc.quick_stat () in
      let t0 = Unix.gettimeofday () in
      let v = f items.(i) in
      let t1 = Unix.gettimeofday () in
      let g1 = Gc.quick_stat () in
      wall.(i) <- (t1 -. t0) *. 1000.;
      minor.(i) <- g1.Gc.minor_words -. g0.Gc.minor_words;
      major.(i) <- g1.Gc.major_words -. g0.Gc.major_words;
      out.(i) <- Some v
    in
    let entry =
      {
        entry_table = table;
        entry_n = n;
        entry_run = run;
        entry_wall = wall;
        entry_minor = minor;
        entry_major = major;
      }
    in
    t.entries <- entry :: t.entries;
    { h_batch = t; h_entry = entry; h_out = out }

  let sum a = Array.fold_left ( +. ) 0. a
  let maximum a = Array.fold_left Float.max 0. a

  let entry_stats e =
    {
      table = e.entry_table;
      tasks = e.entry_n;
      task_ms_total = sum e.entry_wall;
      task_ms_max = maximum e.entry_wall;
      minor_words = sum e.entry_minor;
      major_words = sum e.entry_major;
    }

  let drain ?pool t =
    if t.drained then invalid_arg "Sweep.Fused.drain: batch already drained";
    let entries = List.rev t.entries in
    (* The shared task graph: every table's cells flattened into one list
       in registration order, one pool task per cell, one drain point —
       no barrier between tables, so another table's cells fill the lanes
       a straggler would otherwise leave idle. *)
    let all_tasks =
      List.concat_map
        (fun e -> List.init e.entry_n (fun i () -> e.entry_run i))
        entries
    in
    let pool_stats0 =
      match pool with Some p -> Some (Pool.stats p) | None -> None
    in
    let t0 = Unix.gettimeofday () in
    (* Mark drained even if a cell raises: every cell still ran (Pool.map
       settles all tasks before re-raising), so the surviving tables'
       handles stay readable while the failed table's [results] reports
       its unfinished cells. *)
    Fun.protect
      ~finally:(fun () -> t.drained <- true)
      (fun () ->
        let (_ : unit list) = map ?pool (fun task -> task ()) all_tasks in
        ());
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let steals =
      match pool, pool_stats0 with
      | Some p, Some s0 -> (Pool.stats p).Pool.steals - s0.Pool.steals
      | _ -> 0
    in
    {
      wall_ms;
      tasks = List.fold_left (fun acc e -> acc + e.entry_n) 0 entries;
      steals;
      jobs = (match pool with Some p -> Pool.jobs p | None -> 1);
      tables = List.map entry_stats entries;
    }

  let results h =
    if not h.h_batch.drained then
      invalid_arg
        (Printf.sprintf "Sweep.Fused.results: %S read before drain"
           h.h_entry.entry_table);
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None ->
             invalid_arg
               (Printf.sprintf
                  "Sweep.Fused.results: %S has unfinished cells (drain raised?)"
                  h.h_entry.entry_table))
         h.h_out)

  let stats h =
    if not h.h_batch.drained then
      invalid_arg
        (Printf.sprintf "Sweep.Fused.stats: %S read before drain"
           h.h_entry.entry_table);
    entry_stats h.h_entry
end
