open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module Pool = Bsm_runtime.Pool

type adversary =
  | Honest
  | Random_coalition
  | Scripted of (Party_id.t * Engine.program) list

type case = {
  label : string;
  setting : Core.Setting.t;
  profile_seed : int;
  scenario_seed : int;
  adversary : adversary;
}

let case ?label ?(profile_seed = 0) ?(scenario_seed = 0) ?(adversary = Honest)
    setting =
  let label =
    match label with
    | Some l -> l
    | None -> Format.asprintf "%a" Core.Setting.pp setting
  in
  { label; setting; profile_seed; scenario_seed; adversary }

let scenario_of_case c =
  let rng = Rng.make c.profile_seed in
  let profile = SM.Profile.random rng c.setting.Core.Setting.k in
  let byzantine =
    match c.adversary with
    | Honest -> []
    | Scripted coalition -> coalition
    | Random_coalition ->
      Adversaries.random_coalition rng ~setting:c.setting ~seed:c.scenario_seed
        ~profile
  in
  Scenario.make_exn ~byzantine ~seed:c.scenario_seed c.setting profile

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Pool.map pool f xs

let run_cases ?pool ?max_rounds cases =
  map ?pool (fun c -> c, Scenario.run ?max_rounds (scenario_of_case c)) cases

type measurement = {
  wall_ms : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let measure f =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let g1 = Gc.quick_stat () in
  ( v,
    {
      wall_ms;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    } )
