(** Deterministic multicore sweeps of scenario grids.

    The experiment tables (T1–T3, A1–A4) and the attack evaluations all
    have the same shape: a list of cells, each an independent protocol
    execution determined entirely by plain data — a setting, a profile
    seed and an adversary choice. This module expresses such sweeps as a
    parallel map over {!Bsm_runtime.Pool} with per-cell isolation: every
    cell derives its own [Rng.make] chain and PKI from its seeds, shares
    nothing mutable with its neighbours, and therefore produces results
    bit-identical to a sequential [List.map] of the same cells (the
    tier-1 suite asserts this).

    Layering: [Pool] (runtime) supplies ordered parallel map;
    {!Scenario.run_all} batches scenario executions; this module adds
    the cell vocabulary the benches sweep over. *)

open Bsm_prelude
module Core := Bsm_core
module Engine := Bsm_runtime.Engine
module Pool := Bsm_runtime.Pool

(** Who corrupts the run. [Random_coalition] draws a maximal admissible
    coalition with {!Adversaries.random_coalition}, continuing the
    profile seed's Rng chain (so profile and coalition are one
    deterministic draw, as the benches have always done). *)
type adversary =
  | Honest
  | Random_coalition
  | Scripted of (Party_id.t * Engine.program) list

type case = {
  label : string;
  setting : Core.Setting.t;
  profile_seed : int;
      (** seeds [Rng.make] for the preference profile (and the coalition
          draw under [Random_coalition]) *)
  scenario_seed : int;  (** PKI derivation, {!Scenario.t}'s [seed] *)
  adversary : adversary;
}

(** [case ?label ?profile_seed ?scenario_seed ?adversary setting] —
    seeds default to [0], adversary to [Honest], label to the setting
    rendered by [Core.Setting.pp]. *)
val case :
  ?label:string ->
  ?profile_seed:int ->
  ?scenario_seed:int ->
  ?adversary:adversary ->
  Core.Setting.t ->
  case

(** Materialize the cell: profile from [Rng.make profile_seed], then the
    adversary's coalition from the same chain. *)
val scenario_of_case : case -> Scenario.t

(** [map ?pool f xs] — ordered map over independent cells; sequential
    [List.map] when [pool] is absent, {!Pool.map} otherwise. [f] must be
    self-contained (own Rng per call, no shared mutable state). *)
val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** [run_cases ?pool ?max_rounds cases] executes every case and pairs it
    with its report, in input order. *)
val run_cases :
  ?pool:Pool.t -> ?max_rounds:int -> case list -> (case * Scenario.report) list

(** Wall-clock and GC cost of one sweep, from [Gc.quick_stat] deltas
    around the run. Words are OCaml words (8 bytes on 64-bit). On OCaml 5
    the counters are per-domain: for a parallel sweep they cover the
    submitting domain only (its share of the cells plus orchestration),
    so compare like with like — sequential vs sequential across PRs, and
    parallel allocation trends only qualitatively. *)
type measurement = {
  wall_ms : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

(** [measure f] runs [f ()] and reports its cost. *)
val measure : (unit -> 'a) -> 'a * measurement

(** Fused sweep scheduler: many tables, one task graph, one drain point.

    The bench used to run each experiment table as its own [Pool.map]
    with a full barrier between tables, so every table paid for its own
    straggler cell (its largest k) while the other lanes idled. A fused
    batch instead {e registers} all tables' cells up front ({!add}), then
    executes the whole cross-table graph in a single parallel drain
    ({!drain}): one pool task per cell, so another table's cells fill the
    lanes a straggler would otherwise leave idle, and the only barrier is
    the single drain point at the end.

    Determinism is unchanged: cells keep their per-table input order in
    the results ({!results}), execution order is invisible, and a
    sequential [List.map] of the same cells is bit-identical (the bench
    asserts this per table).

    Instrumentation: every task is individually timed and its
    domain-local GC counters delta'd — valid per-task attribution, since
    a task runs start-to-finish on one domain that runs nothing else
    meanwhile. {!stats} aggregates per table; {!drain} reports the
    whole-run wall clock plus the pool's steal counter delta. *)
module Fused : sig
  type t

  (** Handle to one registered table's results, readable after
      {!drain}. *)
  type 'b handle

  val create : unit -> t

  (** [add t ~table f cells] registers a table's cells. Nothing runs
      until {!drain}; raises [Invalid_argument] after it. *)
  val add : t -> table:string -> ('a -> 'b) -> 'a list -> 'b handle

  (** Per-table attribution summed over its tasks: [task_ms_total] is
      CPU-side cost (what a sequential run of just this table would
      roughly cost), [task_ms_max] its worst cell — the straggler that a
      per-table barrier would serialize behind. *)
  type table_stats = {
    table : string;
    tasks : int;
    task_ms_total : float;
    task_ms_max : float;
    minor_words : float;
    major_words : float;
  }

  (** Whole-run cost of the single drain: [wall_ms] covers all tables
      together, [steals] is the pool's successful-steal delta (0 when
      sequential), [tables] the per-table attributions in registration
      order. *)
  type run_stats = {
    wall_ms : float;
    tasks : int;
    steals : int;
    jobs : int;
    tables : table_stats list;
  }

  (** [drain ?pool t] executes every registered cell — across the pool
      when given, sequentially otherwise — and reports the whole-run
      stats. If a cell raises, all cells still settle first, then the
      lowest-indexed failure re-raises (tables in registration order);
      the batch still counts as drained so surviving tables' handles
      remain readable. *)
  val drain : ?pool:Pool.t -> t -> run_stats

  (** The table's results, in its cells' input order. Raises
      [Invalid_argument] before {!drain} or if this table's cells did
      not all finish (a cell raised). *)
  val results : 'b handle -> 'b list

  (** Per-table attribution for this handle (after {!drain}). *)
  val stats : 'b handle -> table_stats
end
