(** Deterministic multicore sweeps of scenario grids.

    The experiment tables (T1–T3, A1–A4) and the attack evaluations all
    have the same shape: a list of cells, each an independent protocol
    execution determined entirely by plain data — a setting, a profile
    seed and an adversary choice. This module expresses such sweeps as a
    parallel map over {!Bsm_runtime.Pool} with per-cell isolation: every
    cell derives its own [Rng.make] chain and PKI from its seeds, shares
    nothing mutable with its neighbours, and therefore produces results
    bit-identical to a sequential [List.map] of the same cells (the
    tier-1 suite asserts this).

    Layering: [Pool] (runtime) supplies ordered parallel map;
    {!Scenario.run_all} batches scenario executions; this module adds
    the cell vocabulary the benches sweep over. *)

open Bsm_prelude
module Core := Bsm_core
module Engine := Bsm_runtime.Engine
module Pool := Bsm_runtime.Pool

(** Who corrupts the run. [Random_coalition] draws a maximal admissible
    coalition with {!Adversaries.random_coalition}, continuing the
    profile seed's Rng chain (so profile and coalition are one
    deterministic draw, as the benches have always done). *)
type adversary =
  | Honest
  | Random_coalition
  | Scripted of (Party_id.t * Engine.program) list

type case = {
  label : string;
  setting : Core.Setting.t;
  profile_seed : int;
      (** seeds [Rng.make] for the preference profile (and the coalition
          draw under [Random_coalition]) *)
  scenario_seed : int;  (** PKI derivation, {!Scenario.t}'s [seed] *)
  adversary : adversary;
}

(** [case ?label ?profile_seed ?scenario_seed ?adversary setting] —
    seeds default to [0], adversary to [Honest], label to the setting
    rendered by [Core.Setting.pp]. *)
val case :
  ?label:string ->
  ?profile_seed:int ->
  ?scenario_seed:int ->
  ?adversary:adversary ->
  Core.Setting.t ->
  case

(** Materialize the cell: profile from [Rng.make profile_seed], then the
    adversary's coalition from the same chain. *)
val scenario_of_case : case -> Scenario.t

(** [map ?pool f xs] — ordered map over independent cells; sequential
    [List.map] when [pool] is absent, {!Pool.map} otherwise. [f] must be
    self-contained (own Rng per call, no shared mutable state). *)
val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** [run_cases ?pool ?max_rounds cases] executes every case and pairs it
    with its report, in input order. *)
val run_cases :
  ?pool:Pool.t -> ?max_rounds:int -> case list -> (case * Scenario.report) list

(** Wall-clock and GC cost of one sweep, from [Gc.quick_stat] deltas
    around the run. Words are OCaml words (8 bytes on 64-bit). On OCaml 5
    the counters are per-domain: for a parallel sweep they cover the
    submitting domain only (its share of the cells plus orchestration),
    so compare like with like — sequential vs sequential across PRs, and
    parallel allocation trends only qualitatively. *)
type measurement = {
  wall_ms : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

(** [measure f] runs [f ()] and reports its cost. *)
val measure : (unit -> 'a) -> 'a * measurement
