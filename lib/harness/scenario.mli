(** End-to-end scenario runner: build an instance, select the protocol for
    its setting, run honest fibers against a scripted byzantine coalition,
    and evaluate the bSM properties on the honest outputs.

    This is what the tests, benchmarks, CLI and examples all drive. *)

open Bsm_prelude
module SM := Bsm_stable_matching
module Engine := Bsm_runtime.Engine
module Core := Bsm_core

type t = {
  setting : Core.Setting.t;
  profile : SM.Profile.t;  (** every party's true input *)
  byzantine : (Party_id.t * Engine.program) list;
      (** corrupted parties and their scripted behaviour; must respect the
          setting's [t_left]/[t_right] budgets *)
  seed : int;  (** PKI derivation *)
}

(** [make ?byzantine ?seed setting profile] validates the corruption
    budget and side cardinalities. *)
val make :
  ?byzantine:(Party_id.t * Engine.program) list ->
  ?seed:int ->
  Core.Setting.t ->
  SM.Profile.t ->
  (t, string) result

val make_exn :
  ?byzantine:(Party_id.t * Engine.program) list ->
  ?seed:int ->
  Core.Setting.t ->
  SM.Profile.t ->
  t

type report = {
  outcome : Core.Problem.outcome;
  violations : Core.Problem.violation list;
  metrics : Engine.metrics;
  parties : Engine.party_result list;
      (** raw engine results, including termination status and
          [finished_round] — the convergence oracle
          ({!Bsm_chaos.Oracle}) reads rounds-to-recovery off these *)
  plan : Core.Select.plan;
}

(** [run scenario] — selects the protocol (raising [Invalid_argument] when
    the setting is impossible), executes it, and checks all four bSM
    properties. [faults] injects engine-level omissions on top of the
    byzantine coalition (the chaos subsystem compiles its fault schedules
    into this; see {!Bsm_chaos.Schedule}). *)
val run : ?max_rounds:int -> ?faults:Engine.fault_model -> t -> report

(** [run_ssm ~favorites scenario] — the sSM variant: inputs are single
    favorites (the profile is derived via the Lemma 2 reduction) and the
    evaluation uses simplified stability. *)
val run_ssm :
  ?max_rounds:int ->
  ?faults:Engine.fault_model ->
  favorites:(Party_id.t -> Party_id.t) ->
  t ->
  report

(** [run_all ?pool scenarios] runs every scenario, in input order —
    sequentially without [pool], across the pool's domains with it.
    Scenarios are independent executions (each builds its own PKI and
    engine state), so the parallel results are identical to the
    sequential ones; {!Sweep} builds its cell sweeps on top of this. *)
val run_all :
  ?pool:Bsm_runtime.Pool.t -> ?max_rounds:int -> t list -> report list

(** True iff the run achieved bSM (no violations). *)
val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
