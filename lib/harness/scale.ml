open Bsm_prelude
module SM = Bsm_stable_matching
module Pool = Bsm_runtime.Pool

(* T-scale: the large-k scale frontier of the non-protocol core.

   Each row runs Gale–Shapley on an implicit [Flat] instance, then
   verifies two matchings — the GS output (expected stable) and a
   deterministic perturbation of it (expected to expose blocking
   pairs) — with the early-exit row scan, sharded into fixed row
   ranges. Shard counts are pure functions of the row, so the pool-
   parallel pass must be bit-identical to the sequential pass; every
   driver asserts that. Wall-clock fields are environment-dependent;
   every other field is deterministic in [(family, seed, k)]. *)

type mode =
  | Quick
  | Default
  | Full

type row = {
  k : int;
  seed : int;
  family : SM.Flat.family;
}

let label r = Printf.sprintf "k=%d %s" r.k (SM.Flat.family_to_string r.family)

let rows mode =
  let base =
    [
      { k = 1_000; seed = 0x5C01; family = SM.Flat.Uniform };
      { k = 1_000; seed = 0x5C02; family = SM.Flat.Common_acceptors };
    ]
  in
  let default =
    base
    @ [
        { k = 10_000; seed = 0x5C03; family = SM.Flat.Uniform };
        { k = 10_000; seed = 0x5C04; family = SM.Flat.Common_acceptors };
        { k = 100_000; seed = 0x5C05; family = SM.Flat.Uniform };
      ]
  in
  match mode with
  | Quick -> base
  | Default -> default
  | Full -> default @ [ { k = 1_000_000; seed = 0x5C06; family = SM.Flat.Uniform } ]

(* Fixed shard count, independent of the job count, so the cell
   decomposition (and thus every shard result) is the same whatever
   parallelism executes it. *)
let shards = 8

type prepared = {
  row : row;
  flat : SM.Flat.t;
  l2r : int array;
  perturbed : int array;
  stats : SM.Gale_shapley.stats;
  gs_ms : float;
}

(* Deterministic perturbation: rotate the partners of the first
   [min 32 k] left parties. The result is still a perfect matching; it
   typically (not provably) has blocking pairs, whose exact count is
   deterministic and recorded, exercising the counting/ε paths on a
   non-stable input. *)
let perturb l2r =
  let k = Array.length l2r in
  let m = min 32 k in
  let p = Array.copy l2r in
  for i = 0 to m - 1 do
    p.(i) <- l2r.((i + 1) mod m)
  done;
  p

let prepare row =
  let flat = SM.Flat.make ~family:row.family ~seed:row.seed ~k:row.k in
  let (l2r, stats), m = Sweep.measure (fun () -> SM.Flat.gale_shapley flat) in
  { row; flat; l2r; perturbed = perturb l2r; stats; gs_ms = m.Sweep.wall_ms }

type target =
  | Gs
  | Perturbed

type cell = {
  target : target;
  lo : int;
  hi : int;
}

let cells p =
  let k = p.row.k in
  let ranges =
    List.init shards (fun s -> s * k / shards, (s + 1) * k / shards)
  in
  List.concat_map
    (fun target -> List.map (fun (lo, hi) -> { target; lo; hi }) ranges)
    [ Gs; Perturbed ]

let run_cell p { target; lo; hi } =
  let l2r =
    match target with
    | Gs -> p.l2r
    | Perturbed -> p.perturbed
  in
  SM.Verify.count_blocking_rows (SM.Flat.verify_view p.flat ~l2r) ~lo ~hi

type result = {
  row : row;
  stats : SM.Gale_shapley.stats;
  blocking_gs : int;
  blocking_perturbed : int;
  stable : bool;
  eps_min : float;
  fingerprint : int64;
  gs_ms : float;
  verify_seq_ms : float;
  verify_par_ms : float;
}

let fingerprint l2r =
  Array.fold_left Rng.mix64_absorb (Rng.mix64 0x5CA1EL) l2r

(* Cross-check the ε-stability knob against the assembled exact counts:
   ε = 0 must agree with stability of the GS output, a budget at (or
   just above, absorbing float rounding) the exact perturbed count must
   accept, and half that count must reject. *)
let check_eps (p : prepared) ~blocking_gs ~blocking_perturbed =
  let k2 = float_of_int p.row.k *. float_of_int p.row.k in
  let view_gs = SM.Flat.verify_view p.flat ~l2r:p.l2r in
  let view_pt = SM.Flat.verify_view p.flat ~l2r:p.perturbed in
  if SM.Verify.is_eps_stable_view ~eps:0. view_gs <> (blocking_gs = 0) then
    failwith "scale: is_eps_stable ~eps:0 disagrees with exact stability";
  let c = blocking_perturbed in
  if not (SM.Verify.is_eps_stable_view ~eps:(float_of_int (c + 1) /. k2) view_pt)
  then failwith "scale: is_eps_stable rejects a sufficient budget";
  if
    c >= 2
    && SM.Verify.is_eps_stable_view ~eps:(float_of_int c /. 2. /. k2) view_pt
  then failwith "scale: is_eps_stable accepts an insufficient budget"

let assemble (p : prepared) ~shard_counts ~verify_seq_ms ~verify_par_ms =
  let counts = List.combine (cells p) shard_counts in
  let total target =
    List.fold_left
      (fun acc (c, n) -> if c.target = target then acc + n else acc)
      0 counts
  in
  let blocking_gs = total Gs in
  let blocking_perturbed = total Perturbed in
  check_eps p ~blocking_gs ~blocking_perturbed;
  {
    row = p.row;
    stats = p.stats;
    blocking_gs;
    blocking_perturbed;
    stable = blocking_gs = 0;
    eps_min =
      float_of_int blocking_perturbed
      /. (float_of_int p.row.k *. float_of_int p.row.k);
    fingerprint = fingerprint p.l2r;
    gs_ms = p.gs_ms;
    verify_seq_ms;
    verify_par_ms;
  }

(* Standalone driver for the CLI: sequential reference pass, then the
   pool-parallel pass over the same cells, with bit-identity enforced
   per row. *)
let run_row ?pool (p : prepared) =
  let cs = cells p in
  let seq, seq_m = Sweep.measure (fun () -> List.map (run_cell p) cs) in
  let par, par_m =
    match pool with
    | None -> seq, seq_m
    | Some pool -> Sweep.measure (fun () -> Pool.map pool (run_cell p) cs)
  in
  if par <> seq then
    failwith
      (Printf.sprintf "scale %s: parallel shard counts diverge from sequential"
         (label p.row));
  assemble p ~shard_counts:seq ~verify_seq_ms:seq_m.Sweep.wall_ms
    ~verify_par_ms:par_m.Sweep.wall_ms

let run ?pool mode = List.map (fun r -> run_row ?pool (prepare r)) (rows mode)

let to_json ~jobs results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"_comment\": \"T-scale bench: GS + sharded early-exit verification \
     on implicit (Flat) instances. Deterministic in (family, seed, k): \
     every field except *_ms. *_ms are wall-clock, environment-dependent.\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"shards\": %d,\n" shards);
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"row\": \"%s\", \"k\": %d, \"family\": \"%s\", \"seed\": %d, \
            \"proposals\": %d, \"rounds\": %d, \"blocking_gs\": %d, \
            \"stable\": %b, \"blocking_perturbed\": %d, \"eps_min\": %.3e, \
            \"fingerprint\": \"%Lx\", \"gs_ms\": %.3f, \
            \"verify_sequential_ms\": %.3f, \"verify_parallel_ms\": %.3f}%s\n"
           (label r.row) r.row.k
           (SM.Flat.family_to_string r.row.family)
           r.row.seed r.stats.SM.Gale_shapley.proposals
           r.stats.SM.Gale_shapley.rounds r.blocking_gs r.stable
           r.blocking_perturbed r.eps_min r.fingerprint r.gs_ms r.verify_seq_ms
           r.verify_par_ms
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~path ~jobs results =
  let oc = open_out path in
  output_string oc (to_json ~jobs results);
  close_out oc

let pp_results ppf results =
  Format.fprintf ppf "%-22s %12s %9s %9s %11s %9s %11s %11s@."
    "row" "proposals" "rounds" "blocking" "perturbed" "gs_ms" "verify_seq"
    "verify_par";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %12d %9d %9d %11d %9.1f %11.1f %11.1f@."
        (label r.row) r.stats.SM.Gale_shapley.proposals
        r.stats.SM.Gale_shapley.rounds r.blocking_gs r.blocking_perturbed
        r.gs_ms r.verify_seq_ms r.verify_par_ms)
    results
