(** T-scale: the large-k scale frontier bench (k = 10³..10⁶).

    Each row builds an implicit {!Bsm_stable_matching.Flat} instance,
    runs its O(k)-memory Gale–Shapley, and verifies two matchings with
    the early-exit row scan — the GS output (expected stable) and a
    deterministic perturbation of it (expected to expose blocking
    pairs) — sharded into {!shards} fixed row ranges so the check can
    run pool-parallel. Shard counts are pure functions of the row:
    the parallel pass must be bit-identical to the sequential pass, and
    every driver (this module's {!run}, the bench's fused table)
    asserts it. All fields of a {!result} except the [*_ms] wall clocks
    are deterministic in [(family, seed, k)].

    The ε-stability knob is cross-checked per row against the exact
    counts: ε = 0 agrees with exact stability on the GS output, and on
    the perturbed matching a budget at the exact count accepts while
    half of it rejects. *)

module SM := Bsm_stable_matching
module Pool := Bsm_runtime.Pool

type mode =
  | Quick  (** k = 10³ rows only — the CI gate (sub-second) *)
  | Default  (** up to k = 10⁵ *)
  | Full  (** adds the k = 10⁶ row (tens of seconds) *)

type row = {
  k : int;
  seed : int;
  family : SM.Flat.family;
}

val label : row -> string
val rows : mode -> row list

(** Row ranges per matching; fixed (independent of the job count) so the
    cell decomposition is identical under any parallelism. *)
val shards : int

(** A row with its instance and matchings materialized and GS timed. *)
type prepared = {
  row : row;
  flat : SM.Flat.t;
  l2r : int array;
  perturbed : int array;
  stats : SM.Gale_shapley.stats;
  gs_ms : float;
}

val prepare : row -> prepared

type target =
  | Gs
  | Perturbed

type cell = {
  target : target;
  lo : int;
  hi : int;
}

(** The row's verification cells ([2 * shards] of them), in a fixed
    order. *)
val cells : prepared -> cell list

(** Blocking-pair count of one shard — pure, pool-safe. *)
val run_cell : prepared -> cell -> int

type result = {
  row : row;
  stats : SM.Gale_shapley.stats;
  blocking_gs : int;
  blocking_perturbed : int;
  stable : bool;
  eps_min : float;  (** [blocking_perturbed / k²] — the measured ε *)
  fingerprint : int64;  (** mix64 chain over the GS matching *)
  gs_ms : float;
  verify_seq_ms : float;
  verify_par_ms : float;
}

(** [assemble p ~shard_counts ...] sums per-target shard counts (in
    {!cells} order), runs the ε cross-checks, and attaches timings.
    Raises [Failure] if an ε check fails. *)
val assemble :
  prepared ->
  shard_counts:int list ->
  verify_seq_ms:float ->
  verify_par_ms:float ->
  result

(** Sequential reference pass, then (when [pool] is given) the parallel
    pass over the same cells; raises [Failure] if they diverge. *)
val run_row : ?pool:Pool.t -> prepared -> result

val run : ?pool:Pool.t -> mode -> result list

(** Deterministic-schema JSON (see the in-file [_comment] for the
    determinism scope); [tools/bench_compare] reads the
    [verify_sequential_ms]/[gs_ms] of each ["row"] record. *)
val to_json : jobs:int -> result list -> string

val write_json : path:string -> jobs:int -> result list -> unit
val pp_results : Format.formatter -> result list -> unit
