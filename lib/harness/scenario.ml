open Bsm_prelude
module SM = Bsm_stable_matching
module Engine = Bsm_runtime.Engine
module Core = Bsm_core
module Crypto = Bsm_crypto.Crypto
module Wire = Bsm_wire.Wire

type t = {
  setting : Core.Setting.t;
  profile : SM.Profile.t;
  byzantine : (Party_id.t * Engine.program) list;
  seed : int;
}

let make ?(byzantine = []) ?(seed = 0) (setting : Core.Setting.t) profile =
  let corrupted = Party_set.of_list (List.map fst byzantine) in
  if SM.Profile.k profile <> setting.Core.Setting.k then
    Error "profile and setting disagree on k"
  else if List.length byzantine <> Party_set.cardinal corrupted then
    Error "duplicate byzantine party"
  else if Party_set.count_side Side.Left corrupted > setting.Core.Setting.t_left then
    Error "byzantine coalition exceeds t_left"
  else if Party_set.count_side Side.Right corrupted > setting.Core.Setting.t_right
  then Error "byzantine coalition exceeds t_right"
  else Ok { setting; profile; byzantine; seed }

let make_exn ?byzantine ?seed setting profile =
  match make ?byzantine ?seed setting profile with
  | Ok t -> t
  | Error msg -> invalid_arg ("Scenario.make_exn: " ^ msg)

type report = {
  outcome : Core.Problem.outcome;
  violations : Core.Problem.violation list;
  metrics : Engine.metrics;
  parties : Engine.party_result list;
  plan : Core.Select.plan;
}

let byzantine_set t = Party_set.of_list (List.map fst t.byzantine)

let execute ?(max_rounds = 2000) ?faults t ~honest_program =
  let setting = t.setting in
  let k = setting.Core.Setting.k in
  let byz = byzantine_set t in
  let programs p =
    match List.find_opt (fun (q, _) -> Party_id.equal p q) t.byzantine with
    | Some (_, program) -> program
    | None -> honest_program p
  in
  let cfg =
    Engine.config ~max_rounds ?faults ~k
      ~link:(Engine.Of_topology setting.Core.Setting.topology) ()
  in
  let res = Engine.run cfg ~programs in
  let decisions =
    List.filter_map
      (fun (r : Engine.party_result) ->
        if Party_set.mem r.id byz then None
        else
          Some
            ( r.id,
              match r.status, r.out with
              | Engine.Terminated, Some bytes -> (
                match Wire.decode Core.Problem.decision_codec bytes with
                | Ok (Some partner) -> Core.Problem.Matched partner
                | Ok None -> Core.Problem.Nobody
                | Error _ -> Core.Problem.No_output)
              | Engine.Terminated, None -> Core.Problem.No_output
              | (Engine.Out_of_rounds | Engine.Crashed _), _ ->
                Core.Problem.No_output ))
      res.Engine.parties
  in
  let outcome =
    { Core.Problem.profile = t.profile; byzantine = byz; decisions }
  in
  outcome, res.Engine.metrics, res.Engine.parties

let run ?max_rounds ?faults t =
  let plan = Core.Select.plan_exn t.setting in
  let pki = Crypto.Pki.setup ~k:t.setting.Core.Setting.k ~seed:t.seed in
  let honest_program p =
    plan.Core.Select.program ~pki ~input:(SM.Profile.prefs t.profile p) ~self:p
  in
  let outcome, metrics, parties = execute ?max_rounds ?faults t ~honest_program in
  { outcome; violations = Core.Problem.check outcome; metrics; parties; plan }

let run_ssm ?max_rounds ?faults ~favorites t =
  let plan = Core.Select.plan_exn t.setting in
  let k = t.setting.Core.Setting.k in
  let pki = Crypto.Pki.setup ~k ~seed:t.seed in
  let honest_program p = Core.Ssm.program plan ~pki ~favorite:(favorites p) ~self:p in
  (* For evaluation, the true profile is the reduction's constructed one. *)
  let t = { t with profile = Core.Ssm.favorites_to_profile ~k favorites } in
  let outcome, metrics, parties = execute ?max_rounds ?faults t ~honest_program in
  {
    outcome;
    violations = Core.Problem.check_simplified ~favorites outcome;
    metrics;
    parties;
    plan;
  }

let run_all ?pool ?max_rounds ts =
  match pool with
  | None -> List.map (fun t -> run ?max_rounds t) ts
  | Some pool -> Bsm_runtime.Pool.map pool (fun t -> run ?max_rounds t) ts

let ok report = report.violations = []

let pp_report ppf report =
  let pp_decision ppf (p, d) =
    match (d : Core.Problem.decision) with
    | Core.Problem.No_output -> Format.fprintf ppf "%a: (no output)" Party_id.pp p
    | Core.Problem.Nobody -> Format.fprintf ppf "%a: nobody" Party_id.pp p
    | Core.Problem.Matched q -> Format.fprintf ppf "%a: %a" Party_id.pp p Party_id.pp q
  in
  Format.fprintf ppf "@[<v>plan: %s@,decisions: @[<v>%a@]@,"
    report.plan.Core.Select.describe
    (Format.pp_print_list pp_decision)
    report.outcome.Core.Problem.decisions;
  match report.violations with
  | [] -> Format.fprintf ppf "bSM achieved (no violations)@]"
  | vs ->
    Format.fprintf ppf "VIOLATIONS:@,%a@]"
      (Format.pp_print_list Core.Problem.pp_violation)
      vs
