type t = Random.State.t

let make seed = Random.State.make [| seed; 0x5eed; 0xbeef |]

let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Random.State.int t bound

let bool t = Random.State.bool t

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let permutation t n = shuffle t (List.init n Fun.id)

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let sample t m xs =
  if m > List.length xs then invalid_arg "Rng.sample: not enough elements";
  Util.take m (shuffle t xs)

(* --- stateless mixing --------------------------------------------------- *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix64_absorb h x =
  mix64 (Int64.logxor h (Int64.add (Int64.of_int x) golden_gamma))

let uniform_of_hash h =
  (* Top 53 bits, the double-precision mantissa width. *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53
