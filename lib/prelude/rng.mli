(** Deterministic randomness for tests, generators and benchmarks.

    Every randomized component takes an explicit [Rng.t] so that runs are
    reproducible from a seed; nothing in the repository touches the global
    [Random] state. *)

type t

(** [make seed] creates an independent generator. *)
val make : int -> t

(** [split t] derives a new generator; advancing one does not affect the
    other. *)
val split : t -> t

(** [int t bound] is uniform in [0 .. bound-1]; [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** [shuffle t xs] is a uniform permutation of [xs] (Fisher–Yates). *)
val shuffle : t -> 'a list -> 'a list

(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)
val permutation : t -> int -> int list

(** [choose t xs] picks one element uniformly. Raises [Invalid_argument] on
    an empty list. *)
val choose : t -> 'a list -> 'a

(** [sample t m xs] picks [m] distinct elements uniformly (in random
    order). Raises [Invalid_argument] if [m > List.length xs]. *)
val sample : t -> int -> 'a list -> 'a list

(** {2 Stateless mixing}

    A keyed 64-bit hash for components that need randomness {e without}
    a mutable generator: the output is a pure function of the inputs, so
    it is domain-safe under parallel sweeps and bit-replayable from the
    key alone. The chaos fault schedules hash [(seed, round, src, dst)]
    through these to decide each drop. *)

(** [mix64 z] is the splitmix64 finalizer: a bijective avalanche mixer
    (every input bit flips each output bit with probability ~1/2). *)
val mix64 : int64 -> int64

(** [mix64_absorb h x] folds the integer [x] into the hash state [h];
    chain absorptions to hash a tuple, starting from [mix64 (of_int
    seed)] or any other state. *)
val mix64_absorb : int64 -> int -> int64

(** [uniform_of_hash h] maps a hash to a float in [0, 1), using the top
    53 bits of [h]. *)
val uniform_of_hash : int64 -> float
