(** Finite sets of parties.

    Bit-packed: one word-packed bitmap per side, indexed by party index,
    with the side-counting operations that adversary structures need —
    the paper's two-sided threshold adversary is characterized entirely
    by [count_side], which (like [cardinal]) is O(k/62) popcounts rather
    than a fold over elements. Membership is O(1); [union]/[inter]/
    [diff]/[subset] are wordwise. Enumeration order is unchanged from
    the previous [Set.Make (Party_id)] representation: left parties in
    ascending index order, then right parties. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Party_id.t -> t
val add : Party_id.t -> t -> t
val remove : Party_id.t -> t -> t
val mem : Party_id.t -> t -> bool
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val of_list : Party_id.t list -> t
val to_list : t -> Party_id.t list
val elements : t -> Party_id.t list
val fold : (Party_id.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Party_id.t -> unit) -> t -> unit
val filter : (Party_id.t -> bool) -> t -> t
val for_all : (Party_id.t -> bool) -> t -> bool
val exists : (Party_id.t -> bool) -> t -> bool

(** [count_side side t] is the number of members of [t] on [side]. *)
val count_side : Side.t -> t -> int

(** [restrict_side side t] keeps only the members of [t] on [side]. *)
val restrict_side : Side.t -> t -> t

(** [full ~k] is the set of all [2k] parties of an instance. *)
val full : k:int -> t

(** [complement ~k t] is [full ~k] minus [t]. *)
val complement : k:int -> t -> t

(** All subsets of [parties]; exponential, intended for small test
    instances only. *)
val power_set : Party_id.t list -> t list

val pp : Format.formatter -> t -> unit
