(* Bit-packed party sets: one word-packed bitmap per side, indexed by
   party index. Words use 62 bits each so every word is a nonnegative
   OCaml int; arrays are normalized (no trailing zero words), which
   makes structural equality coincide with set equality and keeps
   polymorphic compare on containing values meaningful. *)

let bits_per_word = 62
let word_full = max_int (* 2^62 - 1: all 62 payload bits set *)

(* 16-bit popcount table: counting a word is four lookups, so
   [cardinal]/[count_side] stay O(k/62) regardless of density. *)
let pop16 =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let c = ref 0 and x = ref i in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr c
    done;
    Bytes.unsafe_set t i (Char.chr !c)
  done;
  t

let popcount w =
  Char.code (Bytes.unsafe_get pop16 (w land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 (w lsr 48))

type t = {
  left : int array;
  right : int array;
}

let empty = { left = [||]; right = [||] }

(* Drop trailing zero words so that equal sets are structurally equal. *)
let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let side_words t side =
  match (side : Side.t) with
  | Left -> t.left
  | Right -> t.right

let with_side t side a =
  match (side : Side.t) with
  | Left -> { t with left = a }
  | Right -> { t with right = a }

let mem p t =
  let a = side_words t (Party_id.side p) in
  let i = Party_id.index p in
  let w = i / bits_per_word in
  w < Array.length a && (a.(w) lsr (i mod bits_per_word)) land 1 = 1

let add p t =
  if mem p t then t
  else begin
    let a = side_words t (Party_id.side p) in
    let i = Party_id.index p in
    let w = i / bits_per_word in
    let a' = Array.make (max (Array.length a) (w + 1)) 0 in
    Array.blit a 0 a' 0 (Array.length a);
    a'.(w) <- a'.(w) lor (1 lsl (i mod bits_per_word));
    with_side t (Party_id.side p) a'
  end

let remove p t =
  if not (mem p t) then t
  else begin
    let a = side_words t (Party_id.side p) in
    let i = Party_id.index p in
    let w = i / bits_per_word in
    let a' = Array.copy a in
    a'.(w) <- a'.(w) land lnot (1 lsl (i mod bits_per_word));
    with_side t (Party_id.side p) (trim a')
  end

let singleton p = add p empty
let is_empty t = Array.length t.left = 0 && Array.length t.right = 0

let count_words a =
  let c = ref 0 in
  Array.iter (fun w -> c := !c + popcount w) a;
  !c

let cardinal t = count_words t.left + count_words t.right

let count_side side t = count_words (side_words t side)

(* Wordwise binary operations. [union] needs no trim: inputs are
   normalized, so the longer side's top word survives, and equal-length
   tops or into nonzero. *)
let union_words a b =
  let la = Array.length a and lb = Array.length b in
  let short, long = if la <= lb then a, b else b, a in
  let r = Array.copy long in
  Array.iteri (fun i w -> r.(i) <- r.(i) lor w) short;
  r

let inter_words a b =
  let n = min (Array.length a) (Array.length b) in
  trim (Array.init n (fun i -> a.(i) land b.(i)))

let diff_words a b =
  let lb = Array.length b in
  trim
    (Array.mapi (fun i w -> if i < lb then w land lnot b.(i) else w) a)

let subset_words a b =
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let rec go i = i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
  go 0

let union a b = { left = union_words a.left b.left; right = union_words a.right b.right }
let inter a b = { left = inter_words a.left b.left; right = inter_words a.right b.right }
let diff a b = { left = diff_words a.left b.left; right = diff_words a.right b.right }
let subset a b = subset_words a.left b.left && subset_words a.right b.right
let equal (a : t) b = a = b

(* Iteration visits left parties in ascending index order, then right
   parties — the same total order as [Party_id.compare], matching the
   enumeration order of the previous [Set.Make] representation. *)
let fold_side side a f acc =
  let acc = ref acc in
  Array.iteri
    (fun wi w ->
      let x = ref w and bit = ref 0 in
      while !x <> 0 do
        if !x land 1 = 1 then
          acc := f (Party_id.make side ((wi * bits_per_word) + !bit)) !acc;
        x := !x lsr 1;
        incr bit
      done)
    a;
  !acc

let fold f t acc = fold_side Side.Right t.right f (fold_side Side.Left t.left f acc)
let iter f t = fold (fun p () -> f p) t ()
let elements t = List.rev (fold (fun p acc -> p :: acc) t [])
let to_list = elements

let of_list ps = List.fold_left (fun t p -> add p t) empty ps

let filter f t = fold (fun p acc -> if f p then add p acc else acc) t empty

exception Early_exit

let for_all f t =
  try
    iter (fun p -> if not (f p) then raise_notrace Early_exit) t;
    true
  with Early_exit -> false

let exists f t = not (for_all (fun p -> not (f p)) t)

let restrict_side side t =
  match (side : Side.t) with
  | Left -> { empty with left = t.left }
  | Right -> { empty with right = t.right }

let full_words k =
  if k = 0 then [||]
  else begin
    let words = ((k - 1) / bits_per_word) + 1 in
    let a = Array.make words word_full in
    let rem = k - ((words - 1) * bits_per_word) in
    if rem < bits_per_word then a.(words - 1) <- (1 lsl rem) - 1;
    a
  end

let full ~k =
  let a = full_words k in
  { left = a; right = Array.copy a }

let complement ~k t = diff (full ~k) t

let power_set parties =
  (* Same enumeration order as the original
     [subsets @ List.map (add p) subsets] fold, built tail-recursively:
     solvability sweeps iterate this list, so the order is pinned by a
     regression test. *)
  let add_party subsets p =
    List.rev_append (List.rev subsets) (List.rev (List.rev_map (add p) subsets))
  in
  List.fold_left add_party [ empty ] parties

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Party_id.pp)
    (elements t)
