(** The two sides of a stable matching instance.

    The paper calls them [L] (men / students / producers) and [R]
    (women / universities / consumers). Every party belongs to exactly one
    side and is matched with a party of the opposite side. *)

type t =
  | Left
  | Right

(** [opposite s] is the other side. *)
val opposite : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** [0] for [Left], [1] for [Right] — the stable numeric tag used when a
    side is absorbed into a hash chain or indexes an array pair. *)
val to_int : t -> int

(** One-letter tag used in identifiers and wire encodings: ["L"] or ["R"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Both sides, in order [Left; Right]. *)
val all : t list
