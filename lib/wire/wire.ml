open Bsm_prelude

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let to_string = Buffer.contents

  (* Forget the written bytes but keep the underlying storage, so one
     encoder can serve a whole protocol run without reallocating. *)
  let reset = Buffer.clear

  (* LEB128 over the full word, treating it as unsigned ([lsr], no sign
     check) so that zigzagged extreme values survive. *)
  let raw t n =
    let rec go n =
      if n land lnot 0x7f = 0 then Buffer.add_char t (Char.chr n)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let uint t n =
    if n < 0 then invalid_arg "Wire.Enc.uint: negative";
    raw t n

  (* Zigzag: maps 0,-1,1,-2,... to 0,1,2,3,... *)
  let int t n = raw t ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let bool t b = Buffer.add_char t (if b then '\001' else '\000')

  let string t s =
    uint t (String.length s);
    Buffer.add_string t s

  let tag t n =
    if n < 0 || n > 255 then invalid_arg "Wire.Enc.tag: out of range";
    Buffer.add_char t (Char.chr n)

  (* Arena view: the message plane appends many frames into one encoder
     and carves them back out as [(offset, len)] spans, so the write
     position and raw appends are part of the interface. *)
  let length = Buffer.length
  let append t s = Buffer.add_string t s
  let append_sub t s ~off ~len = Buffer.add_substring t s off len

  (* Roll back a failed in-place encode: a codec that raises mid-write
     must not leave half a frame in the arena. *)
  let truncate = Buffer.truncate
end

module Slice = struct
  type t = {
    base : string;
    off : int;
    len : int;
  }

  let of_string base = { base; off = 0; len = String.length base }

  (* The guard is phrased to avoid [off + len] overflow on forged
     lengths near [max_int]. *)
  let make base ~off ~len =
    if off < 0 || len < 0 || off > String.length base - len then
      invalid_arg "Wire.Slice.make: out of bounds";
    { base; off; len }

  let length t = t.len
  let is_empty t = t.len = 0

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Wire.Slice.get: out of bounds";
    String.unsafe_get t.base (t.off + i)

  let to_string t =
    if t.off = 0 && t.len = String.length t.base then t.base
    else String.sub t.base t.off t.len

  let equal a b =
    a.len = b.len
    &&
    let rec go i = i >= a.len || (get a i = get b i && go (i + 1)) in
    go 0
end

module Dec = struct
  (* A decoder is a bounds-pinned view [pos .. limit) into [data]: for a
     whole-string decode [limit] is the string length, for an arena span
     it is the span's end. Every hardening check compares against
     [limit], never [String.length data], so adversarial lengths cannot
     read a neighbouring frame's bytes out of the shared arena. *)
  type t = {
    data : string;
    mutable pos : int;
    limit : int;
  }

  let of_string data = { data; pos = 0; limit = String.length data }

  let of_slice (s : Slice.t) =
    { data = s.Slice.base; pos = s.Slice.off; limit = s.Slice.off + s.Slice.len }

  let byte t =
    if t.pos >= t.limit then malformed "unexpected end of input";
    let c = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    c

  (* Varints are bounded at 10 bytes (the LEB128 width of a 64-bit word)
     and every continuation must fit the OCaml word: a byzantine frame of
     0x80 repeated can neither loop nor shift bits off the end of the
     accumulator unnoticed. *)
  let max_varint_bytes = 10

  let raw t =
    let rec go n shift acc =
      if n >= max_varint_bytes then malformed "varint longer than 10 bytes";
      let b = byte t in
      let bits = b land 0x7f in
      let acc =
        if shift >= Sys.int_size then
          if bits = 0 then acc else malformed "varint overflows the word"
        else begin
          if bits lsr (Sys.int_size - shift) <> 0 then
            malformed "varint overflows the word";
          acc lor (bits lsl shift)
        end
      in
      if b land 0x80 = 0 then acc else go (n + 1) (shift + 7) acc
    in
    go 0 0 0

  let uint t =
    let n = raw t in
    if n < 0 then malformed "varint overflow";
    n

  let int t =
    let n = raw t in
    (n lsr 1) lxor (- (n land 1))

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | b -> malformed "invalid bool byte %d" b

  let remaining t = t.limit - t.pos

  (* Compare against [remaining], never [t.pos + len]: a forged length
     near [max_int] would overflow the addition and sail past the bounds
     check into a giant allocation. *)
  let string t =
    let len = uint t in
    if len > remaining t then malformed "string length %d exceeds %d remaining bytes" len (remaining t);
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  (* For length-prefixed sequences: every well-formed element consumes at
     least [per_element] bytes (0 allowed), so a count beyond the
     remaining input is malformed — reject it before allocating
     anything. *)
  let check_count t n =
    if n > remaining t then
      malformed "count %d exceeds %d remaining bytes" n (remaining t)

  let tag = byte

  let expect_end t =
    if t.pos <> t.limit then malformed "trailing bytes: %d remaining" (t.limit - t.pos)
end

type 'a t = {
  write : Enc.t -> 'a -> unit;
  read : Dec.t -> 'a;
}

let encode_into e c v =
  Enc.reset e;
  c.write e v;
  Enc.to_string e

(* [encode] serves every protocol's per-message serialization, so it reuses
   one scratch encoder per domain instead of allocating a fresh [Buffer.t]
   (struct + backing bytes) each call. The slot is emptied while in use: a
   nested [encode] (a codec whose argument was itself encoded mid-write)
   falls back to a fresh buffer rather than clobbering the outer one.
   Domain-local storage keeps parallel sweeps race-free. *)
type scratch = { mutable spare : Enc.t option }

let scratch_key = Domain.DLS.new_key (fun () -> { spare = None })

(* Don't let one huge message pin a large buffer for the domain's
   lifetime. *)
let scratch_retain_limit = 1 lsl 16

let give_back slot e =
  if Buffer.length e <= scratch_retain_limit then begin
    Enc.reset e;
    slot.spare <- Some e
  end

let encode c v =
  let slot = Domain.DLS.get scratch_key in
  let e =
    match slot.spare with
    | Some e ->
      slot.spare <- None;
      e
    | None -> Enc.create ()
  in
  match c.write e v with
  | () ->
    let s = Enc.to_string e in
    give_back slot e;
    s
  | exception exn ->
    give_back slot e;
    raise exn

let decode_exn c s =
  let d = Dec.of_string s in
  let v = c.read d in
  Dec.expect_end d;
  v

let decode c s =
  match decode_exn c s with
  | v -> Ok v
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let decode_slice_exn c s =
  let d = Dec.of_slice s in
  let v = c.read d in
  Dec.expect_end d;
  v

let decode_slice c s =
  match decode_slice_exn c s with
  | v -> Ok v
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let uint = { write = Enc.uint; read = Dec.uint }
let int = { write = Enc.int; read = Dec.int }
let bool = { write = Enc.bool; read = Dec.bool }
let string = { write = Enc.string; read = Dec.string }
let unit = { write = (fun _ () -> ()); read = (fun _ -> ()) }

(* IEEE-754 bits split into two 32-bit halves, each a non-negative varint
   on any OCaml word size. Canonical: equal bit patterns give equal bytes,
   so nan payloads and signed zeros survive the round trip. *)
let float =
  let write e x =
    let bits = Int64.bits_of_float x in
    Enc.uint e (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
    Enc.uint e (Int64.to_int (Int64.shift_right_logical bits 32))
  in
  let read d =
    let lo = Dec.uint d in
    let hi = Dec.uint d in
    if lo land lnot 0xFFFFFFFF <> 0 || hi land lnot 0xFFFFFFFF <> 0 then
      malformed "float half out of 32-bit range";
    Int64.float_of_bits (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))
  in
  { write; read }

let list c =
  let write e xs =
    Enc.uint e (List.length xs);
    List.iter (c.write e) xs
  in
  let read d =
    let n = Dec.uint d in
    Dec.check_count d n;
    List.init n (fun _ -> c.read d)
  in
  { write; read }

let option c =
  let write e = function
    | None -> Enc.bool e false
    | Some v ->
      Enc.bool e true;
      c.write e v
  in
  let read d = if Dec.bool d then Some (c.read d) else None in
  { write; read }

let pair ca cb =
  let write e (a, b) =
    ca.write e a;
    cb.write e b
  in
  let read d =
    let a = ca.read d in
    let b = cb.read d in
    a, b
  in
  { write; read }

let triple ca cb cc =
  let write e (a, b, c) =
    ca.write e a;
    cb.write e b;
    cc.write e c
  in
  let read d =
    let a = ca.read d in
    let b = cb.read d in
    let c = cc.read d in
    a, b, c
  in
  { write; read }

let map ~inject ~project c =
  { write = (fun e v -> c.write e (project v)); read = (fun d -> inject (c.read d)) }

type ('v, 'a) case_ = {
  case_tag : int;
  codec : 'a t;
  inject : 'a -> 'v;
  match_ : 'v -> 'a option;
}

let case case_tag codec ~inject ~match_ = { case_tag; codec; inject; match_ }

type 'v packed_case = Packed : ('v, 'a) case_ -> 'v packed_case

let pack c = Packed c

let variant ~name cases =
  let write e v =
    let rec go = function
      | [] -> invalid_arg (name ^ ": no matching variant case")
      | Packed c :: rest -> begin
        match c.match_ v with
        | Some payload ->
          Enc.tag e c.case_tag;
          c.codec.write e payload
        | None -> go rest
      end
    in
    go cases
  in
  let read d =
    let t = Dec.tag d in
    let rec go = function
      | [] -> malformed "%s: unknown tag %d" name t
      | Packed c :: rest ->
        if c.case_tag = t then c.inject (c.codec.read d) else go rest
    in
    go cases
  in
  { write; read }

let side =
  let inject = function
    | 0 -> Side.Left
    | 1 -> Side.Right
    | n -> malformed "invalid side %d" n
  in
  let project = function
    | Side.Left -> 0
    | Side.Right -> 1
  in
  map ~inject ~project uint

let party_id =
  map
    ~inject:(fun (s, i) -> Party_id.make s i)
    ~project:(fun p -> Party_id.side p, Party_id.index p)
    (pair side uint)

(* --- hex ---------------------------------------------------------------- *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> malformed "invalid hex digit %C" c
  in
  let n = String.length s in
  if n mod 2 <> 0 then malformed "odd-length hex string";
  String.init (n / 2) (fun i -> Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
