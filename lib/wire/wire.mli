(** Deterministic binary wire format.

    Every protocol message in the repository is serialized with these
    combinators before it enters the network engine, for three reasons:
    byzantine parties can then send arbitrary byte strings (malformed input
    is a first-class case every decoder handles), message sizes can be
    accounted exactly in the communication-complexity experiments, and
    signatures sign concrete bytes rather than OCaml values.

    Integers use LEB128 varints (signed values are zigzag-encoded); strings
    and lists are length-prefixed. Encoding is canonical: equal values
    produce equal bytes. *)

(** Raised by decoders on malformed input. [decode] catches it. *)
exception Malformed of string

module Enc : sig
  type t

  val create : unit -> t

  (** Encoded bytes so far. *)
  val to_string : t -> string

  (** [reset e] forgets the written bytes but keeps the underlying
      storage, so one encoder can be reused across many messages without
      reallocating. *)
  val reset : t -> unit

  (** Unsigned varint; raises [Invalid_argument] on negative input. *)
  val uint : t -> int -> unit

  (** Signed varint (zigzag). *)
  val int : t -> int -> unit

  val bool : t -> bool -> unit
  val string : t -> string -> unit

  (** Tag byte for variant constructors, [0 .. 255]. *)
  val tag : t -> int -> unit

  (** Bytes written so far. The message plane reads this before and
      after an in-place encode to carve the frame's [(offset, len)]
      span out of a shared arena encoder. *)
  val length : t -> int

  (** Raw append, no length prefix (arena frame copies). *)
  val append : t -> string -> unit

  (** Raw append of [s.[off .. off+len)], no length prefix. *)
  val append_sub : t -> string -> off:int -> len:int -> unit

  (** [truncate e n] rolls the encoder back to [n] bytes: a codec that
      raises mid-write must not leave half a frame in the arena. *)
  val truncate : t -> int -> unit
end

(** An immutable [(base, off, len)] view of a byte string — the unit of
    zero-copy delivery out of the per-round frame arena. Slices never
    copy; [to_string] materializes (returning [base] itself when the
    slice covers it entirely). *)
module Slice : sig
  type t = private {
    base : string;
    off : int;
    len : int;
  }

  val of_string : string -> t

  (** Raises [Invalid_argument] unless [0 <= off], [0 <= len] and
      [off + len <= String.length base] (checked without overflow). *)
  val make : string -> off:int -> len:int -> t

  val length : t -> int
  val is_empty : t -> bool

  (** [get s i] is byte [i] of the view; raises [Invalid_argument] out
      of bounds. *)
  val get : t -> int -> char

  val to_string : t -> string

  (** Content equality (ignores how the view is backed). *)
  val equal : t -> t -> bool
end

(** Decoders are hardened against adversarial bytes: varints are bounded
    at 10 bytes and checked for word overflow, and length prefixes
    (strings, lists) are capped at the remaining input, so a forged frame
    can neither loop nor trigger a giant allocation — every such input
    raises [Malformed] instead. *)
module Dec : sig
  type t

  val of_string : string -> t

  (** [of_slice s] decodes directly out of [s]'s backing string with the
      bounds pinned to the view: every hardening check (varint caps,
      length-vs-remaining, [expect_end]) holds at the slice edges, so a
      forged frame cannot read a neighbouring arena span. No copy. *)
  val of_slice : Slice.t -> t

  (** Bytes not yet consumed. *)
  val remaining : t -> int

  val uint : t -> int
  val int : t -> int
  val bool : t -> bool
  val string : t -> string
  val tag : t -> int

  (** [expect_end d] raises [Malformed] if bytes remain: decoding a whole
      message must consume it entirely. *)
  val expect_end : t -> unit
end

(** A two-way codec for ['a]. *)
type 'a t = {
  write : Enc.t -> 'a -> unit;
  read : Dec.t -> 'a;
}

(** [encode c v] is the canonical byte string for [v]. Allocation-lean:
    serialization goes through a per-domain scratch encoder that is reused
    across calls (nested calls fall back to a fresh buffer), so the only
    per-call allocation is the returned string itself. *)
val encode : 'a t -> 'a -> string

(** [encode_into e c v] is {!encode} through a caller-owned encoder: [e]
    is {!Enc.reset}, [v] is written, and the bytes are returned. Hot loops
    that serialize many messages (the broadcast machines) keep one encoder
    per machine and reuse it for every message. *)
val encode_into : Enc.t -> 'a t -> 'a -> string

(** [decode c s] decodes a full message; any leftover bytes or malformed
    content yields [Error]. *)
val decode : 'a t -> string -> ('a, string) result

(** [decode_exn c s] raises [Malformed] instead of returning [Error]. *)
val decode_exn : 'a t -> string -> 'a

(** [decode_slice c s] is {!decode} over an arena span, zero-copy. *)
val decode_slice : 'a t -> Slice.t -> ('a, string) result

(** [decode_slice_exn c s] raises [Malformed] instead of [Error]. *)
val decode_slice_exn : 'a t -> Slice.t -> 'a

(* Primitive codecs. *)

val uint : int t
val int : int t
val bool : bool t
val string : string t
val unit : unit t

(** IEEE-754 bits as two 32-bit varint halves; canonical per bit pattern
    (nan payloads and signed zeros round-trip). *)
val float : float t

(* Combinators. *)

val list : 'a t -> 'a list t
val option : 'a t -> 'a option t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** [map ~inject ~project c] transports a codec along an isomorphism-ish
    pair; [inject] may raise [Malformed] to reject invalid decoded
    values. *)
val map : inject:('a -> 'b) -> project:('b -> 'a) -> 'a t -> 'b t

(** Variant codec: [variant ~name cases] where each case is a
    [case] built by [case tag codec ~inject ~match_]. Decoding an unknown
    tag raises [Malformed]. *)
type ('v, 'a) case_

val case : int -> 'a t -> inject:('a -> 'v) -> match_:('v -> 'a option) -> ('v, 'a) case_

type 'v packed_case

val pack : ('v, 'a) case_ -> 'v packed_case
val variant : name:string -> 'v packed_case list -> 'v t

(* Domain codecs for the prelude types. *)

val side : Bsm_prelude.Side.t t
val party_id : Bsm_prelude.Party_id.t t

(* Hex, for repro files and fuzz reports. *)

(** Lowercase hex of the bytes of [s]. *)
val to_hex : string -> string

(** Inverse of {!to_hex}; raises [Malformed] on odd length or non-hex
    digits. *)
val of_hex : string -> string
