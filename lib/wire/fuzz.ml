open Bsm_prelude

type entry =
  | Entry : {
      name : string;
      codec : 'a Wire.t;
      gen : Rng.t -> 'a;
      equal : 'a -> 'a -> bool;
    }
      -> entry

let entry ~name ~gen ~equal codec = Entry { name; codec; gen; equal }

type outcome =
  | Roundtrip
  | Reinterpreted
  | Rejected
  | Crashed of string

type stats = {
  name : string;
  cases : int;
  roundtrip : int;
  reinterpreted : int;
  rejected : int;
  crashed : int;
  first_failure : string option;
}

(* --- byte mutations ----------------------------------------------------- *)

let mutate_once rng s =
  let n = String.length s in
  if n = 0 then
    (* Nothing to flip: grow instead. *)
    String.init (1 + Rng.int rng 4) (fun _ -> Char.chr (Rng.int rng 256))
  else
    match Rng.int rng 6 with
    | 0 ->
      (* Flip one bit — the classic single-event upset. *)
      let i = Rng.int rng n in
      let bit = 1 lsl Rng.int rng 8 in
      String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor bit) else c) s
    | 1 ->
      (* Rewrite one byte with an adversarial favourite: continuation-heavy
         varint bytes and 0xff stress the length/shift guards hardest. *)
      let i = Rng.int rng n in
      let b = Rng.choose rng [ 0x80; 0xff; 0x7f; 0x00; Rng.int rng 256 ] in
      String.mapi (fun j c -> if j = i then Char.chr b else c) s
    | 2 -> String.sub s 0 (Rng.int rng n) (* truncate *)
    | 3 ->
      (* Insert a few random bytes at a random position. *)
      let i = Rng.int rng (n + 1) in
      let ins = String.init (1 + Rng.int rng 4) (fun _ -> Char.chr (Rng.int rng 256)) in
      String.sub s 0 i ^ ins ^ String.sub s i (n - i)
    | 4 ->
      (* Duplicate a slice in place — corrupts counts and framing. *)
      let i = Rng.int rng n in
      let len = 1 + Rng.int rng (n - i) in
      String.sub s 0 (i + len) ^ String.sub s i (n - i)
    | _ ->
      (* Swap two bytes. *)
      let i = Rng.int rng n and j = Rng.int rng n in
      String.mapi (fun k c -> if k = i then s.[j] else if k = j then s.[i] else c) s

let mutate rng s =
  let rounds = 1 + Rng.int rng 3 in
  let rec go k s = if k = 0 then s else go (k - 1) (mutate_once rng s) in
  go rounds s

(* --- classification ----------------------------------------------------- *)

(* Strictly stricter than [Wire.decode]: only [Malformed] is a contractual
   rejection. [Invalid_argument] &co. escaping a decoder is a bug the
   fuzzer exists to catch. *)
let classify (type a) (codec : a Wire.t) (equal : a -> a -> bool) (original : a option) bytes =
  match Wire.decode_exn codec bytes with
  | v -> begin
    match original with
    | Some o when equal o v -> Roundtrip
    | _ -> Reinterpreted
  end
  | exception Wire.Malformed _ -> Rejected
  | exception exn -> Crashed (Printexc.to_string exn)

let run_entry ~seed ~cases (Entry e) =
  let rng = Rng.make seed in
  let roundtrip = ref 0 in
  let reinterpreted = ref 0 in
  let rejected = ref 0 in
  let crashed = ref 0 in
  let first_failure = ref None in
  let total = ref 0 in
  let record case_idx bytes = function
    | Roundtrip -> incr roundtrip
    | Reinterpreted -> incr reinterpreted
    | Rejected -> incr rejected
    | Crashed exn ->
      incr crashed;
      if !first_failure = None then
        first_failure :=
          Some
            (Printf.sprintf "%s: case %d raised %s on input %s" e.name case_idx exn
               (Wire.to_hex bytes))
  in
  for i = 0 to cases - 1 do
    let v = e.gen rng in
    let bytes = Wire.encode e.codec v in
    (* Clean round-trip: anything but [Roundtrip] means the codec is not
       canonical or not total on its own output — count it as a crash. *)
    let clean =
      match classify e.codec e.equal (Some v) bytes with
      | Roundtrip -> Roundtrip
      | Reinterpreted -> Crashed "clean round-trip decoded to a different value"
      | Rejected -> Crashed "clean round-trip rejected as malformed"
      | Crashed _ as c -> c
    in
    record i bytes clean;
    let mutated = mutate rng bytes in
    record i mutated (classify e.codec e.equal (Some v) mutated);
    total := !total + 2
  done;
  {
    name = e.name;
    cases = !total;
    roundtrip = !roundtrip;
    reinterpreted = !reinterpreted;
    rejected = !rejected;
    crashed = !crashed;
    first_failure = !first_failure;
  }

let run ~seed ~cases entries =
  List.mapi
    (fun i e ->
      (* Decorrelate entries so adding one does not reshuffle the cases of
         the others. *)
      let entry_seed =
        Int64.to_int (Rng.mix64_absorb (Rng.mix64 (Int64.of_int seed)) i) land max_int
      in
      run_entry ~seed:entry_seed ~cases e)
    entries

let total_cases stats = List.fold_left (fun acc s -> acc + s.cases) 0 stats
let total_crashed stats = List.fold_left (fun acc s -> acc + s.crashed) 0 stats

let pp_stats ppf s =
  Format.fprintf ppf "%-22s %6d cases  %6d roundtrip  %6d reinterpreted  %6d rejected  %d crashed"
    s.name s.cases s.roundtrip s.reinterpreted s.rejected s.crashed;
  match s.first_failure with
  | None -> ()
  | Some f -> Format.fprintf ppf "@,  FIRST FAILURE: %s" f
