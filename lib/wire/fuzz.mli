(** Deterministic decoder fuzzing.

    The wire layer's contract is that a decoder fed arbitrary bytes either
    returns a value or raises {!Wire.Malformed} — it never crashes with
    another exception, loops, or allocates proportionally to a forged
    length prefix. This module checks that contract mechanically: for each
    registered codec it generates values, encodes them, applies
    seed-deterministic byte mutations (bit flips, truncations, insertions,
    splices), and classifies what the decoder does with the result.

    Everything is driven by {!Bsm_prelude.Rng} from an explicit seed, so a
    failing case is reproducible from [(seed, codec, case index)] alone and
    the whole run is safe to repeat in CI. *)

(** One codec under test, packed with a value generator and an equality
    used to check clean round-trips. *)
type entry =
  | Entry : {
      name : string;
      codec : 'a Wire.t;
      gen : Bsm_prelude.Rng.t -> 'a;
      equal : 'a -> 'a -> bool;
    }
      -> entry

val entry :
  name:string ->
  gen:(Bsm_prelude.Rng.t -> 'a) ->
  equal:('a -> 'a -> bool) ->
  'a Wire.t ->
  entry

(** What the decoder did with one (possibly mutated) byte string. *)
type outcome =
  | Roundtrip  (** Decoded to a value equal to the original. *)
  | Reinterpreted
      (** Decoded cleanly to a {e different} value — acceptable: mutated
          bytes may be a valid encoding of something else. *)
  | Rejected  (** Raised [Wire.Malformed] — the contractual rejection. *)
  | Crashed of string
      (** Raised anything else — a decoder bug; carries the exception. *)

type stats = {
  name : string;
  cases : int;
  roundtrip : int;
  reinterpreted : int;
  rejected : int;
  crashed : int;
  first_failure : string option;
      (** For the first crash: exception, case index and input hex, enough
          to replay the case by hand. *)
}

(** [run_entry ~seed ~cases e] fuzzes one codec: [cases] clean round-trip
    checks interleaved with [cases] mutated-byte decodes (so one call
    accounts for [2 * cases] decoder invocations, reported in
    [stats.cases]). A clean round-trip that fails to compare equal counts
    as a crash: canonical codecs must round-trip exactly. *)
val run_entry : seed:int -> cases:int -> entry -> stats

(** [run ~seed ~cases entries] runs every entry with a per-entry derived
    seed. *)
val run : seed:int -> cases:int -> entry list -> stats list

val total_cases : stats list -> int
val total_crashed : stats list -> int
val pp_stats : Format.formatter -> stats -> unit

(** [mutate rng s] applies 1–3 random byte-level mutations to [s]:
    bit flips, byte rewrites, truncations, insertions, slice
    duplications. Exposed so protocol-level chaos components can reuse the
    same mutation vocabulary. *)
val mutate : Bsm_prelude.Rng.t -> string -> string
