(* Message-plane micro-bench: the three legs of the batched delivery
   path, timed separately.

   - encode: in-place arena encodes through a reused [Wire.Enc.t], frame
     spans carved from the running length (exactly what the engine's
     send handlers do);
   - deliver: a full [Engine.run] where every party broadcasts each
     round — the engine's own arena freeze + single delivery pass;
   - decode: [Wire.decode_slice] straight out of frozen arenas, no copy.

   Writes BENCH_plane.json. Every field except the [*_ms] walls is
   deterministic (counters and the fingerprint depend only on the
   workload parameters), so diffs of the file are meaningful and
   [tools/bench_compare] can gate the walls at 20% + 1 ms. *)

open Bsm_prelude
module Wire = Bsm_wire.Wire
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology
module Sweep = Bsm_harness.Sweep

type workload = {
  name : string;
  k : int;  (** parties per side for the deliver leg; [n = 2k] *)
  rounds : int;
  payload_bytes : int;
  arena_frames : int;  (** frames per arena in the encode/decode legs *)
  arenas : int;
}

let workloads =
  [
    {
      name = "small-frames";
      k = 8;
      rounds = 40;
      payload_bytes = 16;
      arena_frames = 4096;
      arenas = 64;
    };
    {
      name = "medium-frames";
      k = 16;
      rounds = 24;
      payload_bytes = 256;
      arena_frames = 1024;
      arenas = 64;
    };
  ]

let payload_for w =
  String.init w.payload_bytes (fun i -> Char.chr (((i * 31) + w.payload_bytes) land 0xff))

(* --- encode leg ---------------------------------------------------------- *)

(* One reused encoder; each "round" writes [arena_frames] frames through
   the string codec's writer (no reset between frames — the arena
   grows), carves the spans from the running length, freezes, resets.
   Returns the frozen arenas so the decode leg reads real output. *)
let run_encode w =
  let payload = payload_for w in
  let enc = Wire.Enc.create () in
  let frozen = ref [] in
  for _ = 1 to w.arenas do
    let ends = Array.make w.arena_frames 0 in
    for i = 0 to w.arena_frames - 1 do
      Wire.string.Wire.write enc payload;
      ends.(i) <- Wire.Enc.length enc
    done;
    frozen := (Wire.Enc.to_string enc, ends) :: !frozen;
    Wire.Enc.reset enc
  done;
  List.rev !frozen

(* --- decode leg ---------------------------------------------------------- *)

let run_decode w arenas =
  let h = ref (Rng.mix64 0x914EL) in
  List.iter
    (fun (base, ends) ->
      Array.iteri
        (fun i stop ->
          let off = if i = 0 then 0 else ends.(i - 1) in
          let span = Wire.Slice.make base ~off ~len:(stop - off) in
          let v = Wire.decode_slice_exn Wire.string span in
          h := Rng.mix64_absorb !h (String.length v))
        ends)
    arenas;
  ignore w;
  !h

(* --- deliver leg --------------------------------------------------------- *)

let run_deliver w =
  let payload = payload_for w in
  let roster k =
    List.init (2 * k) (fun i ->
        if i < k then Party_id.left i else Party_id.right (i - k))
  in
  let targets = roster w.k in
  let received = Atomic.make 0 in
  let programs _id (env : Engine.env) =
    for _ = 1 to w.rounds do
      Engine.broadcast_w env Wire.string targets payload;
      let inbox = env.Engine.next_round () in
      (* Touch every span without materializing: the receiver-side cost
         of the zero-copy path alone. *)
      List.iter
        (fun e ->
          Atomic.set received (Atomic.get received + Wire.Slice.length e.Engine.data))
        inbox
    done
  in
  let cfg =
    Engine.config ~k:w.k ~max_rounds:(w.rounds + 2)
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  res.Engine.metrics, Atomic.get received

(* --- driver -------------------------------------------------------------- *)

type row = {
  w : workload;
  encode_ms : float;
  decode_ms : float;
  deliver_ms : float;
  encode_frames : int;
  encode_bytes : int;
  metrics : Engine.metrics;
  fingerprint : int64;
}

let run_workload w =
  let arenas, enc_m = Sweep.measure (fun () -> run_encode w) in
  let decode_h, dec_m = Sweep.measure (fun () -> run_decode w arenas) in
  let (metrics, received), del_m = Sweep.measure (fun () -> run_deliver w) in
  let encode_frames = w.arenas * w.arena_frames in
  let encode_bytes =
    List.fold_left (fun acc (base, _) -> acc + String.length base) 0 arenas
  in
  let fingerprint =
    let h = Rng.mix64_absorb decode_h encode_bytes in
    let h = Rng.mix64_absorb h metrics.Engine.messages_delivered in
    let h = Rng.mix64_absorb h metrics.Engine.bytes_sent in
    let h = Rng.mix64_absorb h metrics.Engine.bytes_delivered in
    Rng.mix64_absorb h received
  in
  {
    w;
    encode_ms = enc_m.Sweep.wall_ms;
    decode_ms = dec_m.Sweep.wall_ms;
    deliver_ms = del_m.Sweep.wall_ms;
    encode_frames;
    encode_bytes;
    metrics;
    fingerprint;
  }

let json_of_row r last =
  let m = r.metrics in
  Printf.sprintf
    "    {\"plane\": \"%s\", \"k\": %d, \"rounds\": %d, \"payload_bytes\": %d,\n\
    \     \"encode_frames\": %d, \"encode_bytes\": %d,\n\
    \     \"deliver_sent\": %d, \"deliver_delivered\": %d, \"bytes_sent\": %d, \
     \"bytes_delivered\": %d,\n\
    \     \"encode_ms\": %.3f, \"deliver_ms\": %.3f, \"decode_ms\": %.3f, \
     \"fingerprint\": \"%Lx\"}%s\n"
    r.w.name r.w.k r.w.rounds r.w.payload_bytes r.encode_frames r.encode_bytes
    m.Engine.messages_sent m.Engine.messages_delivered m.Engine.bytes_sent
    m.Engine.bytes_delivered r.encode_ms r.deliver_ms r.decode_ms r.fingerprint
    (if last then "" else ",")

let () =
  print_endline "message-plane micro-bench (encode / deliver / decode)";
  let rows = List.map run_workload workloads in
  let n = List.length rows in
  List.iter
    (fun r ->
      let throughput ms frames =
        if ms <= 0. then 0. else float_of_int frames /. ms /. 1000.
      in
      Printf.printf
        "%-14s encode %8.2f ms (%6.2f Mframe/s)  deliver %8.2f ms (%d frames)  \
         decode %8.2f ms (%6.2f Mframe/s)  fingerprint %Lx\n"
        r.w.name r.encode_ms
        (throughput r.encode_ms r.encode_frames)
        r.deliver_ms r.metrics.Engine.messages_delivered r.decode_ms
        (throughput r.decode_ms r.encode_frames)
        r.fingerprint)
    rows;
  let oc = open_out "BENCH_plane.json" in
  output_string oc "{\n  \"workloads\": [\n";
  List.iteri (fun i r -> output_string oc (json_of_row r (i = n - 1))) rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf
    "wrote BENCH_plane.json (all fields but the *_ms walls deterministic)\n"
