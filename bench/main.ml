(* Benchmark & experiment harness.

   Running `dune exec bench/main.exe` regenerates, in order:

   - T1: the solvability matrix, validated by protocol execution on every
     solvable setting and by the executable characterization elsewhere;
   - T2: round complexity — closed-form schedule vs engine measurements;
   - T3: communication complexity — Gale-Shapley proposal counts and
     per-protocol message/byte costs as k grows;
   - A1: ablation — Lemma 1 BB-pipeline vs Π_bSM in the bipartite
     authenticated setting;
   - A2: ablation — majority-proxy (Lemma 6) vs signature-proxy (Lemma 8)
     channel simulation;
   - microbenchmarks (Bechamel): wall-clock costs of the core algorithms
     and full protocol executions.

   Every table is a sweep of independent protocol executions, so each is
   run twice: sequentially, then in parallel across the persistent
   work-stealing domain pool (`Bsm_harness.Sweep` over
   `Bsm_runtime.Pool`). The two result sets must be identical — the
   harness fails loudly if they diverge — and the wall-clocks are
   recorded in BENCH_sweeps.json so the perf trajectory is tracked
   across PRs. By default the parallel pass is *fused*: all tables'
   cells (chaos grid included) enter one shared task graph with a single
   drain point, so no table pays a barrier behind another table's
   straggler cell; `--barrier` restores the legacy one-Pool.map-per-table
   mode for A/B comparison. Parallelism comes from the --jobs flag, else
   BSM_JOBS, else the machine's recommended domain count.

   EXPERIMENTS.md records paper-vs-measured for each table. *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Engine = Bsm_runtime.Engine
module Pool = Bsm_runtime.Pool
module Topology = Bsm_topology.Topology
module Crypto = Bsm_crypto.Crypto
module Chaos = Bsm_chaos

let setting ~k ~topology ~auth ~tl ~tr =
  Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr

(* ------------------------------------------------- sweep bookkeeping -- *)

(* `--quick` trims every table to its smallest k (and fewest seeds) and
   skips the microbenchmarks: a < 30 s end-to-end exercise of the whole
   perf plumbing, wired into `make ci` as `make bench-quick`. *)
let quick = ref false

(* How the parallel pass is scheduled:

   - [Barrier pool] — the legacy (PR 3) shape: each table runs as its own
     `Pool.map` with a full barrier after it, so every table serializes
     behind its own straggler cell while the other lanes idle;
   - [Fused (pool, batch)] — every table registers its cells into one
     shared `Sweep.Fused` task graph; nothing parallel runs until the
     single drain point, after which each table reads its results back.

   Fused is the default; `--barrier` restores the legacy mode so the two
   can be A/B'd on the same machine. *)
type sched =
  | Barrier of Pool.t
  | Fused of Pool.t * H.Sweep.Fused.t

(* What the parallel pass cost: a whole-table measurement in barrier
   mode, per-task attribution (summed wall, worst cell, GC words) in
   fused mode — a fused table has no private wall-clock of its own. *)
type par_cost =
  | Barrier_par of H.Sweep.measurement
  | Fused_tasks of H.Sweep.Fused.table_stats

type sweep_record = {
  sweep_table : string;
  sweep_cells : int;
  sweep_k_range : string;
  sweep_seq : H.Sweep.measurement;
  sweep_par : par_cost;
}

let sweep_records : sweep_record list ref = ref []

(* Run the sequential pass now (its results are the reference), schedule
   the parallel pass per the mode, and return a getter to be called from
   the table's renderer — after the drain point in fused mode. The
   getter asserts the parallel results are bit-identical to the
   sequential ones (cells must return plain data) and records both
   costs. In barrier mode the parallel pass runs right here, table-local
   barrier included, and the getter is just a cache. *)
let sweep ~sched ~table ~k_range f cells =
  let seq, seq_m = H.Sweep.measure (fun () -> List.map f cells) in
  let record par =
    sweep_records :=
      {
        sweep_table = table;
        sweep_cells = List.length cells;
        sweep_k_range = k_range;
        sweep_seq = seq_m;
        sweep_par = par;
      }
      :: !sweep_records
  in
  match sched with
  | Barrier pool ->
    let par, par_m = H.Sweep.measure (fun () -> H.Sweep.map ~pool f cells) in
    if seq <> par then
      failwith (table ^ ": parallel sweep diverged from the sequential results");
    record (Barrier_par par_m);
    fun () -> par
  | Fused (_, batch) ->
    let handle = H.Sweep.Fused.add batch ~table f cells in
    fun () ->
      let par = H.Sweep.Fused.results handle in
      if seq <> par then
        failwith
          (table ^ ": fused parallel sweep diverged from the sequential results");
      record (Fused_tasks (H.Sweep.Fused.stats handle));
      par

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_measurement prefix (m : H.Sweep.measurement) =
  Printf.sprintf
    "\"%s_minor_words\": %.0f, \"%s_major_words\": %.0f, \"%s_minor_gcs\": %d, \
     \"%s_major_gcs\": %d"
    prefix m.H.Sweep.minor_words prefix m.H.Sweep.major_words prefix
    m.H.Sweep.minor_collections prefix m.H.Sweep.major_collections

(* Total sequential wall across all recorded sweeps — the numerator of
   the whole-run speedup. *)
let total_sequential_ms () =
  List.fold_left
    (fun acc r -> acc +. r.sweep_seq.H.Sweep.wall_ms)
    0. !sweep_records

(* Whole-run parallel wall: the single fused drain in fused mode, the
   sum of the per-table parallel walls (barriers included) in barrier
   mode. *)
let total_parallel_ms ~fused_run () =
  match fused_run with
  | Some (rs : H.Sweep.Fused.run_stats) -> rs.H.Sweep.Fused.wall_ms
  | None ->
    List.fold_left
      (fun acc r ->
        match r.sweep_par with
        | Barrier_par m -> acc +. m.H.Sweep.wall_ms
        | Fused_tasks _ -> acc)
      0. !sweep_records

let write_sweeps_json ~jobs ~fused_run path =
  let records = List.rev !sweep_records in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"jobs\": %d,\n  \"recommended_domains\": %d,\n  \"mode\": \"%s\",\n"
       jobs
       (Domain.recommended_domain_count ())
       (match fused_run with Some _ -> "fused" | None -> "barrier"));
  (* The whole-run block is the number that actually reflects multicore
     scaling: per-table speedups understate it because each table pays
     its own barrier, while the fused drain overlaps tables. *)
  let seq_total = total_sequential_ms () in
  let par_total = total_parallel_ms ~fused_run () in
  let whole_speedup = if par_total > 0. then seq_total /. par_total else 0. in
  (match fused_run with
  | Some (rs : H.Sweep.Fused.run_stats) ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"whole_run\": {\"sequential_ms\": %.3f, \"parallel_ms\": %.3f, \
          \"speedup\": %.3f, \"tasks\": %d, \"steals\": %d},\n"
         seq_total par_total whole_speedup rs.H.Sweep.Fused.tasks
         rs.H.Sweep.Fused.steals)
  | None ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"whole_run\": {\"sequential_ms\": %.3f, \"parallel_ms\": %.3f, \
          \"speedup\": %.3f},\n"
         seq_total par_total whole_speedup));
  Buffer.add_string buf "  \"sweeps\": [\n";
  List.iteri
    (fun i r ->
      let seq_ms = r.sweep_seq.H.Sweep.wall_ms in
      let sep = if i = List.length records - 1 then "" else "," in
      (match r.sweep_par with
      | Barrier_par par_m ->
        let par_ms = par_m.H.Sweep.wall_ms in
        let speedup = if par_ms > 0. then seq_ms /. par_ms else 0. in
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"table\": \"%s\", \"cells\": %d, \"k_range\": \"%s\", \
              \"sequential_ms\": %.3f, \"parallel_ms\": %.3f, \"speedup\": \
              %.3f,\n\
             \     %s,\n\
             \     %s}%s\n"
             (json_escape r.sweep_table) r.sweep_cells
             (json_escape r.sweep_k_range) seq_ms par_ms speedup
             (json_of_measurement "seq" r.sweep_seq)
             (json_of_measurement "par" par_m) sep)
      | Fused_tasks ts ->
        (* No per-table parallel wall exists in fused mode — the drain is
           shared — so the record carries per-task attribution instead:
           total task time (≈ this table's CPU cost) and the straggler
           cell a per-table barrier would have serialized behind. *)
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"table\": \"%s\", \"cells\": %d, \"k_range\": \"%s\", \
              \"sequential_ms\": %.3f, \"fused_task_ms\": %.3f, \
              \"fused_task_max_ms\": %.3f, \"fused_minor_words\": %.0f, \
              \"fused_major_words\": %.0f,\n\
             \     %s}%s\n"
             (json_escape r.sweep_table) r.sweep_cells
             (json_escape r.sweep_k_range) seq_ms
             ts.H.Sweep.Fused.task_ms_total ts.H.Sweep.Fused.task_ms_max
             ts.H.Sweep.Fused.minor_words ts.H.Sweep.Fused.major_words
             (json_of_measurement "seq" r.sweep_seq) sep)))
    records;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* ------------------------------------------------------------------ T1 -- *)

(* Each table function registers its sweep(s) with [sched] immediately
   (which also runs the sequential reference pass) and returns a
   renderer thunk; the driver calls the renderers after the drain point,
   in registration order, so the printed output is identical in both
   modes. *)

let table_t1 ~sched () =
  let k = 3 in
  let table =
    Table.make
      ~title:
        (Printf.sprintf
           "T1: solvability matrix, k = %d (every solvable cell validated by a \
            byzantine run at full corruption budget)"
           k)
      ~header:
        [ "topology"; "auth"; "theorem"; "cells"; "solvable"; "validated"; "impossible" ]
  in
  let combos =
    List.concat_map
      (fun topology ->
        List.map
          (fun auth -> topology, auth)
          [ Core.Setting.Unauthenticated; Core.Setting.Authenticated ])
      Topology.all
  in
  let cells =
    List.concat_map
      (fun (topology, auth) ->
        List.concat_map
          (fun tl ->
            List.map (fun tr -> topology, auth, tl, tr) (Util.range 0 (k + 1)))
          (Util.range 0 (k + 1)))
      combos
  in
  let get_results =
    sweep ~sched ~table:"T1 solvability matrix" ~k_range:"k=3"
      (fun (topology, auth, tl, tr) ->
        let s = setting ~k ~topology ~auth ~tl ~tr in
        let verdict = Core.Solvability.decide s in
        let validated =
          verdict.Core.Solvability.solvable
          &&
          let case =
            H.Sweep.case
              ~profile_seed:((tl * 100) + tr)
              ~scenario_seed:tl ~adversary:H.Sweep.Random_coalition s
          in
          H.Scenario.ok (H.Scenario.run (H.Sweep.scenario_of_case case))
        in
        verdict.Core.Solvability.solvable, validated, verdict.Core.Solvability.theorem)
      cells
  in
  fun () ->
  let tagged = List.combine cells (get_results ()) in
  List.iter
    (fun (topology, auth) ->
      let mine =
        List.filter_map
          (fun ((t, a, _, _), r) -> if t = topology && a = auth then Some r else None)
          tagged
      in
      let cells_n = List.length mine in
      let solvable = List.length (List.filter (fun (s, _, _) -> s) mine) in
      let validated = List.length (List.filter (fun (_, v, _) -> v) mine) in
      let theorem =
        match List.rev mine with
        | (_, _, theorem) :: _ -> theorem
        | [] -> ""
      in
      Table.add_row table
        [
          Topology.to_string topology;
          Core.Setting.auth_to_string auth;
          theorem;
          string_of_int cells_n;
          string_of_int solvable;
          string_of_int validated;
          string_of_int (cells_n - solvable);
        ])
    combos;
  Table.print table

(* ------------------------------------------------------------------ T2 -- *)

(* An honest run of a setting, profile drawn from the conventional
   17·k seed — now phrased as a sweep cell. *)
let honest_case s = H.Sweep.case ~profile_seed:(17 * s.Core.Setting.k) s
let honest_run s = H.Scenario.run (H.Sweep.scenario_of_case (honest_case s))

let table_t2 ~sched () =
  let table =
    Table.make
      ~title:
        "T2: round complexity — planned schedule (Delta_King = 3(t+1), Delta_BA = \
         Delta_King+1, Delta_BB = Delta_BA+1, Dolev-Strong = t+1, channel stride \
         1 or 2) vs measured"
      ~header:[ "setting"; "planned rounds"; "measured rounds" ]
  in
  let cases k =
    let third = max 0 ((k - 1) / 3) and half = max 0 ((k - 1) / 2) in
    [
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
        ~tl:third ~tr:k;
      setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Unauthenticated
        ~tl:third ~tr:half;
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
        ~tl:k ~tr:k;
      setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated ~tl:k
        ~tr:(k - 1);
      setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
        ~tl:third ~tr:k;
    ]
  in
  let cells = List.concat_map cases (if !quick then [ 2 ] else [ 2; 4; 6 ]) in
  let get_rows =
    sweep ~sched ~table:"T2 round complexity" ~k_range:"k=2..6"
      (fun s ->
        let report = honest_run s in
        [
          Format.asprintf "%a" Core.Setting.pp s;
          string_of_int report.H.Scenario.plan.Core.Select.engine_rounds;
          string_of_int report.H.Scenario.metrics.Engine.rounds_used;
        ])
      cells
  in
  fun () ->
    List.iter (Table.add_row table) (get_rows ());
    Table.print table

(* ------------------------------------------------------------------ T3 -- *)

let table_t3_gs ~sched () =
  let table =
    Table.make
      ~title:
        "T3a: Gale-Shapley proposal counts — random profiles vs the Theta(k^2) \
         worst case (identical preferences)"
      ~header:[ "k"; "random (mean of 5)"; "worst case"; "k(k+1)/2" ]
  in
  let get_rows =
    sweep ~sched ~table:"T3a Gale-Shapley proposals" ~k_range:"k=10..160"
      (fun k ->
        let rng = Rng.make k in
        let random_mean =
          let total = ref 0 in
          for _ = 1 to 5 do
            let _, stats = SM.Gale_shapley.run_with_stats (SM.Profile.random rng k) in
            total := !total + stats.SM.Gale_shapley.proposals
          done;
          !total / 5
        in
        let _, worst = SM.Gale_shapley.run_with_stats (SM.Profile.worst_case k) in
        [
          string_of_int k;
          string_of_int random_mean;
          string_of_int worst.SM.Gale_shapley.proposals;
          string_of_int (k * (k + 1) / 2);
        ])
      (if !quick then [ 10 ] else [ 10; 20; 40; 80; 160 ])
  in
  fun () ->
    List.iter (Table.add_row table) (get_rows ());
    Table.print table

let table_t3_protocols ~sched () =
  let table =
    Table.make
      ~title:
        "T3b: protocol communication cost per honest execution (predicted = \
         closed-form model in Bsm_core.Complexity; bytes = delivered payload \
         bytes)"
      ~header:[ "setting"; "k"; "messages"; "predicted"; "bytes"; "bytes/party" ]
  in
  let cases k =
    let third = max 0 ((k - 1) / 3) in
    [
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
        ~tl:third ~tr:k;
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
        ~tl:k ~tr:k;
      setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
        ~tl:third ~tr:k;
    ]
  in
  let cells = List.concat_map cases (if !quick then [ 2 ] else [ 2; 4; 6; 8 ]) in
  let get_rows =
    sweep ~sched ~table:"T3b protocol communication" ~k_range:"k=2..8"
      (fun s ->
        let k = s.Core.Setting.k in
        let report = honest_run s in
        let m = report.H.Scenario.metrics in
        [
          Format.asprintf "%a" Core.Setting.pp s;
          string_of_int k;
          string_of_int m.Engine.messages_sent;
          string_of_int (Core.Complexity.predicted_messages s);
          string_of_int m.Engine.bytes_delivered;
          string_of_int (m.Engine.bytes_delivered / (2 * k));
        ])
      cells
  in
  fun () ->
    List.iter (Table.add_row table) (get_rows ());
    Table.print table

let table_t3_distributed_gs ~sched () =
  let table =
    Table.make
      ~title:
        "T3c: fault-free distributed Gale-Shapley (proposals = boolean-query \
         proxy; Omega(n^2) lower bound context) — random vs correlated vs \
         identical preferences"
      ~header:[ "k"; "profile"; "proposals"; "messages"; "active rounds <= 2k^2+2" ]
  in
  let cells =
    List.concat_map
      (fun k -> [ k, `Random; k, `Correlated; k, `Identical ])
      (if !quick then [ 8 ] else [ 8; 16; 32 ])
  in
  let get_rows =
    sweep ~sched ~table:"T3c distributed Gale-Shapley" ~k_range:"k=8..32"
      (fun (k, kind) ->
        let name, profile =
          match kind with
          | `Random -> "random", SM.Profile.random (Rng.make k) k
          | `Correlated ->
            "correlated (5 swaps)", SM.Profile.similar (Rng.make k) ~swaps:5 k
          | `Identical -> "identical (worst case)", SM.Profile.worst_case k
        in
        let _, metrics, proposals = Core.Distributed_gs.run profile in
        [
          string_of_int k;
          name;
          string_of_int proposals;
          string_of_int metrics.Engine.messages_sent;
          string_of_int metrics.Engine.rounds_used;
        ])
      cells
  in
  fun () ->
    List.iter (Table.add_row table) (get_rows ());
    Table.print table

(* ------------------------------------------------------------------ A1 -- *)

(* Run a given program assignment honestly and return metrics. *)
let run_programs ~k ~topology programs =
  let cfg = Engine.config ~k ~link:(Engine.Of_topology topology) () in
  let res = Engine.run cfg ~programs in
  List.iter
    (fun (r : Engine.party_result) ->
      match r.Engine.status with
      | Engine.Terminated -> ()
      | Engine.Out_of_rounds | Engine.Crashed _ ->
        failwith
          (Printf.sprintf "bench: %s did not terminate" (Party_id.to_string r.Engine.id)))
    res.Engine.parties;
  res.Engine.metrics

let table_a1 ~sched () =
  let table =
    Table.make
      ~title:
        "A1: ablation — Lemma 1 BB pipeline vs Pi_bSM (bipartite, authenticated, \
         tL = floor((k-1)/3)); Pi_bSM pays rounds and bytes for surviving tR = k"
      ~header:[ "k"; "mechanism"; "tolerates"; "rounds"; "messages"; "bytes" ]
  in
  let get_row_pairs =
    sweep ~sched ~table:"A1 BB pipeline vs Pi_bSM" ~k_range:"k=3..6"
      (fun k ->
        let third = max 0 ((k - 1) / 3) in
        let rng = Rng.make (k * 7) in
        let profile = SM.Profile.random rng k in
        let pki = Crypto.Pki.setup ~k ~seed:k in
        let bb_setting =
          setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
            ~tl:third ~tr:(k - 1)
        in
        let bb_metrics =
          run_programs ~k ~topology:Topology.Bipartite (fun p ->
              Core.Bb_based.program bb_setting ~pki
                ~input:(SM.Profile.prefs profile p) ~self:p)
        in
        let pi_setting =
          setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
            ~tl:third ~tr:k
        in
        let pi_metrics =
          run_programs ~k ~topology:Topology.Bipartite (fun p ->
              Core.Pi_bsm.program pi_setting ~pki ~computing_side:Side.Left
                ~input:(SM.Profile.prefs profile p) ~self:p)
        in
        let row name tolerates (m : Engine.metrics) =
          [
            string_of_int k;
            name;
            tolerates;
            string_of_int m.Engine.rounds_used;
            string_of_int m.Engine.messages_sent;
            string_of_int m.Engine.bytes_delivered;
          ]
        in
        [
          row "BB pipeline (Lemma 1)" "tR < k" bb_metrics;
          row "Pi_bSM (Sec 5.2)" "tR = k" pi_metrics;
        ])
      (if !quick then [ 3 ] else [ 3; 4; 6 ])
  in
  fun () ->
    List.iter (List.iter (Table.add_row table)) (get_row_pairs ());
    Table.print table

(* ------------------------------------------------------------------ A2 -- *)

let table_a2 ~sched () =
  let table =
    Table.make
      ~title:
        "A2: ablation — majority proxy (Lemma 6) vs signature proxy (Lemma 8) on \
         the one-sided topology (BB pipeline underneath)"
      ~header:[ "k"; "channel simulation"; "needs"; "rounds"; "messages"; "bytes" ]
  in
  let cells =
    List.concat_map
      (fun k ->
        let third = max 0 ((k - 1) / 3) and half = max 0 ((k - 1) / 2) in
        [
          ( k,
            "majority proxy",
            "tR < k/2",
            setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Unauthenticated
              ~tl:third ~tr:half );
          ( k,
            "signature proxy",
            "tR < k",
            setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated
              ~tl:k ~tr:(k - 1) );
        ])
      (if !quick then [ 3 ] else [ 3; 5; 7 ])
  in
  let get_rows =
    sweep ~sched ~table:"A2 channel simulation" ~k_range:"k=3..7"
      (fun (k, name, needs, s) ->
        let r = honest_run s in
        let m = r.H.Scenario.metrics in
        [
          string_of_int k;
          name;
          needs;
          string_of_int m.Engine.rounds_used;
          string_of_int m.Engine.messages_sent;
          string_of_int m.Engine.bytes_delivered;
        ])
      cells
  in
  fun () ->
    List.iter (Table.add_row table) (get_rows ());
    Table.print table

(* ------------------------------------------------------------------ A3 -- *)

module Attacks = Bsm_attacks

let table_a3 ~sched () =
  let table =
    Table.make
      ~title:
        "A3: byzantine tolerance pays — naive flood-and-compute vs the selected \
         protocol under equivocating byzantine parties (fully-connected, \
         unauthenticated, k = 4, tL = tR = 1, 30 seeds; sSM instances)"
      ~header:[ "protocol"; "runs"; "violated runs"; "violation rate" ]
  in
  let k = 4 in
  let topology = Topology.Fully_connected in
  let runs = if !quick then 5 else 30 in
  let seeds = Util.range 1 (runs + 1) in
  (* Both protocol sweeps register into the shared graph before either
     renders — in fused mode their cells interleave with every other
     table's. *)
  let register name protocol =
    sweep ~sched
      ~table:(Printf.sprintf "A3 equivocation (%s)" name)
      ~k_range:"k=4"
      (fun seed ->
        let rng = Rng.make seed in
        let favorites = Attacks.Evaluate.random_favorites rng ~k in
        let byzantine =
          [
            Party_id.left 3, Attacks.Naive.equivocating_announcer ~topology ~k;
            Party_id.right 2, Attacks.Naive.equivocating_announcer ~topology ~k;
          ]
        in
        Attacks.Evaluate.run ~topology ~k ~favorites ~byzantine protocol <> [])
      seeds
  in
  let naive_name = "naive flood-and-compute" in
  let get_naive = register naive_name Attacks.Protocol_under_test.naive in
  let bb_name = "BB pipeline (ours)" in
  let get_bb =
    register bb_name
      (Attacks.Protocol_under_test.thresholded
         ~setting:
           (setting ~k ~topology ~auth:Core.Setting.Unauthenticated ~tl:1 ~tr:1))
  in
  let getters = [ naive_name, get_naive; bb_name, get_bb ] in
  fun () ->
    List.iter
      (fun (name, get_violated) ->
        let bad = List.length (List.filter Fun.id (get_violated ())) in
        Table.add_row table
          [
            name;
            string_of_int runs;
            string_of_int bad;
            Printf.sprintf "%.0f%%" (Stats.rate bad runs);
          ])
      getters;
    Table.print table

(* ------------------------------------------------------------------ A4 -- *)

let table_a4 ~sched () =
  let table =
    Table.make
      ~title:
        "A4: ablation — Pi_bSM cost vs corruption budget tL (k = 7, bipartite \
         authenticated, tR = k); rounds grow linearly in the king count tL+1, \
         bytes over 5 random profiles"
      ~header:[ "tL"; "kings"; "rounds"; "messages"; "bytes mean"; "bytes sd" ]
  in
  let k = 7 in
  let tls = if !quick then [ 0 ] else [ 0; 1; 2 ] in
  let seeds = Util.range 1 (if !quick then 4 else 6) in
  let cells = List.concat_map (fun tl -> List.map (fun seed -> tl, seed) seeds) tls in
  let get_results =
    sweep ~sched ~table:"A4 Pi_bSM vs budget" ~k_range:"k=7"
      (fun (tl, seed) ->
        let s =
          setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
            ~tl ~tr:k
        in
        let case =
          H.Sweep.case ~profile_seed:(seed * 37) ~scenario_seed:seed s
        in
        let m =
          (H.Scenario.run (H.Sweep.scenario_of_case case)).H.Scenario.metrics
        in
        m.Engine.rounds_used, m.Engine.messages_sent, m.Engine.bytes_delivered)
      cells
  in
  fun () ->
  let tagged = List.combine cells (get_results ()) in
  List.iter
    (fun tl ->
      let mine =
        List.filter_map
          (fun ((tl', _), r) -> if tl' = tl then Some r else None)
          tagged
      in
      let rounds, messages, _ = List.hd mine in
      let bytes =
        Stats.summarize (List.map (fun (_, _, b) -> float_of_int b) mine)
      in
      Table.add_row table
        [
          string_of_int tl;
          string_of_int (tl + 1);
          string_of_int rounds;
          string_of_int messages;
          Printf.sprintf "%.0f" bytes.Stats.mean;
          Printf.sprintf "%.0f" bytes.Stats.stddev;
        ])
    tls;
  Table.print table

(* ------------------------------------------------------------------ C1 -- *)

(* The chaos grid: T-table settings × fault-schedule vocabulary (omission
   group, the in-flight mutation group — bit-flip, equivocate,
   replay+truncate, forge-sender on R0's traffic — and the
   self-stabilization group: corrupt-state scrambles of R0's registered
   protocol state), judged by the bSM oracle. Within-budget cells must
   come back `ok` — a VIOLATION is a protocol bug and fails the bench run
   (and hence `make ci`); mutated frames in particular must be absorbed
   as byzantine-equivalent noise, and scrambled state must be recovered
   from (the C4 table times the recovery). The JSON report is
   deterministic in the grid and chaos seeds (no wall-clock), so the same
   seeds yield a bit-identical file. *)
let table_chaos ~sched ~jobs () =
  let cells, k_range =
    if !quick then Chaos.Chaos_sweep.quick_grid (), "k=2"
    else Chaos.Chaos_sweep.full_grid (), "k=2,4"
  in
  let get_outcomes =
    sweep ~sched ~table:"C1 chaos grid" ~k_range
      (fun c ->
        {
          Chaos.Chaos_sweep.cell = c;
          oracle =
            Chaos.Oracle.run ~seed:c.Chaos.Chaos_sweep.chaos_seed
              ~schedule:c.Chaos.Chaos_sweep.schedule c.Chaos.Chaos_sweep.case;
        })
      cells
  in
  fun () ->
  let outcomes = get_outcomes () in
  let table =
    Table.make
      ~title:
        (Printf.sprintf
           "C1: chaos grid (%s) — fault schedules vs the bSM oracle; \
            within-budget omissions must preserve all four honest-party \
            properties (Thms 8-9), over-budget schedules degrade without \
            crashing"
           k_range)
      ~header:[ "schedule"; "cells"; "ok"; "expected degradation"; "VIOLATIONS" ]
  in
  let schedules =
    List.sort_uniq compare
      (List.map
         (fun (o : Chaos.Chaos_sweep.outcome) ->
           Chaos.Schedule.describe o.Chaos.Chaos_sweep.cell.Chaos.Chaos_sweep.schedule)
         outcomes)
  in
  List.iter
    (fun sched ->
      let mine =
        List.filter
          (fun (o : Chaos.Chaos_sweep.outcome) ->
            String.equal sched
              (Chaos.Schedule.describe
                 o.Chaos.Chaos_sweep.cell.Chaos.Chaos_sweep.schedule))
          outcomes
      in
      let s = Chaos.Chaos_sweep.summarize mine in
      Table.add_row table
        [
          sched;
          string_of_int s.Chaos.Chaos_sweep.cells;
          string_of_int s.Chaos.Chaos_sweep.ok;
          string_of_int s.Chaos.Chaos_sweep.degraded;
          string_of_int s.Chaos.Chaos_sweep.violated;
        ])
    schedules;
  Table.print table;
  let total = Chaos.Chaos_sweep.summarize outcomes in
  Format.printf "chaos summary: %a@." Chaos.Chaos_sweep.pp_summary total;
  (* C4: the self-stabilization reading of the same grid — for every
     (schedule, seed) that scrambled registered protocol state, how many
     rounds until all honest parties converged back to bSM. A Stuck or
     Violated count here is a failed recovery within budget and fails the
     run like a C1 violation. *)
  let recovery_rows = Chaos.Chaos_sweep.recovery_grid outcomes in
  if recovery_rows <> [] then begin
    let rtable =
      Table.make
        ~title:
          (Printf.sprintf
             "C4: recovery grid (%s) — rounds from the first state scramble \
              until every honest party terminated with bSM intact \
              (convergence oracle over corrupt-state schedules)"
             k_range)
        ~header:
          [
            "schedule"; "seed"; "cells"; "recovered"; "stuck"; "violated";
            "max rounds"; "mean rounds";
          ]
    in
    List.iter
      (fun (r : Chaos.Chaos_sweep.recovery_row) ->
        Table.add_row rtable
          [
            r.Chaos.Chaos_sweep.rg_schedule;
            string_of_int r.Chaos.Chaos_sweep.rg_seed;
            string_of_int r.Chaos.Chaos_sweep.rg_cells;
            string_of_int r.Chaos.Chaos_sweep.rg_recovered;
            string_of_int r.Chaos.Chaos_sweep.rg_stuck;
            string_of_int r.Chaos.Chaos_sweep.rg_violated;
            string_of_int r.Chaos.Chaos_sweep.rg_max_rounds;
            Printf.sprintf "%.2f" r.Chaos.Chaos_sweep.rg_mean_rounds;
          ])
      recovery_rows;
    Table.print rtable
  end;
  let json_path = if !quick then "BENCH_chaos.quick.json" else "BENCH_chaos.json" in
  let oc = open_out json_path in
  output_string oc (Chaos.Chaos_sweep.to_json ~jobs outcomes);
  close_out oc;
  Printf.printf "wrote %s (%d cells; deterministic in the chaos seeds)\n\n"
    json_path total.Chaos.Chaos_sweep.cells;
  if total.Chaos.Chaos_sweep.violated > 0 then
    failwith "C1 chaos grid: within-budget bSM violations — protocol bug";
  if
    List.exists
      (fun (r : Chaos.Chaos_sweep.recovery_row) ->
        r.Chaos.Chaos_sweep.rg_stuck > 0 || r.Chaos.Chaos_sweep.rg_violated > 0)
      recovery_rows
  then
    failwith
      "C4 recovery grid: a within-budget state scramble never converged — \
       self-stabilization bug"

(* ---------------------------------------------------------- T-scale -- *)

(* The large-k scale frontier (ROADMAP priority 1): Gale–Shapley plus
   sharded early-exit verification on implicit [Flat] instances,
   k = 10³..10⁶ (quick: the 10³ rows). The verification shards are the
   sweep cells — in fused mode they interleave with every other table's
   cells in the single drain. GS itself runs in the registration phase
   ([Scale.prepare]), before cells enter the graph: the prepared
   matchings are immutable and shared read-only across domains. *)
let table_scale ~sched ~jobs () =
  let mode = if !quick then H.Scale.Quick else H.Scale.Full in
  let prepared = List.map H.Scale.prepare (H.Scale.rows mode) in
  let per_row =
    List.map
      (fun (p : H.Scale.prepared) ->
        let table = Printf.sprintf "T-scale %s" (H.Scale.label p.row) in
        let get =
          sweep ~sched ~table
            ~k_range:(Printf.sprintf "k=%d" p.row.H.Scale.k)
            (H.Scale.run_cell p) (H.Scale.cells p)
        in
        p, table, get)
      prepared
  in
  fun () ->
    let results =
      List.map
        (fun ((p : H.Scale.prepared), table, get) ->
          let shard_counts = get () in
          (* [get] recorded this table's sweep: reuse its measurements as
             the verification walls. Fused mode has no per-table parallel
             wall (the drain is shared), so the summed per-task
             attribution stands in. *)
          let r =
            List.find (fun r -> String.equal r.sweep_table table) !sweep_records
          in
          let verify_par_ms =
            match r.sweep_par with
            | Barrier_par m -> m.H.Sweep.wall_ms
            | Fused_tasks ts -> ts.H.Sweep.Fused.task_ms_total
          in
          H.Scale.assemble p ~shard_counts
            ~verify_seq_ms:r.sweep_seq.H.Sweep.wall_ms ~verify_par_ms)
        per_row
    in
    Format.printf
      "T-scale: large-k frontier — GS + sharded early-exit verification on \
       implicit (Flat) instances; %d shards per matching, ε-stability \
       cross-checked against exact counts@."
      H.Scale.shards;
    Format.printf "%a" H.Scale.pp_results results;
    let json_path =
      if !quick then "BENCH_scale.quick.json" else "BENCH_scale.json"
    in
    H.Scale.write_json ~path:json_path ~jobs results;
    Printf.printf
      "wrote %s (%d rows; deterministic in (family, seed, k) except *_ms)\n\n"
      json_path (List.length results);
    if List.exists (fun (r : H.Scale.result) -> not r.H.Scale.stable) results
    then failwith "T-scale: a Gale-Shapley output was not stable"

(* ---------------------------------------------------- microbenchmarks -- *)

open Bechamel
open Toolkit

let bench_tests () =
  let gs_random =
    Test.make_indexed ~name:"gale_shapley/random" ~args:[ 20; 100; 300 ] (fun k ->
        let profile = SM.Profile.random (Rng.make k) k in
        Staged.stage (fun () -> ignore (SM.Gale_shapley.run profile)))
  in
  let gs_worst =
    Test.make_indexed ~name:"gale_shapley/worst" ~args:[ 100 ] (fun k ->
        let profile = SM.Profile.worst_case k in
        Staged.stage (fun () -> ignore (SM.Gale_shapley.run profile)))
  in
  let codec =
    Test.make ~name:"wire/prefs-roundtrip-k100"
      (let prefs = SM.Prefs.random (Rng.make 1) 100 in
       Staged.stage (fun () ->
           let bytes = Bsm_wire.Wire.encode SM.Prefs.codec prefs in
           ignore (Bsm_wire.Wire.decode_exn SM.Prefs.codec bytes)))
  in
  let signing =
    Test.make ~name:"crypto/sign+verify"
      (let pki = Crypto.Pki.setup ~k:4 ~seed:0 in
       let signer = Crypto.Pki.signer pki (Party_id.left 0) in
       let verifier = Crypto.Pki.verifier pki in
       Staged.stage (fun () ->
           let s = Crypto.Signer.sign signer "benchmark-message" in
           ignore
             (Crypto.Verifier.verify verifier ~signer:(Party_id.left 0)
                ~msg:"benchmark-message" s)))
  in
  let engine_rounds =
    Test.make ~name:"engine/1000-rounds-2-parties"
      (Staged.stage (fun () ->
           let cfg =
             Engine.config ~k:1 ~link:(Engine.Of_topology Topology.Fully_connected)
               ~max_rounds:2000 ()
           in
           let program (env : Engine.env) =
             for _ = 1 to 1000 do
               env.Engine.send (Party_id.right 0) "x";
               ignore (env.Engine.next_round ())
             done
           in
           ignore
             (Engine.run cfg ~programs:(fun p ->
                  if Party_id.equal p (Party_id.left 0) then program else fun _ -> ()))))
  in
  let full_protocol name s =
    Test.make ~name
      (let profile = SM.Profile.random (Rng.make 5) s.Core.Setting.k in
       Staged.stage (fun () -> ignore (H.Scenario.run (H.Scenario.make_exn s profile))))
  in
  let e2e_auth =
    full_protocol "protocol/full-auth-k4"
      (setting ~k:4 ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
         ~tl:4 ~tr:4)
  in
  let e2e_unauth =
    full_protocol "protocol/full-unauth-k4"
      (setting ~k:4 ~topology:Topology.Fully_connected
         ~auth:Core.Setting.Unauthenticated ~tl:1 ~tr:4)
  in
  let e2e_pibsm =
    full_protocol "protocol/pi_bsm-k4"
      (setting ~k:4 ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:1
         ~tr:4)
  in
  let lattice =
    Test.make ~name:"lattice/all-stable-k7"
      (let profile = SM.Profile.random (Rng.make 9) 7 in
       Staged.stage (fun () -> ignore (SM.Lattice.all_stable profile)))
  in
  let roommates =
    Test.make ~name:"roommates/solve-n100"
      (let inst = SM.Roommates.random (Rng.make 11) 100 in
       Staged.stage (fun () -> ignore (SM.Roommates.solve inst)))
  in
  Test.make_grouped ~name:"bsm"
    [
      gs_random;
      gs_worst;
      codec;
      signing;
      engine_rounds;
      e2e_auth;
      e2e_unauth;
      e2e_pibsm;
      lattice;
      roommates;
    ]

let run_microbenchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances (bench_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.make ~title:"Microbenchmarks (Bechamel, monotonic clock)"
      ~header:[ "benchmark"; "time/run" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let humanize ns =
    if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> humanize ns
        | Some _ | None -> "n/a"
      in
      Table.add_row table [ name; time ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Table.print table

(* ------------------------------------------------------------- driver -- *)

let jobs_from_argv () =
  let rec scan = function
    | "--jobs" :: v :: _ | "-j" :: v :: _ -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> failwith (Printf.sprintf "--jobs %s: expected a positive integer" v))
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* The `make bench-quick` CI gate: with the fused scheduler and real
   parallelism available, the whole run must not be slower than the
   sequential reference — whole-run speedup >= 1.0. On a single-core
   container (or jobs = 1) there is nothing to win, so the check is
   skipped with a notice rather than asserting noise. *)
let check_whole_run_speedup ~jobs (rs : H.Sweep.Fused.run_stats) =
  let recommended = Domain.recommended_domain_count () in
  let seq_total = total_sequential_ms () in
  let par_total = rs.H.Sweep.Fused.wall_ms in
  let speedup = if par_total > 0. then seq_total /. par_total else 0. in
  if jobs >= 2 && recommended >= 2 then begin
    Printf.printf
      "whole-run speedup: %.2fx (%.1f ms sequential vs %.1f ms fused drain, \
       %d tasks, %d steals)\n"
      speedup seq_total par_total rs.H.Sweep.Fused.tasks
      rs.H.Sweep.Fused.steals;
    if speedup < 1.0 then begin
      Printf.eprintf
        "FAIL: whole-run fused speedup %.2fx < 1.0 with %d jobs on %d \
         recommended domains\n"
        speedup jobs recommended;
      exit 1
    end
  end
  else
    Printf.printf
      "whole-run speedup check skipped (%d job(s), %d recommended domain(s) — \
       needs both >= 2); fused drain: %.1f ms over %d tasks\n"
      jobs recommended par_total rs.H.Sweep.Fused.tasks

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let chaos_only = Array.exists (String.equal "--chaos-quick") Sys.argv in
  quick := chaos_only || Array.exists (String.equal "--quick") Sys.argv;
  let barrier = Array.exists (String.equal "--barrier") Sys.argv in
  let jobs = Pool.resolve_jobs ?jobs:(jobs_from_argv ()) () in
  print_endline "byzantine stable matching — experiment harness";
  Printf.printf
    "sweep parallelism: %d job(s) (--jobs beats BSM_JOBS, %d domain(s) \
     recommended); scheduler: %s%s\n"
    jobs
    (Domain.recommended_domain_count ())
    (if barrier then "per-table barriers (--barrier)"
     else "fused (one task graph, one drain point)")
    (if !quick then "; --quick: smallest k per table, no microbenchmarks"
     else "");
  print_newline ();
  let fused_run = ref None in
  Pool.with_pool ~jobs (fun pool ->
      let sched =
        if barrier then Barrier pool else Fused (pool, H.Sweep.Fused.create ())
      in
      (* Registration phase: sequential reference passes run here, cells
         enter the shared graph (fused) or run behind per-table barriers
         (legacy). Explicit sequencing — a list literal would evaluate
         right-to-left. *)
      let renderers = ref [] in
      let reg f = renderers := f () :: !renderers in
      if not chaos_only then begin
        reg (table_t1 ~sched);
        reg (table_t2 ~sched);
        reg (table_t3_gs ~sched);
        reg (table_t3_protocols ~sched);
        reg (table_t3_distributed_gs ~sched);
        reg (table_a1 ~sched);
        reg (table_a2 ~sched);
        reg (table_a3 ~sched);
        reg (table_a4 ~sched)
      end;
      reg (table_chaos ~sched ~jobs);
      if not chaos_only then reg (table_scale ~sched ~jobs);
      (* The single drain point: every registered cell — all tables plus
         the chaos grid — executes in one parallel pass. *)
      (match sched with
      | Fused (pool, batch) ->
        fused_run := Some (H.Sweep.Fused.drain ~pool batch)
      | Barrier _ -> ());
      (* Render in registration order; fused getters verify bit-identity
         against their sequential references here. *)
      List.iter (fun render -> render ()) (List.rev !renderers));
  if not !quick then run_microbenchmarks ();
  if chaos_only then begin
    (match !fused_run with
    | Some rs ->
      Printf.printf "fused drain: %.1f ms over %d tasks (%d steals)\n"
        rs.H.Sweep.Fused.wall_ms rs.H.Sweep.Fused.tasks rs.H.Sweep.Fused.steals
    | None -> ());
    print_endline "done (chaos grid only)."
  end
  else begin
    (* Quick runs exercise the JSON writer without clobbering the tracked
       full-size numbers. *)
    let json_path =
      if !quick then "BENCH_sweeps.quick.json" else "BENCH_sweeps.json"
    in
    write_sweeps_json ~jobs ~fused_run:!fused_run json_path;
    Printf.printf
      "wrote %s (%d sweeps with GC deltas; every parallel sweep verified \
       bit-identical to its sequential run)\n"
      json_path
      (List.length !sweep_records);
    (match !fused_run with
    | Some rs -> check_whole_run_speedup ~jobs rs
    | None -> ());
    print_endline "done. See EXPERIMENTS.md for the paper-vs-measured discussion."
  end
