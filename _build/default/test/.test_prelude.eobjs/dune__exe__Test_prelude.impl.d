test/test_prelude.ml: Alcotest Bsm_prelude Fun Int List Party_id Party_set Rng Side Stats String Table Util
