test/test_harness.ml: Alcotest Bsm_core Bsm_harness Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Format List Party_id Party_set Rng Side String
