test/test_crypto.ml: Alcotest Bsm_crypto Bsm_prelude Bsm_wire Party_id String
