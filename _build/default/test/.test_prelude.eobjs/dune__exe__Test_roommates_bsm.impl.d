test/test_roommates_bsm.ml: Alcotest Array Bsm_broadcast Bsm_core Bsm_crypto Bsm_prelude Bsm_runtime Bsm_topology Bsm_wire Format List Party_id Party_set Printf Rng String
