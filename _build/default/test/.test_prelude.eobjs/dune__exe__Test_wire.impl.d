test/test_wire.ml: Alcotest Bool Bsm_prelude Bsm_wire Char Int List Party_id QCheck QCheck_alcotest Result Rng Side String
