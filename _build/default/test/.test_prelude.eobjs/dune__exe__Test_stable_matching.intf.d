test/test_stable_matching.mli:
