test/test_runtime.ml: Alcotest Bsm_prelude Bsm_runtime Bsm_topology Format List Party_id Side String
