test/test_topology.ml: Alcotest Bsm_prelude Bsm_topology List Party_id Printf Side String
