test/test_roommates_bsm.mli:
