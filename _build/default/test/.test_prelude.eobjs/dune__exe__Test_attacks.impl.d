test/test_attacks.ml: Alcotest Bsm_attacks Bsm_broadcast Bsm_core Bsm_harness Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Format List Party_id Rng Side String
