test/test_stable_matching.ml: Alcotest Array Bsm_prelude Bsm_stable_matching Bsm_wire List Party_id Printf QCheck QCheck_alcotest Result Rng Side Util
