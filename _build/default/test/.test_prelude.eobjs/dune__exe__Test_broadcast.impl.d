test/test_broadcast.ml: Alcotest Bsm_broadcast Bsm_crypto Bsm_prelude Bsm_runtime Bsm_topology Bsm_wire Fun Int List Option Party_id Party_set Printf QCheck QCheck_alcotest Rng Side String
