(* Tests for the three communication topologies (Fig. 1). *)

open Bsm_prelude
module Topology = Bsm_topology.Topology

let l = Party_id.left
let r = Party_id.right

let test_fully_connected () =
  let t = Topology.Fully_connected in
  Alcotest.(check bool) "L-L" true (Topology.connected t (l 0) (l 1));
  Alcotest.(check bool) "R-R" true (Topology.connected t (r 0) (r 1));
  Alcotest.(check bool) "L-R" true (Topology.connected t (l 0) (r 0));
  Alcotest.(check bool) "no self loop" false (Topology.connected t (l 0) (l 0))

let test_one_sided () =
  let t = Topology.One_sided in
  Alcotest.(check bool) "L-L blocked" false (Topology.connected t (l 0) (l 1));
  Alcotest.(check bool) "R-R allowed" true (Topology.connected t (r 0) (r 1));
  Alcotest.(check bool) "L-R allowed" true (Topology.connected t (l 0) (r 1));
  Alcotest.(check bool) "R-L allowed" true (Topology.connected t (r 1) (l 0))

let test_bipartite () =
  let t = Topology.Bipartite in
  Alcotest.(check bool) "L-L blocked" false (Topology.connected t (l 0) (l 1));
  Alcotest.(check bool) "R-R blocked" false (Topology.connected t (r 0) (r 1));
  Alcotest.(check bool) "L-R allowed" true (Topology.connected t (l 2) (r 0))

let test_symmetry () =
  (* Channels are bidirectional in every topology. *)
  let k = 4 in
  List.iter
    (fun t ->
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              Alcotest.(check bool)
                (Printf.sprintf "symmetric %s" (Topology.to_string t))
                (Topology.connected t u v) (Topology.connected t v u))
            (Party_id.all ~k))
        (Party_id.all ~k))
    Topology.all

let test_strictly_increasing_strength () =
  (* bipartite ⊑ one-sided ⊑ fully-connected, strictly. *)
  let k = 2 in
  let edges t =
    List.concat_map
      (fun u -> List.filter (Topology.connected t u) (Party_id.all ~k))
      (Party_id.all ~k)
    |> List.length
  in
  Alcotest.(check bool) "bipartite < one-sided" true
    (edges Topology.Bipartite < edges Topology.One_sided);
  Alcotest.(check bool) "one-sided < full" true
    (edges Topology.One_sided < edges Topology.Fully_connected);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Topology.weaker_or_equal a b then
            List.iter
              (fun u ->
                List.iter
                  (fun v ->
                    if Topology.connected a u v then
                      Alcotest.(check bool) "edge preserved" true
                        (Topology.connected b u v))
                  (Party_id.all ~k))
              (Party_id.all ~k))
        Topology.all)
    Topology.all

let test_neighbors () =
  let k = 3 in
  Alcotest.(check int) "bipartite L0 has k neighbors" k
    (List.length (Topology.neighbors Topology.Bipartite ~k (l 0)));
  Alcotest.(check int) "one-sided R0 has 2k-1 neighbors" ((2 * k) - 1)
    (List.length (Topology.neighbors Topology.One_sided ~k (r 0)));
  Alcotest.(check int) "one-sided L0 has k neighbors" k
    (List.length (Topology.neighbors Topology.One_sided ~k (l 0)));
  Alcotest.(check int) "full has 2k-1" ((2 * k) - 1)
    (List.length (Topology.neighbors Topology.Fully_connected ~k (l 0)))

let test_disconnected_sides () =
  Alcotest.(check int) "full: none" 0
    (List.length (Topology.disconnected_sides Topology.Fully_connected));
  Alcotest.(check (list string)) "one-sided: L" [ "L" ]
    (List.map Side.to_string (Topology.disconnected_sides Topology.One_sided));
  Alcotest.(check int) "bipartite: both" 2
    (List.length (Topology.disconnected_sides Topology.Bipartite))

let test_render_mentions_channels () =
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "one-sided blocks L-L" true
    (contains (Topology.render Topology.One_sided ~k:2) "L-L channels: none");
  Alcotest.(check bool) "bipartite blocks R-R" true
    (contains (Topology.render Topology.Bipartite ~k:2) "R-R channels: none");
  Alcotest.(check bool) "full is complete" true
    (contains (Topology.render Topology.Fully_connected ~k:2) "L-L channels: complete")

let () =
  Alcotest.run "topology"
    [
      ( "edges",
        [
          Alcotest.test_case "fully connected" `Quick test_fully_connected;
          Alcotest.test_case "one-sided" `Quick test_one_sided;
          Alcotest.test_case "bipartite" `Quick test_bipartite;
          Alcotest.test_case "symmetry" `Quick test_symmetry;
          Alcotest.test_case "strict strength order" `Quick
            test_strictly_increasing_strength;
        ] );
      ( "derived",
        [
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "disconnected sides" `Quick test_disconnected_sides;
          Alcotest.test_case "render" `Quick test_render_mentions_channels;
        ] );
    ]
