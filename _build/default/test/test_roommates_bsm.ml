(* Tests for byzantine stable roommates (the paper's future-work direction,
   implemented over Dolev-Strong): honest runs reproduce Irving's solution,
   unsolvable instances yield consistent abstention, and byzantine parties
   within the threshold cannot break any property. *)

open Bsm_prelude
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module B = Bsm_broadcast
module Crypto = Bsm_crypto.Crypto
module Wire = Bsm_wire.Wire
module Topology = Bsm_topology.Topology

let run ~k ~t ~inputs ~byzantine =
  let pki = Crypto.Pki.setup ~k ~seed:11 in
  let programs p =
    match List.assoc_opt p byzantine with
    | Some program -> program
    | None -> Core.Roommates_bsm.program ~k ~t ~pki ~input:(inputs p) ~self:p
  in
  let cfg =
    Engine.config ~k ~link:(Engine.Of_topology Topology.Fully_connected)
      ~max_rounds:500 ()
  in
  let res = Engine.run cfg ~programs:(fun p -> programs p) in
  let byz = Party_set.of_list (List.map fst byzantine) in
  let decisions =
    List.filter_map
      (fun (r : Engine.party_result) ->
        if Party_set.mem r.Engine.id byz then None
        else
          Some
            ( r.Engine.id,
              match r.Engine.status, r.Engine.out with
              | Engine.Terminated, Some payload ->
                Some (Wire.decode_exn Core.Problem.decision_codec payload)
              | _ -> None ))
      res.Engine.parties
  in
  decisions, Core.Roommates_bsm.check ~k ~inputs ~byzantine:byz ~decisions

let check_clean what violations =
  match violations with
  | [] -> ()
  | vs ->
    Alcotest.failf "%s: %s" what
      (String.concat "; "
         (List.map (Format.asprintf "%a" Core.Roommates_bsm.pp_violation) vs))

let test_honest_solvable_matches_reference () =
  let k = 3 in
  let rng = Rng.make 1 in
  (* Find a solvable random instance. *)
  let rec find () =
    let inputs = Core.Roommates_bsm.random_inputs rng ~k in
    match Core.Roommates_bsm.solve_reference ~k ~inputs with
    | Some partner -> inputs, partner
    | None -> find ()
  in
  let inputs, partner = find () in
  let decisions, violations = run ~k ~t:0 ~inputs ~byzantine:[] in
  check_clean "honest solvable" violations;
  List.iter
    (fun (p, d) ->
      let expected = Party_id.of_dense ~k partner.(Party_id.to_dense ~k p) in
      match d with
      | Some (Some q) ->
        Alcotest.(check bool)
          (Party_id.to_string p ^ " matches reference")
          true (Party_id.equal q expected)
      | Some None | None -> Alcotest.fail "expected a match")
    decisions

let test_honest_unsolvable_consistent_abstention () =
  let k = 2 in
  (* The classic unsolvable 4-person instance, in dense indices: persons
     0,1,2 form a cyclic preference and all rank person 3 last. *)
  let lists = [| [ 1; 2; 3 ]; [ 2; 0; 3 ]; [ 0; 1; 3 ]; [ 0; 1; 2 ] |] in
  let inputs p = lists.(Party_id.to_dense ~k p) in
  Alcotest.(check bool) "reference unsolvable" true
    (Core.Roommates_bsm.solve_reference ~k ~inputs = None);
  let decisions, violations = run ~k ~t:0 ~inputs ~byzantine:[] in
  check_clean "honest unsolvable" violations;
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "abstained" true (d = Some None))
    decisions

let test_byzantine_cannot_break_properties () =
  let k = 3 in
  let n = 2 * k in
  let rng = Rng.make 5 in
  for trial = 1 to 15 do
    let inputs = Core.Roommates_bsm.random_inputs rng ~k in
    let bad = Rng.sample rng 2 (Party_id.all ~k) in
    let strategy i p =
      if i mod 2 = 0 then B.Strategies.silent
      else
        B.Strategies.noise ~seed:(trial * 10 + Party_id.hash p) ~rounds:20 ~burst:5
          ~targets:(Party_id.all ~k)
    in
    let byzantine = List.mapi (fun i p -> p, strategy i p) bad in
    let _, violations = run ~k ~t:2 ~inputs ~byzantine in
    check_clean (Printf.sprintf "byzantine trial %d" trial) violations
  done;
  ignore n

let test_garbage_prefs_become_default () =
  (* A byzantine party broadcasting a malformed list: honest parties must
     still produce a consistent outcome (the default list is substituted
     identically everywhere thanks to BB agreement). *)
  let k = 2 in
  let rng = Rng.make 9 in
  let inputs = Core.Roommates_bsm.random_inputs rng ~k in
  let liar_id = Party_id.right 1 in
  let liar (env : Engine.env) =
    (* Broadcast a syntactically-valid but semantically-invalid list (too
       short) via a real Dolev-Strong chain, so every honest party decodes
       and must reject it. *)
    let pki = Crypto.Pki.setup ~k ~seed:11 in
    let signer = Crypto.Pki.signer pki liar_id in
    let bytes = Wire.encode (Wire.list Wire.uint) [ 0 ] in
    let chain = B.Dolev_strong.Chain.start signer bytes in
    let payload =
      B.Session.wrap (Party_id.to_string liar_id)
        (Wire.encode B.Dolev_strong.Chain.codec chain)
    in
    List.iter
      (fun p -> if not (Party_id.equal p liar_id) then env.Engine.send p payload)
      (Party_id.all ~k);
    ignore (env.Engine.next_round ())
  in
  let _, violations = run ~k ~t:1 ~inputs ~byzantine:[ liar_id, liar ] in
  check_clean "garbage prefs" violations

let test_validate_and_defaults () =
  let n = 6 in
  Alcotest.(check bool) "default valid" true
    (Core.Roommates_bsm.validate ~n ~self_dense:2
       (Core.Roommates_bsm.default_prefs ~n ~self_dense:2));
  Alcotest.(check bool) "self in list invalid" false
    (Core.Roommates_bsm.validate ~n ~self_dense:2 [ 0; 1; 2; 3; 4 ]);
  Alcotest.(check bool) "short list invalid" false
    (Core.Roommates_bsm.validate ~n ~self_dense:2 [ 0; 1 ])

let () =
  Alcotest.run "roommates_bsm"
    [
      ( "byzantine-stable-roommates",
        [
          Alcotest.test_case "honest solvable run matches Irving" `Quick
            test_honest_solvable_matches_reference;
          Alcotest.test_case "unsolvable: consistent abstention" `Quick
            test_honest_unsolvable_consistent_abstention;
          Alcotest.test_case "byzantine within threshold" `Quick
            test_byzantine_cannot_break_properties;
          Alcotest.test_case "garbage prefs become default" `Quick
            test_garbage_prefs_become_default;
          Alcotest.test_case "validation" `Quick test_validate_and_defaults;
        ] );
    ]
