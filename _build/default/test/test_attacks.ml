(* Tests for the impossibility constructions of Lemmas 5, 7 and 13: each
   attack must produce the predicted non-competition violation against the
   naive baseline protocol, and the solvability predicate must already
   declare those frontiers impossible (so our own protocol stack refuses
   to run there). *)

open Bsm_prelude
module A = Bsm_attacks
module Core = Bsm_core
module Topology = Bsm_topology.Topology

let check_violates name report =
  match report.A.Report.violation with
  | Some _ -> ()
  | None ->
    Alcotest.failf "%s: expected a violation;@ %s" name
      (Format.asprintf "%a" A.Report.pp report)

let test_duplication_breaks_naive () =
  check_violates "duplication" (A.Duplication.run A.Protocol_under_test.naive)

let test_cycle_breaks_naive () =
  check_violates "cycle" (A.Cycle.run A.Protocol_under_test.naive)

let test_split_breaks_naive () =
  check_violates "split" (A.Split.run A.Protocol_under_test.naive)

let setting ~k ~topology ~auth ~tl ~tr =
  Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr

let test_constructions_run_against_real_protocol () =
  (* Running the constructions against our real stack forced beyond its
     thresholds must complete without crashing (the impossibility theorem
     guarantees some admissible execution breaks such a protocol, not
     necessarily the covering one — we only require a well-formed report
     here). *)
  let dup_setting =
    setting ~k:3 ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
      ~tl:1 ~tr:1
  in
  let cyc_setting =
    setting ~k:2 ~topology:Topology.Bipartite ~auth:Core.Setting.Unauthenticated ~tl:0
      ~tr:1
  in
  let split_setting =
    setting ~k:3 ~topology:Topology.One_sided ~auth:Core.Setting.Unauthenticated ~tl:1
      ~tr:3
  in
  let reports =
    [
      A.Duplication.run (A.Protocol_under_test.thresholded ~setting:dup_setting);
      A.Cycle.run (A.Protocol_under_test.thresholded ~setting:cyc_setting);
      A.Split.run (A.Protocol_under_test.thresholded ~setting:split_setting);
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "report has outputs" true (r.A.Report.outputs <> []))
    reports

(* The frontiers the attacks operate at must be exactly where the
   predicate flips to impossible — and one step inside, solvable. *)

let test_duplication_frontier () =
  let s tl tr =
    setting ~k:3 ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
      ~tl ~tr
  in
  Alcotest.(check bool) "attack point impossible" false (Core.Solvability.solvable (s 1 1));
  Alcotest.(check bool) "tL=0 solvable" true (Core.Solvability.solvable (s 0 1));
  Alcotest.(check bool) "tR=0 solvable" true (Core.Solvability.solvable (s 1 0))

let test_cycle_frontier () =
  let s tl tr =
    setting ~k:2 ~topology:Topology.One_sided ~auth:Core.Setting.Unauthenticated ~tl ~tr
  in
  Alcotest.(check bool) "attack point impossible" false (Core.Solvability.solvable (s 0 1));
  Alcotest.(check bool) "tR=0 solvable" true (Core.Solvability.solvable (s 0 0))

let test_split_frontier () =
  let s tl tr =
    setting ~k:3 ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated ~tl ~tr
  in
  Alcotest.(check bool) "attack point impossible" false (Core.Solvability.solvable (s 1 3));
  Alcotest.(check bool) "tL=0 solvable" true (Core.Solvability.solvable (s 0 3));
  Alcotest.(check bool) "tR=k-1 solvable" true (Core.Solvability.solvable (s 1 2))

(* Our own protocol run inside its guarantees at the smallest instances
   near each frontier must keep satisfying bSM — the attacks only bite
   beyond the characterization. *)
let test_protocols_safe_inside_frontier () =
  let module SM = Bsm_stable_matching in
  let module H = Bsm_harness in
  let rng = Rng.make 3 in
  let cases =
    [
      setting ~k:3 ~topology:Topology.Fully_connected
        ~auth:Core.Setting.Unauthenticated ~tl:0 ~tr:1;
      setting ~k:3 ~topology:Topology.One_sided ~auth:Core.Setting.Unauthenticated
        ~tl:0 ~tr:1;
      setting ~k:3 ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated ~tl:0
        ~tr:3;
    ]
  in
  List.iter
    (fun s ->
      let profile = SM.Profile.random rng 3 in
      let byzantine = H.Adversaries.random_coalition rng ~setting:s ~seed:9 ~profile in
      let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:9 s profile) in
      if not (H.Scenario.ok report) then
        Alcotest.failf "inside-frontier violation at %s"
          (Format.asprintf "%a" Core.Setting.pp s))
    cases

(* --- Lemma 3 scaling -------------------------------------------------- *)

let run_small ~topology ~k ~favorites ~byzantine protocol =
  A.Evaluate.run ~topology ~k ~favorites ~byzantine protocol

let real_protocol ~k ~tl ~tr ~topology ~auth =
  A.Protocol_under_test.thresholded
    ~setting:(setting ~k ~topology ~auth ~tl ~tr)

let test_scaling_preserves_ssm_honest () =
  (* Shrink the real (correct, in-threshold) protocol from k=4 to k=2 and
     check sSM on honest runs with several favorite assignments. *)
  let big =
    real_protocol ~k:4 ~tl:1 ~tr:1 ~topology:Topology.Fully_connected
      ~auth:Core.Setting.Unauthenticated
  in
  let small = A.Scaling.shrink ~big_k:4 ~small_k:2 big in
  let favorite_assignments =
    [
      (fun p -> Party_id.make (Side.opposite (Party_id.side p)) 0);
      (fun p ->
        Party_id.make (Side.opposite (Party_id.side p)) (Party_id.index p));
      (fun p ->
        Party_id.make (Side.opposite (Party_id.side p)) (1 - Party_id.index p));
    ]
  in
  List.iter
    (fun favorites ->
      match
        run_small ~topology:Topology.Fully_connected ~k:2 ~favorites ~byzantine:[]
          small
      with
      | [] -> ()
      | vs ->
        Alcotest.failf "shrunken protocol violated sSM: %s"
          (String.concat "; "
             (List.map (Format.asprintf "%a" Core.Problem.pp_violation) vs)))
    favorite_assignments

let test_scaling_tolerates_scaled_budget () =
  (* Dolev-Strong pipeline at k=4 tolerates (4,4); shrunk to k=2 it must
     tolerate (2,2) — in particular one silent byzantine party per side. *)
  let big =
    real_protocol ~k:4 ~tl:4 ~tr:4 ~topology:Topology.Fully_connected
      ~auth:Core.Setting.Authenticated
  in
  Alcotest.(check int) "budget halves" 2 (A.Scaling.tolerated ~big_k:4 ~small_k:2 4);
  let small = A.Scaling.shrink ~big_k:4 ~small_k:2 big in
  let favorites p = Party_id.make (Side.opposite (Party_id.side p)) (Party_id.index p) in
  let byzantine =
    [
      Party_id.left 1, Bsm_broadcast.Strategies.silent;
      Party_id.right 0, Bsm_broadcast.Strategies.silent;
    ]
  in
  match
    run_small ~topology:Topology.Fully_connected ~k:2 ~favorites ~byzantine small
  with
  | [] -> ()
  | vs ->
    Alcotest.failf "shrunken protocol violated sSM under byzantine: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" Core.Problem.pp_violation) vs))

let test_scaling_mutual_favorites_matched () =
  (* Small mutual favorites lift to representative mutual favorites, so
     the shrunken run must match them. *)
  let big =
    real_protocol ~k:6 ~tl:1 ~tr:1 ~topology:Topology.Fully_connected
      ~auth:Core.Setting.Unauthenticated
  in
  let small = A.Scaling.shrink ~big_k:6 ~small_k:3 big in
  let favorites p =
    Party_id.make (Side.opposite (Party_id.side p)) (Party_id.index p)
  in
  let module Engine = Bsm_runtime.Engine in
  let cfg =
    Engine.config ~k:3 ~link:(Engine.Of_topology Topology.Fully_connected)
      ~max_rounds:500 ()
  in
  let res =
    Engine.run cfg ~programs:(fun p ->
        small.A.Protocol_under_test.program ~topology:Topology.Fully_connected ~k:3
          ~favorite:(favorites p) ~self:p)
  in
  List.iter
    (fun (r : Engine.party_result) ->
      match r.Engine.out with
      | Some payload -> (
        match A.Protocol_under_test.decode_decision payload with
        | Some q ->
          Alcotest.(check bool)
            (Party_id.to_string r.Engine.id ^ " got its mutual favorite")
            true
            (Party_id.equal q (favorites r.Engine.id))
        | None -> Alcotest.failf "%s unmatched" (Party_id.to_string r.Engine.id))
      | None -> Alcotest.failf "%s no output" (Party_id.to_string r.Engine.id))
    res.Engine.parties

let () =
  Alcotest.run "attacks"
    [
      ( "constructions",
        [
          Alcotest.test_case "Fig 2: duplication defeats naive" `Quick
            test_duplication_breaks_naive;
          Alcotest.test_case "Fig 3: cycle defeats naive" `Quick test_cycle_breaks_naive;
          Alcotest.test_case "Fig 4: split-brain defeats naive" `Quick
            test_split_breaks_naive;
          Alcotest.test_case "constructions vs real protocol (no crash)" `Quick
            test_constructions_run_against_real_protocol;
        ] );
      ( "frontiers",
        [
          Alcotest.test_case "Lemma 5 frontier" `Quick test_duplication_frontier;
          Alcotest.test_case "Lemma 7 frontier" `Quick test_cycle_frontier;
          Alcotest.test_case "Lemma 13 frontier" `Quick test_split_frontier;
          Alcotest.test_case "protocols safe inside frontier" `Quick
            test_protocols_safe_inside_frontier;
        ] );
      ( "equivocation",
        [
          Alcotest.test_case "naive breaks, tolerant protocol survives" `Quick
            (fun () ->
              let k = 4 in
              let topology = Topology.Fully_connected in
              let naive_bad = ref 0 in
              for seed = 1 to 12 do
                let rng = Rng.make seed in
                let favorites = A.Evaluate.random_favorites rng ~k in
                let byzantine =
                  [
                    Party_id.left 3, A.Naive.equivocating_announcer ~topology ~k;
                    Party_id.right 2, A.Naive.equivocating_announcer ~topology ~k;
                  ]
                in
                if
                  A.Evaluate.run ~topology ~k ~favorites ~byzantine
                    A.Protocol_under_test.naive
                  <> []
                then incr naive_bad;
                let ours =
                  A.Protocol_under_test.thresholded
                    ~setting:
                      (setting ~k ~topology ~auth:Core.Setting.Unauthenticated ~tl:1
                         ~tr:1)
                in
                Alcotest.(check (list reject))
                  "tolerant protocol has no violations" []
                  (List.map (fun _ -> ()) (A.Evaluate.run ~topology ~k ~favorites ~byzantine ours))
              done;
              Alcotest.(check bool) "naive violated at least once" true (!naive_bad > 0));
        ] );
      ( "scaling",
        [
          Alcotest.test_case "Lemma 3: shrunken protocol keeps sSM" `Quick
            test_scaling_preserves_ssm_honest;
          Alcotest.test_case "Lemma 3: scaled byzantine budget" `Quick
            test_scaling_tolerates_scaled_budget;
          Alcotest.test_case "Lemma 3: mutual favorites lift" `Quick
            test_scaling_mutual_favorites_matched;
        ] );
    ]
