(* End-to-end tests for the bSM core: the solvability characterization,
   the virtual-channel layers, and full protocol executions across all six
   (topology × authentication) settings under byzantine coalitions. *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology
module B = Bsm_broadcast
module Wire = Bsm_wire.Wire
module Crypto = Bsm_crypto.Crypto

let setting ~k ~topology ~auth ~tl ~tr =
  Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr

let all_settings ~k =
  List.concat_map
    (fun topology ->
      List.concat_map
        (fun auth ->
          List.concat_map
            (fun tl ->
              List.map
                (fun tr -> setting ~k ~topology ~auth ~tl ~tr)
                (Util.range 0 (k + 1)))
            (Util.range 0 (k + 1)))
        [ Core.Setting.Unauthenticated; Core.Setting.Authenticated ])
    Topology.all

(* --- solvability predicate ---------------------------------------------- *)

let test_solvability_spot_checks () =
  let check ~expected s =
    if Core.Solvability.solvable s <> expected then
      Alcotest.failf "wrong verdict for %s" (Format.asprintf "%a" Core.Setting.pp s)
  in
  let u = Core.Setting.Unauthenticated and a = Core.Setting.Authenticated in
  (* Theorem 2 *)
  check ~expected:true (setting ~k:3 ~topology:Topology.Fully_connected ~auth:u ~tl:0 ~tr:3);
  check ~expected:true (setting ~k:4 ~topology:Topology.Fully_connected ~auth:u ~tl:1 ~tr:4);
  check ~expected:false (setting ~k:3 ~topology:Topology.Fully_connected ~auth:u ~tl:1 ~tr:1);
  (* Theorem 3 *)
  check ~expected:true (setting ~k:5 ~topology:Topology.Bipartite ~auth:u ~tl:1 ~tr:2);
  check ~expected:false (setting ~k:5 ~topology:Topology.Bipartite ~auth:u ~tl:1 ~tr:3);
  check ~expected:false (setting ~k:6 ~topology:Topology.Bipartite ~auth:u ~tl:2 ~tr:2);
  (* Theorem 4 *)
  check ~expected:true (setting ~k:5 ~topology:Topology.One_sided ~auth:u ~tl:1 ~tr:2);
  check ~expected:true (setting ~k:5 ~topology:Topology.One_sided ~auth:u ~tl:5 ~tr:1);
  check ~expected:false (setting ~k:4 ~topology:Topology.One_sided ~auth:u ~tl:1 ~tr:2);
  (* Theorem 5 *)
  check ~expected:true (setting ~k:2 ~topology:Topology.Fully_connected ~auth:a ~tl:2 ~tr:2);
  (* Theorem 6 *)
  check ~expected:true (setting ~k:3 ~topology:Topology.Bipartite ~auth:a ~tl:2 ~tr:2);
  check ~expected:true (setting ~k:4 ~topology:Topology.Bipartite ~auth:a ~tl:1 ~tr:4);
  check ~expected:false (setting ~k:3 ~topology:Topology.Bipartite ~auth:a ~tl:1 ~tr:3);
  (* Theorem 7 *)
  check ~expected:true (setting ~k:3 ~topology:Topology.One_sided ~auth:a ~tl:3 ~tr:2);
  check ~expected:true (setting ~k:3 ~topology:Topology.One_sided ~auth:a ~tl:0 ~tr:3);
  check ~expected:false (setting ~k:3 ~topology:Topology.One_sided ~auth:a ~tl:1 ~tr:3)

let test_solvability_monotone () =
  (* Fewer corruptions never hurt; signatures never hurt; a stronger
     topology never hurts. Exhaustive over k <= 6. *)
  List.iter
    (fun k ->
      List.iter
        (fun (s : Core.Setting.t) ->
          let v = Core.Solvability.solvable s in
          if v then begin
            (* decreasing thresholds *)
            if s.t_left > 0 then begin
              let s' = { s with Core.Setting.t_left = s.t_left - 1 } in
              if not (Core.Solvability.solvable s') then
                Alcotest.failf "not monotone in t_left at %s"
                  (Format.asprintf "%a" Core.Setting.pp s)
            end;
            if s.t_right > 0 then begin
              let s' = { s with Core.Setting.t_right = s.t_right - 1 } in
              if not (Core.Solvability.solvable s') then
                Alcotest.failf "not monotone in t_right at %s"
                  (Format.asprintf "%a" Core.Setting.pp s)
            end;
            (* adding signatures *)
            if not (Core.Solvability.solvable { s with Core.Setting.auth = Core.Setting.Authenticated })
            then
              Alcotest.failf "authentication hurt at %s"
                (Format.asprintf "%a" Core.Setting.pp s);
            (* strengthening topology *)
            List.iter
              (fun topology' ->
                if Topology.weaker_or_equal s.topology topology' then
                  if not (Core.Solvability.solvable { s with Core.Setting.topology = topology' })
                  then
                    Alcotest.failf "stronger topology hurt at %s"
                      (Format.asprintf "%a" Core.Setting.pp s))
              Topology.all
          end)
        (all_settings ~k))
    [ 1; 2; 3; 4; 5; 6 ]

let test_plan_exists_iff_solvable () =
  List.iter
    (fun k ->
      List.iter
        (fun s ->
          let planned = Result.is_ok (Core.Select.plan s) in
          if planned <> Core.Solvability.solvable s then
            Alcotest.failf "plan/solvability mismatch at %s"
              (Format.asprintf "%a" Core.Setting.pp s))
        (all_settings ~k))
    [ 1; 2; 3; 4; 5 ]

(* --- virtual channels ---------------------------------------------------- *)

(* Drive two L-parties exchanging one message over a proxied topology; all
   other parties just serve sync duty. *)
let channel_roundtrip ~topology ~auth_of ~k ~byz =
  let got = ref None in
  let programs p (env : Engine.env) =
    match byz p with
    | Some program -> program env
    | None ->
      let net = Core.Channels.virtual_net env ~topology ~auth:(auth_of p) in
      if Party_id.equal p (Party_id.left 0) then begin
        net.Bsm_runtime.Net.send (Party_id.left 1) "hello-there";
        ignore (net.Bsm_runtime.Net.sync ())
      end
      else begin
        let inbox = net.Bsm_runtime.Net.sync () in
        if Party_id.equal p (Party_id.left 1) then got := Some inbox
      end
  in
  let cfg = Engine.config ~k ~link:(Engine.Of_topology topology) () in
  ignore (Engine.run cfg ~programs:(fun p -> fun env -> programs p env));
  !got

let test_majority_proxy_delivers () =
  match
    channel_roundtrip ~topology:Topology.One_sided
      ~auth_of:(fun _ -> Core.Channels.Majority)
      ~k:3
      ~byz:(fun _ -> None)
  with
  | Some [ (src, "hello-there") ] ->
    Alcotest.(check bool) "from L0" true (Party_id.equal src (Party_id.left 0))
  | Some _ | None -> Alcotest.fail "expected exactly the relayed message"

let test_majority_proxy_survives_minority_byz () =
  (* k = 5, two byzantine R relays stay silent: 3 > 5/2 forwards remain. *)
  match
    channel_roundtrip ~topology:Topology.One_sided
      ~auth_of:(fun _ -> Core.Channels.Majority)
      ~k:5
      ~byz:(fun p ->
        if Party_id.equal p (Party_id.right 0) || Party_id.equal p (Party_id.right 1)
        then Some B.Strategies.silent
        else None)
  with
  | Some [ (_, "hello-there") ] -> ()
  | Some _ | None -> Alcotest.fail "expected delivery despite 2/5 byzantine relays"

let test_majority_proxy_blocks_forgery () =
  (* All byzantine relays collude to inject a message that L0 never sent:
     with 2 < 5/2 forwarders the forgery must not be delivered; here ALL
     k=3 relays forward a forged payload — but a forged payload claims
     src=L0 while arriving from relays, so honest forwarding never happens
     and the quorum test is fed only byzantine forwards. With k=3 and 3
     forwarders the count passes — which is exactly why Lemma 6 requires
     t_R < k/2. So instead: 1 byzantine relay of 3 forges; 1 < 3/2 fails. *)
  let forged_payload =
    (* Craft a Forward for a message L0 never sent. We cannot build
       Channels payloads directly (abstract), so replay attack: the
       byzantine relay simply sends garbage; the stronger forgery test
       lives in the signed-mode test below via replay. *)
    "garbage-not-a-payload"
  in
  let byz p =
    if Party_id.equal p (Party_id.right 0) then
      Some
        (fun (env : Engine.env) ->
          env.Engine.send (Party_id.left 1) forged_payload;
          ignore (env.Engine.next_round ()))
    else None
  in
  match
    channel_roundtrip ~topology:Topology.One_sided
      ~auth_of:(fun _ -> Core.Channels.Majority)
      ~k:3 ~byz
  with
  | Some inbox ->
    Alcotest.(check int) "only the real message" 1 (List.length inbox)
  | None -> Alcotest.fail "receiver did not sync"

let signed_auth pki p =
  Core.Channels.Signed
    { signer = Crypto.Pki.signer pki p; verifier = Crypto.Pki.verifier pki }

let test_signed_proxy_single_honest_relay () =
  (* Bipartite, k=3: two of three relays byzantine-silent; one honest
     relay suffices (Lemma 8). *)
  let pki = Crypto.Pki.setup ~k:3 ~seed:99 in
  match
    channel_roundtrip ~topology:Topology.Bipartite
      ~auth_of:(signed_auth pki)
      ~k:3
      ~byz:(fun p ->
        if Party_id.equal p (Party_id.right 0) || Party_id.equal p (Party_id.right 2)
        then Some B.Strategies.silent
        else None)
  with
  | Some [ (_, "hello-there") ] -> ()
  | Some _ | None -> Alcotest.fail "one honest relay must deliver"

let test_signed_proxy_drops_late_forward () =
  (* A byzantine relay withholds the only copy and forwards it two rounds
     late: the vround (timestamp) check must reject it — an omission, as
     Lemma 10 prescribes. *)
  let withhold (env : Engine.env) =
    (* The byzantine relay receives the Request in round 1 but acts as a
       correct forwarder two rounds late, replaying the stale envelope
       through [forward_duty]; the receiver's vround check must reject. *)
    let stale = env.Engine.next_round () in
    ignore (env.Engine.next_round ());
    ignore (env.Engine.next_round ());
    List.iter (Core.Channels.forward_duty env ~topology:Topology.Bipartite) stale
  in
  let pki = Crypto.Pki.setup ~k:2 ~seed:7 in
  let received = ref [] in
  let programs p (env : Engine.env) =
    if Side.equal (Party_id.side p) Side.Right then
      (if Party_id.equal p (Party_id.right 0) then withhold env
       else B.Strategies.silent env)
    else begin
      let net =
        Core.Channels.virtual_net env ~topology:Topology.Bipartite
          ~auth:(signed_auth pki p)
      in
      if Party_id.equal p (Party_id.left 0) then begin
        net.Bsm_runtime.Net.send (Party_id.left 1) "late-message";
        ignore (net.Bsm_runtime.Net.sync ());
        ignore (net.Bsm_runtime.Net.sync ())
      end
      else begin
        let i1 = net.Bsm_runtime.Net.sync () in
        let i2 = net.Bsm_runtime.Net.sync () in
        received := i1 @ i2
      end
    end
  in
  let cfg = Engine.config ~k:2 ~link:(Engine.Of_topology Topology.Bipartite) () in
  ignore (Engine.run cfg ~programs:(fun p env -> programs p env));
  Alcotest.(check int) "late forward rejected (omission)" 0 (List.length !received)

let prop_channels_reliable_links =
  (* Random topology, auth mode and traffic: for several virtual rounds,
     every honest party sends random messages to random peers over the
     virtual net; every message must arrive exactly once, in the next
     virtual round, with the true sender. *)
  QCheck.Test.make ~name:"virtual channels are reliable exactly-once links" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.make seed in
      let k = 2 + Rng.int rng 3 in
      let topology = Rng.choose rng Topology.all in
      let pki = Crypto.Pki.setup ~k ~seed in
      (* Fix the mode once for the whole run (all parties must agree). *)
      let mode_signed = Rng.bool rng in
      let auth p = if mode_signed then signed_auth pki p else Core.Channels.Majority in
      let vrounds = 3 in
      (* Pre-draw the traffic plan: (vround, src, dst, payload). *)
      let roster = Party_id.all ~k in
      let plan =
        List.concat_map
          (fun v ->
            List.concat_map
              (fun src ->
                List.filter_map
                  (fun dst ->
                    if Party_id.equal src dst || Rng.int rng 100 >= 40 then None
                    else Some (v, src, dst, Printf.sprintf "m-%d-%s-%s" v
                                 (Party_id.to_string src) (Party_id.to_string dst)))
                  roster)
              roster)
          (Util.range 0 vrounds)
      in
      let received = Hashtbl.create 64 in
      let programs p (env : Engine.env) =
        let net = Core.Channels.virtual_net env ~topology ~auth:(auth p) in
        for v = 0 to vrounds - 1 do
          List.iter
            (fun (v', src, dst, payload) ->
              if v' = v && Party_id.equal src p then net.Bsm_runtime.Net.send dst payload)
            plan;
          let inbox = net.Bsm_runtime.Net.sync () in
          List.iter
            (fun (src, payload) ->
              let key = Party_id.to_string p ^ "|" ^ Party_id.to_string src ^ "|" ^ payload in
              Hashtbl.replace received key
                (1 + try Hashtbl.find received key with Not_found -> 0))
            inbox
        done
      in
      let cfg = Engine.config ~k ~link:(Engine.Of_topology topology) () in
      ignore (Engine.run cfg ~programs:(fun p env -> programs p env));
      List.for_all
        (fun (_, src, dst, payload) ->
          let key = Party_id.to_string dst ^ "|" ^ Party_id.to_string src ^ "|" ^ payload in
          (try Hashtbl.find received key with Not_found -> 0) = 1)
        plan
      && Hashtbl.length received = List.length plan)

(* --- end-to-end honest runs across all six settings ---------------------- *)

let solvable_examples ~k =
  (* One representative maximal-threshold solvable setting per
     (topology, auth) pair. *)
  let u = Core.Setting.Unauthenticated and a = Core.Setting.Authenticated in
  let third = (k - 1) / 3 and half = (k - 1) / 2 in
  [
    setting ~k ~topology:Topology.Fully_connected ~auth:u ~tl:third ~tr:k;
    setting ~k ~topology:Topology.One_sided ~auth:u ~tl:third ~tr:half;
    setting ~k ~topology:Topology.Bipartite ~auth:u ~tl:third ~tr:half;
    setting ~k ~topology:Topology.Fully_connected ~auth:a ~tl:k ~tr:k;
    setting ~k ~topology:Topology.One_sided ~auth:a ~tl:k ~tr:(k - 1);
    setting ~k ~topology:Topology.Bipartite ~auth:a ~tl:third ~tr:k;
  ]

let test_honest_runs_all_settings () =
  let k = 3 in
  let rng = Rng.make 1234 in
  List.iter
    (fun s ->
      let profile = SM.Profile.random rng k in
      let scenario = H.Scenario.make_exn s profile in
      let report = H.Scenario.run scenario in
      if not (H.Scenario.ok report) then
        Alcotest.failf "honest run violated bSM at %s:@ %s"
          (Format.asprintf "%a" Core.Setting.pp s)
          (Format.asprintf "%a" H.Scenario.pp_report report);
      (* With zero byzantine parties the outcome must be the stable
         matching of the true profile. *)
      let m = SM.Gale_shapley.run profile in
      List.iter
        (fun (p, d) ->
          match (d : Core.Problem.decision) with
          | Core.Problem.Matched q ->
            if not (Party_id.equal q (SM.Matching.partner m p)) then
              Alcotest.failf "wrong partner for %s" (Party_id.to_string p)
          | Core.Problem.Nobody | Core.Problem.No_output ->
            Alcotest.failf "%s should be matched" (Party_id.to_string p))
        report.H.Scenario.outcome.Core.Problem.decisions)
    (solvable_examples ~k)

let test_round_complexity_matches_plan () =
  (* plan.engine_rounds is a documented constant; honest executions must
     finish in exactly that many rounds. *)
  let k = 3 in
  let rng = Rng.make 77 in
  List.iter
    (fun s ->
      let profile = SM.Profile.random rng k in
      let report = H.Scenario.run (H.Scenario.make_exn s profile) in
      let plan = report.H.Scenario.plan in
      Alcotest.(check int)
        (Format.asprintf "rounds for %a" Core.Setting.pp s)
        plan.Core.Select.engine_rounds
        report.H.Scenario.metrics.Engine.rounds_used)
    (solvable_examples ~k)

let test_predicted_messages_exact () =
  (* The closed-form communication model must match the engine's counter
     exactly, for every representative solvable setting and k = 2..6. *)
  List.iter
    (fun k ->
      let rng = Rng.make (k * 997) in
      List.iter
        (fun s ->
          let profile = SM.Profile.random rng k in
          let report = H.Scenario.run (H.Scenario.make_exn s profile) in
          let measured = report.H.Scenario.metrics.Engine.messages_sent in
          let predicted = Core.Complexity.predicted_messages s in
          if measured <> predicted then
            Alcotest.failf "message model wrong at %s: predicted %d, measured %d"
              (Format.asprintf "%a" Core.Setting.pp s)
              predicted measured)
        (solvable_examples ~k))
    [ 2; 3; 4; 5; 6 ]

(* --- byzantine end-to-end runs ------------------------------------------- *)

let run_with_random_coalitions ~name ~runs ~k ~seed settings =
  let rng = Rng.make seed in
  List.iter
    (fun (s : Core.Setting.t) ->
      for i = 1 to runs do
        let profile = SM.Profile.random rng k in
        let scenario_seed = (i * 7919) + seed in
        let byzantine =
          H.Adversaries.random_coalition rng ~setting:s ~seed:scenario_seed ~profile
        in
        let scenario = H.Scenario.make_exn ~byzantine ~seed:scenario_seed s profile in
        let report = H.Scenario.run scenario in
        if not (H.Scenario.ok report) then
          Alcotest.failf "%s: violation at %s (run %d):@ %s" name
            (Format.asprintf "%a" Core.Setting.pp s)
            i
            (Format.asprintf "%a" H.Scenario.pp_report report)
      done)
    settings

let test_byzantine_runs_all_settings () =
  run_with_random_coalitions ~name:"T1 sweep" ~runs:6 ~k:3 ~seed:5
    (solvable_examples ~k:3)

let test_byzantine_runs_k4 () =
  run_with_random_coalitions ~name:"T1 sweep k=4" ~runs:4 ~k:4 ~seed:11
    (solvable_examples ~k:4)

let test_byzantine_runs_k6 () =
  run_with_random_coalitions ~name:"T1 sweep k=6" ~runs:3 ~k:6 ~seed:23
    (solvable_examples ~k:6)

let test_pi_bsm_fully_byzantine_side () =
  (* Bipartite authenticated, t_R = k: every R-party byzantine. Lemma 11
     regime — the honest L parties must satisfy all properties (they may
     match nobody). Strategies include fully silent R (pure omission). *)
  let k = 3 in
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:0
      ~tr:k
  in
  let rng = Rng.make 31 in
  let strategies =
    [
      ("silent", fun _ -> H.Adversaries.silent);
      ("noise", fun i -> H.Adversaries.noise ~seed:(100 + i));
      ( "mixed",
        fun i ->
          if i = 0 then H.Adversaries.silent else H.Adversaries.noise ~seed:(200 + i) );
    ]
  in
  List.iter
    (fun (name, strategy_of) ->
      let profile = SM.Profile.random rng k in
      let byzantine =
        List.mapi (fun i r -> r, strategy_of i) (Party_id.side_members Side.Right ~k)
      in
      let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:3 s profile) in
      if not (H.Scenario.ok report) then
        Alcotest.failf "all-R-byzantine (%s):@ %s" name
          (Format.asprintf "%a" H.Scenario.pp_report report))
    strategies

let test_pi_bsm_selective_forwarding () =
  (* The sharpest Lemma 11 case: every R-party byzantine, but instead of
     staying silent they forward *selectively* — each relay serves only a
     subset of L-destinations, and only in some rounds. This creates
     asymmetric omissions: some L-parties may complete their BB/BA
     instances while others see ⊥. Weak agreement must still prevent any
     two honest L-parties from acting on different matchings; all four
     bSM properties must hold. Swept over many selection patterns. *)
  let k = 3 in
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:0
      ~tr:k
  in
  for seed = 1 to 40 do
    let rng = Rng.make (seed * 131) in
    let profile = SM.Profile.random rng k in
    let selective_relay (env : Engine.env) =
      let rng = Rng.make (seed lxor Party_id.hash env.Engine.self) in
      (* Also send a (possibly garbage) preference list first. *)
      if Rng.bool rng then
        env.Engine.send (Party_id.left (Rng.int rng k)) "not-a-valid-prefs-msg";
      for _ = 1 to 30 do
        let inbox = env.Engine.next_round () in
        List.iter
          (fun (e : Engine.envelope) ->
            (* Forward each relay request only with probability 1/2, and
               occasionally duplicate it. *)
            if Rng.bool rng then begin
              Core.Channels.forward_duty env ~topology:Topology.Bipartite e;
              if Rng.int rng 4 = 0 then
                Core.Channels.forward_duty env ~topology:Topology.Bipartite e
            end)
          inbox
      done
    in
    let byzantine =
      List.map (fun r -> r, selective_relay) (Party_id.side_members Side.Right ~k)
    in
    let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed s profile) in
    if not (H.Scenario.ok report) then
      Alcotest.failf "selective forwarding broke bSM at seed %d:@ %s" seed
        (Format.asprintf "%a" H.Scenario.pp_report report)
  done

let test_pi_bsm_one_honest_relay () =
  (* Lemma 12 regime: one honest R-party; everyone must be matched
     according to the common Gale-Shapley run and R0's true preferences
     must be respected (validity of its Pi_BA instance). *)
  let k = 3 in
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:0
      ~tr:(k - 1)
  in
  (* t_R = k-1 = 2 < k fails the first Thm 6 disjunct? No: tl=0 < k and
     tr=2 < k, so the plan is the DS pipeline. Force Pi_bsm by tr = k with
     an under-budget coalition instead. *)
  ignore s;
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:0
      ~tr:k
  in
  let rng = Rng.make 41 in
  let profile = SM.Profile.random rng k in
  let byzantine =
    [
      Party_id.right 1, H.Adversaries.silent;
      Party_id.right 2, H.Adversaries.noise ~seed:404;
    ]
  in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:5 s profile) in
  (match Core.Select.(report.H.Scenario.plan.mechanism) with
  | Core.Select.Pi_bsm side ->
    Alcotest.(check bool) "computing side is L" true (Side.equal side Side.Left)
  | Core.Select.Bb_pipeline -> Alcotest.fail "expected Pi_bsm plan");
  if not (H.Scenario.ok report) then
    Alcotest.failf "one honest relay:@ %s"
      (Format.asprintf "%a" H.Scenario.pp_report report);
  (* The honest R0 must be matched (it participates honestly and L runs
     full BA: the suggestion majority reaches it). *)
  let r0_decision =
    List.assoc (Party_id.right 0) report.H.Scenario.outcome.Core.Problem.decisions
  in
  (match r0_decision with
  | Core.Problem.Matched _ -> ()
  | Core.Problem.Nobody | Core.Problem.No_output ->
    Alcotest.fail "honest R0 should be matched")

let test_pi_bsm_mirrored_side () =
  (* t_L = k, t_R < k/3: the mirrored protocol (computing side R). *)
  let k = 3 in
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:k
      ~tr:0
  in
  let rng = Rng.make 43 in
  let profile = SM.Profile.random rng k in
  let byzantine =
    [
      Party_id.left 0, H.Adversaries.silent;
      Party_id.left 1, H.Adversaries.noise ~seed:7;
      Party_id.left 2, H.Adversaries.silent;
    ]
  in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:9 s profile) in
  (match Core.Select.(report.H.Scenario.plan.mechanism) with
  | Core.Select.Pi_bsm side ->
    Alcotest.(check bool) "computing side is R" true (Side.equal side Side.Right)
  | Core.Select.Bb_pipeline -> Alcotest.fail "expected mirrored Pi_bsm plan");
  if not (H.Scenario.ok report) then
    Alcotest.failf "mirrored Pi_bsm:@ %s"
      (Format.asprintf "%a" H.Scenario.pp_report report)

let test_one_sided_auth_fully_byzantine_r () =
  (* Theorem 7's second regime: one-sided, t_R = k, t_L < k/3. *)
  let k = 4 in
  let s =
    setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated ~tl:1
      ~tr:k
  in
  let rng = Rng.make 47 in
  let profile = SM.Profile.random rng k in
  let byzantine =
    (Party_id.left 3, H.Adversaries.noise ~seed:17)
    :: List.mapi
         (fun i r -> r, if i mod 2 = 0 then H.Adversaries.silent else H.Adversaries.noise ~seed:i)
         (Party_id.side_members Side.Right ~k)
  in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:13 s profile) in
  if not (H.Scenario.ok report) then
    Alcotest.failf "one-sided tR=k:@ %s"
      (Format.asprintf "%a" H.Scenario.pp_report report)

let test_pi_bsm_bogus_suggestions () =
  (* Byzantine members of the computing side lie to R about its match: the
     suggestion majority (k - t_L > t_L honest senders) must override
     them. R0 is honest; its decision must equal the honest G-S result. *)
  let k = 4 in
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:1
      ~tr:k
  in
  let rng = Rng.make 61 in
  let profile = SM.Profile.random rng k in
  let liar = Party_id.left 2 in
  let lying_computer (env : Engine.env) =
    (* Follow the protocol so the BB/BA phase completes normally, but send
       every R-party a bogus suggestion at the end. We just run the honest
       program with sends of Suggest messages garbled: simplest faithful
       lie — run honest, then flood fake suggestions one round before the
       deadline cannot be injected portably, so instead: behave honestly
       for the session but replace outgoing *direct* messages to R (the
       suggestions) with a fixed wrong suggestion. Relay traffic also goes
       to R but is relay-encoded; garbling only Suggest-typed traffic
       keeps the session intact. *)
    let pki = Crypto.Pki.setup ~k ~seed:33 in
    let honest =
      Core.Pi_bsm.program s ~pki ~computing_side:Side.Left
        ~input:(SM.Profile.prefs profile liar) ~self:liar
    in
    let fake =
      (* decodes as a Suggest of R0's own id's opposite: always L3 *)
      Bsm_wire.Wire.encode Core.Pi_bsm.Msg.codec
        (Core.Pi_bsm.Msg.Suggest (Some (Party_id.left 3)))
    in
    let env' =
      {
        env with
        Engine.send =
          (fun dst msg ->
            let is_suggest =
              match Bsm_wire.Wire.decode Core.Pi_bsm.Msg.codec msg with
              | Ok (Core.Pi_bsm.Msg.Suggest _) -> true
              | Ok (Core.Pi_bsm.Msg.Prefs _) | Error _ -> false
            in
            env.Engine.send dst (if is_suggest then fake else msg));
      }
    in
    honest env'
  in
  let byzantine =
    (liar, lying_computer)
    :: List.filteri
         (fun i _ -> i > 0) (* keep R0 honest *)
         (List.map (fun r -> r, H.Adversaries.silent) (Party_id.side_members Side.Right ~k))
  in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:33 s profile) in
  if not (H.Scenario.ok report) then
    Alcotest.failf "bogus suggestions:@ %s"
      (Format.asprintf "%a" H.Scenario.pp_report report);
  (* R0 is honest and at least one honest L computed a matching; its
     decision must NOT be the liar's fake unless the real matching says
     so. Stronger: symmetry already checked; here assert R0 matched its
     true partner per the honest L majority. *)
  let r0 = List.assoc (Party_id.right 0) report.H.Scenario.outcome.Core.Problem.decisions in
  let l_partner_of_r0 =
    List.find_map
      (fun (p, d) ->
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched q
          when Side.equal (Party_id.side p) Side.Left
               && Party_id.equal q (Party_id.right 0) ->
          Some p
        | _ -> None)
      report.H.Scenario.outcome.Core.Problem.decisions
  in
  match r0, l_partner_of_r0 with
  | Core.Problem.Matched q, Some l -> Alcotest.(check bool) "majority wins" true (Party_id.equal q l)
  | Core.Problem.Matched _, None -> ()
  | (Core.Problem.Nobody | Core.Problem.No_output), _ ->
    Alcotest.fail "R0 should be matched (honest L majority suggests)"

let prop_random_solvable_settings_never_violate =
  (* The global property behind T1: draw a random solvable setting, a
     random profile and a random admissible coalition; the selected
     protocol never violates bSM. *)
  QCheck.Test.make ~name:"random solvable settings never violate bSM" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.make seed in
      let k = 2 + Rng.int rng 3 in
      let rec draw () =
        let s =
          setting ~k
            ~topology:(Rng.choose rng Topology.all)
            ~auth:
              (Rng.choose rng [ Core.Setting.Unauthenticated; Core.Setting.Authenticated ])
            ~tl:(Rng.int rng (k + 1))
            ~tr:(Rng.int rng (k + 1))
        in
        if Core.Solvability.solvable s then s else draw ()
      in
      let s = draw () in
      let profile = SM.Profile.random rng k in
      let byzantine = H.Adversaries.random_coalition rng ~setting:s ~seed ~profile in
      let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed s profile) in
      H.Scenario.ok report)

let test_lying_is_not_a_violation () =
  (* A byzantine party that simply misreports its preferences produces a
     perfectly valid bSM outcome (stability is judged on honest inputs
     only). This is the Roth manipulation in the distributed setting. *)
  let k = 3 in
  let s =
    setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
      ~tl:0 ~tr:1
  in
  let profile, manipulation = SM.Truthfulness.roth_instance () in
  let liar = manipulation.SM.Truthfulness.manipulator in
  let seed = 21 in
  let byzantine =
    [
      ( liar,
        H.Adversaries.lying ~setting:s ~seed ~fake:manipulation.SM.Truthfulness.fake
          ~self:liar );
    ]
  in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed s profile) in
  if not (H.Scenario.ok report) then
    Alcotest.failf "lying run:@ %s" (Format.asprintf "%a" H.Scenario.pp_report report);
  (* And the liar profits: the honest parties matched it to its true
     favorite. *)
  let partner_of_liar =
    List.find_map
      (fun (p, d) ->
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched q when Party_id.equal q liar -> Some p
        | Core.Problem.Matched _ | Core.Problem.Nobody | Core.Problem.No_output -> None)
      report.H.Scenario.outcome.Core.Problem.decisions
  in
  match partner_of_liar with
  | Some p ->
    Alcotest.(check int) "liar got its lying-partner"
      manipulation.SM.Truthfulness.lying_partner (Party_id.index p)
  | None -> Alcotest.fail "liar unmatched"

(* --- distributed Gale-Shapley (fault-free) --------------------------------- *)

let test_distributed_gs_matches_centralized () =
  (* Same matching and the exact same proposal count as the centralized
     parallel algorithm, over random instances. *)
  let rng = Rng.make 71 in
  for _ = 1 to 25 do
    let k = 2 + Rng.int rng 6 in
    let profile = SM.Profile.random rng k in
    let matching, _, proposals = Core.Distributed_gs.run profile in
    let expected, stats = SM.Gale_shapley.run_with_stats profile in
    Alcotest.(check bool) "same matching" true (SM.Matching.equal matching expected);
    Alcotest.(check int) "same proposal count" stats.SM.Gale_shapley.proposals proposals
  done

let test_distributed_gs_worst_case_quadratic () =
  let k = 8 in
  let _, _, proposals = Core.Distributed_gs.run (SM.Profile.worst_case k) in
  Alcotest.(check int) "k(k+1)/2 proposals" (k * (k + 1) / 2) proposals

let test_distributed_gs_similarity_costs_more () =
  (* Correlated (similar) preference lists create contention: everyone
     chases the same partners and plain Gale-Shapley pays more proposals —
     the regime that motivates Khanchandani-Wattenhofer's specialized
     algorithm (their lower bound grows with similarity). Averaged over
     seeds. *)
  let k = 12 in
  let mean_proposals ~swaps =
    let total = ref 0 in
    for seed = 1 to 8 do
      let profile = SM.Profile.similar (Rng.make seed) ~swaps k in
      let _, _, proposals = Core.Distributed_gs.run profile in
      total := !total + proposals
    done;
    !total / 8
  in
  let near_identical = mean_proposals ~swaps:1 in
  let shuffled = mean_proposals ~swaps:60 in
  Alcotest.(check bool)
    (Printf.sprintf "correlated lists cost more (%d vs %d)" near_identical shuffled)
    true
    (near_identical >= shuffled)

let test_distributed_gs_stability () =
  let rng = Rng.make 73 in
  for _ = 1 to 15 do
    let k = 3 + Rng.int rng 5 in
    let profile = SM.Profile.random rng k in
    let matching, _, _ = Core.Distributed_gs.run profile in
    Alcotest.(check bool) "stable" true (SM.Verify.is_stable profile matching)
  done

(* --- edge cases and robustness --------------------------------------------- *)

let test_k1_settings () =
  (* The degenerate single-pair instance must work in every solvable
     setting: with k = 1, k/3 conditions force t = 0 in unauth settings. *)
  let profile = SM.Profile.worst_case 1 in
  List.iter
    (fun (topology, auth, tl, tr) ->
      let s = setting ~k:1 ~topology ~auth ~tl ~tr in
      if Core.Solvability.solvable s then begin
        let report = H.Scenario.run (H.Scenario.make_exn s profile) in
        if not (H.Scenario.ok report) then
          Alcotest.failf "k=1 violation at %s" (Format.asprintf "%a" Core.Setting.pp s);
        List.iter
          (fun (p, d) ->
            match (d : Core.Problem.decision) with
            | Core.Problem.Matched q ->
              Alcotest.(check bool) "matched across" true
                (not (Side.equal (Party_id.side p) (Party_id.side q)))
            | Core.Problem.Nobody | Core.Problem.No_output ->
              Alcotest.fail "k=1 honest pair must match")
          report.H.Scenario.outcome.Core.Problem.decisions
      end)
    [
      Topology.Fully_connected, Core.Setting.Unauthenticated, 0, 0;
      Topology.Bipartite, Core.Setting.Unauthenticated, 0, 0;
      Topology.Fully_connected, Core.Setting.Authenticated, 1, 1;
      Topology.One_sided, Core.Setting.Authenticated, 1, 0;
    ]

let test_k1_pi_bsm_all_r_byzantine () =
  (* k = 1, bipartite auth, t_R = 1: the single L party's only counterpart
     is byzantine; L must terminate without crashing (matching nobody or
     the byzantine party, both fine). *)
  let s =
    setting ~k:1 ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:0
      ~tr:1
  in
  let profile = SM.Profile.worst_case 1 in
  let byzantine = [ Party_id.right 0, H.Adversaries.silent ] in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine s profile) in
  if not (H.Scenario.ok report) then
    Alcotest.failf "k=1 pi_bsm:@ %s" (Format.asprintf "%a" H.Scenario.pp_report report)

let test_scenario_rejects_over_budget () =
  let s =
    setting ~k:2 ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
      ~tl:1 ~tr:0
  in
  let profile = SM.Profile.worst_case 2 in
  let too_many =
    [ Party_id.left 0, H.Adversaries.silent; Party_id.left 1, H.Adversaries.silent ]
  in
  Alcotest.(check bool) "over budget rejected" true
    (Result.is_error (H.Scenario.make ~byzantine:too_many s profile));
  let wrong_side = [ Party_id.right 0, H.Adversaries.silent ] in
  Alcotest.(check bool) "tR budget enforced" true
    (Result.is_error (H.Scenario.make ~byzantine:wrong_side s profile));
  let duplicate =
    [ Party_id.left 0, H.Adversaries.silent; Party_id.left 0, H.Adversaries.noise ~seed:1 ]
  in
  Alcotest.(check bool) "duplicate rejected" true
    (Result.is_error (H.Scenario.make ~byzantine:duplicate s profile))

let test_run_ssm_all_settings_byzantine () =
  (* The sSM wrapper end-to-end in all six settings with byzantine
     coalitions. *)
  let k = 3 in
  let rng = Rng.make 101 in
  List.iter
    (fun s ->
      let favs =
        List.map
          (fun p -> p, Party_id.make (Side.opposite (Party_id.side p)) (Rng.int rng k))
          (Party_id.all ~k)
      in
      let favorites p = List.assoc p favs in
      let profile = Core.Ssm.favorites_to_profile ~k favorites in
      let byzantine = H.Adversaries.random_coalition rng ~setting:s ~seed:7 ~profile in
      let scenario = H.Scenario.make_exn ~byzantine ~seed:7 s profile in
      let report = H.Scenario.run_ssm ~favorites scenario in
      if not (H.Scenario.ok report) then
        Alcotest.failf "ssm violation at %s:@ %s"
          (Format.asprintf "%a" Core.Setting.pp s)
          (Format.asprintf "%a" H.Scenario.pp_report report))
    (solvable_examples ~k)

let test_engine_determinism () =
  (* Two executions of the same scenario are bit-identical: decisions and
     metrics. This is what makes every experiment in this repo
     reproducible. *)
  let k = 4 in
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Unauthenticated ~tl:1
      ~tr:1
  in
  let rng = Rng.make 5 in
  let profile = SM.Profile.random rng k in
  let make_byz () =
    (* Strategies must be rebuilt per run (stateful rngs inside), from the
       same seeds. *)
    [
      Party_id.left 0, H.Adversaries.noise ~seed:11;
      Party_id.right 3, H.Adversaries.noise ~seed:13;
    ]
  in
  let run () = H.Scenario.run (H.Scenario.make_exn ~byzantine:(make_byz ()) ~seed:3 s profile) in
  let a = run () and b = run () in
  Alcotest.(check int) "same messages" a.H.Scenario.metrics.Engine.messages_sent
    b.H.Scenario.metrics.Engine.messages_sent;
  Alcotest.(check int) "same bytes" a.H.Scenario.metrics.Engine.bytes_sent
    b.H.Scenario.metrics.Engine.bytes_sent;
  Alcotest.(check bool) "same decisions" true
    (a.H.Scenario.outcome.Core.Problem.decisions
    = b.H.Scenario.outcome.Core.Problem.decisions)

let test_session_ignores_forged_tags () =
  (* A byzantine party floods a session with unknown and malformed tags;
     the multiplexed BB instances must be unaffected. *)
  let k = 2 in
  let s =
    setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
      ~tl:0 ~tr:1
  in
  let rng = Rng.make 7 in
  let profile = SM.Profile.random rng k in
  let flooder (env : Engine.env) =
    for _ = 1 to 15 do
      List.iter
        (fun p ->
          if not (Party_id.equal p env.Engine.self) then begin
            (* plausible-looking session wrapper with an unknown tag *)
            env.Engine.send p (B.Session.wrap "NO-SUCH-TAG" "payload");
            (* raw garbage *)
            env.Engine.send p "\xff\xfe\x00garbage"
          end)
        (Party_id.all ~k);
      ignore (env.Engine.next_round ())
    done
  in
  let byzantine = [ Party_id.right 1, flooder ] in
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:1 s profile) in
  if not (H.Scenario.ok report) then
    Alcotest.failf "forged tags broke the session:@ %s"
      (Format.asprintf "%a" H.Scenario.pp_report report)

let test_channels_duplicate_forwards_delivered_once () =
  (* A byzantine relay forwards the same signed request twice; replay
     suppression must deliver it exactly once. *)
  let pki = Crypto.Pki.setup ~k:2 ~seed:21 in
  let received = ref [] in
  let duplicating_relay (env : Engine.env) =
    let inbox = env.Engine.next_round () in
    (* forward each request twice in the same round *)
    List.iter (Core.Channels.forward_duty env ~topology:Topology.Bipartite) inbox;
    List.iter (Core.Channels.forward_duty env ~topology:Topology.Bipartite) inbox;
    ignore (env.Engine.next_round ())
  in
  let programs p (env : Engine.env) =
    if Side.equal (Party_id.side p) Side.Right then
      if Party_id.equal p (Party_id.right 0) then duplicating_relay env
      else B.Strategies.silent env
    else begin
      let net =
        Core.Channels.virtual_net env ~topology:Topology.Bipartite
          ~auth:(signed_auth pki p)
      in
      if Party_id.equal p (Party_id.left 0) then begin
        net.Bsm_runtime.Net.send (Party_id.left 1) "once";
        ignore (net.Bsm_runtime.Net.sync ())
      end
      else received := net.Bsm_runtime.Net.sync ()
    end
  in
  let cfg = Engine.config ~k:2 ~link:(Engine.Of_topology Topology.Bipartite) () in
  ignore (Engine.run cfg ~programs:(fun p env -> programs p env));
  Alcotest.(check int) "exactly one delivery" 1 (List.length !received)

(* --- sSM ------------------------------------------------------------------ *)

let test_ssm_mutual_favorites_matched () =
  let k = 3 in
  let s =
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Unauthenticated ~tl:0
      ~tr:1
  in
  (* L0 and R1 are mutual favorites; R2 is byzantine. *)
  let favorites p =
    match Party_id.side p, Party_id.index p with
    | Side.Left, 0 -> Party_id.right 1
    | Side.Left, i -> Party_id.right ((i + 1) mod k)
    | Side.Right, 1 -> Party_id.left 0
    | Side.Right, i -> Party_id.left ((i + 2) mod k)
  in
  let profile = Core.Ssm.favorites_to_profile ~k favorites in
  let byzantine = [ Party_id.right 2, H.Adversaries.noise ~seed:3 ] in
  let scenario = H.Scenario.make_exn ~byzantine ~seed:17 s profile in
  let report = H.Scenario.run_ssm ~favorites scenario in
  if not (H.Scenario.ok report) then
    Alcotest.failf "sSM run:@ %s" (Format.asprintf "%a" H.Scenario.pp_report report);
  let l0 =
    List.assoc (Party_id.left 0) report.H.Scenario.outcome.Core.Problem.decisions
  in
  match l0 with
  | Core.Problem.Matched q ->
    Alcotest.(check bool) "L0 matched its mutual favorite" true
      (Party_id.equal q (Party_id.right 1))
  | Core.Problem.Nobody | Core.Problem.No_output ->
    Alcotest.fail "L0 must match its mutual favorite"

let () =
  Alcotest.run "core"
    [
      ( "solvability",
        [
          Alcotest.test_case "spot checks per theorem" `Quick test_solvability_spot_checks;
          Alcotest.test_case "monotonicity" `Quick test_solvability_monotone;
          Alcotest.test_case "plan iff solvable" `Quick test_plan_exists_iff_solvable;
        ] );
      ( "channels",
        [
          Alcotest.test_case "majority proxy delivers" `Quick test_majority_proxy_delivers;
          Alcotest.test_case "majority proxy, byzantine minority" `Quick
            test_majority_proxy_survives_minority_byz;
          Alcotest.test_case "majority proxy blocks junk" `Quick
            test_majority_proxy_blocks_forgery;
          Alcotest.test_case "signed proxy, single honest relay" `Quick
            test_signed_proxy_single_honest_relay;
          Alcotest.test_case "signed proxy drops late forward" `Quick
            test_signed_proxy_drops_late_forward;
          QCheck_alcotest.to_alcotest prop_channels_reliable_links;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "honest runs, all six settings" `Quick
            test_honest_runs_all_settings;
          Alcotest.test_case "round complexity matches plan" `Quick
            test_round_complexity_matches_plan;
          Alcotest.test_case "message model exact" `Quick test_predicted_messages_exact;
          Alcotest.test_case "byzantine sweep k=3" `Slow test_byzantine_runs_all_settings;
          Alcotest.test_case "byzantine sweep k=4" `Slow test_byzantine_runs_k4;
          Alcotest.test_case "byzantine sweep k=6" `Slow test_byzantine_runs_k6;
        ] );
      ( "pi-bsm",
        [
          Alcotest.test_case "fully byzantine R side" `Quick
            test_pi_bsm_fully_byzantine_side;
          Alcotest.test_case "selective forwarding (partial omissions)" `Quick
            test_pi_bsm_selective_forwarding;
          Alcotest.test_case "one honest relay" `Quick test_pi_bsm_one_honest_relay;
          Alcotest.test_case "mirrored computing side" `Quick test_pi_bsm_mirrored_side;
          Alcotest.test_case "one-sided, tR=k" `Quick
            test_one_sided_auth_fully_byzantine_r;
        ] );
      ( "manipulation",
        [ Alcotest.test_case "lying is not a violation" `Quick test_lying_is_not_a_violation ]
      );
      ( "properties",
        [
          Alcotest.test_case "bogus suggestions outvoted" `Quick
            test_pi_bsm_bogus_suggestions;
          QCheck_alcotest.to_alcotest prop_random_solvable_settings_never_violate;
        ] );
      ( "ssm",
        [
          Alcotest.test_case "mutual favorites matched" `Quick
            test_ssm_mutual_favorites_matched;
          Alcotest.test_case "all six settings, byzantine" `Quick
            test_run_ssm_all_settings_byzantine;
        ] );
      ( "distributed-gs",
        [
          Alcotest.test_case "matches centralized run exactly" `Quick
            test_distributed_gs_matches_centralized;
          Alcotest.test_case "worst case is quadratic" `Quick
            test_distributed_gs_worst_case_quadratic;
          Alcotest.test_case "correlated lists cost more proposals" `Quick
            test_distributed_gs_similarity_costs_more;
          Alcotest.test_case "always stable" `Quick test_distributed_gs_stability;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "k=1 settings" `Quick test_k1_settings;
          Alcotest.test_case "k=1 Pi_bsm, byzantine counterpart" `Quick
            test_k1_pi_bsm_all_r_byzantine;
          Alcotest.test_case "scenario budget validation" `Quick
            test_scenario_rejects_over_budget;
          Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
          Alcotest.test_case "session ignores forged tags" `Quick
            test_session_ignores_forged_tags;
          Alcotest.test_case "duplicate forwards delivered once" `Quick
            test_channels_duplicate_forwards_delivered_once;
        ] );
    ]
