(* Tests for the simulated signature scheme: correctness, binding to
   signer and message, determinism, and the Signed wrapper. *)

open Bsm_prelude
module Crypto = Bsm_crypto.Crypto
module Wire = Bsm_wire.Wire

let pki = Crypto.Pki.setup ~k:3 ~seed:1
let verifier = Crypto.Pki.verifier pki

let test_sign_verify () =
  let p = Party_id.left 1 in
  let signer = Crypto.Pki.signer pki p in
  let signature = Crypto.Signer.sign signer "message" in
  Alcotest.(check bool) "verifies" true
    (Crypto.Verifier.verify verifier ~signer:p ~msg:"message" signature)

let test_signature_binds_message () =
  let p = Party_id.left 0 in
  let signature = Crypto.Signer.sign (Crypto.Pki.signer pki p) "message" in
  Alcotest.(check bool) "other message fails" false
    (Crypto.Verifier.verify verifier ~signer:p ~msg:"other" signature)

let test_signature_binds_signer () =
  let signature = Crypto.Signer.sign (Crypto.Pki.signer pki (Party_id.left 0)) "m" in
  Alcotest.(check bool) "other signer fails" false
    (Crypto.Verifier.verify verifier ~signer:(Party_id.left 1) ~msg:"m" signature)

let test_unknown_signer_rejected () =
  let signature = Crypto.Signer.sign (Crypto.Pki.signer pki (Party_id.left 0)) "m" in
  Alcotest.(check bool) "outside roster" false
    (Crypto.Verifier.verify verifier ~signer:(Party_id.left 99) ~msg:"m" signature)

let test_cross_pki_rejected () =
  (* A signature from a different trusted setup must not verify. *)
  let other = Crypto.Pki.setup ~k:3 ~seed:2 in
  let p = Party_id.right 2 in
  let signature = Crypto.Signer.sign (Crypto.Pki.signer other p) "m" in
  Alcotest.(check bool) "cross-setup" false
    (Crypto.Verifier.verify verifier ~signer:p ~msg:"m" signature)

let test_deterministic_signing () =
  let p = Party_id.right 0 in
  let s1 = Crypto.Signer.sign (Crypto.Pki.signer pki p) "m" in
  let s2 = Crypto.Signer.sign (Crypto.Pki.signer pki p) "m" in
  Alcotest.(check bool) "same signature" true (Crypto.Signature.equal s1 s2)

let test_setup_deterministic_in_seed () =
  let a = Crypto.Pki.setup ~k:2 ~seed:5 and b = Crypto.Pki.setup ~k:2 ~seed:5 in
  let p = Party_id.left 1 in
  Alcotest.(check bool) "same keys" true
    (Crypto.Signature.equal
       (Crypto.Signer.sign (Crypto.Pki.signer a p) "m")
       (Crypto.Signer.sign (Crypto.Pki.signer b p) "m"))

let test_signer_outside_setup_rejected () =
  match Crypto.Pki.signer pki (Party_id.left 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "issued a signer outside the setup"

let test_signed_wrapper () =
  let p = Party_id.left 2 in
  let signer = Crypto.Pki.signer pki p in
  let signed = Crypto.Signed.make signer Wire.string "payload" in
  Alcotest.(check bool) "valid" true (Crypto.Signed.valid verifier Wire.string signed);
  (* Tampering with the value invalidates it. *)
  let tampered = { signed with Crypto.Signed.value = "other" } in
  Alcotest.(check bool) "tampered" false
    (Crypto.Signed.valid verifier Wire.string tampered);
  (* Claiming a different signer invalidates it. *)
  let reattributed = { signed with Crypto.Signed.signer = Party_id.left 0 } in
  Alcotest.(check bool) "reattributed" false
    (Crypto.Signed.valid verifier Wire.string reattributed)

let test_signed_codec_roundtrip () =
  let p = Party_id.right 1 in
  let signed = Crypto.Signed.make (Crypto.Pki.signer pki p) Wire.string "v" in
  let codec = Crypto.Signed.codec Wire.string in
  match Wire.decode codec (Wire.encode codec signed) with
  | Ok signed' ->
    Alcotest.(check bool) "still valid" true
      (Crypto.Signed.valid verifier Wire.string signed')
  | Error e -> Alcotest.fail e

let test_signature_byte_length () =
  let signature = Crypto.Signer.sign (Crypto.Pki.signer pki (Party_id.left 0)) "m" in
  let encoded = Wire.encode Crypto.Signature.codec signature in
  (* length-prefixed digest: 1 length byte + 16 digest bytes *)
  Alcotest.(check int) "16-byte digest" (Crypto.Signature.byte_length + 1)
    (String.length encoded)

let () =
  Alcotest.run "crypto"
    [
      ( "signatures",
        [
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "binds message" `Quick test_signature_binds_message;
          Alcotest.test_case "binds signer" `Quick test_signature_binds_signer;
          Alcotest.test_case "unknown signer" `Quick test_unknown_signer_rejected;
          Alcotest.test_case "cross-PKI rejected" `Quick test_cross_pki_rejected;
          Alcotest.test_case "deterministic" `Quick test_deterministic_signing;
          Alcotest.test_case "setup deterministic in seed" `Quick
            test_setup_deterministic_in_seed;
          Alcotest.test_case "signer outside setup" `Quick
            test_signer_outside_setup_rejected;
        ] );
      ( "signed-values",
        [
          Alcotest.test_case "wrapper validity" `Quick test_signed_wrapper;
          Alcotest.test_case "codec roundtrip" `Quick test_signed_codec_roundtrip;
          Alcotest.test_case "signature byte length" `Quick test_signature_byte_length;
        ] );
    ]
