(* Tests for the harness layer: each adversary behaves as documented,
   scenarios validate their inputs, and reports render faithfully. *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology

let setting ~k ~tl ~tr =
  Core.Setting.make_exn ~k ~topology:Topology.Fully_connected
    ~auth:Core.Setting.Authenticated ~t_left:tl ~t_right:tr

let run ~byzantine ~seed s profile =
  H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed s profile)

(* --- individual adversaries ---------------------------------------------- *)

let test_silent_party_still_matched_by_others () =
  (* A silent byzantine party contributes the default list; honest parties
     still compute a full matching (its "partner" slot is filled). *)
  let k = 3 in
  let s = setting ~k ~tl:1 ~tr:0 in
  let profile = SM.Profile.random (Rng.make 1) k in
  let report = run ~byzantine:[ Party_id.left 0, H.Adversaries.silent ] ~seed:1 s profile in
  Alcotest.(check bool) "ok" true (H.Scenario.ok report);
  (* every honest right party is matched with someone *)
  List.iter
    (fun (p, d) ->
      if Side.equal (Party_id.side p) Side.Right then
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched _ -> ()
        | Core.Problem.Nobody | Core.Problem.No_output ->
          Alcotest.failf "%s unmatched" (Party_id.to_string p))
    report.H.Scenario.outcome.Core.Problem.decisions

let test_crash_adversary_partial_participation () =
  (* Crashing after the first round: the party's initial broadcast may be
     in flight but it stops responding; the run still satisfies bSM. *)
  let k = 3 in
  let s = setting ~k ~tl:0 ~tr:1 in
  let profile = SM.Profile.random (Rng.make 2) k in
  let crasher = Party_id.right 2 in
  let byzantine =
    [
      ( crasher,
        H.Adversaries.crash ~setting:s ~seed:9 ~input:(SM.Profile.prefs profile crasher)
          ~self:crasher ~round:1 );
    ]
  in
  let report = run ~byzantine ~seed:9 s profile in
  Alcotest.(check bool) "ok" true (H.Scenario.ok report)

let test_crash_round_zero_equals_silent () =
  (* crash ~round:0 must send nothing at all — same decisions as silent,
     given everything else equal. *)
  let k = 3 in
  let s = setting ~k ~tl:1 ~tr:0 in
  let profile = SM.Profile.random (Rng.make 3) k in
  let target = Party_id.left 1 in
  let with_strategy strategy =
    (run ~byzantine:[ target, strategy ] ~seed:4 s profile).H.Scenario.outcome
      .Core.Problem.decisions
  in
  let crashed =
    with_strategy
      (H.Adversaries.crash ~setting:s ~seed:4 ~input:(SM.Profile.prefs profile target)
         ~self:target ~round:0)
  in
  let silent = with_strategy H.Adversaries.silent in
  Alcotest.(check bool) "same decisions" true (crashed = silent)

let test_garble_after_keeps_early_rounds () =
  (* Garbling from a late round only: by then Dolev-Strong already
     delivered the list, so honest parties use the true preferences —
     outcome equals the fully-honest run. *)
  let k = 3 in
  let s = setting ~k ~tl:0 ~tr:1 in
  let profile = SM.Profile.random (Rng.make 5) k in
  let target = Party_id.right 0 in
  let byzantine =
    [
      ( target,
        H.Adversaries.garble_after ~setting:s ~seed:6
          ~input:(SM.Profile.prefs profile target) ~self:target ~from_round:50 );
    ]
  in
  let garbled = run ~byzantine ~seed:6 s profile in
  let honest = run ~byzantine:[] ~seed:6 s profile in
  Alcotest.(check bool) "ok" true (H.Scenario.ok garbled);
  let decisions_of (r : H.Scenario.report) =
    List.filter
      (fun (p, _) -> not (Party_id.equal p target))
      r.H.Scenario.outcome.Core.Problem.decisions
  in
  Alcotest.(check bool) "same matching as honest run" true
    (decisions_of garbled = decisions_of honest)

let test_random_coalition_respects_budget () =
  let k = 4 in
  let s = setting ~k ~tl:2 ~tr:3 in
  let rng = Rng.make 7 in
  let profile = SM.Profile.random rng k in
  for _ = 1 to 10 do
    let coalition = H.Adversaries.random_coalition rng ~setting:s ~seed:1 ~profile in
    let members = Party_set.of_list (List.map fst coalition) in
    Alcotest.(check int) "exactly tL lefts" 2 (Party_set.count_side Side.Left members);
    Alcotest.(check int) "exactly tR rights" 3 (Party_set.count_side Side.Right members);
    Alcotest.(check int) "no duplicates" 5 (Party_set.cardinal members)
  done

(* --- report rendering ------------------------------------------------------ *)

let test_report_rendering () =
  let k = 2 in
  let s = setting ~k ~tl:0 ~tr:0 in
  let profile = SM.Profile.worst_case k in
  let report = run ~byzantine:[] ~seed:1 s profile in
  let text = Format.asprintf "%a" H.Scenario.pp_report report in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions plan" true (contains "Dolev-Strong");
  Alcotest.(check bool) "mentions success" true (contains "no violations");
  Alcotest.(check bool) "lists a decision" true (contains "L0:")

let test_violations_render () =
  (* Fabricate an outcome with every violation type and check the
     pretty-printers name them. *)
  let profile = SM.Profile.worst_case 2 in
  let outcome =
    {
      Core.Problem.profile;
      byzantine = Party_set.empty;
      decisions =
        [
          Party_id.left 0, Core.Problem.No_output;
          Party_id.left 1, Core.Problem.Matched (Party_id.right 0);
          Party_id.right 0, Core.Problem.Matched (Party_id.left 0);
          Party_id.right 1, Core.Problem.Nobody;
        ];
    }
  in
  let violations = Core.Problem.check outcome in
  Alcotest.(check bool) "several violations" true (List.length violations >= 2);
  List.iter
    (fun v ->
      let text = Format.asprintf "%a" Core.Problem.pp_violation v in
      Alcotest.(check bool) "non-empty rendering" true (String.length text > 0))
    violations

let () =
  Alcotest.run "harness"
    [
      ( "adversaries",
        [
          Alcotest.test_case "silent party still matched" `Quick
            test_silent_party_still_matched_by_others;
          Alcotest.test_case "crash mid-protocol" `Quick
            test_crash_adversary_partial_participation;
          Alcotest.test_case "crash at round 0 = silent" `Quick
            test_crash_round_zero_equals_silent;
          Alcotest.test_case "late garble is harmless" `Quick
            test_garble_after_keeps_early_rounds;
          Alcotest.test_case "random coalition budget" `Quick
            test_random_coalition_respects_budget;
        ] );
      ( "reports",
        [
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
          Alcotest.test_case "violations render" `Quick test_violations_render;
        ] );
    ]
