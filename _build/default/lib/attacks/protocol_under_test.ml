open Bsm_prelude
module Core = Bsm_core
module Crypto = Bsm_crypto.Crypto
module Wire = Bsm_wire.Wire

type t = {
  name : string;
  rounds : int;
  program :
    topology:Bsm_topology.Topology.t ->
    k:int ->
    favorite:Party_id.t ->
    self:Party_id.t ->
    Bsm_runtime.Engine.program;
}

let naive =
  {
    name = "naive flood-and-compute";
    rounds = Naive.rounds;
    program = (fun ~topology ~k ~favorite ~self -> Naive.program ~topology ~k ~favorite ~self);
  }

let thresholded ~setting =
  {
    name =
      Format.asprintf "BB pipeline forced at %a (outside its guarantees)"
        Core.Setting.pp setting;
    rounds = Core.Bb_based.engine_rounds setting;
    program =
      (fun ~topology:_ ~k ~favorite ~self ->
        let pki = Crypto.Pki.setup ~k ~seed:0 in
        let input = Core.Ssm.prefs_of_favorite ~k favorite in
        Core.Bb_based.program setting ~pki ~input ~self);
  }

let decode_decision payload =
  match Wire.decode Core.Problem.decision_codec payload with
  | Ok d -> d
  | Error _ -> None
