(** Result of running one impossibility construction. *)

open Bsm_prelude

type t = {
  attack : string;  (** which construction (Fig. 2 / 3 / 4) *)
  protocol : string;  (** protocol under test *)
  outputs : (string * Party_id.t option) list;
      (** observed decision per node of interest, labeled in the small
          system's vocabulary ([None] = matched nobody / no output) *)
  violation : string option;
      (** [Some explanation] when the construction produced the
          non-competition violation the lemma predicts *)
}

val pp : Format.formatter -> t -> unit
