(** A natural but byzantine-oblivious sSM protocol — the baseline the
    attack constructions defeat.

    Flood-and-compute: every party announces its favorite to its
    neighbors, gossips what it heard for one more round, assembles a full
    favorite table (majority vote on gossip, deterministic default for
    silence), and locally runs Gale–Shapley on the favorite-first profile.
    With no byzantine parties this solves sSM in any of the three
    topologies; Lemmas 5, 7 and 13 show — and {!Duplication}, {!Cycle},
    {!Split} demonstrate executably — that nothing of this shape (nor any
    other protocol) can survive byzantine parties beyond the thresholds. *)

open Bsm_prelude
module SM := Bsm_stable_matching

(** Total rounds the protocol runs (announce + gossip + decide). *)
val rounds : int

val program :
  topology:Bsm_topology.Topology.t ->
  k:int ->
  favorite:Party_id.t ->
  self:Party_id.t ->
  Bsm_runtime.Engine.program

(** A byzantine strategy speaking this protocol's wire language: announces
    a {e different} favorite to every neighbor (and gossips equally
    contradictory claims). Splits the honest parties' views — fatal for
    the naive protocol, routine equivocation for the byzantine-tolerant
    ones. *)
val equivocating_announcer :
  topology:Bsm_topology.Topology.t -> k:int -> Bsm_runtime.Engine.program
