(** The split-brain attack of Lemma 13 / Figure 4.

    Setting: one-sided, authenticated or not, k = 3, t_L = 1, t_R = 3 —
    the frontier of Theorem 7 where [t_R = k] and [t_L ≥ k/3]. Parties
    a, c (left) are honest with favorite v; b and the whole right side
    u, v, w are byzantine. Because every channel touching the left side
    goes through a byzantine endpoint, the coalition can split the world
    in two: each byzantine party simulates two instances of itself, group
    1 conversing only with a (v₁'s favorite is a), group 2 only with c
    (v₂'s favorite is c). To a, the run is indistinguishable from an
    all-honest run where c crashed — simplified stability forces a to
    match v; symmetrically c matches v. Non-competition is violated
    between the two honest parties.

    Unlike Figs. 2–3 this is not a covering system: it runs on the {e
    real} 6-party one-sided network, with the byzantine fibers using
    {!Simulate} to host their two instances. *)

val run : Protocol_under_test.t -> Report.t
