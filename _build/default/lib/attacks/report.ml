open Bsm_prelude

type t = {
  attack : string;
  protocol : string;
  outputs : (string * Party_id.t option) list;
  violation : string option;
}

let pp ppf t =
  Format.fprintf ppf "@[<v>%s against %s:@," t.attack t.protocol;
  List.iter
    (fun (node, out) ->
      match out with
      | Some p -> Format.fprintf ppf "  %s -> %a@," node Party_id.pp p
      | None -> Format.fprintf ppf "  %s -> nobody@," node)
    t.outputs;
  (match t.violation with
  | Some why -> Format.fprintf ppf "  VIOLATION: %s" why
  | None -> Format.fprintf ppf "  no violation observed");
  Format.fprintf ppf "@]"
