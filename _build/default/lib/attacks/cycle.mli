(** The cycle attack of Lemma 7 / Figure 3.

    Setting: bipartite (hence also one-sided), unauthenticated, n = 4
    (k = 2), t_L = 0, t_R = 1 — the frontier where [t_R < k/2] fails. The
    bipartite network on a, b (left) and c, d (right) is the 4-cycle
    a–c–b–d–a; duplicating it yields the 8-cycle
    a₁–c₁–b₁–d₁–a₂–c₂–b₂–d₂–a₁, every node of which sees a locally-correct
    4-party bipartite network. Inputs make a₁/c₁ and b₂/c₂ mutual
    favorites.

    Projections: with d byzantine, a₁ and c₁ must match (simplified
    stability); symmetrically b₂ and c₂ must match; with c byzantine, the
    two honest parties a and b then both decide c — non-competition
    violated. *)

val run : Protocol_under_test.t -> Report.t
