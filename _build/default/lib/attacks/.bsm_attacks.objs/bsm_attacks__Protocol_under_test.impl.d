lib/attacks/protocol_under_test.ml: Bsm_core Bsm_crypto Bsm_prelude Bsm_runtime Bsm_topology Bsm_wire Format Naive Party_id
