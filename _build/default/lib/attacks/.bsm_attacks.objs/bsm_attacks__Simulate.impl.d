lib/attacks/simulate.ml: Bsm_prelude Bsm_runtime Effect Hashtbl List Party_id String
