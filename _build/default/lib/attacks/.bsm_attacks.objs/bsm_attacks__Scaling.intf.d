lib/attacks/scaling.mli: Protocol_under_test
