lib/attacks/duplication.ml: Bsm_prelude Bsm_runtime Bsm_topology Hashtbl List Option Party_id Protocol_under_test Report Side Simulate
