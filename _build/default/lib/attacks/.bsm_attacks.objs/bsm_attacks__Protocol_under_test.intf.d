lib/attacks/protocol_under_test.mli: Bsm_core Bsm_prelude Bsm_runtime Bsm_topology Party_id
