lib/attacks/simulate.mli: Bsm_prelude Bsm_runtime Party_id
