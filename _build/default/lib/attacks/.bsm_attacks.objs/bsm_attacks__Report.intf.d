lib/attacks/report.mli: Bsm_prelude Format Party_id
