lib/attacks/naive.ml: Bsm_core Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Bsm_wire List Party_id Side Util
