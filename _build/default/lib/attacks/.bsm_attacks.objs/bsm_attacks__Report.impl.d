lib/attacks/report.ml: Bsm_prelude Format List Party_id
