lib/attacks/cycle.mli: Protocol_under_test Report
