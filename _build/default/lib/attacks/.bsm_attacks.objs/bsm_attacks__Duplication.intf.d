lib/attacks/duplication.mli: Protocol_under_test Report
