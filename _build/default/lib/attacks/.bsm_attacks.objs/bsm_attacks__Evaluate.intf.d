lib/attacks/evaluate.mli: Bsm_core Bsm_prelude Bsm_runtime Bsm_topology Party_id Protocol_under_test Rng
