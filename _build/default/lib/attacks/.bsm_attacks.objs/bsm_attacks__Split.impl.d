lib/attacks/split.ml: Bsm_prelude Bsm_runtime Bsm_topology Bsm_wire Party_id Protocol_under_test Report Side Simulate
