lib/attacks/naive.mli: Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Party_id
