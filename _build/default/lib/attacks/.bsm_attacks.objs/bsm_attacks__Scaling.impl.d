lib/attacks/scaling.ml: Bsm_core Bsm_prelude Bsm_runtime Bsm_topology Bsm_wire Fun Hashtbl List Party_id Printf Protocol_under_test Side Simulate Util
