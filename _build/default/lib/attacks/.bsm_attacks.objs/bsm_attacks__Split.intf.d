lib/attacks/split.mli: Protocol_under_test Report
