lib/attacks/evaluate.ml: Bsm_core Bsm_prelude Bsm_runtime List Party_id Party_set Protocol_under_test Rng Side
