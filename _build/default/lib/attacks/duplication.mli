(** The duplication attack of Lemma 5 / Figure 2.

    Setting: fully-connected, unauthenticated, n = 6 (k = 3),
    t_L = t_R = 1 — the frontier where both [t_L < k/3] and [t_R < k/3]
    fail. The six parties a, b, c (left) and u, v, w (right) are
    duplicated into a 12-node covering system in which every node sees a
    locally-correct fully-connected 6-party network; the pairs
    {a, u} × {c, w} are wired across the two copies, all other pairs stay
    within their copy. Inputs make c₁/v₁ and a₂/v₂ mutual favorites.

    Three projections of this single execution are each indistinguishable
    from an admissible run of the protocol (Figs. 2 ii–iv); correctness in
    the first two forces a₂ and c₁ to decide v, which the third projection
    turns into a non-competition violation between two honest parties.

    [run] executes the covering system with honest protocol code at every
    node and reports whether the predicted violation materialized. *)

val run : Protocol_under_test.t -> Report.t
