(** The protocol interface the attack constructions exercise: an sSM
    protocol for a small system, given each party's favorite. *)

open Bsm_prelude

type t = {
  name : string;
  rounds : int;  (** engine rounds an honest execution takes *)
  program :
    topology:Bsm_topology.Topology.t ->
    k:int ->
    favorite:Party_id.t ->
    self:Party_id.t ->
    Bsm_runtime.Engine.program;
}

(** The byzantine-oblivious baseline ({!Naive}). *)
val naive : t

(** Our actual protocol stack, run {e outside} its soundness conditions
    (the setting's thresholds are taken at the attack's parameters, where
    the paper proves no protocol can be correct). Useful to observe how a
    real BFT protocol degrades; the impossibility argument guarantees that
    {e some} admissible execution breaks it, not necessarily the covering
    one. *)
val thresholded : setting:Bsm_core.Setting.t -> t

(** [decode_decision payload] — interpret a protocol output. *)
val decode_decision : string -> Party_id.t option
