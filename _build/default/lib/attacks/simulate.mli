(** Running simulated honest parties inside one physical fiber.

    Every impossibility proof in the paper (Lemmas 5, 7, 13; the technique
    of Fischer–Lynch–Merritt) has byzantine parties, or covering-system
    nodes, internally execute instances of the {e honest} protocol code
    with rewired identities. This module makes that literal: it runs one
    or more honest programs as nested effect-handled coroutines inside a
    single engine fiber, with caller-supplied routing between the
    simulated world and the physical network.

    The simulated instances advance one round per physical round, in
    lockstep with the outer network. *)

open Bsm_prelude
module Engine := Bsm_runtime.Engine

type instance = {
  tag : string;  (** routing key, unique within one [run] *)
  simulated_id : Party_id.t;  (** identity in the simulated (small) system *)
  simulated_k : int;  (** [k] of the simulated system *)
  program : Engine.program;  (** honest code *)
}

type outbound = {
  out_tag : string;
  out_dst : Party_id.t;  (** simulated destination *)
  out_body : string;
}

type inbound = {
  in_tag : string;
  in_src : Party_id.t;  (** simulated source presented to the instance *)
  in_body : string;
}

(** Where a simulated send goes: dropped, onto the physical network, or
    delivered locally to a sibling instance in the same fiber (with the
    same next-round latency as a real channel — Lemma 3's group simulation
    needs intra-group channels). *)
type routed =
  | Drop
  | Physical of Party_id.t * string
  | Local of inbound

(** [run env ~instances ~rounds ~route_out ~route_in ~on_output] drives all
    instances for [rounds] physical rounds.

    [route_out o] translates a simulated send into a physical one ([None]
    drops it — e.g. messages across the cut of a split-brain attack).
    [route_in e] translates a physical envelope into a simulated delivery.
    [on_output tag payload] observes an instance's protocol output. An
    instance that raises is considered stopped (its exception is
    swallowed: simulated parties crashing is adversary-internal). *)
val run :
  Engine.env ->
  instances:instance list ->
  rounds:int ->
  route_out:(outbound -> routed) ->
  route_in:(Engine.envelope -> inbound option) ->
  on_output:(string -> string -> unit) ->
  unit
