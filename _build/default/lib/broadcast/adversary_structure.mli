(** Adversary structures (Appendix A.3).

    A (subset-closed) adversary structure lists the party sets the
    adversary may corrupt. The paper's setting is the product of two
    thresholds — at most [t_L] corruptions in [L] and [t_R] in [R] —
    written [Z*]; classical protocols use a single threshold; the explicit
    form supports arbitrary structures as in Fitzi–Maurer.

    The predicate that drives the generalized phase-king protocol is
    [possibly_corrupt]: a set that is possibly corrupt gives no guarantee
    of containing an honest party, while a set that is not possibly
    corrupt must contain at least one honest party in every admissible
    execution. *)

open Bsm_prelude

type t =
  | Threshold of int  (** any set of at most [t] participants *)
  | Two_sided of {
      t_left : int;
      t_right : int;
    }  (** the paper's [Z*]: componentwise thresholds *)
  | Explicit of Party_set.t list
      (** the maximal corruptible sets; closed downward implicitly *)

val pp : Format.formatter -> t -> unit

(** [possibly_corrupt t s] — may the adversary corrupt (a superset of)
    exactly the parties in [s]? *)
val possibly_corrupt : t -> Party_set.t -> bool

(** [admissible t s] is [possibly_corrupt t s] — alias used when [s] is an
    actual corruption set being validated. *)
val admissible : t -> Party_set.t -> bool

(** [q3 t ~participants] — the Q3 condition of Theorem 10: no three
    corruptible sets cover [participants]. For [Two_sided] over the full
    roster this is exactly [t_L < k/3 ∨ t_R < k/3] (Lemma 4). The
    [Explicit] case checks all triples of maximal sets. *)
val q3 : t -> participants:Party_id.t list -> bool

(** [q2 t ~participants] — no two corruptible sets cover [participants]
    (used by sanity checks for broadcast-with-honest-majority style
    arguments). *)
val q2 : t -> participants:Party_id.t list -> bool

(** [king_sequence t ~participants] is a short prefix-deterministic list of
    participants that is {e not} possibly corrupt — hence contains an
    honest king. For [Threshold t] this is [t+1] parties; for [Two_sided]
    it is [min(t_L, t_R)+1] parties taken from the side with the smaller
    threshold (falling back to the other side when that side has too few
    participants). Raises [Invalid_argument] if every subset of
    [participants] is corruptible. *)
val king_sequence : t -> participants:Party_id.t list -> Party_id.t list
