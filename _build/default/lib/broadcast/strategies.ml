open Bsm_prelude
module Engine = Bsm_runtime.Engine

let silent (_ : Engine.env) = ()

let crash_at ~round ~honest (env : Engine.env) =
  let crashed () = env.round () >= round in
  let env' =
    {
      env with
      send = (fun dst msg -> if not (crashed ()) then env.send dst msg);
      output = (fun out -> if not (crashed ()) then env.output out);
    }
  in
  honest env'

let random_bytes rng len = String.init len (fun _ -> Char.chr (Rng.int rng 256))

let noise ~seed ~rounds ~burst ~targets (env : Engine.env) =
  let rng = Rng.make (seed lxor Party_id.hash env.self) in
  let blast () =
    for _ = 1 to burst do
      let dst = Rng.choose rng targets in
      let len = 1 + Rng.int rng 64 in
      if not (Party_id.equal dst env.self) then env.send dst (random_bytes rng len)
    done
  in
  blast ();
  for _ = 1 to rounds do
    ignore (env.next_round ());
    blast ()
  done

let garble ~seed ~honest (env : Engine.env) =
  let rng = Rng.make (seed lxor Party_id.hash env.self) in
  let env' =
    {
      env with
      send = (fun dst msg -> env.send dst (random_bytes rng (String.length msg)));
    }
  in
  honest env'

let equivocate ~per_dest (env : Engine.env) =
  List.iter
    (fun (dst, msg) -> if not (Party_id.equal dst env.self) then env.send dst msg)
    per_dest
