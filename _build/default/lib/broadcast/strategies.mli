(** Reusable byzantine strategies.

    Byzantine parties in this repository are ordinary fibers running
    arbitrary programs; these are the generic ones shared by tests,
    benchmarks and the harness. Protocol-specific attacks (equivocating
    Dolev–Strong senders, the covering-system adversaries of Figures 2–4)
    live next to the protocols they target. *)

open Bsm_prelude
module Engine := Bsm_runtime.Engine

(** Sends nothing, ever — the paper's "byzantine parties may choose not to
    participate". *)
val silent : Engine.program

(** Behaves exactly like [honest] until the start of round [round], then
    stops sending and producing output (a crash fault). *)
val crash_at : round:int -> honest:Engine.program -> Engine.program

(** Sends random byte strings to random targets every round, [burst]
    messages per round, for [rounds] rounds. Exercises every decoder's
    malformed-input paths. *)
val noise :
  seed:int -> rounds:int -> burst:int -> targets:Party_id.t list -> Engine.program

(** Runs [honest] but with every outgoing payload replaced by a fresh
    random byte string of the same length (shape-preserving garbling). *)
val garble : seed:int -> honest:Engine.program -> Engine.program

(** [equivocate_value ~codec ~per_dest] sends, in round 0 only, a
    personalized value to each destination (classic equivocation). *)
val equivocate :
  per_dest:(Party_id.t * string) list -> Engine.program
