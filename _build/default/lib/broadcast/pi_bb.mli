(** Π_BB (Appendix A.6): byzantine broadcast by reduction to Π_BA.

    The sender disseminates its value; after one round every party joins
    Π_BA with the value received — or with [default] when nothing (valid)
    arrived. Achieves BB without omissions, termination and weak agreement
    with omissions. Virtual rounds: [Δ_BB = 1 + Δ_BA]. *)

open Bsm_prelude

val rounds : Phase_king.params -> int

(** [make p ~self ~sender ~input ~default] — [input] is only consulted when
    [self = sender]. *)
val make :
  Phase_king.params ->
  self:Party_id.t ->
  sender:Party_id.t ->
  input:string ->
  default:string ->
  string option Machine.t
