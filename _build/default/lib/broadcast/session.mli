(** Multiplexing several protocol instances over one net.

    The paper's protocols run many broadcast/agreement instances in
    parallel (one [Π_BB] per sender, one [Π_BA] per right-hand party).
    [run_parallel] drives a list of tagged machines in lockstep over a
    single net: every outgoing message is wrapped as [(tag, payload)] and
    incoming messages are routed to the machine with the matching tag.
    Malformed or unknown-tag messages (byzantine noise) are dropped.

    All machines advance on the same virtual-round cadence; the session
    runs for the maximum [rounds] among them, machines that finish early
    simply stop sending. *)


(** [run_parallel net machines] returns the outputs in input order. Tags
    must be distinct. *)
val run_parallel :
  Bsm_runtime.Net.t -> (string * 'out Machine.t) list -> (string * 'out) list

(** [wrap tag payload] / [unwrap payload] expose the tagging codec, so
    byzantine strategies in tests can forge session traffic. *)
val wrap : string -> string -> string

val unwrap : string -> (string * string) option

(** Number of virtual rounds [run_parallel] will consume for the given
    machines: max over their [rounds]. *)
val rounds_needed : (string * 'out Machine.t) list -> int
