(** The Dolev–Strong authenticated broadcast protocol (Theorem 5's
    engine): byzantine broadcast tolerating any number [t < n] of
    corruptions, given PKI, in [t + 1] rounds.

    The sender signs its value; a party that accepts a value with a chain
    of [r] valid signatures from [r] distinct parties (the first being the
    sender) in round [r] appends its own signature and relays. A party
    decides the unique value it accepted, or [default] when it accepted
    zero or several (the latter proves the sender byzantine).

    Signature chains make the protocol's messages grow to
    O(t · |signature|) bytes — visible in the communication-complexity
    experiment (EXPERIMENTS.md, T3). *)

open Bsm_prelude

type params = {
  participants : Party_id.t list;
  t : int;  (** corruption bound; the protocol runs [t + 1] rounds *)
  verifier : Bsm_crypto.Crypto.Verifier.t;
}

val rounds : params -> int

(** [make p ~signer ~sender ~input ~default] — [input] is consulted only by
    the sender. *)
val make :
  params ->
  signer:Bsm_crypto.Crypto.Signer.t ->
  sender:Party_id.t ->
  input:string ->
  default:string ->
  string Machine.t

(** Exposed for byzantine strategies in tests: a signature chain for
    [value] as produced by honest relays. [sign_onto] appends one link. *)
module Chain : sig
  type t = {
    value : string;
    links : (Party_id.t * Bsm_crypto.Crypto.Signature.t) list;
  }

  val codec : t Bsm_wire.Wire.t
  val start : Bsm_crypto.Crypto.Signer.t -> string -> t
  val sign_onto : Bsm_crypto.Crypto.Signer.t -> t -> t

  (** [valid p ~sender ~length chain] — [length] distinct signers, first is
      [sender], every link verifies. *)
  val valid : params -> sender:Party_id.t -> length:int -> t -> bool
end
