(** The phase-king byzantine agreement protocol (Π_King, Appendix A.6),
    generalized from the threshold adversary of Berman–Garay–Perry to
    arbitrary adversary structures in the style of Fitzi–Maurer (Lemma 4 /
    Theorem 10).

    The generalization replaces the counting conditions of the classic
    protocol by structure predicates:

    - "received [(value, v)] from at least [k − t] parties" becomes "the
      participants that did {e not} send [v] form a possibly-corrupt set";
    - "received [(propose, v)] from more than [t] parties" becomes "the
      senders of [(propose, v)] are {e not} a possibly-corrupt set" (such a
      set must contain an honest party);
    - the [t+1] kings become any participant sequence that is not possibly
      corrupt ({!Adversary_structure.king_sequence}).

    Under the Q3 condition the classical proof goes through unchanged (see
    DESIGN.md §4). With [Threshold t] and [3t < n] this {e is} the paper's
    Π_King, round-for-round, with [Δ_King = 3 · #kings] virtual rounds.

    Values are opaque byte strings compared for equality. *)

open Bsm_prelude

(** Wire messages shared by the phase-king family ({!Pi_ba}'s echo round
    and {!Pi_bb}'s sender round reuse the same variant so that composed
    protocols never collide on the wire). *)
module Msg : sig
  type t =
    | Value of string
    | Propose of string
    | King of string
    | Echo of string
    | Sender of string

  val codec : t Bsm_wire.Wire.t
end

type params = {
  structure : Adversary_structure.t;
  participants : Party_id.t list;  (** the parties running this instance *)
  kings : Party_id.t list;  (** king schedule; see {!rounds} *)
}

(** [params ~structure ~participants] with the default king sequence. *)
val params :
  structure:Adversary_structure.t -> participants:Party_id.t list -> params

(** Virtual rounds consumed: [3 · #kings]. *)
val rounds : params -> int

(** [make p ~self ~input] is one party's machine; output is the agreed
    value. [peek] (second component) reads the party's current value — used
    by {!Pi_ba} to bolt on the echo round. *)
val make_with_peek :
  params -> self:Party_id.t -> input:string -> string Machine.t * (unit -> string)

val make : params -> self:Party_id.t -> input:string -> string Machine.t
