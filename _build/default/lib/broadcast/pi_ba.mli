(** Π_BA (Appendix A.6): phase king plus one echo round, giving byzantine
    agreement that degrades gracefully under message omissions.

    Without omissions this achieves BA (termination, validity, agreement).
    With omissions — which in the paper only occur when every party of the
    opposite side is byzantine (Lemma 10) — it still achieves termination
    and {e weak agreement}: two honest parties never output two different
    non-[None] values.

    Output [None] models the paper's ⊥. Virtual rounds:
    [Δ_BA = Δ_King + 1 = 3·#kings + 1]. *)

open Bsm_prelude

(** [rounds p] — virtual rounds consumed. *)
val rounds : Phase_king.params -> int

val make :
  Phase_king.params -> self:Party_id.t -> input:string -> string option Machine.t
