lib/broadcast/session.ml: Bsm_runtime Bsm_wire Hashtbl List Machine String
