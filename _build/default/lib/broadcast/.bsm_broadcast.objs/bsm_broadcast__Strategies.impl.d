lib/broadcast/strategies.ml: Bsm_prelude Bsm_runtime Char List Party_id Rng String
