lib/broadcast/pi_bb.ml: Bsm_prelude Bsm_wire List Machine Option Party_id Phase_king Pi_ba
