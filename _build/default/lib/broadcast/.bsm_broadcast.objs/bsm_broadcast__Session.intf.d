lib/broadcast/session.mli: Bsm_runtime Machine
