lib/broadcast/adversary_structure.ml: Bsm_prelude Format Int List Party_id Party_set Side Util
