lib/broadcast/machine.ml: Bsm_prelude Bsm_runtime Hashtbl List Party_id
