lib/broadcast/dolev_strong.mli: Bsm_crypto Bsm_prelude Bsm_wire Machine Party_id
