lib/broadcast/gradecast.ml: Adversary_structure Bsm_prelude Bsm_wire Int List Machine Option Party_id Party_set String Util
