lib/broadcast/strategies.mli: Bsm_prelude Bsm_runtime Party_id
