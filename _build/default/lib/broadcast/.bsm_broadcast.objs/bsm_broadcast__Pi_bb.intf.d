lib/broadcast/pi_bb.mli: Bsm_prelude Machine Party_id Phase_king
