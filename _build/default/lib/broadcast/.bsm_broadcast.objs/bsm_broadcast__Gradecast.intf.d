lib/broadcast/gradecast.mli: Adversary_structure Bsm_prelude Machine Party_id
