lib/broadcast/adversary_structure.mli: Bsm_prelude Format Party_id Party_set
