lib/broadcast/pi_ba.ml: Adversary_structure Bsm_prelude Bsm_wire List Machine Party_id Party_set Phase_king String Util
