lib/broadcast/dolev_strong.ml: Bsm_crypto Bsm_prelude Bsm_wire List Machine Party_id
