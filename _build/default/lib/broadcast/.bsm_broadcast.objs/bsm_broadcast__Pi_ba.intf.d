lib/broadcast/pi_ba.mli: Bsm_prelude Machine Party_id Phase_king
