lib/broadcast/phase_king.mli: Adversary_structure Bsm_prelude Bsm_wire Machine Party_id
