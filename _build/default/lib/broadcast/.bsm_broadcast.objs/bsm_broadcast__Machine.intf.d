lib/broadcast/machine.mli: Bsm_prelude Bsm_runtime Party_id
