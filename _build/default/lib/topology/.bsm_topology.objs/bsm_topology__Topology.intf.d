lib/topology/topology.mli: Bsm_prelude Format Party_id Side
