lib/topology/topology.ml: Bsm_prelude Buffer Format List Party_id Side String
