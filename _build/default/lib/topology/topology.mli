(** The three communication topologies of the paper (Fig. 1).

    - {b Fully-connected}: every pair of distinct parties shares a channel.
    - {b One-sided}: as fully-connected, except parties within [L] cannot
      communicate directly ([R] keeps complete communication).
    - {b Bipartite}: only pairs in [L × R] share a channel.

    Each model is strictly stronger than the previous one; [weaker_or_equal]
    captures that order. The network engine consults [connected] to drop any
    message sent along a non-existent channel — byzantine parties cannot
    violate the topology. *)

open Bsm_prelude

type t =
  | Fully_connected
  | One_sided
  | Bipartite

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list

(** [connected t u v] — do [u] and [v] share a channel? A party is never
    connected to itself. *)
val connected : t -> Party_id.t -> Party_id.t -> bool

(** [neighbors t ~k p] lists the parties [p] can exchange messages with. *)
val neighbors : t -> k:int -> Party_id.t -> Party_id.t list

(** [weaker_or_equal a b] — every channel of [a] exists in [b]
    (bipartite ⊑ one-sided ⊑ fully-connected). *)
val weaker_or_equal : t -> t -> bool

(** [disconnected_sides t] lists the sides whose members lack intra-side
    channels: both for bipartite, [Left] for one-sided, none for
    fully-connected. *)
val disconnected_sides : t -> Side.t list

(** ASCII sketch of the topology for [k] parties per side (used by the CLI
    to reproduce Fig. 1). *)
val render : t -> k:int -> string
