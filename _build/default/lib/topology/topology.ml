open Bsm_prelude

type t =
  | Fully_connected
  | One_sided
  | Bipartite

let equal a b =
  match a, b with
  | Fully_connected, Fully_connected | One_sided, One_sided | Bipartite, Bipartite ->
    true
  | (Fully_connected | One_sided | Bipartite), _ -> false

let to_string = function
  | Fully_connected -> "fully-connected"
  | One_sided -> "one-sided"
  | Bipartite -> "bipartite"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Bipartite; One_sided; Fully_connected ]

let connected t u v =
  (not (Party_id.equal u v))
  &&
  let su = Party_id.side u and sv = Party_id.side v in
  match t with
  | Fully_connected -> true
  | One_sided -> not (Side.equal su Side.Left && Side.equal sv Side.Left)
  | Bipartite -> not (Side.equal su sv)

let neighbors t ~k p = List.filter (connected t p) (Party_id.all ~k)

let rank = function
  | Bipartite -> 0
  | One_sided -> 1
  | Fully_connected -> 2

let weaker_or_equal a b = rank a <= rank b

let disconnected_sides = function
  | Fully_connected -> []
  | One_sided -> [ Side.Left ]
  | Bipartite -> [ Side.Left; Side.Right ]

let render t ~k =
  let buf = Buffer.create 128 in
  let side_line side =
    String.concat "  "
      (List.map Party_id.to_string (Party_id.side_members side ~k))
  in
  Buffer.add_string buf (to_string t ^ " (k = " ^ string_of_int k ^ ")\n");
  Buffer.add_string buf ("  L: " ^ side_line Side.Left ^ "\n");
  Buffer.add_string buf ("  R: " ^ side_line Side.Right ^ "\n");
  let intra side =
    match t, side with
    | Fully_connected, _ | One_sided, Side.Right -> "complete"
    | One_sided, Side.Left | Bipartite, _ -> "none"
  in
  Buffer.add_string buf "  L-R channels: complete\n";
  Buffer.add_string buf ("  L-L channels: " ^ intra Side.Left ^ "\n");
  Buffer.add_string buf ("  R-R channels: " ^ intra Side.Right ^ "\n");
  Buffer.contents buf
