lib/runtime/net.mli: Bsm_prelude Engine Party_id
