lib/runtime/engine.ml: Array Bsm_prelude Bsm_topology Effect Format List Logs Party_id Printexc String
