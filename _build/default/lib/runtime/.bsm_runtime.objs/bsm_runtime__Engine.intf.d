lib/runtime/engine.mli: Bsm_prelude Bsm_topology Format Party_id
