lib/runtime/net.ml: Bsm_prelude Engine List Party_id
