open Bsm_prelude
module Topology = Bsm_topology.Topology

type mechanism =
  | Bb_pipeline
  | Pi_bsm of Side.t

type plan = {
  setting : Setting.t;
  mechanism : mechanism;
  describe : string;
  engine_rounds : int;
  program :
    pki:Bsm_crypto.Crypto.Pki.t ->
    input:Bsm_stable_matching.Prefs.t ->
    self:Party_id.t ->
    Bsm_runtime.Engine.program;
}

let bb_plan (setting : Setting.t) describe =
  {
    setting;
    mechanism = Bb_pipeline;
    describe;
    engine_rounds = Bb_based.engine_rounds setting;
    program =
      (fun ~pki ~input ~self -> Bb_based.program setting ~pki ~input ~self);
  }

let pi_bsm_plan (setting : Setting.t) computing_side =
  {
    setting;
    mechanism = Pi_bsm computing_side;
    describe =
      Printf.sprintf "Pi_bSM with computing side %s (Lemma 9)"
        (Side.to_string computing_side);
    engine_rounds = Pi_bsm.engine_rounds setting ~computing_side;
    program =
      (fun ~pki ~input ~self ->
        Pi_bsm.program setting ~pki ~computing_side ~input ~self);
  }

let plan (setting : Setting.t) =
  let verdict = Solvability.decide setting in
  if not verdict.Solvability.solvable then Error verdict
  else begin
    let k = setting.k in
    let tl = setting.t_left and tr = setting.t_right in
    match setting.topology, setting.auth with
    | Topology.Fully_connected, Setting.Unauthenticated ->
      Ok (bb_plan setting "BB pipeline over general phase king (Thm 2)")
    | Topology.One_sided, Setting.Unauthenticated ->
      Ok
        (bb_plan setting
           "BB pipeline over general phase king + majority proxy for L (Thm 4)")
    | Topology.Bipartite, Setting.Unauthenticated ->
      Ok
        (bb_plan setting
           "BB pipeline over general phase king + majority proxies (Thm 3)")
    | Topology.Fully_connected, Setting.Authenticated ->
      Ok (bb_plan setting "BB pipeline over Dolev-Strong (Thm 5)")
    | Topology.One_sided, Setting.Authenticated ->
      if tr < k then
        Ok
          (bb_plan setting
             "BB pipeline over Dolev-Strong + signature proxy for L (Thm 7)")
      else Ok (pi_bsm_plan setting Side.Left)
    | Topology.Bipartite, Setting.Authenticated ->
      if tl < k && tr < k then
        Ok
          (bb_plan setting
             "BB pipeline over Dolev-Strong + signature proxies (Thm 6)")
      else if 3 * tl < k then Ok (pi_bsm_plan setting Side.Left)
      else Ok (pi_bsm_plan setting Side.Right)
  end

let plan_exn setting =
  match plan setting with
  | Ok p -> p
  | Error verdict ->
    invalid_arg
      (Format.asprintf "Select.plan_exn: %a is impossible (%a)" Setting.pp setting
         Solvability.pp_verdict verdict)
