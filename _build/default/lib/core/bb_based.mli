(** The warm-up protocol of Lemma 1: broadcast everyone's preference list,
    run Gale–Shapley locally, output your own partner.

    Each of the [2k] parties is the sender of one byzantine-broadcast
    instance; all instances run in parallel over a virtual fully-connected
    network ({!Channels}). The broadcast implementation depends on the
    setting:

    - unauthenticated: Π_BB over the generalized phase king with the
      product structure [Z*] (sound when [t_L < k/3 ∨ t_R < k/3], Lemma 4);
    - authenticated: Dolev–Strong with [t = t_L + t_R] (sound always).

    A sender whose broadcast yields no valid preference list is byzantine;
    honest parties substitute the default (identity) list, as in the proof
    of Lemma 1. All honest parties therefore feed identical input to the
    deterministic [A_G-S] and obtain the same matching — termination,
    symmetry, stability and non-competition follow. *)

open Bsm_prelude
module SM := Bsm_stable_matching

(** Virtual rounds the broadcast phase needs in [setting]. *)
val broadcast_rounds : Setting.t -> int

(** Engine rounds a (honest) run takes, for scheduling and metrics. *)
val engine_rounds : Setting.t -> int

(** [program setting ~pki ~input ~self] — the honest program for [self].
    [pki] is consulted only in authenticated settings. *)
val program :
  Setting.t ->
  pki:Bsm_crypto.Crypto.Pki.t ->
  input:SM.Prefs.t ->
  self:Party_id.t ->
  Bsm_runtime.Engine.program
