(** Fault-free distributed Gale–Shapley.

    "The Gale–Shapley algorithm inherently functions as a distributed
    algorithm, as it consists solely of marriage proposals and divorce
    declarations, both of which can be processed in parallel."
    (Introduction.) This module is that algorithm as a message-passing
    protocol over the engine's bipartite channels: left parties send
    [Propose], right parties answer [Accept] / [Reject] (a displaced
    fiancé receives a [Reject] divorce notice and resumes proposing).

    The parallel dynamics are exactly those of
    {!Bsm_stable_matching.Gale_shapley.run}: the distributed run produces
    the same left-optimal matching, and its [Propose] count equals the
    centralized proposal count — both asserted by the test suite.

    The protocol is {e fault-free} (the paper's related-work baseline, not
    a byzantine protocol): it quantifies the Ω(n²) communication
    discussion (Gonczarowski et al.) and the similar-preference-lists
    regime of Khanchandani–Wattenhofer, reproduced in the T3c experiment.

    Termination uses the a-priori round budget [rounds_bound] (proposal
    cycles take two rounds; at most k proposals per left party, chained
    through displacements); quiet tail rounds send no messages, so message
    metrics are unaffected. *)

open Bsm_prelude
module SM := Bsm_stable_matching

(** Engine rounds the protocol runs: [2·(k² + 1)]. *)
val rounds_bound : k:int -> int

(** [program ~profile ~self] — [profile] supplies only [self]'s list. *)
val program :
  input:SM.Prefs.t -> self:Party_id.t -> Bsm_runtime.Engine.program

(** [run profile] — execute on the engine and return the matching (decoded
    from the parties' outputs) together with the engine metrics and the
    number of [Propose] messages. Raises on any disagreement between the
    two sides' outputs (cannot happen). *)
val run :
  SM.Profile.t ->
  SM.Matching.t * Bsm_runtime.Engine.metrics * int
