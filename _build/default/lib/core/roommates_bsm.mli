(** Byzantine stable roommates — the paper's first future-work direction.

    "A first direction could be generalizing our results to the stable
    roommate problem. [...] the stable matching problem comes with the
    guarantee that a stable matching always exists, while the stable
    roommate problem does not. Hence, definitions and properties need to
    be refined to account for this." (Conclusion.)

    This module is that refinement, in the easiest setting the paper's
    machinery makes available: a fully-connected authenticated network of
    the [n = 2k] parties (any number of corruptions, Dolev–Strong
    underneath — the roommates analogue of Theorem 5). The adversary is a
    single threshold [t] over all parties: with one set there is no
    left/right split.

    Definition (byzantine stable roommates, bSR): every honest party
    outputs a partner or nobody, and
    - {b termination} — as in bSM;
    - {b symmetry} — honest u outputs honest v ⟹ v outputs u;
    - {b non-competition} — no two honest parties output the same party;
    - {b conditional stability} — if the profile obtained by fixing the
      byzantine parties' (possibly substituted) lists admits a stable
      matching, there is no blocking pair among honest parties, and no
      honest party outputs nobody;
    - {b consistent abstention} — if it admits none, every honest party
      outputs nobody. (This is the refinement existence-failure forces:
      honest parties must agree on {e whether} they are matched.)

    The protocol is the Lemma 1 pipeline with Irving's algorithm in place
    of Gale–Shapley: broadcast every list with Dolev–Strong, substitute a
    default for invalid ones, solve locally, output your partner (or
    nobody when no stable matching exists). Agreement of BB makes the
    local runs identical, so all five properties follow. *)

open Bsm_prelude
module SM := Bsm_stable_matching

(** A party's preference list over the other [n-1] parties, most preferred
    first, in dense index order (see {!Party_id.to_dense}). *)
type prefs = int list

(** [default_prefs ~n ~self_dense] — ascending dense indices, skipping
    self; substituted for byzantine parties that broadcast garbage. *)
val default_prefs : n:int -> self_dense:int -> prefs

(** [validate ~n ~self_dense prefs] — a permutation of the other [n-1]
    dense indices. *)
val validate : n:int -> self_dense:int -> prefs -> bool

(** Engine rounds of an honest execution. *)
val engine_rounds : k:int -> t:int -> int

(** [program ~k ~t ~pki ~input ~self] — the honest fiber. [t] is the
    global corruption bound (any [t < 2k] works). Output wire format:
    {!Bsm_core.Problem.decision_codec} ([None] = nobody). *)
val program :
  k:int ->
  t:int ->
  pki:Bsm_crypto.Crypto.Pki.t ->
  input:prefs ->
  self:Party_id.t ->
  Bsm_runtime.Engine.program

type violation =
  | Termination of Party_id.t
  | Symmetry of Party_id.t * Party_id.t
  | Non_competition of Party_id.t * Party_id.t * Party_id.t
  | Blocking_pair of Party_id.t * Party_id.t
  | Inconsistent_abstention of Party_id.t * Party_id.t
      (** one honest party matched while another abstained *)

val pp_violation : Format.formatter -> violation -> unit

(** [check ~k ~inputs ~byzantine decisions] — evaluate the five properties
    on honest outputs. [inputs] gives every party's true list (used for
    honest-pair blocking checks); [decisions] maps each honest party to
    [Some (Some partner)], [Some None] (nobody) or [None] (no output). *)
val check :
  k:int ->
  inputs:(Party_id.t -> prefs) ->
  byzantine:Party_set.t ->
  decisions:(Party_id.t * Party_id.t option option) list ->
  violation list

(** [random_inputs rng ~k] draws a full profile of valid lists. *)
val random_inputs : Rng.t -> k:int -> Party_id.t -> prefs

(** Centralized reference: solve the instance the honest protocol would
    solve when no party is byzantine. *)
val solve_reference : k:int -> inputs:(Party_id.t -> prefs) -> int array option

val roommates_instance :
  k:int -> inputs:(Party_id.t -> prefs) -> SM.Roommates.instance
