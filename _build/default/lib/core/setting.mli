(** A problem setting: the five parameters the paper's characterization is
    stated over. *)

type auth =
  | Unauthenticated
  | Authenticated

type t = {
  k : int;  (** parties per side *)
  topology : Bsm_topology.Topology.t;
  auth : auth;
  t_left : int;  (** corruption budget in L *)
  t_right : int;  (** corruption budget in R *)
}

(** Validates [k >= 1] and [0 <= t_side <= k]. *)
val make :
  k:int ->
  topology:Bsm_topology.Topology.t ->
  auth:auth ->
  t_left:int ->
  t_right:int ->
  (t, string) result

val make_exn :
  k:int ->
  topology:Bsm_topology.Topology.t ->
  auth:auth ->
  t_left:int ->
  t_right:int ->
  t

(** The paper's adversary structure [Z*] for this setting. *)
val structure : t -> Bsm_broadcast.Adversary_structure.t

val auth_to_string : auth -> string
val pp : Format.formatter -> t -> unit
