open Bsm_prelude
module B = Bsm_broadcast
module Topology = Bsm_topology.Topology

(* Engine messages for one virtual point-to-point send from [u] to [v]. *)
let link_cost (setting : Setting.t) u v =
  if Topology.connected setting.topology u v then 1 else 2 * setting.k

(* Engine messages for [u] broadcasting one virtual message to every other
   member of [participants]. *)
let broadcast_cost setting participants u =
  List.fold_left
    (fun acc v -> if Party_id.equal u v then acc else acc + link_cost setting u v)
    0 participants

(* Dolev-Strong instance with honest sender: the sender broadcasts its
   1-link chain; every other participant accepts in round 1 and relays
   once (provided t >= 1, i.e. relaying rounds remain). *)
let dolev_strong_instance setting participants ~t ~sender =
  let b p = broadcast_cost setting participants p in
  let relays =
    if t >= 1 then
      List.fold_left
        (fun acc p -> if Party_id.equal p sender then acc else acc + b p)
        0 participants
    else 0
  in
  b sender + relays

(* Π_BA over [participants] with [kings]: per iteration every participant
   broadcasts Value and Propose and the king broadcasts King; then one
   Echo broadcast each. (All-honest, identical-decision path: proposals
   always reach quorum.) *)
let pi_ba_instance setting participants ~kings =
  let b p = broadcast_cost setting participants p in
  let sum_b = List.fold_left (fun acc p -> acc + b p) 0 participants in
  let per_iteration king = (2 * sum_b) + b king in
  List.fold_left (fun acc king -> acc + per_iteration king) sum_b kings

(* Π_BB adds the sender's initial broadcast. *)
let pi_bb_instance setting participants ~kings ~sender =
  broadcast_cost setting participants sender + pi_ba_instance setting participants ~kings

let bb_pipeline_messages (setting : Setting.t) =
  let participants = Party_id.all ~k:setting.k in
  match setting.auth with
  | Setting.Authenticated ->
    let t = setting.t_left + setting.t_right in
    List.fold_left
      (fun acc sender -> acc + dolev_strong_instance setting participants ~t ~sender)
      0 participants
  | Setting.Unauthenticated ->
    let kings =
      B.Adversary_structure.king_sequence (Setting.structure setting) ~participants
    in
    List.fold_left
      (fun acc sender -> acc + pi_bb_instance setting participants ~kings ~sender)
      0 participants

let pi_bsm_messages (setting : Setting.t) computing_side =
  let k = setting.k in
  let c_members = Party_id.side_members computing_side ~k in
  let t_c =
    match computing_side with
    | Side.Left -> setting.t_left
    | Side.Right -> setting.t_right
  in
  let kings = Util.take (t_c + 1) c_members in
  (* The session runs over the relay channels: every C-C send costs 2k. *)
  let session =
    List.fold_left
      (fun acc sender -> acc + pi_bb_instance setting c_members ~kings ~sender)
      0 c_members
    + (k * pi_ba_instance setting c_members ~kings)
  in
  (* Preference dissemination (O -> C) and suggestions (C -> O), direct. *)
  session + (2 * k * k)

let predicted_messages setting =
  let plan = Select.plan_exn setting in
  match plan.Select.mechanism with
  | Select.Bb_pipeline -> bb_pipeline_messages setting
  | Select.Pi_bsm side -> pi_bsm_messages setting side
