(** The paper's solvability characterization as an executable predicate
    (Theorems 2–7).

    Conditions are exactly those of the theorems:

    - fully-connected, unauthenticated: [t_L < k/3 ∨ t_R < k/3] (Thm 2)
    - bipartite, unauthenticated:
      [t_L < k/2 ∧ t_R < k/2] and [t_L < k/3 ∨ t_R < k/3] (Thm 3)
    - one-sided, unauthenticated:
      [t_R < k/2] and [t_L < k/3 ∨ t_R < k/3] (Thm 4)
    - fully-connected, authenticated: always (Thm 5)
    - bipartite, authenticated:
      [(t_L < k ∧ t_R < k) ∨ t_L < k/3 ∨ t_R < k/3] (Thm 6)
    - one-sided, authenticated: [t_R < k ∨ t_L < k/3] (Thm 7)

    The test suite checks this predicate against the q3-style primitive
    conditions exhaustively and against protocol executions / attack
    constructions on small instances. *)

type verdict = {
  solvable : bool;
  conditions : (string * bool) list;
      (** the theorem's side conditions, individually evaluated *)
  theorem : string;  (** which theorem decides this setting *)
}

val decide : Setting.t -> verdict

(** [solvable s] is [(decide s).solvable]. *)
val solvable : Setting.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit
