open Bsm_prelude
module SM = Bsm_stable_matching
module Wire = Bsm_wire.Wire

type decision =
  | No_output
  | Nobody
  | Matched of Party_id.t

let decision_codec = Wire.option Wire.party_id

type outcome = {
  profile : SM.Profile.t;
  byzantine : Party_set.t;
  decisions : (Party_id.t * decision) list;
}

type violation =
  | Termination of Party_id.t
  | Symmetry of Party_id.t * Party_id.t
  | Wrong_side of Party_id.t
  | Stability of {
      left : Party_id.t;
      right : Party_id.t;
    }
  | Non_competition of {
      a : Party_id.t;
      b : Party_id.t;
      target : Party_id.t;
    }

let pp_violation ppf = function
  | Termination p -> Format.fprintf ppf "termination: %a produced no output" Party_id.pp p
  | Symmetry (u, v) ->
    Format.fprintf ppf "symmetry: %a matched %a but not vice versa" Party_id.pp u
      Party_id.pp v
  | Wrong_side p -> Format.fprintf ppf "wrong side: %a matched its own side" Party_id.pp p
  | Stability { left; right } ->
    Format.fprintf ppf "stability: honest blocking pair (%a, %a)" Party_id.pp left
      Party_id.pp right
  | Non_competition { a; b; target } ->
    Format.fprintf ppf "non-competition: %a and %a both matched %a" Party_id.pp a
      Party_id.pp b Party_id.pp target

let decision_of outcome p =
  List.find_map
    (fun (q, d) -> if Party_id.equal p q then Some d else None)
    outcome.decisions

let is_honest outcome p = not (Party_set.mem p outcome.byzantine)

let base_checks outcome =
  let k = SM.Profile.k outcome.profile in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Termination and well-formedness. *)
  List.iter
    (fun (p, d) ->
      match d with
      | No_output -> add (Termination p)
      | Nobody -> ()
      | Matched q ->
        if Side.equal (Party_id.side q) (Party_id.side p) || Party_id.index q >= k then
          add (Wrong_side p))
    outcome.decisions;
  (* Symmetry: if both endpoints are honest, matching must be mutual. *)
  List.iter
    (fun (p, d) ->
      match d with
      | No_output | Nobody -> ()
      | Matched q ->
        if is_honest outcome q then begin
          match decision_of outcome q with
          | Some (Matched p') when Party_id.equal p p' -> ()
          | Some (No_output | Nobody | Matched _) | None -> add (Symmetry (p, q))
        end)
    outcome.decisions;
  (* Non-competition: two honest parties never output the same target. *)
  let matched =
    List.filter_map
      (fun (p, d) ->
        match d with
        | Matched q -> Some (p, q)
        | No_output | Nobody -> None)
      outcome.decisions
  in
  let rec pairwise = function
    | [] -> ()
    | (a, ta) :: rest ->
      List.iter
        (fun (b, tb) ->
          if Party_id.equal ta tb then add (Non_competition { a; b; target = ta }))
        rest;
      pairwise rest
  in
  pairwise matched;
  !violations

let check outcome =
  let violations = base_checks outcome in
  (* Stability over honest pairs: build partner maps restricted to honest
     parties (a party with no output is treated as unmatched — it cannot be
     part of a valid matching anyway, and the termination violation is
     already reported). *)
  let partner side i =
    let p = Party_id.make side i in
    match decision_of outcome p with
    | Some (Matched q) -> Some (Party_id.index q)
    | Some (No_output | Nobody) | None -> None
  in
  let honest side i = is_honest outcome (Party_id.make side i) in
  let blocking =
    SM.Verify.blocking_pairs_partial outcome.profile
      ~left_partner:(partner Side.Left)
      ~right_partner:(partner Side.Right)
      ~consider_left:(honest Side.Left)
      ~consider_right:(honest Side.Right)
  in
  violations
  @ List.map
      (fun (bp : SM.Verify.blocking_pair) ->
        Stability { left = Party_id.left bp.left; right = Party_id.right bp.right })
      blocking

let check_simplified ~favorites outcome =
  let violations = base_checks outcome in
  let k = SM.Profile.k outcome.profile in
  let simplified =
    List.concat_map
      (fun i ->
        let l = Party_id.left i in
        List.filter_map
          (fun j ->
            let r = Party_id.right j in
            if
              is_honest outcome l && is_honest outcome r
              && Party_id.equal (favorites l) r
              && Party_id.equal (favorites r) l
              &&
              match decision_of outcome l with
              | Some (Matched q) -> not (Party_id.equal q r)
              | Some (No_output | Nobody) | None -> true
            then Some (Stability { left = l; right = r })
            else None)
          (Util.range 0 k))
      (Util.range 0 k)
  in
  violations @ simplified
