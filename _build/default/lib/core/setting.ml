type auth =
  | Unauthenticated
  | Authenticated

type t = {
  k : int;
  topology : Bsm_topology.Topology.t;
  auth : auth;
  t_left : int;
  t_right : int;
}

let make ~k ~topology ~auth ~t_left ~t_right =
  if k < 1 then Error "k must be at least 1"
  else if t_left < 0 || t_left > k then Error "t_left must be in [0, k]"
  else if t_right < 0 || t_right > k then Error "t_right must be in [0, k]"
  else Ok { k; topology; auth; t_left; t_right }

let make_exn ~k ~topology ~auth ~t_left ~t_right =
  match make ~k ~topology ~auth ~t_left ~t_right with
  | Ok t -> t
  | Error msg -> invalid_arg ("Setting.make_exn: " ^ msg)

let structure t =
  Bsm_broadcast.Adversary_structure.Two_sided { t_left = t.t_left; t_right = t.t_right }

let auth_to_string = function
  | Unauthenticated -> "unauthenticated"
  | Authenticated -> "authenticated"

let pp ppf t =
  Format.fprintf ppf "%a/%s k=%d tL=%d tR=%d" Bsm_topology.Topology.pp t.topology
    (auth_to_string t.auth) t.k t.t_left t.t_right
