(** Closed-form communication costs.

    [predicted_messages] computes the {e exact} number of engine messages
    an all-honest execution of the selected protocol sends — the analytic
    counterpart of the T3 measurements, useful for capacity planning and
    asserted equal to the engine's counter by the test suite across the
    whole settings grid.

    The model behind the formulas:

    - a point-to-point virtual send costs 1 engine message on an existing
      channel and [2k] on a simulated one (k relay requests + k forwards,
      Lemmas 6/8/10);
    - Dolev–Strong (honest sender, t ≥ 1): the sender broadcasts once and
      every other participant relays exactly once, in the next round;
    - generalized phase king: per iteration, every participant broadcasts
      a value and a proposal and the king broadcasts its value; Π_BA adds
      one echo broadcast per participant, Π_BB one initial sender
      broadcast;
    - Π_bSM: preference dissemination and suggestions are direct ([k²]
      each); the BB/BA session runs entirely over simulated channels.

    Rounds are covered by {!Select.plan} ([engine_rounds]). *)

(** [predicted_messages s] for a solvable setting; raises
    [Invalid_argument] (via {!Select.plan_exn}) otherwise. *)
val predicted_messages : Setting.t -> int
