open Bsm_prelude
module SM = Bsm_stable_matching
module B = Bsm_broadcast
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire
module Crypto = Bsm_crypto.Crypto

let pk_params (setting : Setting.t) =
  B.Phase_king.params ~structure:(Setting.structure setting)
    ~participants:(Party_id.all ~k:setting.k)

let broadcast_rounds (setting : Setting.t) =
  match setting.auth with
  | Setting.Unauthenticated -> B.Pi_bb.rounds (pk_params setting)
  | Setting.Authenticated -> setting.t_left + setting.t_right + 1

let engine_rounds (setting : Setting.t) =
  Channels.stride setting.topology * broadcast_rounds setting

let default_prefs k = SM.Prefs.identity k

(* One broadcast machine per sender; output normalized to [string option]. *)
let machines (setting : Setting.t) ~pki ~self ~input_bytes =
  let k = setting.k in
  let senders = Party_id.all ~k in
  let default = Wire.encode SM.Prefs.codec (default_prefs k) in
  let machine_for sender =
    let input = if Party_id.equal sender self then input_bytes else "" in
    match setting.auth with
    | Setting.Unauthenticated ->
      B.Pi_bb.make (pk_params setting) ~self ~sender ~input ~default
    | Setting.Authenticated ->
      let params =
        {
          B.Dolev_strong.participants = senders;
          t = setting.t_left + setting.t_right;
          verifier = Crypto.Pki.verifier pki;
        }
      in
      B.Dolev_strong.make params ~signer:(Crypto.Pki.signer pki self) ~sender ~input
        ~default
      |> B.Machine.map Option.some
  in
  List.map (fun sender -> Party_id.to_string sender, machine_for sender) senders

let auth_mode (setting : Setting.t) ~pki ~self =
  match setting.auth with
  | Setting.Unauthenticated -> Channels.Majority
  | Setting.Authenticated ->
    Channels.Signed
      { signer = Crypto.Pki.signer pki self; verifier = Crypto.Pki.verifier pki }

let program (setting : Setting.t) ~pki ~input ~self (env : Engine.env) =
  let k = setting.k in
  let input_bytes = Wire.encode SM.Prefs.codec input in
  let net =
    Channels.virtual_net env ~topology:setting.topology
      ~auth:(auth_mode setting ~pki ~self)
  in
  let outputs =
    B.Session.run_parallel net (machines setting ~pki ~self ~input_bytes)
  in
  let prefs_of p =
    let bytes = List.assoc (Party_id.to_string p) outputs in
    match bytes with
    | None -> default_prefs k
    | Some b -> (
      match Wire.decode SM.Prefs.codec b with
      | Ok prefs when SM.Prefs.length prefs = k -> prefs
      | Ok _ | Error _ -> default_prefs k)
  in
  let profile =
    SM.Profile.make_exn
      ~left:(Array.init k (fun i -> prefs_of (Party_id.left i)))
      ~right:(Array.init k (fun i -> prefs_of (Party_id.right i)))
  in
  let matching = SM.Gale_shapley.run profile in
  let partner = SM.Matching.partner matching self in
  env.output (Wire.encode Problem.decision_codec (Some partner))
