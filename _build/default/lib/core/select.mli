(** Protocol selection: the constructive side of Theorems 2–7.

    Given a setting, [plan] picks the protocol whose sufficiency proof
    covers it, or reports impossibility (with the failing conditions).
    This is the library's main entry point: hand every party the program
    from [Plan.program] and run them on the engine. *)

open Bsm_prelude
module SM := Bsm_stable_matching

type mechanism =
  | Bb_pipeline  (** Lemma 1 pipeline; see {!Bb_based} *)
  | Pi_bsm of Side.t  (** Π_bSM with the given computing side *)

type plan = {
  setting : Setting.t;
  mechanism : mechanism;
  describe : string;
  engine_rounds : int;  (** rounds an honest execution takes *)
  program :
    pki:Bsm_crypto.Crypto.Pki.t ->
    input:SM.Prefs.t ->
    self:Party_id.t ->
    Bsm_runtime.Engine.program;
}

val plan : Setting.t -> (plan, Solvability.verdict) result

(** Convenience: raises [Invalid_argument] with the verdict when the
    setting is impossible. *)
val plan_exn : Setting.t -> plan
