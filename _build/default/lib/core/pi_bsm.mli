(** Π_bSM (Section 5.2): byzantine stable matching in a bipartite
    authenticated network when one side may be {e entirely} byzantine.

    With [t_C < k/3] corruptions on the computing side [C] (the paper's
    [L]) and up to [k] on the other side [O] (the paper's [R]):

    - [O]-parties send their preference lists to all of [C], then serve
      forwarding duty for the timestamped relay channels of Lemma 10, and
      finally adopt the most common match suggestion received from [C].
    - [C]-parties run, over the relay channels, one omission-tolerant Π_BB
      per member of [C] (disseminating preference lists within [C]) and
      join one omission-tolerant Π_BA per member of [O] (agreeing on what
      each [O]-party sent). If any instance returns ⊥ — possible only when
      every forwarder is byzantine — the party matches nobody; otherwise it
      runs [A_G-S] locally, informs each [O]-party of its match, and
      outputs its own.

    Guarantees (Lemma 9): bSM, including the regime where [O] is fully
    byzantine (Lemma 11, via weak agreement) and the regime with at least
    one honest [O]-party (Lemma 12, via full BA/BB plus the
    [k − t_C > t_C] majority at the suggestion step).

    Timing note: the paper starts Π_BB immediately and has parties join
    Π_BA after waiting Δ; we delay both to the same round so that all
    instances share one virtual-round cadence. This adds one engine round
    and changes no guarantee (DESIGN.md §4). *)

open Bsm_prelude
module SM := Bsm_stable_matching

(** The protocol's direct (non-relay) messages, exposed so that tests and
    adversarial strategies can speak the wire language. *)
module Msg : sig
  type t =
    | Prefs of string  (** O → C, round 0: raw encoded preference list *)
    | Suggest of Party_id.t option  (** C → O, final round: your match *)

  val codec : t Bsm_wire.Wire.t
end

(** Engine rounds an honest run takes. *)
val engine_rounds : Setting.t -> computing_side:Side.t -> int

(** [program setting ~pki ~computing_side ~input ~self] — the honest
    program for [self] (either side; the role is chosen from
    [Party_id.side self]). *)
val program :
  Setting.t ->
  pki:Bsm_crypto.Crypto.Pki.t ->
  computing_side:Side.t ->
  input:SM.Prefs.t ->
  self:Party_id.t ->
  Bsm_runtime.Engine.program
