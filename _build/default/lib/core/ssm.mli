(** Simplified stable matching (Section 3) via the Lemma 2 reduction.

    In sSM, a party's input is a single favorite on the other side. Any
    bSM protocol solves sSM: rank the favorite first, fill the rest of the
    list arbitrarily (ascending here, for determinism), and run bSM. If two
    honest parties are mutual favorites, they rank each other first, so
    leaving them unmatched would create a blocking pair — simplified
    stability follows from stability. *)

open Bsm_prelude
module SM := Bsm_stable_matching

(** [prefs_of_favorite ~k favorite] — the constructed full list. *)
val prefs_of_favorite : k:int -> Party_id.t -> SM.Prefs.t

(** [favorites_to_profile ~k favs] lifts an sSM input assignment into a
    bSM profile ([favs] gives each party's favorite). *)
val favorites_to_profile : k:int -> (Party_id.t -> Party_id.t) -> SM.Profile.t

(** [program plan ~pki ~favorite ~self] — run the plan's bSM protocol on
    the constructed list. *)
val program :
  Select.plan ->
  pki:Bsm_crypto.Crypto.Pki.t ->
  favorite:Party_id.t ->
  self:Party_id.t ->
  Bsm_runtime.Engine.program
