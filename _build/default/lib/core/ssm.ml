open Bsm_prelude
module SM = Bsm_stable_matching

let prefs_of_favorite ~k favorite =
  let f = Party_id.index favorite in
  SM.Prefs.of_list_exn (f :: List.filter (fun i -> i <> f) (List.init k Fun.id))

let favorites_to_profile ~k favs =
  let prefs p = prefs_of_favorite ~k (favs p) in
  SM.Profile.make_exn
    ~left:(Array.init k (fun i -> prefs (Party_id.left i)))
    ~right:(Array.init k (fun i -> prefs (Party_id.right i)))

let program (plan : Select.plan) ~pki ~favorite ~self =
  let input = prefs_of_favorite ~k:plan.setting.Setting.k favorite in
  plan.Select.program ~pki ~input ~self
