open Bsm_topology

type verdict = {
  solvable : bool;
  conditions : (string * bool) list;
  theorem : string;
}

let decide (s : Setting.t) =
  let k = s.k in
  let tl = s.t_left and tr = s.t_right in
  (* Strict fractional thresholds via integer arithmetic: t < k/3 is
     3t < k, t < k/2 is 2t < k. *)
  let third = ("tL < k/3", 3 * tl < k), ("tR < k/3", 3 * tr < k) in
  let (c_tl3, c_tr3) = third in
  let one_third = "tL < k/3 or tR < k/3", snd c_tl3 || snd c_tr3 in
  match s.topology, s.auth with
  | Topology.Fully_connected, Setting.Unauthenticated ->
    {
      solvable = snd one_third;
      conditions = [ one_third ];
      theorem = "Theorem 2";
    }
  | Topology.Bipartite, Setting.Unauthenticated ->
    let halves = "tL < k/2 and tR < k/2", (2 * tl < k) && (2 * tr < k) in
    {
      solvable = snd halves && snd one_third;
      conditions = [ halves; one_third ];
      theorem = "Theorem 3";
    }
  | Topology.One_sided, Setting.Unauthenticated ->
    let half_r = "tR < k/2", 2 * tr < k in
    {
      solvable = snd half_r && snd one_third;
      conditions = [ half_r; one_third ];
      theorem = "Theorem 4";
    }
  | Topology.Fully_connected, Setting.Authenticated ->
    { solvable = true; conditions = []; theorem = "Theorem 5" }
  | Topology.Bipartite, Setting.Authenticated ->
    let both = "tL < k and tR < k", tl < k && tr < k in
    {
      solvable = snd both || snd c_tl3 || snd c_tr3;
      conditions = [ both; c_tl3; c_tr3 ];
      theorem = "Theorem 6";
    }
  | Topology.One_sided, Setting.Authenticated ->
    let r_any = "tR < k", tr < k in
    {
      solvable = snd r_any || snd c_tl3;
      conditions = [ r_any; c_tl3 ];
      theorem = "Theorem 7";
    }

let solvable s = (decide s).solvable

let pp_verdict ppf v =
  Format.fprintf ppf "%s (%s):" (if v.solvable then "solvable" else "impossible") v.theorem;
  List.iter
    (fun (name, holds) ->
      Format.fprintf ppf " [%s: %s]" name (if holds then "yes" else "no"))
    v.conditions
