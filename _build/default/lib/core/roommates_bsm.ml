open Bsm_prelude
module SM = Bsm_stable_matching
module B = Bsm_broadcast
module Engine = Bsm_runtime.Engine
module Wire = Bsm_wire.Wire
module Crypto = Bsm_crypto.Crypto

type prefs = int list

let prefs_codec = Wire.list Wire.uint

let default_prefs ~n ~self_dense =
  List.filter (fun i -> i <> self_dense) (List.init n Fun.id)

let validate ~n ~self_dense prefs =
  List.length prefs = n - 1
  && List.sort_uniq compare prefs = default_prefs ~n ~self_dense

let engine_rounds ~k ~t =
  ignore k;
  t + 1

let roommates_instance ~k ~inputs =
  let n = 2 * k in
  SM.Roommates.make_exn
    (Array.init n (fun i -> inputs (Party_id.of_dense ~k i)))

let solve_reference ~k ~inputs = SM.Roommates.solve (roommates_instance ~k ~inputs)

let program ~k ~t ~pki ~input ~self (env : Engine.env) =
  let n = 2 * k in
  let self_dense = Party_id.to_dense ~k self in
  if not (validate ~n ~self_dense input) then
    invalid_arg "Roommates_bsm.program: invalid input list";
  let participants = Party_id.all ~k in
  let params =
    { B.Dolev_strong.participants; t; verifier = Crypto.Pki.verifier pki }
  in
  let machines =
    List.map
      (fun sender ->
        let bytes = if Party_id.equal sender self then Wire.encode prefs_codec input else "" in
        ( Party_id.to_string sender,
          B.Dolev_strong.make params ~signer:(Crypto.Pki.signer pki self) ~sender
            ~input:bytes ~default:"" ))
      participants
  in
  let net = Bsm_runtime.Net.direct env in
  let outputs = B.Session.run_parallel net machines in
  let prefs_of p =
    let dense = Party_id.to_dense ~k p in
    let bytes = List.assoc (Party_id.to_string p) outputs in
    match Wire.decode prefs_codec bytes with
    | Ok prefs when validate ~n ~self_dense:dense prefs -> prefs
    | Ok _ | Error _ -> default_prefs ~n ~self_dense:dense
  in
  let inst =
    SM.Roommates.make_exn (Array.init n (fun i -> prefs_of (Party_id.of_dense ~k i)))
  in
  let decision =
    match SM.Roommates.solve inst with
    | Some partner -> Some (Party_id.of_dense ~k partner.(self_dense))
    | None -> None
  in
  env.output (Wire.encode Problem.decision_codec decision)

(* --- evaluation --------------------------------------------------------- *)

type violation =
  | Termination of Party_id.t
  | Symmetry of Party_id.t * Party_id.t
  | Non_competition of Party_id.t * Party_id.t * Party_id.t
  | Blocking_pair of Party_id.t * Party_id.t
  | Inconsistent_abstention of Party_id.t * Party_id.t

let pp_violation ppf = function
  | Termination p -> Format.fprintf ppf "termination: %a" Party_id.pp p
  | Symmetry (u, v) -> Format.fprintf ppf "symmetry: %a/%a" Party_id.pp u Party_id.pp v
  | Non_competition (a, b, t) ->
    Format.fprintf ppf "non-competition: %a and %a -> %a" Party_id.pp a Party_id.pp b
      Party_id.pp t
  | Blocking_pair (u, v) ->
    Format.fprintf ppf "blocking pair: (%a, %a)" Party_id.pp u Party_id.pp v
  | Inconsistent_abstention (u, v) ->
    Format.fprintf ppf "inconsistent abstention: %a matched, %a abstained" Party_id.pp
      u Party_id.pp v

let check ~k ~inputs ~byzantine ~decisions =
  let n = 2 * k in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let decision_of p =
    List.find_map (fun (q, d) -> if Party_id.equal p q then Some d else None) decisions
  in
  let honest p = not (Party_set.mem p byzantine) in
  (* termination *)
  List.iter
    (fun (p, d) ->
      match d with
      | None -> add (Termination p)
      | Some _ -> ())
    decisions;
  (* symmetry + non-competition *)
  let matched =
    List.filter_map
      (fun (p, d) ->
        match d with
        | Some (Some q) -> Some (p, q)
        | Some None | None -> None)
      decisions
  in
  List.iter
    (fun (p, q) ->
      if honest q then begin
        match decision_of q with
        | Some (Some (Some p')) when Party_id.equal p p' -> ()
        | Some _ | None -> add (Symmetry (p, q))
      end)
    matched;
  let rec pairwise = function
    | [] -> ()
    | (a, ta) :: rest ->
      List.iter (fun (b, tb) -> if Party_id.equal ta tb then add (Non_competition (a, b, ta))) rest;
      pairwise rest
  in
  pairwise matched;
  (* consistent abstention *)
  let abstained =
    List.filter_map
      (fun (p, d) ->
        match d with
        | Some None -> Some p
        | Some (Some _) | None -> None)
      decisions
  in
  (match matched, abstained with
  | (u, _) :: _, v :: _ -> add (Inconsistent_abstention (u, v))
  | _ -> ());
  (* blocking pairs among honest parties, under their true inputs *)
  let rank_of p q =
    let dense_q = Party_id.to_dense ~k q in
    Util.find_index (Int.equal dense_q) (inputs p)
  in
  let prefers p a b =
    match rank_of p a, rank_of p b with
    | Some ra, Some rb -> ra < rb
    | Some _, None -> true
    | None, _ -> false
  in
  let partner_of p =
    match decision_of p with
    | Some (Some (Some q)) -> Some q
    | Some (Some None) | Some None | None -> None
  in
  let roster = List.init n (fun i -> Party_id.of_dense ~k i) in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if Party_id.compare u v < 0 && honest u && honest v then begin
            let u_wants =
              match partner_of u with
              | None -> true
              | Some w -> (not (Party_id.equal w v)) && prefers u v w
            in
            let v_wants =
              match partner_of v with
              | None -> true
              | Some w -> (not (Party_id.equal w u)) && prefers v u w
            in
            (* Only flag when both sides actually produced output; and a
               mutually-"wanting" pair of two abstainers is only blocking
               when the run was supposed to produce a matching — the
               consistent-abstention check covers the mixed case, and the
               all-abstain case is legitimate when no stable matching
               exists, so only flag pairs where at least one is matched. *)
            let someone_matched = partner_of u <> None || partner_of v <> None in
            if someone_matched && u_wants && v_wants then add (Blocking_pair (u, v))
          end)
        roster)
    roster;
  List.rev !violations

let random_inputs rng ~k =
  let n = 2 * k in
  let table =
    List.map
      (fun i ->
        let self_dense = i in
        ( Party_id.of_dense ~k i,
          Rng.shuffle rng (default_prefs ~n ~self_dense) ))
      (List.init n Fun.id)
  in
  fun p -> List.assoc p table
