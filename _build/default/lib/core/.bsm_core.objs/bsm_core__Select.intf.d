lib/core/select.mli: Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Party_id Setting Side Solvability
