lib/core/solvability.ml: Bsm_topology Format List Setting Topology
