lib/core/channels.ml: Bsm_crypto Bsm_prelude Bsm_runtime Bsm_topology Bsm_wire Hashtbl List Party_id Side String Util
