lib/core/pi_bsm.ml: Array Bsm_broadcast Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_wire Channels List Option Party_id Problem Setting Side Util
