lib/core/roommates_bsm.ml: Array Bsm_broadcast Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_wire Format Fun Int List Party_id Party_set Problem Rng Util
