lib/core/distributed_gs.ml: Array Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Bsm_wire List Option Party_id Problem Side
