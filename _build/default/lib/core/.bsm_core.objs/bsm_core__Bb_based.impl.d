lib/core/bb_based.ml: Array Bsm_broadcast Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_wire Channels List Option Party_id Problem Setting
