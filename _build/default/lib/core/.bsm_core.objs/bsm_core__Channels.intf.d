lib/core/channels.mli: Bsm_crypto Bsm_runtime Bsm_topology
