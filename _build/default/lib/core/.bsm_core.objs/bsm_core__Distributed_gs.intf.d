lib/core/distributed_gs.mli: Bsm_prelude Bsm_runtime Bsm_stable_matching Party_id
