lib/core/ssm.ml: Array Bsm_prelude Bsm_stable_matching Fun List Party_id Select Setting
