lib/core/bb_based.mli: Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Party_id Setting
