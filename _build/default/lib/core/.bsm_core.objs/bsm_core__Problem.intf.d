lib/core/problem.mli: Bsm_prelude Bsm_stable_matching Bsm_wire Format Party_id Party_set
