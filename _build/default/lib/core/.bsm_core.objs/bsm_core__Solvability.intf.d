lib/core/solvability.mli: Format Setting
