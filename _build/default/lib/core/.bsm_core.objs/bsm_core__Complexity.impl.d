lib/core/complexity.ml: Bsm_broadcast Bsm_prelude Bsm_topology List Party_id Select Setting Side Util
