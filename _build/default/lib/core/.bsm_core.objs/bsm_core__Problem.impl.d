lib/core/problem.ml: Bsm_prelude Bsm_stable_matching Bsm_wire Format List Party_id Party_set Side Util
