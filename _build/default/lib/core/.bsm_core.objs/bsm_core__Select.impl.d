lib/core/select.ml: Bb_based Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Format Party_id Pi_bsm Printf Setting Side Solvability
