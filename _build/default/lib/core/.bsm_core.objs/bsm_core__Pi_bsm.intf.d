lib/core/pi_bsm.mli: Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_wire Party_id Setting Side
