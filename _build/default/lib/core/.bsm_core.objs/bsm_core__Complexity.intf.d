lib/core/complexity.mli: Setting
