lib/core/setting.ml: Bsm_broadcast Bsm_topology Format
