lib/core/setting.mli: Bsm_broadcast Bsm_topology Format
