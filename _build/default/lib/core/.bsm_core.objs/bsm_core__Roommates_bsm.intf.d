lib/core/roommates_bsm.mli: Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Format Party_id Party_set Rng
