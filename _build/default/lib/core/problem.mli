(** The byzantine stable matching problem: inputs, outputs, and the four
    properties (Definition 1), plus the simplified variant sSM
    (Section 3).

    A party's decision is [Some partner] or [None] ("match with nobody");
    the evaluation also distinguishes parties that produced no decision at
    all, which violates termination. All checks consider {e honest} parties
    only, exactly as the refined definitions require. *)

open Bsm_prelude
module SM := Bsm_stable_matching

(** One honest party's observed outcome. *)
type decision =
  | No_output  (** never decided — termination violation *)
  | Nobody
  | Matched of Party_id.t

val decision_codec : Party_id.t option Bsm_wire.Wire.t
(** Wire format protocols use for their final output ([None] = nobody). *)

type outcome = {
  profile : SM.Profile.t;  (** every party's (true) input *)
  byzantine : Party_set.t;  (** ground truth corruption set *)
  decisions : (Party_id.t * decision) list;  (** honest parties only *)
}

type violation =
  | Termination of Party_id.t
  | Symmetry of Party_id.t * Party_id.t
      (** [u] decided [v] (both honest) but [v] did not decide [u] *)
  | Wrong_side of Party_id.t
      (** decided a party of its own side or out of range *)
  | Stability of {
      left : Party_id.t;
      right : Party_id.t;
    }  (** honest blocking pair *)
  | Non_competition of {
      a : Party_id.t;
      b : Party_id.t;
      target : Party_id.t;
    }

val pp_violation : Format.formatter -> violation -> unit

(** [check outcome] — all violations of the four bSM properties. Empty
    list = the run achieved bSM. *)
val check : outcome -> violation list

(** [check_simplified ~favorites outcome] — the sSM properties: termination,
    symmetry, non-competition, and {e simplified stability} (mutual honest
    favorites must be matched to each other). [favorites p] is the party
    [p]'s favorite (input of sSM). *)
val check_simplified :
  favorites:(Party_id.t -> Party_id.t) -> outcome -> violation list
