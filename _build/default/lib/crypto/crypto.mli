(** Simulated digital signatures and PKI.

    The paper assumes idealized unforgeable signatures ("for simplicity of
    presentation, we assume that signatures are unforgeable"). We implement
    that ideal functionality directly: a trusted setup generates a secret
    per party; a signature is a keyed digest over (signer id, message); a
    party's signing power is handed to its fiber as a closure, so byzantine
    code can sign only as itself. Verification is a separate capability that
    does not expose secrets. See DESIGN.md §4 for the substitution note.

    Signatures are deterministic, so protocols that compare or deduplicate
    signed messages behave reproducibly. *)

module Signature : sig
  type t

  val equal : t -> t -> bool
  val codec : t Bsm_wire.Wire.t
  val pp : Format.formatter -> t -> unit

  (** Byte length of any signature on the wire (fixed-size digests). *)
  val byte_length : int
end

module Signer : sig
  (** The signing capability of one party. *)
  type t

  val id : t -> Bsm_prelude.Party_id.t

  (** [sign t msg] signs the raw bytes [msg] as [id t]. *)
  val sign : t -> string -> Signature.t
end

module Verifier : sig
  (** The public verification capability; safe to hand to any fiber. *)
  type t

  (** [verify t ~signer ~msg signature] checks that [signature] is the
      unique valid signature of [signer] on [msg]. Unknown signers verify
      as [false]. *)
  val verify : t -> signer:Bsm_prelude.Party_id.t -> msg:string -> Signature.t -> bool
end

module Pki : sig
  (** A trusted setup for one protocol execution. *)
  type t

  (** [setup ~k ~seed] generates keys for the [2k] parties of an
      instance. *)
  val setup : k:int -> seed:int -> t

  (** [signer t p] is [p]'s private signing capability. Raises
      [Invalid_argument] for parties outside the setup. *)
  val signer : t -> Bsm_prelude.Party_id.t -> Signer.t

  val verifier : t -> Verifier.t
end

module Signed : sig
  (** A value carried together with a signature over its canonical
      encoding. *)
  type 'a t = {
    value : 'a;
    signer : Bsm_prelude.Party_id.t;
    signature : Signature.t;
  }

  (** [make signer codec value] signs [Wire.encode codec value]. *)
  val make : Signer.t -> 'a Bsm_wire.Wire.t -> 'a -> 'a t

  (** [valid verifier codec t] re-encodes and verifies. *)
  val valid : Verifier.t -> 'a Bsm_wire.Wire.t -> 'a t -> bool

  val codec : 'a Bsm_wire.Wire.t -> 'a t Bsm_wire.Wire.t
end
