lib/crypto/crypto.mli: Bsm_prelude Bsm_wire Format
