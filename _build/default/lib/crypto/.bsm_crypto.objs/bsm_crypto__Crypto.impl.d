lib/crypto/crypto.ml: Array Bsm_prelude Bsm_wire Char Digest Format Party_id Rng String
