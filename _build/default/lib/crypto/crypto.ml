open Bsm_prelude
module Wire = Bsm_wire.Wire

module Signature = struct
  type t = string (* 16-byte MD5 digest *)

  let equal = String.equal
  let codec = Wire.string
  let pp ppf t = Format.pp_print_string ppf (Digest.to_hex t)
  let byte_length = 16
end

(* A signature binds (secret, signer id, message). Including the id in the
   digest input means two parties with (impossibly) colliding secrets still
   produce distinct signatures. *)
let compute ~secret ~signer ~msg =
  Digest.string (secret ^ "\x00" ^ Party_id.to_string signer ^ "\x00" ^ msg)

module Signer = struct
  type t = {
    id : Party_id.t;
    secret : string;
  }

  let id t = t.id
  let sign t msg = compute ~secret:t.secret ~signer:t.id ~msg
end

module Verifier = struct
  type t = { check : Party_id.t -> string -> Signature.t -> bool }

  let verify t ~signer ~msg signature = t.check signer msg signature
end

module Pki = struct
  type t = {
    k : int;
    secrets : string array; (* dense-indexed *)
  }

  let setup ~k ~seed =
    let rng = Rng.make (seed lxor 0x51674) in
    let secret _ = String.init 16 (fun _ -> Char.chr (Rng.int rng 256)) in
    { k; secrets = Array.init (2 * k) secret }

  let secret t p =
    let i = Party_id.to_dense ~k:t.k p in
    if i < 0 || i >= Array.length t.secrets then
      invalid_arg "Pki.signer: party outside setup";
    t.secrets.(i)

  let signer t p = { Signer.id = p; secret = secret t p }

  let verifier t =
    let check signer msg signature =
      match secret t signer with
      | s -> Signature.equal signature (compute ~secret:s ~signer ~msg)
      | exception Invalid_argument _ -> false
    in
    { Verifier.check }
end

module Signed = struct
  type 'a t = {
    value : 'a;
    signer : Party_id.t;
    signature : Signature.t;
  }

  let make signer codec value =
    let msg = Wire.encode codec value in
    { value; signer = Signer.id signer; signature = Signer.sign signer msg }

  let valid verifier codec t =
    let msg = Wire.encode codec t.value in
    Verifier.verify verifier ~signer:t.signer ~msg t.signature

  let codec payload =
    Wire.map
      ~inject:(fun ((value, signer), signature) -> { value; signer; signature })
      ~project:(fun t -> (t.value, t.signer), t.signature)
      (Wire.pair (Wire.pair payload Wire.party_id) Signature.codec)
end
