let count ~equal x xs =
  List.fold_left (fun acc y -> if equal x y then acc + 1 else acc) 0 xs

let most_common ~equal xs =
  let better best x =
    let c = count ~equal x xs in
    match best with
    | Some (_, c') when c' >= c -> best
    | Some _ | None -> Some (x, c)
  in
  List.fold_left better None xs

let strict_majority ~equal ~total xs =
  match most_common ~equal xs with
  | Some (x, c) when 2 * c > total -> Some x
  | Some _ | None -> None

let dedup ~equal xs =
  let keep seen x = if List.exists (equal x) seen then seen else x :: seen in
  List.rev (List.fold_left keep [] xs)

let group_by ~key ~equal_key xs =
  let keys = dedup ~equal:equal_key (List.map key xs) in
  List.map (fun k -> k, List.filter (fun x -> equal_key (key x) k) xs) keys

let range a b = if a >= b then [] else List.init (b - a) (fun i -> a + i)

let is_permutation xs ~n =
  List.length xs = n
  &&
  let seen = Array.make n false in
  List.for_all
    (fun x ->
      x >= 0 && x < n
      &&
      if seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    xs

let cdiv a b = (a + b - 1) / b

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let find_index p xs =
  let rec go i = function
    | [] -> None
    | x :: xs -> if p x then Some i else go (i + 1) xs
  in
  go 0 xs

let pp_comma_list pp ppf xs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp ppf xs
