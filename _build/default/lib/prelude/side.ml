type t =
  | Left
  | Right

let opposite = function
  | Left -> Right
  | Right -> Left

let equal a b =
  match a, b with
  | Left, Left | Right, Right -> true
  | Left, Right | Right, Left -> false

let to_int = function
  | Left -> 0
  | Right -> 1

let compare a b = Int.compare (to_int a) (to_int b)

let to_string = function
  | Left -> "L"
  | Right -> "R"

let pp ppf s = Format.pp_print_string ppf (to_string s)

let all = [ Left; Right ]
