type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let make ~title ~header = { title; header; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line row =
    "| " ^ String.concat " | " (List.map2 pad widths row) ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
