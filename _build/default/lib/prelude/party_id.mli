(** Party identifiers.

    A party is identified by its side and its index within that side. In an
    instance with [k] parties per side, valid indices are [0 .. k-1].
    Identifiers are public knowledge: the synchronous model assumes every
    party knows the full roster of participants. *)

type t = private {
  side : Side.t;
  index : int;
}

(** [make side index] builds an identifier. Raises [Invalid_argument] if
    [index < 0]. *)
val make : Side.t -> int -> t

(** [left i] is [make Side.Left i]. *)
val left : int -> t

(** [right i] is [make Side.Right i]. *)
val right : int -> t

val side : t -> Side.t
val index : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Printed as ["L3"] or ["R0"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [of_string s] parses the [to_string] format. Raises [Invalid_argument]
    on malformed input. *)
val of_string : string -> t

(** [all ~k] is the roster of an instance with [k] parties per side, all
    left parties first, both sides in index order. *)
val all : k:int -> t list

(** [side_members side ~k] lists the [k] parties of [side] in index order. *)
val side_members : Side.t -> k:int -> t list

(** Dense encoding into [0 .. 2k-1]: left parties map to their index, right
    parties map to [k + index]. Used for array-indexed per-party state. *)
val to_dense : k:int -> t -> int

(** Inverse of [to_dense]. Raises [Invalid_argument] if out of range. *)
val of_dense : k:int -> int -> t
