(** Small general-purpose helpers shared across the libraries. *)

(** [most_common ~equal xs] is [Some (x, count)] for a value with the highest
    multiplicity in [xs] (first such value in list order wins ties), or
    [None] when [xs] is empty. O(n²); inputs are per-round inboxes, which
    are small. *)
val most_common : equal:('a -> 'a -> bool) -> 'a list -> ('a * int) option

(** [count ~equal x xs] is the multiplicity of [x] in [xs]. *)
val count : equal:('a -> 'a -> bool) -> 'a -> 'a list -> int

(** [strict_majority ~equal ~total xs] is [Some x] when some value occurs
    strictly more than [total / 2] times in [xs]. *)
val strict_majority : equal:('a -> 'a -> bool) -> total:int -> 'a list -> 'a option

(** [dedup ~equal xs] keeps the first occurrence of each value. *)
val dedup : equal:('a -> 'a -> bool) -> 'a list -> 'a list

(** [group_by ~key ~equal_key xs] groups consecutive-or-not elements by key,
    preserving first-seen key order and element order within groups. *)
val group_by : key:('a -> 'k) -> equal_key:('k -> 'k -> bool) -> 'a list -> ('k * 'a list) list

(** [range a b] is [[a; a+1; ...; b-1]] ([[]] when [a >= b]). *)
val range : int -> int -> int list

(** [is_permutation xs ~n] checks that [xs] is a permutation of
    [0 .. n-1]. *)
val is_permutation : int list -> n:int -> bool

(** Ceiling division [a / b] for positive [b]. *)
val cdiv : int -> int -> int

(** [take n xs] is the first [n] elements of [xs] (all of them if shorter). *)
val take : int -> 'a list -> 'a list

(** [find_index p xs] is the position of the first element satisfying [p]. *)
val find_index : ('a -> bool) -> 'a list -> int option

(** [pp_comma_list pp] prints a list separated by [", "]. *)
val pp_comma_list :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit
