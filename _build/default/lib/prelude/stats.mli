(** Small descriptive-statistics helpers for experiment aggregation. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
}

(** [summarize xs] — raises [Invalid_argument] on an empty list. *)
val summarize : float list -> summary

(** [percentile p xs] — nearest-rank percentile, [p] in [0, 100]. *)
val percentile : float -> float list -> float

(** [rate hits total] as a percentage. *)
val rate : int -> int -> float

val pp_summary : Format.formatter -> summary -> unit
