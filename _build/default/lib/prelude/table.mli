(** ASCII tables for the experiment reports printed by [bin/] and [bench/]. *)

type t

(** [make ~title ~header] starts a table. Every row added later must have
    [List.length header] cells. *)
val make : title:string -> header:string list -> t

(** [add_row t cells] appends a row. Raises [Invalid_argument] on cell-count
    mismatch. *)
val add_row : t -> string list -> unit

(** [render t] lays the table out with padded, pipe-separated columns. *)
val render : t -> string

(** [print t] renders to stdout followed by a blank line. *)
val print : t -> unit
