lib/prelude/side.mli: Format
