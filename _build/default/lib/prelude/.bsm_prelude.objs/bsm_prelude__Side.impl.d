lib/prelude/side.ml: Format Int
