lib/prelude/stats.ml: Float Format List
