lib/prelude/party_set.ml: Format List Party_id Set Side
