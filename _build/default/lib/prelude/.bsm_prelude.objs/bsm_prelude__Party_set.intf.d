lib/prelude/party_set.mli: Format Party_id Side
