lib/prelude/party_id.ml: Format Int List Side String
