lib/prelude/table.mli:
