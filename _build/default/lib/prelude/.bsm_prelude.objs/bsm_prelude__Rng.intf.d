lib/prelude/rng.mli:
