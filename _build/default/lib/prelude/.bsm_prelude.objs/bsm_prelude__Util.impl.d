lib/prelude/util.ml: Array Format List
