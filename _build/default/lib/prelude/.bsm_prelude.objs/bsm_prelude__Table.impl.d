lib/prelude/table.ml: Buffer List String
