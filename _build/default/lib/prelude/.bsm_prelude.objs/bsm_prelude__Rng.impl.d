lib/prelude/rng.ml: Array Fun List Random Util
