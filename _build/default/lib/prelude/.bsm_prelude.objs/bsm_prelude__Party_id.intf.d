lib/prelude/party_id.mli: Format Side
