(** Deterministic randomness for tests, generators and benchmarks.

    Every randomized component takes an explicit [Rng.t] so that runs are
    reproducible from a seed; nothing in the repository touches the global
    [Random] state. *)

type t

(** [make seed] creates an independent generator. *)
val make : int -> t

(** [split t] derives a new generator; advancing one does not affect the
    other. *)
val split : t -> t

(** [int t bound] is uniform in [0 .. bound-1]; [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** [shuffle t xs] is a uniform permutation of [xs] (Fisher–Yates). *)
val shuffle : t -> 'a list -> 'a list

(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)
val permutation : t -> int -> int list

(** [choose t xs] picks one element uniformly. Raises [Invalid_argument] on
    an empty list. *)
val choose : t -> 'a list -> 'a

(** [sample t m xs] picks [m] distinct elements uniformly (in random
    order). Raises [Invalid_argument] if [m > List.length xs]. *)
val sample : t -> int -> 'a list -> 'a list
