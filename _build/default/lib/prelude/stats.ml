type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty"
  | xs ->
    let n = List.length xs in
    let fn = float_of_int n in
    let mean = List.fold_left ( +. ) 0. xs /. fn in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. xs /. fn
    in
    {
      n;
      mean;
      stddev = sqrt var;
      min = List.fold_left Float.min infinity xs;
      max = List.fold_left Float.max neg_infinity xs;
    }

let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
    if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let rate hits total =
  if total = 0 then 0. else 100. *. float_of_int hits /. float_of_int total

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f max=%.2f" s.n s.mean s.stddev
    s.min s.max
