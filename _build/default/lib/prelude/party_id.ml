type t = {
  side : Side.t;
  index : int;
}

let make side index =
  if index < 0 then invalid_arg "Party_id.make: negative index";
  { side; index }

let left index = make Side.Left index
let right index = make Side.Right index
let side t = t.side
let index t = t.index

let equal a b = Side.equal a.side b.side && Int.equal a.index b.index

let compare a b =
  match Side.compare a.side b.side with
  | 0 -> Int.compare a.index b.index
  | c -> c

let hash t = (Side.compare t.side Side.Left * 1_000_003) + t.index

let to_string t = Side.to_string t.side ^ string_of_int t.index

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  let fail () = invalid_arg ("Party_id.of_string: " ^ s) in
  if String.length s < 2 then fail ();
  let side =
    match s.[0] with
    | 'L' -> Side.Left
    | 'R' -> Side.Right
    | _ -> fail ()
  in
  let index =
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 -> i
    | Some _ | None -> fail ()
  in
  make side index

let side_members side ~k = List.init k (fun i -> make side i)

let all ~k = side_members Side.Left ~k @ side_members Side.Right ~k

let to_dense ~k t =
  if t.index >= k then invalid_arg "Party_id.to_dense: index out of range";
  match t.side with
  | Side.Left -> t.index
  | Side.Right -> k + t.index

let of_dense ~k i =
  if i < 0 || i >= 2 * k then invalid_arg "Party_id.of_dense: out of range";
  if i < k then left i else right (i - k)
