module S = Set.Make (Party_id)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let add = S.add
let remove = S.remove
let mem = S.mem
let cardinal = S.cardinal
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let equal = S.equal
let of_list = S.of_list
let to_list = S.elements
let elements = S.elements
let fold = S.fold
let iter = S.iter
let filter = S.filter
let for_all = S.for_all
let exists = S.exists

let count_side side t =
  S.fold (fun p acc -> if Side.equal (Party_id.side p) side then acc + 1 else acc) t 0

let restrict_side side t = S.filter (fun p -> Side.equal (Party_id.side p) side) t

let full ~k = S.of_list (Party_id.all ~k)

let complement ~k t = S.diff (full ~k) t

let power_set parties =
  let add_party subsets p = subsets @ List.map (S.add p) subsets in
  List.fold_left add_party [ S.empty ] parties

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Party_id.pp)
    (S.elements t)
