lib/wire/wire.mli: Bsm_prelude
