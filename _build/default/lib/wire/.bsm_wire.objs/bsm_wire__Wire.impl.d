lib/wire/wire.ml: Bsm_prelude Buffer Char Format List Party_id Side String Sys
