open Bsm_prelude
module SM = Bsm_stable_matching
module Engine = Bsm_runtime.Engine
module B = Bsm_broadcast
module Core = Bsm_core
module Crypto = Bsm_crypto.Crypto

let silent = B.Strategies.silent

let noise ~seed (env : Engine.env) =
  B.Strategies.noise ~seed ~rounds:60 ~burst:8 ~targets:(Party_id.all ~k:env.Engine.k)
    env

(* Reconstruct the honest program inside the adversary: PKI derivation is
   deterministic in (k, seed), so a corrupted party still signs as itself. *)
let honest_program ~setting ~seed ~input ~self =
  let plan = Core.Select.plan_exn setting in
  let pki = Crypto.Pki.setup ~k:setting.Core.Setting.k ~seed in
  plan.Core.Select.program ~pki ~input ~self

let crash ~setting ~seed ~input ~self ~round =
  B.Strategies.crash_at ~round ~honest:(honest_program ~setting ~seed ~input ~self)

let lying ~setting ~seed ~fake ~self = honest_program ~setting ~seed ~input:fake ~self

let garble_after ~setting ~seed ~input ~self ~from_round (env : Engine.env) =
  (* Honest sends before [from_round], shape-preserving garbage afterwards;
     a crash of the wrapped program is adversary-internal, not an error. *)
  let honest = honest_program ~setting ~seed ~input ~self in
  let rng = Rng.make (seed lxor 0xbad) in
  let env' =
    {
      env with
      send =
        (fun dst msg ->
          if env.Engine.round () < from_round then env.Engine.send dst msg
          else
            env.Engine.send dst
              (String.init (String.length msg) (fun _ -> Char.chr (Rng.int rng 256))));
    }
  in
  try honest env' with _ -> ()

let random_coalition rng ~setting ~seed ~profile =
  let k = setting.Core.Setting.k in
  let pick side budget =
    Rng.sample rng budget (Party_id.side_members side ~k)
  in
  let members =
    pick Side.Left setting.Core.Setting.t_left
    @ pick Side.Right setting.Core.Setting.t_right
  in
  List.map
    (fun p ->
      let strategy =
        match Rng.int rng 5 with
        | 0 -> silent
        | 1 -> noise ~seed:(Rng.int rng 1_000_000)
        | 2 ->
          crash ~setting ~seed ~input:(SM.Profile.prefs profile p) ~self:p
            ~round:(Rng.int rng 20)
        | 3 ->
          lying ~setting ~seed ~fake:(SM.Prefs.random rng k) ~self:p
        | _ ->
          garble_after ~setting ~seed ~input:(SM.Profile.prefs profile p) ~self:p
            ~from_round:(Rng.int rng 15)
      in
      p, strategy)
    members
