(** Byzantine strategy kit for bSM scenarios.

    Everything here produces an {!Bsm_runtime.Engine.program} to be listed
    in a scenario's [byzantine] field. Generic transport-level strategies
    ({!Bsm_broadcast.Strategies}) are complemented by protocol-aware ones
    that participate correctly but adversarially. *)

open Bsm_prelude
module SM := Bsm_stable_matching
module Engine := Bsm_runtime.Engine

(** Never sends a message (non-participation). *)
val silent : Engine.program

(** Random bytes to random parties every round. *)
val noise : seed:int -> Engine.program

(** Follows the protocol honestly until [round], then goes dark. *)
val crash :
  setting:Bsm_core.Setting.t ->
  seed:int ->
  input:SM.Prefs.t ->
  self:Party_id.t ->
  round:int ->
  Engine.program

(** Runs the honest protocol with a misreported preference list — the
    classical manipulation, which is {e not} a bSM violation but changes
    the matching; used by the manipulation experiments. [seed] must equal
    the scenario's seed (same trusted setup). *)
val lying :
  setting:Bsm_core.Setting.t ->
  seed:int ->
  fake:SM.Prefs.t ->
  self:Party_id.t ->
  Engine.program

(** Equivocates at the input-dissemination stage: runs the honest protocol
    but with [garble]d outgoing bytes after [from_round]. *)
val garble_after :
  setting:Bsm_core.Setting.t ->
  seed:int ->
  input:SM.Prefs.t ->
  self:Party_id.t ->
  from_round:int ->
  Engine.program

(** [random_coalition rng ~setting ~seed ~profile] draws a maximal
    admissible coalition (exactly [t_left] + [t_right] members) with an
    independently random strategy per member. *)
val random_coalition :
  Rng.t ->
  setting:Bsm_core.Setting.t ->
  seed:int ->
  profile:SM.Profile.t ->
  (Party_id.t * Engine.program) list
