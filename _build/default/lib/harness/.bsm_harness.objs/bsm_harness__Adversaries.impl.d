lib/harness/adversaries.ml: Bsm_broadcast Bsm_core Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Char List Party_id Rng Side String
