lib/harness/scenario.mli: Bsm_core Bsm_prelude Bsm_runtime Bsm_stable_matching Format Party_id
