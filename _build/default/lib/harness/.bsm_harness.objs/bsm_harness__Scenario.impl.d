lib/harness/scenario.ml: Bsm_core Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_wire Format List Party_id Party_set Side
