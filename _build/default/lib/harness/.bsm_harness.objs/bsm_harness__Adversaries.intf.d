lib/harness/adversaries.mli: Bsm_core Bsm_prelude Bsm_runtime Bsm_stable_matching Party_id Rng
