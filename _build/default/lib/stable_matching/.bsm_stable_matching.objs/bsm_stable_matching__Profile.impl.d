lib/stable_matching/profile.ml: Array Bsm_prelude Bsm_wire Format Party_id Prefs Side
