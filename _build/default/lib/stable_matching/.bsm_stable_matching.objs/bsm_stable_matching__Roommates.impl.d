lib/stable_matching/roommates.ml: Array Bsm_prelude Fun Int List Rng Util
