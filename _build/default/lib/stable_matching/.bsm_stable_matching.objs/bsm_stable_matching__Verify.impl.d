lib/stable_matching/verify.ml: Array Format Int List Matching Prefs Profile
