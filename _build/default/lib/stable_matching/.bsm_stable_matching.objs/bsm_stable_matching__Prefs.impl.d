lib/stable_matching/prefs.ml: Array Bsm_prelude Bsm_wire Format Fun List Rng Stdlib Util
