lib/stable_matching/lattice.ml: Array Bool Bsm_prelude Fun Gale_shapley Int List Matching Prefs Profile Set Verify
