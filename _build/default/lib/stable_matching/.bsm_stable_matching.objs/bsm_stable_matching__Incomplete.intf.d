lib/stable_matching/incomplete.mli: Bsm_prelude
