lib/stable_matching/profile.mli: Bsm_prelude Bsm_wire Format Party_id Prefs Rng
