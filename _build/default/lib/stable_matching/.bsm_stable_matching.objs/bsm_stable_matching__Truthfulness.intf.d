lib/stable_matching/truthfulness.mli: Bsm_prelude Party_id Prefs Profile Side
