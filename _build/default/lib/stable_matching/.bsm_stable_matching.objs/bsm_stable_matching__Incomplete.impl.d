lib/stable_matching/incomplete.ml: Array Bsm_prelude Fun List Rng
