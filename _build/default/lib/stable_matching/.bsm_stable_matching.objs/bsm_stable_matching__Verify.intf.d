lib/stable_matching/verify.mli: Format Matching Profile
