lib/stable_matching/prefs.mli: Bsm_prelude Bsm_wire Format
