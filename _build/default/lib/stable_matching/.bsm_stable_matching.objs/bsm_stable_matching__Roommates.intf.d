lib/stable_matching/roommates.mli: Bsm_prelude
