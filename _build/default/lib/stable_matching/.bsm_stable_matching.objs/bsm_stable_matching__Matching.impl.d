lib/stable_matching/matching.ml: Array Bsm_prelude Bsm_wire Format Fun List Party_id Side Stdlib Util
