lib/stable_matching/gale_shapley.ml: Array Bsm_prelude List Matching Prefs Profile Side
