lib/stable_matching/gale_shapley.mli: Bsm_prelude Matching Profile Side
