lib/stable_matching/lattice.mli: Matching Profile
