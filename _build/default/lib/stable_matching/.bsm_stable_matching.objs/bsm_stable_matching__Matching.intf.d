lib/stable_matching/matching.mli: Bsm_prelude Bsm_wire Format Party_id
