lib/stable_matching/truthfulness.ml: Bsm_prelude Fun Gale_shapley List Matching Party_id Prefs Profile Side
