open Bsm_prelude

type instance = {
  n : int;
  rank : int array array; (* rank.(i).(j) = position of j in i's list *)
  order : int array array; (* order.(i).(r) = person at rank r *)
}

let n t = t.n

let make prefs =
  let n = Array.length prefs in
  if n < 2 || n mod 2 <> 0 then Error "n must be even and >= 2"
  else begin
    let ok_list i xs =
      List.length xs = n - 1
      && List.sort_uniq compare xs = List.filter (( <> ) i) (List.init n Fun.id)
    in
    let valid = ref true in
    Array.iteri (fun i xs -> if not (ok_list i xs) then valid := false) prefs;
    if not !valid then Error "each list must rank all other persons exactly once"
    else begin
      let order = Array.map Array.of_list prefs in
      let rank = Array.make_matrix n n (-1) in
      Array.iteri (fun i ord -> Array.iteri (fun r j -> rank.(i).(j) <- r) ord) order;
      Ok { n; rank; order }
    end
  end

let make_exn prefs =
  match make prefs with
  | Ok t -> t
  | Error msg -> invalid_arg ("Roommates.make_exn: " ^ msg)

let random rng n =
  let list_for i = Rng.shuffle rng (List.filter (( <> ) i) (List.init n Fun.id)) in
  make_exn (Array.init n list_for)

(* Mutable reduced-table state for Irving's algorithm. [active.(i).(j)]
   tracks whether j still appears in i's list (always symmetric). *)
type state = {
  inst : instance;
  active : bool array array;
}

let state_of inst =
  {
    inst;
    active =
      Array.init inst.n (fun i -> Array.init inst.n (fun j -> i <> j));
  }

let delete st i j =
  st.active.(i).(j) <- false;
  st.active.(j).(i) <- false

let first st i =
  let ord = st.inst.order.(i) in
  let rec go r = if r >= Array.length ord then None
    else if st.active.(i).(ord.(r)) then Some ord.(r) else go (r + 1)
  in
  go 0

let second st i =
  let ord = st.inst.order.(i) in
  let rec go r seen =
    if r >= Array.length ord then None
    else if st.active.(i).(ord.(r)) then
      if seen then Some ord.(r) else go (r + 1) true
    else go (r + 1) seen
  in
  go 0 false

let last st i =
  let ord = st.inst.order.(i) in
  let rec go r = if r < 0 then None
    else if st.active.(i).(ord.(r)) then Some ord.(r) else go (r - 1)
  in
  go (Array.length ord - 1)

let list_length st i =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 st.active.(i)

(* Truncate y's list strictly below [keep] (symmetric deletions). *)
let truncate_below st y keep =
  let ord = st.inst.order.(y) in
  let cutoff = st.inst.rank.(y).(keep) in
  Array.iteri (fun r z -> if r > cutoff && st.active.(y).(z) then delete st y z) ord

(* Phase 1 (Irving / Gusfield–Irving §4.2): while some free person x has a
   nonempty list, x proposes to first(x) =: y; y accepts (its list was
   already truncated below its current holder, so any remaining proposer is
   preferred), frees its previous holder, and truncates its list strictly
   below x. Fails — no stable matching — when a free person's list runs
   empty. *)
let phase1 st =
  let n = st.inst.n in
  let held = Array.make n (-1) in
  let rec go = function
    | [] -> true
    | x :: free -> begin
      match first st x with
      | None -> false
      | Some y ->
        let displaced = held.(y) in
        held.(y) <- x;
        truncate_below st y x;
        go (if displaced >= 0 then displaced :: free else free)
    end
  in
  go (List.init n Fun.id)

(* Phase 2: repeatedly find and eliminate an all-or-nothing rotation. *)
let find_rotation st start =
  (* x_{i+1} = last(second(x_i)); stop at the first repeated x. *)
  let rec walk path x =
    match Util.find_index (Int.equal x) path with
    | Some pos ->
      (* path is reversed: the cycle is the prefix up to [pos]. *)
      List.rev (Util.take (pos + 1) path)
    | None -> begin
      match second st x with
      | None -> invalid_arg "Roommates: rotation walk hit a singleton list"
      | Some y -> begin
        match last st y with
        | None -> invalid_arg "Roommates: rotation walk hit an empty list"
        | Some x' -> walk (x :: path) x'
      end
    end
  in
  walk [] start

let eliminate_rotation st cycle =
  (* For each x in the cycle, second(x) ends up holding x: truncate
     second(x)'s list strictly below x. Collect the seconds first — the
     truncations themselves change the lists. *)
  let seconds =
    List.map
      (fun x ->
        match second st x with
        | Some y -> x, y
        | None -> invalid_arg "Roommates: rotation lost its second")
      cycle
  in
  List.iter (fun (x, y) -> truncate_below st y x) seconds

let solve inst =
  let st = state_of inst in
  if not (phase1 st) then None
  else begin
    let n = inst.n in
    let rec loop () =
      let lengths = List.init n (fun i -> list_length st i) in
      if List.exists (Int.equal 0) lengths then None
      else if List.for_all (Int.equal 1) lengths then begin
        let partner = Array.make n (-1) in
        let fill i =
          match first st i with
          | Some j -> partner.(i) <- j
          | None -> assert false
        in
        List.iter fill (List.init n Fun.id);
        (* The theory guarantees mutuality; guard against implementation
           bugs rather than returning a corrupt matching. *)
        let mutual = Array.for_all (fun j -> j >= 0 && partner.(j) >= 0) partner in
        if mutual && Array.for_all Fun.id (Array.mapi (fun i j -> partner.(j) = i) partner)
        then Some partner
        else None
      end
      else begin
        let start =
          match Util.find_index (fun i -> list_length st i >= 2) (List.init n Fun.id) with
          | Some i -> i
          | None -> assert false
        in
        let cycle = find_rotation st start in
        eliminate_rotation st cycle;
        loop ()
      end
    in
    loop ()
  end

let is_stable inst partner =
  let n = inst.n in
  Array.length partner = n
  && Array.for_all (fun j -> j >= 0 && j < n) partner
  && Array.for_all Fun.id (Array.mapi (fun i j -> partner.(j) = i && j <> i) partner)
  &&
  let blocks i j =
    i <> j
    && partner.(i) <> j
    && inst.rank.(i).(j) < inst.rank.(i).(partner.(i))
    && inst.rank.(j).(i) < inst.rank.(j).(partner.(j))
  in
  not
    (List.exists
       (fun i -> List.exists (blocks i) (List.init n Fun.id))
       (List.init n Fun.id))

let all_stable_brute inst =
  let n = inst.n in
  (* Enumerate perfect matchings: repeatedly pair the smallest free person. *)
  let rec pairings free =
    match free with
    | [] -> [ [] ]
    | i :: rest ->
      List.concat_map
        (fun j ->
          let rest' = List.filter (( <> ) j) rest in
          List.map (fun m -> (i, j) :: m) (pairings rest'))
        rest
  in
  let to_array pairs =
    let partner = Array.make n (-1) in
    List.iter
      (fun (i, j) ->
        partner.(i) <- j;
        partner.(j) <- i)
      pairs;
    partner
  in
  List.filter (is_stable inst) (List.map to_array (pairings (List.init n Fun.id)))
