(** The stable roommates problem (Irving's algorithm).

    The paper's conclusion names the byzantine stable roommates problem as
    the first open direction, noting the key difference from bipartite
    stable matching: a stable roommates instance may have {e no} solution.
    This module provides the classical (fault-free) algorithmic substrate
    for that direction: Irving's O(n²) two-phase algorithm deciding
    existence and producing a stable matching when one exists.

    An instance has [n] persons (n even); person [i]'s preference list is a
    permutation of the other [n-1] persons. A perfect matching is stable
    iff no two unmatched persons prefer each other to their partners. *)

type instance

(** [make prefs] — [prefs.(i)] lists the other persons in [i]'s preference
    order. Validates: [n] even and ≥ 2, each list a permutation of the
    others. *)
val make : int list array -> (instance, string) result

val make_exn : int list array -> instance

val n : instance -> int

(** [random rng n] draws an instance uniformly. *)
val random : Bsm_prelude.Rng.t -> int -> instance

(** [solve inst] is [Some partner] with [partner.(i)] the partner of [i]
    in a stable matching, or [None] when the instance admits none. *)
val solve : instance -> int array option

(** [is_stable inst partner] checks symmetry, perfection and absence of
    blocking pairs. *)
val is_stable : instance -> int array -> bool

(** Factorial-time oracle for tests: all stable perfect matchings. *)
val all_stable_brute : instance -> int array list
