open Bsm_prelude
module Wire = Bsm_wire.Wire

type t = {
  order : int array; (* order.(rank) = candidate *)
  ranks : int array; (* ranks.(candidate) = rank *)
}

let of_array order =
  let k = Array.length order in
  if not (Util.is_permutation (Array.to_list order) ~n:k) then
    Error "preference list is not a permutation"
  else begin
    let ranks = Array.make k 0 in
    Array.iteri (fun r c -> ranks.(c) <- r) order;
    Ok { order; ranks }
  end

let of_list xs = of_array (Array.of_list xs)

let of_list_exn xs =
  match of_list xs with
  | Ok t -> t
  | Error msg -> invalid_arg ("Prefs.of_list_exn: " ^ msg)

let to_list t = Array.to_list t.order
let length t = Array.length t.order

let at t r =
  if r < 0 || r >= length t then invalid_arg "Prefs.at: rank out of range";
  t.order.(r)

let rank t c =
  if c < 0 || c >= length t then invalid_arg "Prefs.rank: unknown candidate";
  t.ranks.(c)

let favorite t = at t 0
let prefers t a b = rank t a < rank t b

let identity k =
  if k <= 0 then invalid_arg "Prefs.identity: k must be positive";
  of_list_exn (List.init k Fun.id)

let random rng k =
  if k <= 0 then invalid_arg "Prefs.random: k must be positive";
  of_list_exn (Rng.permutation rng k)

let similar rng ~swaps base =
  let a = Array.copy base.order in
  let k = Array.length a in
  for _ = 1 to swaps do
    if k >= 2 then begin
      let i = Rng.int rng (k - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(i + 1);
      a.(i + 1) <- tmp
    end
  done;
  match of_array a with
  | Ok t -> t
  | Error _ -> assert false (* transpositions preserve permutation-ness *)

let equal a b = a.order = b.order
let compare a b = Stdlib.compare a.order b.order

let pp ppf t =
  Format.fprintf ppf "[%a]" (Util.pp_comma_list Format.pp_print_int) (to_list t)

let codec =
  Wire.map
    ~inject:(fun xs ->
      match of_list xs with
      | Ok t -> t
      | Error msg -> raise (Wire.Malformed msg))
    ~project:to_list
    (Wire.list Wire.uint)
