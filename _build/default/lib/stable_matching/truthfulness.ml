open Bsm_prelude

type manipulation = {
  manipulator : Party_id.t;
  fake : Prefs.t;
  honest_partner : int;
  lying_partner : int;
}

let partner_index m p =
  match Party_id.side p with
  | Side.Left -> Matching.partner_of_left m (Party_id.index p)
  | Side.Right -> Matching.partner_of_right m (Party_id.index p)

let all_prefs k =
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) xs)))
        xs
  in
  List.map Prefs.of_list_exn (perms (List.init k Fun.id))

let best_lie profile p ~proposers =
  let truth = Profile.prefs profile p in
  let honest_partner = partner_index (Gale_shapley.run ~proposers profile) p in
  let try_lie best fake =
    if Prefs.equal fake truth then best
    else begin
      let lying_partner =
        partner_index (Gale_shapley.run ~proposers (Profile.with_prefs profile p fake)) p
      in
      let improves_on current = Prefs.prefers truth lying_partner current in
      match best with
      | Some b when not (improves_on b.lying_partner) -> best
      | Some _ | None ->
        if improves_on honest_partner then
          Some { manipulator = p; fake; honest_partner; lying_partner }
        else best
    end
  in
  List.fold_left try_lie None (all_prefs (Profile.k profile))

let proposer_can_gain profile =
  let k = Profile.k profile in
  List.exists
    (fun i -> best_lie profile (Party_id.left i) ~proposers:Side.Left <> None)
    (List.init k Fun.id)

let roth_instance () =
  (* Left-proposing run gives R0 its 2nd true choice (L1); misreporting
     [0;2;1] triggers a rejection chain that ends with R0 holding L0, its
     true favorite. *)
  let profile =
    Profile.make_exn
      ~left:
        [|
          Prefs.of_list_exn [ 1; 0; 2 ];
          Prefs.of_list_exn [ 0; 1; 2 ];
          Prefs.of_list_exn [ 0; 1; 2 ];
        |]
      ~right:
        [|
          Prefs.of_list_exn [ 0; 1; 2 ];
          Prefs.of_list_exn [ 1; 0; 2 ];
          Prefs.of_list_exn [ 0; 1; 2 ];
        |]
  in
  let p = Party_id.right 0 in
  match best_lie profile p ~proposers:Side.Left with
  | Some m -> profile, m
  | None -> assert false (* the instance is constructed to admit the lie *)
