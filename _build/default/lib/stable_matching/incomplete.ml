open Bsm_prelude

type t = {
  k_left : int;
  k_right : int;
  left_order : int array array; (* left_order.(i) = ranked acceptable right indices *)
  left_rank : int array array; (* left_rank.(i).(j) = rank, or -1 if unacceptable *)
  right_rank : int array array;
}

let k_left t = t.k_left
let k_right t = t.k_right

let rank_table ~rows ~cols order =
  let rank = Array.make_matrix rows cols (-1) in
  let ok = ref true in
  Array.iteri
    (fun i xs ->
      List.iteri
        (fun r j ->
          if j < 0 || j >= cols || rank.(i).(j) <> -1 then ok := false
          else rank.(i).(j) <- r)
        xs)
    order;
  if !ok then Some rank else None

let make ~left ~right =
  let k_left = Array.length left and k_right = Array.length right in
  if k_left = 0 || k_right = 0 then Error "empty side"
  else
    match
      ( rank_table ~rows:k_left ~cols:k_right left,
        rank_table ~rows:k_right ~cols:k_left right )
    with
    | Some left_rank, Some right_rank ->
      Ok
        {
          k_left;
          k_right;
          left_order = Array.map Array.of_list left;
          left_rank;
          right_rank;
        }
    | None, _ | _, None -> Error "list entries must be in-range and duplicate-free"

let make_exn ~left ~right =
  match make ~left ~right with
  | Ok t -> t
  | Error msg -> invalid_arg ("Incomplete.make_exn: " ^ msg)

let random rng ~k ~acceptance =
  let threshold = int_of_float (acceptance *. 1000.) in
  let side () =
    Array.init k (fun _ ->
        let acceptable = List.filter (fun _ -> Rng.int rng 1000 < threshold) (List.init k Fun.id) in
        Rng.shuffle rng acceptable)
  in
  make_exn ~left:(side ()) ~right:(side ())

type matching = {
  l2r : int option array;
  r2l : int option array;
}

let mutual t i j = t.left_rank.(i).(j) >= 0 && t.right_rank.(j).(i) >= 0

(* Extended Gale-Shapley: free left parties propose down their lists,
   skipping non-mutual entries; a right party holds the proposer it ranks
   best; parties that exhaust their lists stay single. *)
let solve t =
  let l2r = Array.make t.k_left None in
  let r2l = Array.make t.k_right None in
  let next = Array.make t.k_left 0 in
  let rec propose i =
    if next.(i) >= Array.length t.left_order.(i) then ()
    else begin
      let j = t.left_order.(i).(next.(i)) in
      next.(i) <- next.(i) + 1;
      if not (mutual t i j) then propose i
      else
        match r2l.(j) with
        | None ->
          r2l.(j) <- Some i;
          l2r.(i) <- Some j
        | Some current ->
          if t.right_rank.(j).(i) < t.right_rank.(j).(current) then begin
            r2l.(j) <- Some i;
            l2r.(i) <- Some j;
            l2r.(current) <- None;
            propose current
          end
          else propose i
    end
  in
  for i = 0 to t.k_left - 1 do
    propose i
  done;
  { l2r; r2l }

let well_formed t m =
  Array.length m.l2r = t.k_left
  && Array.length m.r2l = t.k_right
  && Array.for_all
       (fun j ->
         match j with
         | None -> true
         | Some j -> j >= 0 && j < t.k_right)
       m.l2r
  &&
  let symmetric_l i =
    match m.l2r.(i) with
    | None -> true
    | Some j -> mutual t i j && m.r2l.(j) = Some i
  in
  let symmetric_r j =
    match m.r2l.(j) with
    | None -> true
    | Some i -> i >= 0 && i < t.k_left && m.l2r.(i) = Some j
  in
  List.for_all symmetric_l (List.init t.k_left Fun.id)
  && List.for_all symmetric_r (List.init t.k_right Fun.id)

let blocking_pair_exists t m =
  let left_wants i j =
    match m.l2r.(i) with
    | None -> true
    | Some j' -> t.left_rank.(i).(j) < t.left_rank.(i).(j')
  in
  let right_wants j i =
    match m.r2l.(j) with
    | None -> true
    | Some i' -> t.right_rank.(j).(i) < t.right_rank.(j).(i')
  in
  List.exists
    (fun i ->
      List.exists
        (fun j ->
          mutual t i j
          && m.l2r.(i) <> Some j
          && left_wants i j && right_wants j i)
        (List.init t.k_right Fun.id))
    (List.init t.k_left Fun.id)

let is_stable t m = well_formed t m && not (blocking_pair_exists t m)

let all_stable_brute t =
  (* Enumerate all partial matchings over mutually-acceptable pairs. *)
  let rec go i r_used =
    if i = t.k_left then [ [] ]
    else begin
      let without = List.map (fun rest -> None :: rest) (go (i + 1) r_used) in
      let withs =
        List.concat_map
          (fun j ->
            if mutual t i j && not (List.mem j r_used) then
              List.map (fun rest -> Some j :: rest) (go (i + 1) (j :: r_used))
            else [])
          (List.init t.k_right Fun.id)
      in
      without @ withs
    end
  in
  let to_matching choice =
    let l2r = Array.of_list choice in
    let r2l = Array.make t.k_right None in
    Array.iteri
      (fun i j ->
        match j with
        | Some j -> r2l.(j) <- Some i
        | None -> ())
      l2r;
    { l2r; r2l }
  in
  List.filter (is_stable t) (List.map to_matching (go 0 []))

let matched_side arr =
  Array.to_list arr
  |> List.mapi (fun i x -> i, x)
  |> List.filter_map (fun (i, x) -> if x <> None then Some i else None)

let matched_left m = matched_side m.l2r
let matched_right m = matched_side m.r2l

(* --- ties ------------------------------------------------------------- *)

let break_ties rng tiers =
  Array.map (fun groups -> List.concat_map (fun g -> Rng.shuffle rng g) groups) tiers

let solve_with_ties rng ~left ~right =
  match make ~left:(break_ties rng left) ~right:(break_ties rng right) with
  | Error _ as e -> e
  | Ok t -> Ok (solve t)

let tier_rank tiers =
  (* tier_rank.(i).(j) = index of j's tier in i's list, or -1. *)
  let cols =
    Array.fold_left
      (fun acc groups -> List.fold_left (List.fold_left max) acc groups)
      (-1) tiers
    + 1
  in
  Array.map
    (fun groups ->
      let rank = Array.make (max cols 1) (-1) in
      List.iteri (fun tier g -> List.iter (fun j -> if j >= 0 && j < cols then rank.(j) <- tier) g) groups;
      rank)
    tiers

let is_weakly_stable ~left ~right m =
  let lrank = tier_rank left and rrank = tier_rank right in
  let acceptable rank i j = j < Array.length rank.(i) && rank.(i).(j) >= 0 in
  let strictly_wants rank i j current =
    match current with
    | None -> true
    | Some j' -> rank.(i).(j) < rank.(i).(j')
  in
  let k_left = Array.length left and k_right = Array.length right in
  let blocking =
    List.exists
      (fun i ->
        List.exists
          (fun j ->
            acceptable lrank i j && acceptable rrank j i
            && m.l2r.(i) <> Some j
            && strictly_wants lrank i j m.l2r.(i)
            && strictly_wants rrank j i m.r2l.(j))
          (List.init k_right Fun.id))
      (List.init k_left Fun.id)
  in
  not blocking
