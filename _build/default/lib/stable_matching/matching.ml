open Bsm_prelude
module Wire = Bsm_wire.Wire

type t = {
  l2r : int array;
  r2l : int array;
}

let of_l2r a =
  let k = Array.length a in
  if k = 0 then Error "empty matching"
  else if not (Util.is_permutation (Array.to_list a) ~n:k) then
    Error "matching is not a bijection"
  else begin
    let r2l = Array.make k 0 in
    Array.iteri (fun i j -> r2l.(j) <- i) a;
    Ok { l2r = a; r2l }
  end

let of_l2r_exn a =
  match of_l2r a with
  | Ok t -> t
  | Error msg -> invalid_arg ("Matching.of_l2r_exn: " ^ msg)

let of_pairs k pairs =
  if List.length pairs <> k then Error "wrong number of pairs"
  else begin
    let a = Array.make k (-1) in
    let fill acc (i, j) =
      match acc with
      | Error _ as e -> e
      | Ok () ->
        if i < 0 || i >= k || j < 0 || j >= k then Error "index out of range"
        else if a.(i) <> -1 then Error "duplicate left index"
        else begin
          a.(i) <- j;
          Ok ()
        end
    in
    match List.fold_left fill (Ok ()) pairs with
    | Error msg -> Error msg
    | Ok () -> of_l2r a
  end

let k t = Array.length t.l2r

let partner_of_left t i =
  if i < 0 || i >= k t then invalid_arg "Matching.partner_of_left";
  t.l2r.(i)

let partner_of_right t j =
  if j < 0 || j >= k t then invalid_arg "Matching.partner_of_right";
  t.r2l.(j)

let partner t p =
  match Party_id.side p with
  | Side.Left -> Party_id.right (partner_of_left t (Party_id.index p))
  | Side.Right -> Party_id.left (partner_of_right t (Party_id.index p))

let to_pairs t = Array.to_list (Array.mapi (fun i j -> i, j) t.l2r)

let equal a b = a.l2r = b.l2r
let compare a b = Stdlib.compare a.l2r b.l2r

let pp ppf t =
  let pair ppf (i, j) = Format.fprintf ppf "L%d-R%d" i j in
  Format.fprintf ppf "{%a}" (Util.pp_comma_list pair) (to_pairs t)

let codec =
  Wire.map
    ~inject:(fun xs ->
      match of_l2r (Array.of_list xs) with
      | Ok t -> t
      | Error msg -> raise (Wire.Malformed msg))
    ~project:(fun t -> Array.to_list t.l2r)
    (Wire.list Wire.uint)

let enumerate k =
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) xs)))
        xs
  in
  List.map (fun p -> of_l2r_exn (Array.of_list p)) (perms (List.init k Fun.id))
