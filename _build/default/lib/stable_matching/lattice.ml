let combine profile ~better a b =
  let k = Profile.k profile in
  let lp = Profile.left profile in
  let pick i =
    let ra = Matching.partner_of_left a i in
    let rb = Matching.partner_of_left b i in
    let a_better = Prefs.prefers lp.(i) ra rb in
    if Bool.equal a_better better then ra else rb
  in
  Matching.of_l2r_exn (Array.init k pick)

let meet profile a b = combine profile ~better:true a b
let join profile a b = combine profile ~better:false a b

(* McVitie–Wilson breakmarriage: free [left], advance it past its current
   partner, and run the sequential proposal chain. Women only trade up, so
   the chain ends when the originally-divorced woman accepts a proposer she
   prefers to her old partner — or fails when a proposer exhausts his
   list. *)
let breakmarriage profile m ~left =
  let k = Profile.k profile in
  let lp = Profile.left profile in
  let rp = Profile.right profile in
  let partner_w = Array.init k (fun r -> Matching.partner_of_right m r) in
  let next = Array.init k (fun l -> Prefs.rank lp.(l) (Matching.partner_of_left m l) + 1) in
  let w0 = Matching.partner_of_left m left in
  let rec chain free =
    if next.(free) >= k then None
    else begin
      let w = Prefs.at lp.(free) next.(free) in
      next.(free) <- next.(free) + 1;
      if Prefs.prefers rp.(w) free partner_w.(w) then begin
        let old = partner_w.(w) in
        partner_w.(w) <- free;
        if Int.equal w w0 then begin
          let l2r = Array.make k (-1) in
          Array.iteri (fun r l -> l2r.(l) <- r) partner_w;
          Some (Matching.of_l2r_exn l2r)
        end
        else chain old
      end
      else chain free
    end
  in
  chain left

module MSet = Set.Make (Matching)

let all_stable profile =
  let k = Profile.k profile in
  let m0 = Gale_shapley.run ~proposers:Bsm_prelude.Side.Left profile in
  let rec bfs seen = function
    | [] -> seen
    | m :: queue ->
      let successors =
        List.filter_map
          (fun l -> breakmarriage profile m ~left:l)
          (List.init k Fun.id)
      in
      let fresh = List.filter (fun s -> not (MSet.mem s seen)) successors in
      let fresh = List.sort_uniq Matching.compare fresh in
      bfs (List.fold_left (fun s m -> MSet.add m s) seen fresh) (queue @ fresh)
  in
  MSet.elements (bfs (MSet.singleton m0) [ m0 ])

let all_stable_brute profile =
  List.filter (Verify.is_stable profile) (Matching.enumerate (Profile.k profile))

let egalitarian_cost profile m =
  let k = Profile.k profile in
  let lp = Profile.left profile in
  let rp = Profile.right profile in
  let cost_of l =
    let r = Matching.partner_of_left m l in
    Prefs.rank lp.(l) r + Prefs.rank rp.(r) l
  in
  List.fold_left (fun acc l -> acc + cost_of l) 0 (List.init k Fun.id)

let regret profile m =
  let k = Profile.k profile in
  let lp = Profile.left profile in
  let rp = Profile.right profile in
  let regret_of l =
    let r = Matching.partner_of_left m l in
    max (Prefs.rank lp.(l) r) (Prefs.rank rp.(r) l)
  in
  List.fold_left (fun acc l -> max acc (regret_of l)) 0 (List.init k Fun.id)

let optimum objective profile =
  match all_stable profile with
  | [] -> invalid_arg "Lattice.optimum: no stable matching (impossible)"
  | m :: ms ->
    let better acc m = if objective profile m < objective profile acc then m else acc in
    List.fold_left better m ms

let egalitarian profile = optimum egalitarian_cost profile
let minimum_regret profile = optimum regret profile
