type blocking_pair = {
  left : int;
  right : int;
}

let pp_blocking_pair ppf { left; right } = Format.fprintf ppf "(L%d, R%d)" left right

let blocking_pairs_partial profile ~left_partner ~right_partner ~consider_left
    ~consider_right =
  let k = Profile.k profile in
  let lp = Profile.left profile in
  let rp = Profile.right profile in
  (* [l] prefers [r] to its current situation: true when single (parties
     prefer any match to being alone) or when [r] ranks before the current
     partner. *)
  let left_wants l r =
    match left_partner l with
    | None -> true
    | Some r' -> (not (Int.equal r r')) && Prefs.prefers lp.(l) r r'
  in
  let right_wants r l =
    match right_partner r with
    | None -> true
    | Some l' -> (not (Int.equal l l')) && Prefs.prefers rp.(r) l l'
  in
  let pairs = ref [] in
  for l = k - 1 downto 0 do
    for r = k - 1 downto 0 do
      if consider_left l && consider_right r && left_wants l r && right_wants r l
      then pairs := { left = l; right = r } :: !pairs
    done
  done;
  !pairs

let blocking_pairs profile m =
  blocking_pairs_partial profile
    ~left_partner:(fun l -> Some (Matching.partner_of_left m l))
    ~right_partner:(fun r -> Some (Matching.partner_of_right m r))
    ~consider_left:(fun _ -> true)
    ~consider_right:(fun _ -> true)

let is_stable profile m = blocking_pairs profile m = []
let instability profile m = List.length (blocking_pairs profile m)
