(** Stable matching with incomplete preference lists (SMI) and ties (SMT).

    The paper's preliminaries cite Gusfield–Irving for the variants "where
    the individuals only provide partial preferences, or if ties are
    allowed": a stable matching still always exists, though some
    individuals may stay unmatched. This module provides those classical
    substrates.

    {b Incomplete lists.} Each party ranks only the candidates it finds
    acceptable; a pair can only be matched (or blocking) if each finds the
    other acceptable. A matching is stable iff no mutually-acceptable pair
    prefers deviating (where being unmatched is worse than any acceptable
    partner). The extended Gale–Shapley algorithm finds one, and the
    Rural-Hospitals / Gale–Sotomayor theorem says every stable matching
    matches exactly the same set of parties — property-tested here.

    {b Ties.} With ties, we implement {e weak stability} (no pair strictly
    prefers each other): breaking ties arbitrarily and solving the
    resulting strict instance yields a weakly stable matching. *)

type t
(** An SMI instance. *)

(** [make ~left ~right] — [left.(i)] is left party [i]'s ranked list of
    acceptable right indices (most preferred first); symmetric for
    [right]. Validates ranges and duplicate-freeness. Acceptability is
    {e not} required to be mutual in the input; non-mutual entries are
    ignored by the algorithms (a pair is usable only if mutual). *)
val make : left:int list array -> right:int list array -> (t, string) result

val make_exn : left:int list array -> right:int list array -> t

val k_left : t -> int
val k_right : t -> int

(** [random rng ~k ~acceptance] — each of the [k²] pairs is acceptable to
    each endpoint independently with probability [acceptance]; rankings
    uniform. *)
val random : Bsm_prelude.Rng.t -> k:int -> acceptance:float -> t

(** A partial matching: [l2r.(i) = Some j] etc.; always symmetric. *)
type matching = {
  l2r : int option array;
  r2l : int option array;
}

(** Left-proposing extended Gale–Shapley. *)
val solve : t -> matching

(** [is_stable t m] — [m] is a matching of mutually-acceptable pairs with
    no blocking pair (a mutually-acceptable pair where each side is
    unmatched or strictly prefers the other). *)
val is_stable : t -> matching -> bool

(** All stable matchings by brute force (exponential; test oracle). *)
val all_stable_brute : t -> matching list

(** [matched_left m] — the set of matched left indices, sorted. By the
    Rural Hospitals theorem this is identical across all stable matchings
    of an instance (and likewise for the right side). *)
val matched_left : matching -> int list

val matched_right : matching -> int list

(** Ties: [solve_with_ties rng ~left ~right] takes rankings given as
    {e tiers} (a list of groups, each group mutually tied), breaks ties
    uniformly at random with [rng], and solves the strict instance. The
    result is weakly stable w.r.t. the tiered preferences. *)
val solve_with_ties :
  Bsm_prelude.Rng.t ->
  left:int list list array ->
  right:int list list array ->
  (matching, string) result

(** [is_weakly_stable ~left ~right m] — no mutually-acceptable pair
    {e strictly} prefers each other under the tiered preferences. *)
val is_weakly_stable :
  left:int list list array -> right:int list list array -> matching -> bool
