(** Perfect matchings between the two sides of an instance.

    A matching pairs every left party with exactly one right party. Partial
    matchings (where byzantine non-participation leaves parties single)
    appear only in the distributed layer; the classic algorithms below
    always produce perfect matchings, as Gale–Shapley guarantees
    (Theorem 1 of the paper). *)

open Bsm_prelude

type t

(** [of_l2r a] — [a.(i)] is the right partner of left party [i]; must be a
    permutation. *)
val of_l2r : int array -> (t, string) result

val of_l2r_exn : int array -> t

(** [of_pairs k pairs] builds from explicit (left index, right index)
    pairs; every index must appear exactly once. *)
val of_pairs : int -> (int * int) list -> (t, string) result

val k : t -> int

(** [partner_of_left t i] is the right index matched with left [i]. *)
val partner_of_left : t -> int -> int

(** [partner_of_right t j] is the left index matched with right [j]. *)
val partner_of_right : t -> int -> int

(** [partner t p] is [p]'s partner as a {!Party_id.t}. *)
val partner : t -> Party_id.t -> Party_id.t

val to_pairs : t -> (int * int) list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val codec : t Bsm_wire.Wire.t

(** All k! perfect matchings; for the brute-force cross-checks on small
    instances. *)
val enumerate : int -> t list
