(** A single party's preference list.

    A preference list over [k] candidates is a permutation of
    [0 .. k-1]: the party prefers candidate [at t 0] most, then [at t 1],
    and so on. Per the paper's model, a party always prefers any candidate
    on its list to being alone. Rank lookup is O(1). *)

type t

(** [of_list xs] validates that [xs] is a permutation of
    [0 .. length xs - 1]. *)
val of_list : int list -> (t, string) result

(** [of_list_exn xs] raises [Invalid_argument] instead. *)
val of_list_exn : int list -> t

val to_list : t -> int list

(** Number of candidates. *)
val length : t -> int

(** [at t r] is the candidate at rank [r] (0 = most preferred). Raises
    [Invalid_argument] out of range. *)
val at : t -> int -> int

(** [rank t c] is the rank of candidate [c] (0 = most preferred). Raises
    [Invalid_argument] for unknown candidates. *)
val rank : t -> int -> int

(** [favorite t] is [at t 0]. *)
val favorite : t -> int

(** [prefers t a b] — does the party rank [a] strictly before [b]? *)
val prefers : t -> int -> int -> bool

(** [identity k] is the list [0; 1; ...; k-1] — the paper's "default
    preference list" assigned on behalf of byzantine parties that fail to
    provide one. *)
val identity : int -> t

(** [random rng k] is a uniformly random list. *)
val random : Bsm_prelude.Rng.t -> int -> t

(** [similar rng ~swaps base] perturbs [base] with [swaps] random adjacent
    transpositions: the "similar preference lists" regime of
    Khanchandani–Wattenhofer (OPODIS 2016) used in workload generators. *)
val similar : Bsm_prelude.Rng.t -> swaps:int -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Wire codec; decoding validates permutation-ness, so a byzantine party
    cannot smuggle a malformed list past honest decoders. *)
val codec : t Bsm_wire.Wire.t
