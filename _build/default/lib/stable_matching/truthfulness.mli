(** Strategic manipulation of Gale–Shapley.

    The paper's related-work section contrasts byzantine behaviour with the
    classical manipulation results: Roth (1982) showed stable matching
    mechanisms are not truthful, while Gale–Shapley is truthful for the
    proposing side. Both facts are reproduced executably here: a concrete
    instance where an acceptor gains by lying, and an exhaustive search
    confirming that no proposer can ever gain on small instances. *)

open Bsm_prelude

type manipulation = {
  manipulator : Party_id.t;
  fake : Prefs.t;  (** the misreported list *)
  honest_partner : int;  (** partner index under truthful reporting *)
  lying_partner : int;  (** partner index when misreporting *)
}

(** Roth's phenomenon on a concrete 3×3 instance: right party [R0] improves
    from its 2nd to its 1st true choice by misreporting, under
    left-proposing Gale–Shapley. Returns the profile and the verified
    manipulation. *)
val roth_instance : unit -> Profile.t * manipulation

(** [best_lie profile p ~proposers] searches all [k!] alternative lists for
    party [p] and returns the manipulation that yields [p] its best
    achievable partner (w.r.t. [p]'s true list), or [None] if lying never
    strictly helps. Factorial time; intended for small [k]. *)
val best_lie : Profile.t -> Party_id.t -> proposers:Side.t -> manipulation option

(** [proposer_can_gain profile] is [true] iff some left party can strictly
    gain by lying under left-proposing Gale–Shapley; by
    Dubins–Freedman / Roth this is always [false] — asserted by the test
    suite over random instances. *)
val proposer_can_gain : Profile.t -> bool
