(** The Gale–Shapley deferred-acceptance algorithm ([A_G-S], Theorem 1).

    Deterministic: given the same profile (and proposer side), every party
    computes the same matching — the property the paper's Lemma 1 relies on
    when parties run [A_G-S] locally after broadcasting preferences. *)

open Bsm_prelude

type stats = {
  proposals : int;  (** total proposals made — Θ(k²) worst case *)
  rounds : int;  (** parallel proposal rounds (McVitie–Wilson style) *)
}

(** [run ?proposers profile] computes the stable matching that is optimal
    for the [proposers] side (default [Side.Left]) and pessimal for the
    other side. *)
val run : ?proposers:Side.t -> Profile.t -> Matching.t

(** Like [run], also returning execution statistics for the
    communication-complexity experiments. *)
val run_with_stats : ?proposers:Side.t -> Profile.t -> Matching.t * stats
