(** A complete stable-matching instance: one preference list per party.

    [left.(i)] ranks the right-side candidates as seen by left party [i];
    [right.(j)] ranks the left-side candidates as seen by right party
    [j]. *)

open Bsm_prelude

type t

(** [make ~left ~right] validates that both arrays have the same length [k]
    and every list has length [k]. *)
val make : left:Prefs.t array -> right:Prefs.t array -> (t, string) result

val make_exn : left:Prefs.t array -> right:Prefs.t array -> t

(** Parties per side. *)
val k : t -> int

(** [prefs t p] is the preference list party [p] holds (over the opposite
    side). Raises [Invalid_argument] for out-of-range parties. *)
val prefs : t -> Party_id.t -> Prefs.t

val left : t -> Prefs.t array
val right : t -> Prefs.t array

(** [with_prefs t p l] replaces one party's list (used by the lying /
    manipulation experiments). *)
val with_prefs : t -> Party_id.t -> Prefs.t -> t

(** [random rng k] draws all [2k] lists uniformly and independently. *)
val random : Rng.t -> int -> t

(** [similar rng ~swaps k] draws a base list per side and perturbs it per
    party with [swaps] adjacent transpositions (correlated-preferences
    workload). *)
val similar : Rng.t -> swaps:int -> int -> t

(** [worst_case k] — all left parties hold the identical list
    [0,1,...,k-1], right parties hold "reversed" lists that force the
    proposing side through Θ(k²) proposals in Gale–Shapley. *)
val worst_case : int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val codec : t Bsm_wire.Wire.t
