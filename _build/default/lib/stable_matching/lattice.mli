(** The lattice of stable matchings.

    For a fixed profile, the set of stable matchings forms a distributive
    lattice under the left side's preference order (Conway; see
    Gusfield–Irving, "The Stable Marriage Problem"). [meet] and [join] give
    each left party the better resp. worse of its two partners; both are
    again stable. [all_stable] enumerates the whole lattice with
    McVitie–Wilson breakmarriage chains, which is polynomial per matching
    produced; [all_stable_brute] is the factorial-time cross-check used in
    tests. *)

(** [meet profile a b] — left-preferred combination (both must be stable
    for the lattice theorems to apply; not checked). *)
val meet : Profile.t -> Matching.t -> Matching.t -> Matching.t

(** [join profile a b] — left-pessimal combination. *)
val join : Profile.t -> Matching.t -> Matching.t -> Matching.t

(** [breakmarriage profile m ~left] forces left party [left] past its
    current partner and lets the proposal chain settle: [Some m'] with a
    strictly left-worse stable matching, or [None] when no stable matching
    exists below [m] through this break. [m] must be stable. *)
val breakmarriage : Profile.t -> Matching.t -> left:int -> Matching.t option

(** All stable matchings, left-optimal first, in BFS order from the
    left-optimal matching. *)
val all_stable : Profile.t -> Matching.t list

(** Factorial-time enumeration by filtering all k! matchings; test oracle
    for small [k]. *)
val all_stable_brute : Profile.t -> Matching.t list

(** [egalitarian profile] minimizes the total rank partners assign each
    other, over all stable matchings. *)
val egalitarian : Profile.t -> Matching.t

(** [minimum_regret profile] minimizes the worst rank any party assigns its
    partner, over all stable matchings. *)
val minimum_regret : Profile.t -> Matching.t

(** [egalitarian_cost profile m] is the summed-rank objective. *)
val egalitarian_cost : Profile.t -> Matching.t -> int

(** [regret profile m] is the max-rank objective. *)
val regret : Profile.t -> Matching.t -> int
