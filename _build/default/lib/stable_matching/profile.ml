open Bsm_prelude
module Wire = Bsm_wire.Wire

type t = {
  k : int;
  left : Prefs.t array;
  right : Prefs.t array;
}

let make ~left ~right =
  let k = Array.length left in
  if Array.length right <> k then Error "sides have different cardinalities"
  else if k = 0 then Error "empty instance"
  else if
    Array.exists (fun p -> Prefs.length p <> k) left
    || Array.exists (fun p -> Prefs.length p <> k) right
  then Error "preference list length differs from k"
  else Ok { k; left; right }

let make_exn ~left ~right =
  match make ~left ~right with
  | Ok t -> t
  | Error msg -> invalid_arg ("Profile.make_exn: " ^ msg)

let k t = t.k

let prefs t p =
  let i = Party_id.index p in
  if i >= t.k then invalid_arg "Profile.prefs: party out of range";
  match Party_id.side p with
  | Side.Left -> t.left.(i)
  | Side.Right -> t.right.(i)

let left t = t.left
let right t = t.right

let with_prefs t p l =
  if Prefs.length l <> t.k then invalid_arg "Profile.with_prefs: wrong length";
  let i = Party_id.index p in
  if i >= t.k then invalid_arg "Profile.with_prefs: party out of range";
  match Party_id.side p with
  | Side.Left ->
    let left = Array.copy t.left in
    left.(i) <- l;
    { t with left }
  | Side.Right ->
    let right = Array.copy t.right in
    right.(i) <- l;
    { t with right }

let random rng k =
  {
    k;
    left = Array.init k (fun _ -> Prefs.random rng k);
    right = Array.init k (fun _ -> Prefs.random rng k);
  }

let similar rng ~swaps k =
  let base_left = Prefs.random rng k in
  let base_right = Prefs.random rng k in
  {
    k;
    left = Array.init k (fun _ -> Prefs.similar rng ~swaps base_left);
    right = Array.init k (fun _ -> Prefs.similar rng ~swaps base_right);
  }

(* With fully identical preferences on both sides, proposer i is rejected by
   candidates 0..i-1 before candidate i accepts, so Gale–Shapley performs
   exactly k(k+1)/2 proposals — the classic Θ(k²) workload. *)
let worst_case k =
  {
    k;
    left = Array.init k (fun _ -> Prefs.identity k);
    right = Array.init k (fun _ -> Prefs.identity k);
  }

let equal a b =
  a.k = b.k
  && Array.for_all2 Prefs.equal a.left b.left
  && Array.for_all2 Prefs.equal a.right b.right

let pp ppf t =
  let side name arr =
    Array.iteri
      (fun i p -> Format.fprintf ppf "  %s%d: %a@\n" name i Prefs.pp p)
      arr
  in
  Format.fprintf ppf "profile k=%d@\n" t.k;
  side "L" t.left;
  side "R" t.right

let codec =
  let array_codec = Wire.map ~inject:Array.of_list ~project:Array.to_list (Wire.list Prefs.codec) in
  Wire.map
    ~inject:(fun (left, right) ->
      match make ~left ~right with
      | Ok t -> t
      | Error msg -> raise (Wire.Malformed msg))
    ~project:(fun t -> t.left, t.right)
    (Wire.pair array_codec array_codec)
