(** Stability checking and blocking-pair analysis.

    A pair [(l, r)] not matched together is {e blocking} when [l] prefers
    [r] to its partner and [r] prefers [l] to its partner. A matching is
    stable iff no blocking pair exists. For partial matchings an unmatched
    party prefers anyone to being alone (the paper's convention), so a
    mutually-acceptable unmatched pair always blocks. *)

type blocking_pair = {
  left : int;
  right : int;
}

(** On perfect matchings. *)

val blocking_pairs : Profile.t -> Matching.t -> blocking_pair list
val is_stable : Profile.t -> Matching.t -> bool

(** [instability profile m] is the number of blocking pairs — the
    approximate-stability metric of Ostrovsky–Rosenbaum (PODC 2015) that we
    use to quantify how badly naive protocols fail under attack. *)
val instability : Profile.t -> Matching.t -> int

(** On partial matchings, given as [partner_of : int -> int option] maps
    for both sides (the distributed layer's view of honest outputs). *)

val blocking_pairs_partial :
  Profile.t ->
  left_partner:(int -> int option) ->
  right_partner:(int -> int option) ->
  consider_left:(int -> bool) ->
  consider_right:(int -> bool) ->
  blocking_pair list

val pp_blocking_pair : Format.formatter -> blocking_pair -> unit
