(* Paired kidney donation with privacy constraints.

   The paper motivates the one-sided topology with kidney donation:
   "privacy constraints prevent recipients from directly interacting with
   each other". Recipients (L) cannot talk to one another; transplant
   centers (R) are fully connected and mediate everything. Some centers
   may be byzantine — including, in the worst case this example
   demonstrates, *all of them*: with signatures and t_L < k/3, Theorem 7
   still guarantees a correct outcome via Π_bSM, where honest recipients
   either agree on a matching or safely abstain.

   Compatibility is synthesized from blood types and HLA mismatch scores.

   Run with: dune exec examples/kidney_exchange.exe *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Topology = Bsm_topology.Topology

let k = 7

let blood_type i = [| "O"; "A"; "B"; "AB" |].((i * 5) mod 4)

(* Lower is better: HLA mismatch between recipient i and center j's
   available graft. *)
let hla_mismatch i j = ((i * 11) + (j * 29)) mod 13

let compat_score i j =
  (* blood-type compatibility dominates, then HLA. *)
  let bt_penalty =
    match blood_type i, blood_type ((j * 3) mod k) with
    | "O", "O" | "A", ("O" | "A") | "B", ("O" | "B") | "AB", _ -> 0
    | _ -> 20
  in
  bt_penalty + hla_mismatch i j

let ranked score = List.sort (fun a b -> compare (score a) (score b)) (List.init k Fun.id)

let profile =
  let left = Array.init k (fun i -> SM.Prefs.of_list_exn (ranked (compat_score i))) in
  let right =
    Array.init k (fun j ->
        (* centers rank recipients by urgency (synthetic) then match quality *)
        SM.Prefs.of_list_exn
          (ranked (fun i -> (((i * 23) + j) mod 7 * 100) + compat_score i j)))
  in
  SM.Profile.make_exn ~left ~right

let run_case ~title ~byzantine setting =
  Printf.printf "--- %s ---\n" title;
  let report = H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:8 setting profile) in
  Printf.printf "Protocol: %s\n" report.H.Scenario.plan.Core.Select.describe;
  List.iter
    (fun (p, d) ->
      if Side.equal (Party_id.side p) Side.Left then
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched q ->
          Printf.printf "  recipient%-2d (type %-2s) -> center%d (mismatch %d)\n"
            (Party_id.index p)
            (blood_type (Party_id.index p))
            (Party_id.index q)
            (hla_mismatch (Party_id.index p) (Party_id.index q))
        | Core.Problem.Nobody ->
          Printf.printf "  recipient%-2d -> abstains (no trusted quorum)\n"
            (Party_id.index p)
        | Core.Problem.No_output ->
          Printf.printf "  recipient%-2d -> NO OUTPUT\n" (Party_id.index p))
    report.H.Scenario.outcome.Core.Problem.decisions;
  (match report.H.Scenario.violations with
  | [] -> print_endline "  (all bSM properties verified)\n"
  | vs ->
    Printf.printf "  VIOLATIONS: %d\n" (List.length vs);
    exit 1);
  report

let () =
  Printf.printf
    "Kidney exchange: %d recipients (mutually isolated), %d transplant centers\n\n" k k;

  (* Case 1: one rogue center, everything else healthy. *)
  let s1 =
    Core.Setting.make_exn ~k ~topology:Topology.One_sided
      ~auth:Core.Setting.Authenticated ~t_left:0 ~t_right:1
  in
  let _ =
    run_case ~title:"one rogue center"
      ~byzantine:[ Party_id.right 4, H.Adversaries.noise ~seed:5 ]
      s1
  in

  (* Case 2: the catastrophic regime — every center byzantine. With
     t_L < k/3 recipients still never collide on a donor (Lemma 11);
     here the rogue centers go silent, so recipients safely abstain. *)
  let s2 =
    Core.Setting.make_exn ~k ~topology:Topology.One_sided
      ~auth:Core.Setting.Authenticated ~t_left:2 ~t_right:k
  in
  let all_centers_silent =
    List.map (fun c -> c, H.Adversaries.silent) (Party_id.side_members Side.Right ~k)
  in
  let report = run_case ~title:"every center byzantine (silent)" ~byzantine:all_centers_silent s2 in
  let abstained =
    List.for_all
      (fun (_, d) ->
        match (d : Core.Problem.decision) with
        | Core.Problem.Nobody -> true
        | Core.Problem.Matched _ | Core.Problem.No_output -> false)
      report.H.Scenario.outcome.Core.Problem.decisions
  in
  if abstained then
    print_endline
      "With every center down, recipients abstain rather than risk competing \
       for the same donor — exactly the guarantee of Theorem 7."
