(* International job market with incomplete preference lists.

   The paper's bipartite topology is motivated by "matching international
   job applicants, where communication is restricted solely to potential
   matches across the two sets". This example combines two parts of the
   library:

   1. the classical SMI substrate (Gusfield-Irving, cited in the paper's
      preliminaries for partial preferences): applicants and positions
      only rank counterparts they find acceptable, and the Rural Hospitals
      theorem fixes who is matched in every stable outcome;
   2. the distributed byzantine protocol: the full-list instance induced
      by padding unacceptable candidates to the bottom is solved by the
      bipartite protocol with byzantine applicants present, and the
      outcome is compared to the centralized SMI solution on the
      mutually-acceptable core.

   Run with: dune exec examples/job_market.exe *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Topology = Bsm_topology.Topology

let k = 6

(* Synthetic skills/requirements: applicant i is acceptable to position j
   (and vice versa) when their skill distance is small. *)
let skill i = (i * 37) mod 20
let requirement j = (j * 53) mod 20
let fit i j = abs (skill i - requirement j)
let acceptable i j = fit i j <= 8

let ranked_acceptable score candidates =
  candidates
  |> List.filter (fun c -> score c >= 0)
  |> List.sort (fun a b -> compare (score a) (score b))

let smi =
  let left =
    Array.init k (fun i ->
        ranked_acceptable
          (fun j -> if acceptable i j then fit i j else -1)
          (List.init k Fun.id))
  in
  let right =
    Array.init k (fun j ->
        ranked_acceptable
          (fun i -> if acceptable i j then fit i j else -1)
          (List.init k Fun.id))
  in
  SM.Incomplete.make_exn ~left ~right

(* Pad the incomplete lists into total orders (acceptable first, the rest
   in index order) so the distributed full-list protocol can run. *)
let padded_profile =
  let pad listed =
    let rest = List.filter (fun x -> not (List.mem x listed)) (List.init k Fun.id) in
    SM.Prefs.of_list_exn (listed @ rest)
  in
  let left =
    Array.init k (fun i ->
        pad
          (ranked_acceptable
             (fun j -> if acceptable i j then fit i j else -1)
             (List.init k Fun.id)))
  in
  let right =
    Array.init k (fun j ->
        pad
          (ranked_acceptable
             (fun i -> if acceptable i j then fit i j else -1)
             (List.init k Fun.id)))
  in
  SM.Profile.make_exn ~left ~right

let () =
  Printf.printf "Job market: %d applicants, %d positions\n\n" k k;

  (* Centralized SMI solution. *)
  let m = SM.Incomplete.solve smi in
  assert (SM.Incomplete.is_stable smi m);
  print_endline "Centralized SMI (incomplete lists) outcome:";
  Array.iteri
    (fun i j ->
      match j with
      | Some j -> Printf.printf "  applicant%d -> position%d (fit %d)\n" i j (fit i j)
      | None -> Printf.printf "  applicant%d -> no acceptable position\n" i)
    m.SM.Incomplete.l2r;
  Printf.printf "matched applicants: {%s} (identical in EVERY stable outcome — Rural \
                 Hospitals theorem)\n\n"
    (String.concat ", " (List.map string_of_int (SM.Incomplete.matched_left m)));

  (* Distributed run on the padded instance, with byzantine applicants. *)
  let setting =
    Core.Setting.make_exn ~k ~topology:Topology.Bipartite
      ~auth:Core.Setting.Authenticated ~t_left:1 ~t_right:1
  in
  let byzantine =
    [
      Party_id.left 5, H.Adversaries.noise ~seed:3;
      Party_id.right 4, H.Adversaries.silent;
    ]
  in
  let report =
    H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:2 setting padded_profile)
  in
  Printf.printf "Distributed run (%s):\n" report.H.Scenario.plan.Core.Select.describe;
  List.iter
    (fun (p, d) ->
      if Side.equal (Party_id.side p) Side.Left then
        match (d : Core.Problem.decision) with
        | Core.Problem.Matched q ->
          let i = Party_id.index p and j = Party_id.index q in
          Printf.printf "  applicant%d -> position%d%s\n" i j
            (if acceptable i j then Printf.sprintf " (fit %d)" (fit i j)
             else " (padded pair: outside the acceptable core)")
        | Core.Problem.Nobody -> Printf.printf "  applicant%d -> unmatched\n" (Party_id.index p)
        | Core.Problem.No_output -> Printf.printf "  applicant%d -> NO OUTPUT\n" (Party_id.index p))
    report.H.Scenario.outcome.Core.Problem.decisions;
  match report.H.Scenario.violations with
  | [] -> print_endline "\nAll bSM properties verified on the padded instance."
  | vs ->
    Printf.printf "violations: %d\n" (List.length vs);
    exit 1
