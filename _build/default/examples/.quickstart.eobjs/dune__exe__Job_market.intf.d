examples/job_market.mli:
