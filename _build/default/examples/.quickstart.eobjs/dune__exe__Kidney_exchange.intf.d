examples/kidney_exchange.mli:
