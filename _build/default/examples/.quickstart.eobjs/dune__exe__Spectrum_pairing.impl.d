examples/spectrum_pairing.ml: Array Bsm_core Bsm_harness Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Format Fun List Party_id Printf Side
