examples/kidney_exchange.ml: Array Bsm_core Bsm_harness Bsm_prelude Bsm_stable_matching Bsm_topology Fun List Party_id Printf Side
