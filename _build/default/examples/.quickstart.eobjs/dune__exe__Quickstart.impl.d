examples/quickstart.ml: Bsm_core Bsm_harness Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Format List Party_id Printf Rng
