examples/trace_demo.ml: Bsm_broadcast Bsm_core Bsm_crypto Bsm_prelude Bsm_runtime Bsm_stable_matching Bsm_topology Bsm_wire Int List Party_id Printf Rng Side Util
