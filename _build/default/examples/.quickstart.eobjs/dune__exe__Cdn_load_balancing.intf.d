examples/cdn_load_balancing.mli:
