examples/spectrum_pairing.mli:
