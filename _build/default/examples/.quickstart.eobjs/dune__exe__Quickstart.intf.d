examples/quickstart.mli:
