examples/trace_demo.mli:
