(* Execution-trace walkthrough of Π_bSM.

   Runs the paper's Section 5.2 protocol on the smallest interesting
   instance (k = 2, bipartite, authenticated, the whole right side
   byzantine-silent) with engine tracing enabled, and prints an annotated
   round-by-round account: preference dissemination, the signed relay
   traffic of Lemma 10 (requests fanned out to R, forwards back to L — all
   omitted here, since R is silent), and the final suggestion round.

   Run with: dune exec examples/trace_demo.exe *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module Crypto = Bsm_crypto.Crypto
module Topology = Bsm_topology.Topology

let () =
  let k = 2 in
  let setting =
    Core.Setting.make_exn ~k ~topology:Topology.Bipartite
      ~auth:Core.Setting.Authenticated ~t_left:0 ~t_right:k
  in
  let rng = Rng.make 1 in
  let profile = SM.Profile.random rng k in
  let pki = Crypto.Pki.setup ~k ~seed:1 in
  let programs p =
    if Side.equal (Party_id.side p) Side.Right then Bsm_broadcast.Strategies.silent
    else
      Core.Pi_bsm.program setting ~pki ~computing_side:Side.Left
        ~input:(SM.Profile.prefs profile p) ~self:p
  in
  let cfg =
    Engine.config ~k ~trace_limit:10_000
      ~link:(Engine.Of_topology Topology.Bipartite) ()
  in
  let res = Engine.run cfg ~programs:(fun p -> programs p) in

  Printf.printf "Pi_bSM, k = %d, all of R byzantine-silent — %d engine rounds\n\n" k
    res.Engine.metrics.rounds_used;

  (* Group trace events by round and summarize. *)
  let by_round =
    Util.group_by ~key:(fun e -> e.Engine.event_round) ~equal_key:Int.equal
      res.Engine.trace
  in
  let describe round =
    if round = 0 then "L waits; honest R would send preference lists here"
    else if round = 1 then "session starts: BB/BA relay requests fan out to R"
    else if round = res.Engine.metrics.rounds_used - 1 then
      "deadline: L decided; suggestions would go to R here"
    else "relay cadence: requests out (odd), forwards back (even) — R silent, so \
          every virtual message is omitted"
  in
  List.iter
    (fun (round, events) ->
      let delivered =
        List.length (List.filter (fun e -> e.Engine.event_fate = `Delivered) events)
      in
      let bytes = List.fold_left (fun a e -> a + e.Engine.event_bytes) 0 events in
      Printf.printf "round %2d: %3d messages (%5d bytes, %d delivered)  %s\n" round
        (List.length events) bytes delivered (describe round))
    by_round;

  print_newline ();
  print_endline "Outputs:";
  List.iter
    (fun (r : Engine.party_result) ->
      if Side.equal (Party_id.side r.id) Side.Left then
        match r.out with
        | Some payload -> (
          match Bsm_wire.Wire.decode_exn Core.Problem.decision_codec payload with
          | Some q ->
            Printf.printf "  %s -> %s\n" (Party_id.to_string r.id) (Party_id.to_string q)
          | None -> Printf.printf "  %s -> nobody (weak agreement: safe abstention)\n"
                      (Party_id.to_string r.id))
        | None -> Printf.printf "  %s -> no output\n" (Party_id.to_string r.id))
    res.parties;
  print_newline ();
  print_endline
    "With every forwarder byzantine, the Lemma 10 channels degrade to pure \
     omissions; Pi_BA/Pi_BB fall back to weak agreement, and the honest side \
     abstains rather than risk inconsistent matchings (Lemma 11)."
