(* Benchmark & experiment harness.

   Running `dune exec bench/main.exe` regenerates, in order:

   - T1: the solvability matrix, validated by protocol execution on every
     solvable setting and by the executable characterization elsewhere;
   - T2: round complexity — closed-form schedule vs engine measurements;
   - T3: communication complexity — Gale-Shapley proposal counts and
     per-protocol message/byte costs as k grows;
   - A1: ablation — Lemma 1 BB-pipeline vs Π_bSM in the bipartite
     authenticated setting;
   - A2: ablation — majority-proxy (Lemma 6) vs signature-proxy (Lemma 8)
     channel simulation;
   - microbenchmarks (Bechamel): wall-clock costs of the core algorithms
     and full protocol executions.

   EXPERIMENTS.md records paper-vs-measured for each table. *)

open Bsm_prelude
module SM = Bsm_stable_matching
module Core = Bsm_core
module H = Bsm_harness
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology
module Crypto = Bsm_crypto.Crypto

let setting ~k ~topology ~auth ~tl ~tr =
  Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr

(* ------------------------------------------------------------------ T1 -- *)

let table_t1 () =
  let k = 3 in
  let table =
    Table.make
      ~title:
        (Printf.sprintf
           "T1: solvability matrix, k = %d (every solvable cell validated by a \
            byzantine run at full corruption budget)"
           k)
      ~header:
        [ "topology"; "auth"; "theorem"; "cells"; "solvable"; "validated"; "impossible" ]
  in
  List.iter
    (fun topology ->
      List.iter
        (fun auth ->
          let cells = ref 0 and solvable = ref 0 and validated = ref 0 in
          let theorem = ref "" in
          for tl = 0 to k do
            for tr = 0 to k do
              incr cells;
              let s = setting ~k ~topology ~auth ~tl ~tr in
              let verdict = Core.Solvability.decide s in
              theorem := verdict.Core.Solvability.theorem;
              if verdict.Core.Solvability.solvable then begin
                incr solvable;
                let rng = Rng.make ((tl * 100) + tr) in
                let profile = SM.Profile.random rng k in
                let byzantine =
                  H.Adversaries.random_coalition rng ~setting:s ~seed:tl ~profile
                in
                let report =
                  H.Scenario.run (H.Scenario.make_exn ~byzantine ~seed:tl s profile)
                in
                if H.Scenario.ok report then incr validated
              end
            done
          done;
          Table.add_row table
            [
              Topology.to_string topology;
              Core.Setting.auth_to_string auth;
              !theorem;
              string_of_int !cells;
              string_of_int !solvable;
              string_of_int !validated;
              string_of_int (!cells - !solvable);
            ])
        [ Core.Setting.Unauthenticated; Core.Setting.Authenticated ])
    Topology.all;
  Table.print table

(* ------------------------------------------------------------------ T2 -- *)

let honest_run s =
  let rng = Rng.make (17 * s.Core.Setting.k) in
  let profile = SM.Profile.random rng s.Core.Setting.k in
  H.Scenario.run (H.Scenario.make_exn s profile)

let table_t2 () =
  let table =
    Table.make
      ~title:
        "T2: round complexity — planned schedule (Delta_King = 3(t+1), Delta_BA = \
         Delta_King+1, Delta_BB = Delta_BA+1, Dolev-Strong = t+1, channel stride \
         1 or 2) vs measured"
      ~header:[ "setting"; "planned rounds"; "measured rounds" ]
  in
  let cases k =
    let third = max 0 ((k - 1) / 3) and half = max 0 ((k - 1) / 2) in
    [
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
        ~tl:third ~tr:k;
      setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Unauthenticated
        ~tl:third ~tr:half;
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
        ~tl:k ~tr:k;
      setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated ~tl:k
        ~tr:(k - 1);
      setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
        ~tl:third ~tr:k;
    ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun s ->
          let report = honest_run s in
          Table.add_row table
            [
              Format.asprintf "%a" Core.Setting.pp s;
              string_of_int report.H.Scenario.plan.Core.Select.engine_rounds;
              string_of_int report.H.Scenario.metrics.Engine.rounds_used;
            ])
        (cases k))
    [ 2; 4; 6 ];
  Table.print table

(* ------------------------------------------------------------------ T3 -- *)

let table_t3_gs () =
  let table =
    Table.make
      ~title:
        "T3a: Gale-Shapley proposal counts — random profiles vs the Theta(k^2) \
         worst case (identical preferences)"
      ~header:[ "k"; "random (mean of 5)"; "worst case"; "k(k+1)/2" ]
  in
  List.iter
    (fun k ->
      let rng = Rng.make k in
      let random_mean =
        let total = ref 0 in
        for _ = 1 to 5 do
          let _, stats = SM.Gale_shapley.run_with_stats (SM.Profile.random rng k) in
          total := !total + stats.SM.Gale_shapley.proposals
        done;
        !total / 5
      in
      let _, worst = SM.Gale_shapley.run_with_stats (SM.Profile.worst_case k) in
      Table.add_row table
        [
          string_of_int k;
          string_of_int random_mean;
          string_of_int worst.SM.Gale_shapley.proposals;
          string_of_int (k * (k + 1) / 2);
        ])
    [ 10; 20; 40; 80; 160 ];
  Table.print table

let table_t3_protocols () =
  let table =
    Table.make
      ~title:
        "T3b: protocol communication cost per honest execution (predicted = \
         closed-form model in Bsm_core.Complexity)"
      ~header:[ "setting"; "k"; "messages"; "predicted"; "bytes"; "bytes/party" ]
  in
  let cases k =
    let third = max 0 ((k - 1) / 3) in
    [
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
        ~tl:third ~tr:k;
      setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
        ~tl:k ~tr:k;
      setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
        ~tl:third ~tr:k;
    ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun s ->
          let report = honest_run s in
          let m = report.H.Scenario.metrics in
          Table.add_row table
            [
              Format.asprintf "%a" Core.Setting.pp s;
              string_of_int k;
              string_of_int m.Engine.messages_sent;
              string_of_int (Core.Complexity.predicted_messages s);
              string_of_int m.Engine.bytes_sent;
              string_of_int (m.Engine.bytes_sent / (2 * k));
            ])
        (cases k))
    [ 2; 4; 6; 8 ];
  Table.print table

let table_t3_distributed_gs () =
  let table =
    Table.make
      ~title:
        "T3c: fault-free distributed Gale-Shapley (proposals = boolean-query \
         proxy; Omega(n^2) lower bound context) — random vs correlated vs \
         identical preferences"
      ~header:[ "k"; "profile"; "proposals"; "messages"; "active rounds <= 2k^2+2" ]
  in
  List.iter
    (fun k ->
      let row name profile =
        let _, metrics, proposals = Core.Distributed_gs.run profile in
        Table.add_row table
          [
            string_of_int k;
            name;
            string_of_int proposals;
            string_of_int metrics.Engine.messages_sent;
            string_of_int metrics.Engine.rounds_used;
          ]
      in
      row "random" (SM.Profile.random (Rng.make k) k);
      row "correlated (5 swaps)" (SM.Profile.similar (Rng.make k) ~swaps:5 k);
      row "identical (worst case)" (SM.Profile.worst_case k))
    [ 8; 16; 32 ];
  Table.print table

(* ------------------------------------------------------------------ A1 -- *)

(* Run a given program assignment honestly and return metrics. *)
let run_programs ~k ~topology programs =
  let cfg = Engine.config ~k ~link:(Engine.Of_topology topology) () in
  let res = Engine.run cfg ~programs in
  List.iter
    (fun (r : Engine.party_result) ->
      match r.Engine.status with
      | Engine.Terminated -> ()
      | Engine.Out_of_rounds | Engine.Crashed _ ->
        failwith
          (Printf.sprintf "bench: %s did not terminate" (Party_id.to_string r.Engine.id)))
    res.Engine.parties;
  res.Engine.metrics

let table_a1 () =
  let table =
    Table.make
      ~title:
        "A1: ablation — Lemma 1 BB pipeline vs Pi_bSM (bipartite, authenticated, \
         tL = floor((k-1)/3)); Pi_bSM pays rounds and bytes for surviving tR = k"
      ~header:[ "k"; "mechanism"; "tolerates"; "rounds"; "messages"; "bytes" ]
  in
  List.iter
    (fun k ->
      let third = max 0 ((k - 1) / 3) in
      let rng = Rng.make (k * 7) in
      let profile = SM.Profile.random rng k in
      let pki = Crypto.Pki.setup ~k ~seed:k in
      let bb_setting =
        setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
          ~tl:third ~tr:(k - 1)
      in
      let bb_metrics =
        run_programs ~k ~topology:Topology.Bipartite (fun p ->
            Core.Bb_based.program bb_setting ~pki ~input:(SM.Profile.prefs profile p)
              ~self:p)
      in
      let pi_setting =
        setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
          ~tl:third ~tr:k
      in
      let pi_metrics =
        run_programs ~k ~topology:Topology.Bipartite (fun p ->
            Core.Pi_bsm.program pi_setting ~pki ~computing_side:Side.Left
              ~input:(SM.Profile.prefs profile p) ~self:p)
      in
      let row name tolerates (m : Engine.metrics) =
        Table.add_row table
          [
            string_of_int k;
            name;
            tolerates;
            string_of_int m.Engine.rounds_used;
            string_of_int m.Engine.messages_sent;
            string_of_int m.Engine.bytes_sent;
          ]
      in
      row "BB pipeline (Lemma 1)" "tR < k" bb_metrics;
      row "Pi_bSM (Sec 5.2)" "tR = k" pi_metrics)
    [ 3; 4; 6 ];
  Table.print table

(* ------------------------------------------------------------------ A2 -- *)

let table_a2 () =
  let table =
    Table.make
      ~title:
        "A2: ablation — majority proxy (Lemma 6) vs signature proxy (Lemma 8) on \
         the one-sided topology (BB pipeline underneath)"
      ~header:[ "k"; "channel simulation"; "needs"; "rounds"; "messages"; "bytes" ]
  in
  List.iter
    (fun k ->
      let third = max 0 ((k - 1) / 3) and half = max 0 ((k - 1) / 2) in
      let majority =
        honest_run
          (setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Unauthenticated
             ~tl:third ~tr:half)
      in
      let signed =
        honest_run
          (setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated
             ~tl:k ~tr:(k - 1))
      in
      let row name needs (r : H.Scenario.report) =
        let m = r.H.Scenario.metrics in
        Table.add_row table
          [
            string_of_int k;
            name;
            needs;
            string_of_int m.Engine.rounds_used;
            string_of_int m.Engine.messages_sent;
            string_of_int m.Engine.bytes_sent;
          ]
      in
      row "majority proxy" "tR < k/2" majority;
      row "signature proxy" "tR < k" signed)
    [ 3; 5; 7 ];
  Table.print table

(* ------------------------------------------------------------------ A3 -- *)

module Attacks = Bsm_attacks

let table_a3 () =
  let table =
    Table.make
      ~title:
        "A3: byzantine tolerance pays — naive flood-and-compute vs the selected \
         protocol under equivocating byzantine parties (fully-connected, \
         unauthenticated, k = 4, tL = tR = 1, 30 seeds; sSM instances)"
      ~header:[ "protocol"; "runs"; "violated runs"; "violation rate" ]
  in
  let k = 4 in
  let topology = Topology.Fully_connected in
  let runs = 30 in
  let count protocol =
    let bad = ref 0 in
    for seed = 1 to runs do
      let rng = Rng.make seed in
      let favorites = Attacks.Evaluate.random_favorites rng ~k in
      let byzantine =
        [
          Party_id.left 3, Attacks.Naive.equivocating_announcer ~topology ~k;
          Party_id.right 2, Attacks.Naive.equivocating_announcer ~topology ~k;
        ]
      in
      if Attacks.Evaluate.run ~topology ~k ~favorites ~byzantine protocol <> [] then
        incr bad
    done;
    !bad
  in
  let row name protocol =
    let bad = count protocol in
    Table.add_row table
      [
        name;
        string_of_int runs;
        string_of_int bad;
        Printf.sprintf "%.0f%%" (Stats.rate bad runs);
      ]
  in
  row "naive flood-and-compute" Attacks.Protocol_under_test.naive;
  row "BB pipeline (ours)"
    (Attacks.Protocol_under_test.thresholded
       ~setting:
         (setting ~k ~topology ~auth:Core.Setting.Unauthenticated ~tl:1 ~tr:1));
  Table.print table

(* ------------------------------------------------------------------ A4 -- *)

let table_a4 () =
  let table =
    Table.make
      ~title:
        "A4: ablation — Pi_bSM cost vs corruption budget tL (k = 7, bipartite \
         authenticated, tR = k); rounds grow linearly in the king count tL+1, \
         bytes over 5 random profiles"
      ~header:[ "tL"; "kings"; "rounds"; "messages"; "bytes mean"; "bytes sd" ]
  in
  let k = 7 in
  List.iter
    (fun tl ->
      let s =
        setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl
          ~tr:k
      in
      let runs =
        List.map
          (fun seed ->
            let rng = Rng.make (seed * 37) in
            let profile = SM.Profile.random rng k in
            let report = H.Scenario.run (H.Scenario.make_exn ~seed s profile) in
            report.H.Scenario.metrics)
          (Util.range 1 6)
      in
      let first = List.hd runs in
      let bytes = Stats.summarize (List.map (fun m -> float_of_int m.Engine.bytes_sent) runs) in
      Table.add_row table
        [
          string_of_int tl;
          string_of_int (tl + 1);
          string_of_int first.Engine.rounds_used;
          string_of_int first.Engine.messages_sent;
          Printf.sprintf "%.0f" bytes.Stats.mean;
          Printf.sprintf "%.0f" bytes.Stats.stddev;
        ])
    [ 0; 1; 2 ];
  Table.print table

(* ---------------------------------------------------- microbenchmarks -- *)

open Bechamel
open Toolkit

let bench_tests () =
  let gs_random =
    Test.make_indexed ~name:"gale_shapley/random" ~args:[ 20; 100; 300 ] (fun k ->
        let profile = SM.Profile.random (Rng.make k) k in
        Staged.stage (fun () -> ignore (SM.Gale_shapley.run profile)))
  in
  let gs_worst =
    Test.make_indexed ~name:"gale_shapley/worst" ~args:[ 100 ] (fun k ->
        let profile = SM.Profile.worst_case k in
        Staged.stage (fun () -> ignore (SM.Gale_shapley.run profile)))
  in
  let codec =
    Test.make ~name:"wire/prefs-roundtrip-k100"
      (let prefs = SM.Prefs.random (Rng.make 1) 100 in
       Staged.stage (fun () ->
           let bytes = Bsm_wire.Wire.encode SM.Prefs.codec prefs in
           ignore (Bsm_wire.Wire.decode_exn SM.Prefs.codec bytes)))
  in
  let signing =
    Test.make ~name:"crypto/sign+verify"
      (let pki = Crypto.Pki.setup ~k:4 ~seed:0 in
       let signer = Crypto.Pki.signer pki (Party_id.left 0) in
       let verifier = Crypto.Pki.verifier pki in
       Staged.stage (fun () ->
           let s = Crypto.Signer.sign signer "benchmark-message" in
           ignore
             (Crypto.Verifier.verify verifier ~signer:(Party_id.left 0)
                ~msg:"benchmark-message" s)))
  in
  let engine_rounds =
    Test.make ~name:"engine/1000-rounds-2-parties"
      (Staged.stage (fun () ->
           let cfg =
             Engine.config ~k:1 ~link:(Engine.Of_topology Topology.Fully_connected)
               ~max_rounds:2000 ()
           in
           let program (env : Engine.env) =
             for _ = 1 to 1000 do
               env.Engine.send (Party_id.right 0) "x";
               ignore (env.Engine.next_round ())
             done
           in
           ignore
             (Engine.run cfg ~programs:(fun p ->
                  if Party_id.equal p (Party_id.left 0) then program else fun _ -> ()))))
  in
  let full_protocol name s =
    Test.make ~name
      (let profile = SM.Profile.random (Rng.make 5) s.Core.Setting.k in
       Staged.stage (fun () -> ignore (H.Scenario.run (H.Scenario.make_exn s profile))))
  in
  let e2e_auth =
    full_protocol "protocol/full-auth-k4"
      (setting ~k:4 ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
         ~tl:4 ~tr:4)
  in
  let e2e_unauth =
    full_protocol "protocol/full-unauth-k4"
      (setting ~k:4 ~topology:Topology.Fully_connected
         ~auth:Core.Setting.Unauthenticated ~tl:1 ~tr:4)
  in
  let e2e_pibsm =
    full_protocol "protocol/pi_bsm-k4"
      (setting ~k:4 ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated ~tl:1
         ~tr:4)
  in
  let lattice =
    Test.make ~name:"lattice/all-stable-k7"
      (let profile = SM.Profile.random (Rng.make 9) 7 in
       Staged.stage (fun () -> ignore (SM.Lattice.all_stable profile)))
  in
  let roommates =
    Test.make ~name:"roommates/solve-n100"
      (let inst = SM.Roommates.random (Rng.make 11) 100 in
       Staged.stage (fun () -> ignore (SM.Roommates.solve inst)))
  in
  Test.make_grouped ~name:"bsm"
    [
      gs_random;
      gs_worst;
      codec;
      signing;
      engine_rounds;
      e2e_auth;
      e2e_unauth;
      e2e_pibsm;
      lattice;
      roommates;
    ]

let run_microbenchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances (bench_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.make ~title:"Microbenchmarks (Bechamel, monotonic clock)"
      ~header:[ "benchmark"; "time/run" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let humanize ns =
    if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> humanize ns
        | Some _ | None -> "n/a"
      in
      Table.add_row table [ name; time ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Table.print table

let () =
  print_endline "byzantine stable matching — experiment harness";
  print_newline ();
  table_t1 ();
  table_t2 ();
  table_t3_gs ();
  table_t3_protocols ();
  table_t3_distributed_gs ();
  table_a1 ();
  table_a2 ();
  table_a3 ();
  table_a4 ();
  run_microbenchmarks ();
  print_endline "done. See EXPERIMENTS.md for the paper-vs-measured discussion."
