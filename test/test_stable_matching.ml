(* Tests for the classic stable-matching substrate: Gale–Shapley and its
   optimality/truthfulness properties, the stable-matching lattice, and
   Irving's stable-roommates algorithm — each cross-checked against
   factorial-time brute force on small instances. *)

open Bsm_prelude
module SM = Bsm_stable_matching

let prefs = Alcotest.testable SM.Prefs.pp SM.Prefs.equal
let matching = Alcotest.testable SM.Matching.pp SM.Matching.equal

(* --- Prefs -------------------------------------------------------------- *)

let test_prefs_basics () =
  let p = SM.Prefs.of_list_exn [ 2; 0; 1 ] in
  Alcotest.(check int) "favorite" 2 (SM.Prefs.favorite p);
  Alcotest.(check int) "rank of 1" 2 (SM.Prefs.rank p 1);
  Alcotest.(check int) "at 1" 0 (SM.Prefs.at p 1);
  Alcotest.(check bool) "prefers 2 over 0" true (SM.Prefs.prefers p 2 0);
  Alcotest.(check bool) "not prefers 1 over 0" false (SM.Prefs.prefers p 1 0)

let test_prefs_rejects_non_permutation () =
  let is_error l = Result.is_error (SM.Prefs.of_list l) in
  Alcotest.(check bool) "duplicate" true (is_error [ 0; 0; 1 ]);
  Alcotest.(check bool) "out of range" true (is_error [ 0; 3; 1 ]);
  Alcotest.(check bool) "negative" true (is_error [ 0; -1; 1 ]);
  Alcotest.(check bool) "valid" false (is_error [ 1; 0; 2 ])

let test_prefs_codec_roundtrip () =
  let rng = Rng.make 7 in
  for _ = 1 to 50 do
    let p = SM.Prefs.random rng 9 in
    let bytes = Bsm_wire.Wire.encode SM.Prefs.codec p in
    match Bsm_wire.Wire.decode SM.Prefs.codec bytes with
    | Ok p' -> Alcotest.check prefs "roundtrip" p p'
    | Error e -> Alcotest.fail e
  done

let test_prefs_codec_rejects_malformed () =
  (* A non-permutation list is a structurally valid encoding but must be
     rejected semantically — this is how honest parties sanitize byzantine
     preference lists. *)
  let bad = Bsm_wire.Wire.encode (Bsm_wire.Wire.list Bsm_wire.Wire.uint) [ 0; 0; 1 ] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Bsm_wire.Wire.decode SM.Prefs.codec bad))

let test_prefs_similar_is_permutation () =
  let rng = Rng.make 11 in
  for _ = 1 to 30 do
    let base = SM.Prefs.random rng 8 in
    let p = SM.Prefs.similar rng ~swaps:5 base in
    Alcotest.(check bool) "valid permutation" true
      (Util.is_permutation (SM.Prefs.to_list p) ~n:8)
  done

(* --- Gale–Shapley ------------------------------------------------------- *)

let test_gs_textbook_instance () =
  (* Gale & Shapley's original 3x3 example structure: check output is the
     known left-optimal matching. *)
  let profile =
    SM.Profile.make_exn
      ~left:
        [|
          SM.Prefs.of_list_exn [ 0; 1; 2 ];
          SM.Prefs.of_list_exn [ 1; 2; 0 ];
          SM.Prefs.of_list_exn [ 2; 0; 1 ];
        |]
      ~right:
        [|
          SM.Prefs.of_list_exn [ 1; 2; 0 ];
          SM.Prefs.of_list_exn [ 2; 0; 1 ];
          SM.Prefs.of_list_exn [ 0; 1; 2 ];
        |]
  in
  (* Every left party gets its favorite: favorites are distinct. *)
  let m = SM.Gale_shapley.run profile in
  Alcotest.check matching "left-optimal"
    (SM.Matching.of_l2r_exn [| 0; 1; 2 |])
    m;
  Alcotest.(check bool) "stable" true (SM.Verify.is_stable profile m)

let test_gs_worst_case_proposals () =
  let k = 10 in
  let profile = SM.Profile.worst_case k in
  let m, stats = SM.Gale_shapley.run_with_stats profile in
  Alcotest.(check bool) "stable" true (SM.Verify.is_stable profile m);
  Alcotest.(check int) "k(k+1)/2 proposals" (k * (k + 1) / 2) stats.proposals

let test_gs_deterministic () =
  let rng = Rng.make 3 in
  let profile = SM.Profile.random rng 12 in
  let m1 = SM.Gale_shapley.run profile in
  let m2 = SM.Gale_shapley.run profile in
  Alcotest.check matching "same output" m1 m2

let test_gs_right_proposing_stable () =
  let rng = Rng.make 5 in
  for _ = 1 to 20 do
    let profile = SM.Profile.random rng 8 in
    let m = SM.Gale_shapley.run ~proposers:Side.Right profile in
    Alcotest.(check bool) "stable" true (SM.Verify.is_stable profile m)
  done

let test_gs_proposer_optimal_acceptor_pessimal () =
  (* Left-proposing GS must give every left party its best stable partner
     and every right party its worst stable partner (checked against the
     full lattice). *)
  let rng = Rng.make 17 in
  for _ = 1 to 25 do
    let profile = SM.Profile.random rng 6 in
    let m = SM.Gale_shapley.run profile in
    let all = SM.Lattice.all_stable_brute profile in
    let lp = SM.Profile.left profile in
    let rp = SM.Profile.right profile in
    List.iter
      (fun m' ->
        for i = 0 to 5 do
          let mine = SM.Matching.partner_of_left m i in
          let other = SM.Matching.partner_of_left m' i in
          Alcotest.(check bool) "left no better stable partner" false
            (SM.Prefs.prefers lp.(i) other mine)
        done;
        for j = 0 to 5 do
          let mine = SM.Matching.partner_of_right m j in
          let other = SM.Matching.partner_of_right m' j in
          Alcotest.(check bool) "right no worse stable partner" false
            (SM.Prefs.prefers rp.(j) mine other)
        done)
      all
  done

let qcheck_profile k =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "profile seed %d" seed)
    QCheck.Gen.(int_bound 1_000_000)
  |> fun arb -> arb, fun seed -> SM.Profile.random (Rng.make seed) k

let prop_gs_always_stable =
  let arb, profile_of = qcheck_profile 15 in
  QCheck.Test.make ~name:"gale-shapley output is always stable" ~count:200 arb
    (fun seed ->
      let profile = profile_of seed in
      SM.Verify.is_stable profile (SM.Gale_shapley.run profile))

let prop_gs_right_stable =
  let arb, profile_of = qcheck_profile 11 in
  QCheck.Test.make ~name:"right-proposing output is always stable" ~count:200 arb
    (fun seed ->
      let profile = profile_of seed in
      SM.Verify.is_stable profile (SM.Gale_shapley.run ~proposers:Side.Right profile))

let prop_similar_profiles_stable =
  let arb = QCheck.make QCheck.Gen.(int_bound 1_000_000) in
  QCheck.Test.make ~name:"similar-preferences workload is handled" ~count:100 arb
    (fun seed ->
      let profile = SM.Profile.similar (Rng.make seed) ~swaps:4 10 in
      SM.Verify.is_stable profile (SM.Gale_shapley.run profile))

(* --- Verify ------------------------------------------------------------- *)

let test_blocking_pair_detection () =
  (* Two couples who each prefer the other's partner: swap is forced. *)
  let profile =
    SM.Profile.make_exn
      ~left:
        [| SM.Prefs.of_list_exn [ 1; 0 ]; SM.Prefs.of_list_exn [ 0; 1 ] |]
      ~right:
        [| SM.Prefs.of_list_exn [ 1; 0 ]; SM.Prefs.of_list_exn [ 0; 1 ] |]
  in
  let bad = SM.Matching.of_l2r_exn [| 0; 1 |] in
  Alcotest.(check bool) "unstable" false (SM.Verify.is_stable profile bad);
  Alcotest.(check int) "two blocking pairs" 2 (SM.Verify.instability profile bad);
  let good = SM.Matching.of_l2r_exn [| 1; 0 |] in
  Alcotest.(check bool) "stable" true (SM.Verify.is_stable profile good)

let test_partial_unmatched_mutually_acceptable_blocks () =
  (* Paper convention: two single parties on opposite sides always block. *)
  let profile = SM.Profile.worst_case 2 in
  let pairs =
    SM.Verify.blocking_pairs_partial profile
      ~left_partner:(fun _ -> None)
      ~right_partner:(fun _ -> None)
      ~consider_left:(fun l -> l = 0)
      ~consider_right:(fun r -> r = 0)
  in
  Alcotest.(check int) "singles block" 1 (List.length pairs)

let test_partial_respects_consider_filters () =
  let profile = SM.Profile.worst_case 2 in
  let pairs =
    SM.Verify.blocking_pairs_partial profile
      ~left_partner:(fun _ -> None)
      ~right_partner:(fun _ -> None)
      ~consider_left:(fun _ -> false)
      ~consider_right:(fun _ -> true)
  in
  Alcotest.(check int) "byzantine left ignored" 0 (List.length pairs)

(* A random perfect matching — typically unstable, exercising the
   counting paths on inputs with many blocking pairs. *)
let random_matching rng k =
  SM.Matching.of_l2r_exn (Array.of_list (Rng.permutation rng k))

(* The early-exit/allocation-free fast paths must agree with the
   list-building reference scan on both stable (GS) and arbitrary
   matchings. *)
let prop_fast_paths_match_reference =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000) in
  QCheck.Test.make ~name:"is_stable/instability match blocking_pairs" ~count:150
    arb (fun seed ->
      let rng = Rng.make seed in
      let k = 2 + Rng.int rng 11 in
      let profile = SM.Profile.random rng k in
      List.for_all
        (fun m ->
          let reference = SM.Verify.blocking_pairs profile m in
          SM.Verify.is_stable profile m = (reference = [])
          && SM.Verify.instability profile m = List.length reference)
        [ SM.Gale_shapley.run profile; random_matching rng k ])

let prop_eps_zero_matches_is_stable =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000) in
  QCheck.Test.make ~name:"is_eps_stable ~eps:0. agrees with is_stable"
    ~count:150 arb (fun seed ->
      let rng = Rng.make seed in
      let k = 2 + Rng.int rng 11 in
      let profile = SM.Profile.random rng k in
      List.for_all
        (fun m ->
          SM.Verify.is_eps_stable ~eps:0. profile m = SM.Verify.is_stable profile m)
        [ SM.Gale_shapley.run profile; random_matching rng k ])

let test_eps_budget_semantics () =
  let rng = Rng.make 0xE9 in
  let checked = ref 0 in
  for _ = 1 to 40 do
    let k = 3 + Rng.int rng 8 in
    let profile = SM.Profile.random rng k in
    let m = random_matching rng k in
    let c = SM.Verify.instability profile m in
    let k2 = float_of_int (k * k) in
    Alcotest.(check bool) "eps = 1 always accepts" true
      (SM.Verify.is_eps_stable ~eps:1.0 profile m);
    (* Budget at the exact count accepts ([+1] absorbs float rounding),
       half the count rejects. *)
    Alcotest.(check bool) "sufficient budget accepts" true
      (SM.Verify.is_eps_stable ~eps:(float_of_int (c + 1) /. k2) profile m);
    if c >= 2 then begin
      incr checked;
      Alcotest.(check bool) "insufficient budget rejects" false
        (SM.Verify.is_eps_stable ~eps:(float_of_int c /. 2. /. k2) profile m)
    end
  done;
  Alcotest.(check bool) "rejection branch exercised" true (!checked > 10);
  match SM.Verify.is_eps_stable ~eps:(-0.1) (SM.Profile.worst_case 2)
          (SM.Matching.of_l2r_exn [| 0; 1 |])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative eps accepted"

(* Disjoint row ranges partition the blocking pairs: the sharded counts
   must sum to [instability], whatever the split. *)
let test_shard_partition () =
  let rng = Rng.make 0x5A in
  for _ = 1 to 30 do
    let k = 4 + Rng.int rng 9 in
    let profile = SM.Profile.random rng k in
    let m = random_matching rng k in
    let v = SM.Verify.view_of_matching profile m in
    let total = SM.Verify.instability profile m in
    List.iter
      (fun shards ->
        let counts =
          List.init shards (fun s ->
              SM.Verify.count_blocking_rows v ~lo:(s * k / shards)
                ~hi:((s + 1) * k / shards))
        in
        Alcotest.(check int) "shards sum to total" total
          (List.fold_left ( + ) 0 counts))
      [ 1; 2; 3; 8; k; 2 * k ];
    Alcotest.(check bool) "exists agrees" (total > 0)
      (SM.Verify.exists_blocking v)
  done

(* --- Gale-Shapley free-proposer counter -------------------------------- *)

(* The pre-counter algorithm, verbatim (round termination by rescanning
   [matched] with [Array.exists]): the production path maintains a free
   counter instead and must stay bit-identical, matchings and stats. *)
let reference_run_oriented proposer_prefs acceptor_prefs =
  let k = Array.length proposer_prefs in
  let next_rank = Array.make k 0 in
  let held = Array.make k (-1) in
  let matched = Array.make k false in
  let proposals = ref 0 in
  let rounds = ref 0 in
  let someone_free () = Array.exists not matched in
  while someone_free () do
    incr rounds;
    let proposals_now = ref [] in
    for p = 0 to k - 1 do
      if not matched.(p) then begin
        let a = SM.Prefs.at proposer_prefs.(p) next_rank.(p) in
        next_rank.(p) <- next_rank.(p) + 1;
        incr proposals;
        proposals_now := (p, a) :: !proposals_now
      end
    done;
    let consider (p, a) =
      let current = held.(a) in
      if current = -1 then begin
        held.(a) <- p;
        matched.(p) <- true
      end
      else if SM.Prefs.prefers acceptor_prefs.(a) p current then begin
        matched.(current) <- false;
        held.(a) <- p;
        matched.(p) <- true
      end
    in
    List.iter consider (List.rev !proposals_now)
  done;
  let proposer_to_acceptor = Array.make k (-1) in
  Array.iteri (fun a p -> proposer_to_acceptor.(p) <- a) held;
  proposer_to_acceptor, (!proposals, !rounds)

let test_gs_free_counter_matches_reference () =
  let check_profile profile =
    List.iter
      (fun proposers ->
        let m, stats = SM.Gale_shapley.run_with_stats ~proposers profile in
        let proposer_prefs, acceptor_prefs =
          match proposers with
          | Side.Left -> SM.Profile.left profile, SM.Profile.right profile
          | Side.Right -> SM.Profile.right profile, SM.Profile.left profile
        in
        let p2a, (proposals, rounds) =
          reference_run_oriented proposer_prefs acceptor_prefs
        in
        let k = Array.length p2a in
        let l2r =
          match proposers with
          | Side.Left -> p2a
          | Side.Right ->
            let l2r = Array.make k (-1) in
            Array.iteri (fun r l -> l2r.(l) <- r) p2a;
            l2r
        in
        Alcotest.check matching "matching identical"
          (SM.Matching.of_l2r_exn l2r) m;
        Alcotest.(check (pair int int))
          "stats identical" (proposals, rounds)
          (stats.SM.Gale_shapley.proposals, stats.SM.Gale_shapley.rounds))
      [ Side.Left; Side.Right ]
  in
  let rng = Rng.make 0xF5EE in
  for _ = 1 to 40 do
    check_profile (SM.Profile.random rng (2 + Rng.int rng 14))
  done;
  for _ = 1 to 10 do
    check_profile (SM.Profile.similar rng ~swaps:4 10)
  done;
  check_profile (SM.Profile.worst_case 12)

(* --- Flat (implicit profiles) ------------------------------------------- *)

let test_flat_perm_is_bijection () =
  List.iter
    (fun k ->
      let f = SM.Flat.make ~family:SM.Flat.Uniform ~seed:0x1DE ~k in
      List.iter
        (fun (order, rank) ->
          for who = 0 to min 2 (k - 1) do
            let order_who = order f who and rank_who = rank f who in
            let seen = Array.make k false in
            for r = 0 to k - 1 do
              let c = order_who r in
              Alcotest.(check bool) "in range" true (c >= 0 && c < k);
              Alcotest.(check bool) "not seen" false seen.(c);
              seen.(c) <- true;
              Alcotest.(check int) "rank inverts order" r (rank_who c)
            done
          done)
        [ SM.Flat.left_order, SM.Flat.left_rank;
          SM.Flat.right_order, SM.Flat.right_rank ])
    [ 1; 2; 3; 7; 16; 33; 100 ]

let prop_flat_gs_matches_explicit =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000) in
  QCheck.Test.make ~name:"flat GS bit-identical to explicit GS" ~count:60 arb
    (fun seed ->
      let rng = Rng.make seed in
      let k = 1 + Rng.int rng 30 in
      let family =
        if Rng.bool rng then SM.Flat.Uniform else SM.Flat.Common_acceptors
      in
      let f = SM.Flat.make ~family ~seed ~k in
      let l2r, stats = SM.Flat.gale_shapley f in
      let m, stats' = SM.Gale_shapley.run_with_stats (SM.Flat.to_profile f) in
      l2r = Array.init k (SM.Matching.partner_of_left m) && stats = stats')

let test_flat_verify_view_matches_explicit () =
  let rng = Rng.make 0xF1A7 in
  for _ = 1 to 25 do
    let k = 2 + Rng.int rng 12 in
    let family =
      if Rng.bool rng then SM.Flat.Uniform else SM.Flat.Common_acceptors
    in
    let f = SM.Flat.make ~family ~seed:(Rng.int rng 1_000_000) ~k in
    let profile = SM.Flat.to_profile f in
    let m = random_matching rng k in
    let l2r = Array.init k (SM.Matching.partner_of_left m) in
    Alcotest.(check int) "view count = explicit instability"
      (SM.Verify.instability profile m)
      (SM.Verify.count_blocking (SM.Flat.verify_view f ~l2r))
  done

let test_flat_deterministic () =
  let mk () =
    SM.Flat.gale_shapley (SM.Flat.make ~family:SM.Flat.Uniform ~seed:77 ~k:500)
  in
  let l2r_a, stats_a = mk () in
  let l2r_b, stats_b = mk () in
  Alcotest.(check bool) "same matching" true (l2r_a = l2r_b);
  Alcotest.(check bool) "same stats" true (stats_a = stats_b);
  (* And the output is in fact stable, checked on the implicit view. *)
  Alcotest.(check int) "stable" 0
    (SM.Verify.count_blocking
       (SM.Flat.verify_view
          (SM.Flat.make ~family:SM.Flat.Uniform ~seed:77 ~k:500)
          ~l2r:l2r_a))

(* --- Lattice ------------------------------------------------------------ *)

let test_lattice_meet_join_stable () =
  let rng = Rng.make 23 in
  for _ = 1 to 30 do
    let profile = SM.Profile.random rng 6 in
    let all = SM.Lattice.all_stable_brute profile in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            Alcotest.(check bool) "meet stable" true
              (SM.Verify.is_stable profile (SM.Lattice.meet profile a b));
            Alcotest.(check bool) "join stable" true
              (SM.Verify.is_stable profile (SM.Lattice.join profile a b)))
          all)
      all
  done

let test_all_stable_matches_brute_force () =
  let rng = Rng.make 29 in
  for _ = 1 to 60 do
    let profile = SM.Profile.random rng 6 in
    let fast = List.sort SM.Matching.compare (SM.Lattice.all_stable profile) in
    let brute = List.sort SM.Matching.compare (SM.Lattice.all_stable_brute profile) in
    Alcotest.(check (list matching)) "same set" brute fast
  done

let test_all_stable_contains_both_optima () =
  let rng = Rng.make 31 in
  let profile = SM.Profile.random rng 7 in
  let all = SM.Lattice.all_stable profile in
  let mem m = List.exists (SM.Matching.equal m) all in
  Alcotest.(check bool) "left-optimal present" true
    (mem (SM.Gale_shapley.run ~proposers:Side.Left profile));
  Alcotest.(check bool) "right-optimal present" true
    (mem (SM.Gale_shapley.run ~proposers:Side.Right profile))

let test_egalitarian_minimizes () =
  let rng = Rng.make 37 in
  for _ = 1 to 20 do
    let profile = SM.Profile.random rng 6 in
    let e = SM.Lattice.egalitarian profile in
    let cost = SM.Lattice.egalitarian_cost profile e in
    List.iter
      (fun m ->
        Alcotest.(check bool) "no cheaper stable matching" true
          (cost <= SM.Lattice.egalitarian_cost profile m))
      (SM.Lattice.all_stable_brute profile);
    Alcotest.(check bool) "egalitarian is stable" true
      (SM.Verify.is_stable profile e)
  done

let test_minimum_regret_minimizes () =
  let rng = Rng.make 41 in
  for _ = 1 to 20 do
    let profile = SM.Profile.random rng 6 in
    let e = SM.Lattice.minimum_regret profile in
    let r = SM.Lattice.regret profile e in
    List.iter
      (fun m ->
        Alcotest.(check bool) "no lower-regret stable matching" true
          (r <= SM.Lattice.regret profile m))
      (SM.Lattice.all_stable_brute profile)
  done

let test_worst_case_has_unique_stable_matching () =
  (* With identical lists on both sides the lattice collapses. *)
  let profile = SM.Profile.worst_case 5 in
  Alcotest.(check int) "singleton lattice" 1
    (List.length (SM.Lattice.all_stable profile))

(* --- Truthfulness ------------------------------------------------------- *)

let test_roth_instance_manipulation () =
  let profile, m = SM.Truthfulness.roth_instance () in
  let truth = SM.Profile.prefs profile m.manipulator in
  Alcotest.(check bool) "lying strictly improves" true
    (SM.Prefs.prefers truth m.lying_partner m.honest_partner);
  Alcotest.(check bool) "manipulator is an acceptor" true
    (Side.equal (Party_id.side m.manipulator) Side.Right)

let test_proposers_cannot_gain () =
  (* Dubins–Freedman/Roth: the proposing side is truthful in GS. Exhaustive
     over all k! lies for each left party, on random small instances. *)
  let rng = Rng.make 43 in
  for _ = 1 to 15 do
    let profile = SM.Profile.random rng 4 in
    Alcotest.(check bool) "no profitable lie for proposers" false
      (SM.Truthfulness.proposer_can_gain profile)
  done

(* --- Roommates ---------------------------------------------------------- *)

let test_roommates_mutual_favorites () =
  (* Persons 0-1, 2-3 and 4-5 are mutual favorites; any stable matching
     must pair mutual favorites, so the outcome is forced. *)
  let inst =
    SM.Roommates.make_exn
      [|
        [ 1; 2; 3; 4; 5 ];
        [ 0; 3; 4; 5; 2 ];
        [ 3; 0; 1; 5; 4 ];
        [ 2; 4; 5; 0; 1 ];
        [ 5; 0; 2; 1; 3 ];
        [ 4; 1; 3; 2; 0 ];
      |]
  in
  match SM.Roommates.solve inst with
  | Some partner ->
    Alcotest.(check bool) "stable" true (SM.Roommates.is_stable inst partner);
    Alcotest.(check (array int)) "mutual favorites paired"
      [| 1; 0; 3; 2; 5; 4 |] partner
  | None -> Alcotest.fail "expected a stable matching"

let test_roommates_unsolvable_instance () =
  (* Classic 4-person unsolvable instance: persons 0,1,2 each rank person 3
     last and form a cyclic preference among themselves. *)
  let inst =
    SM.Roommates.make_exn
      [| [ 1; 2; 3 ]; [ 2; 0; 3 ]; [ 0; 1; 3 ]; [ 0; 1; 2 ] |]
  in
  Alcotest.(check bool) "no stable matching" true (SM.Roommates.solve inst = None);
  Alcotest.(check int) "brute force agrees" 0
    (List.length (SM.Roommates.all_stable_brute inst))

let test_roommates_differential () =
  (* Differential test against brute force: solver finds a stable matching
     iff one exists, and its output is stable. *)
  let rng = Rng.make 47 in
  for n = 4 to 8 do
    if n mod 2 = 0 then
      for _ = 1 to 120 do
        let inst = SM.Roommates.random rng n in
        let brute = SM.Roommates.all_stable_brute inst in
        match SM.Roommates.solve inst with
        | Some partner ->
          Alcotest.(check bool) "solver output stable" true
            (SM.Roommates.is_stable inst partner);
          Alcotest.(check bool) "brute force agrees solvable" true (brute <> [])
        | None -> Alcotest.(check int) "brute force agrees unsolvable" 0 (List.length brute)
      done
  done

let test_roommates_rejects_odd_n () =
  Alcotest.(check bool) "odd n rejected" true
    (Result.is_error (SM.Roommates.make [| [ 1; 2 ]; [ 0; 2 ]; [ 0; 1 ] |]))

(* --- Incomplete lists & ties ------------------------------------------- *)

let test_smi_basic () =
  (* L0 accepts only R0; L1 accepts both; R0 prefers L1; R1 accepts only
     L1. Extended GS: L1 takes R0 (R0 prefers L1), L0 stays single —
     wait: L0 proposes R0 first... final stable outcome must leave L0
     unmatched only if no mutually-acceptable partner is free; here R1
     doesn't accept L0, and R0 prefers L1, so L0 is single. *)
  let inst =
    SM.Incomplete.make_exn
      ~left:[| [ 0 ]; [ 0; 1 ] |]
      ~right:[| [ 1; 0 ]; [ 1 ] |]
  in
  let m = SM.Incomplete.solve inst in
  Alcotest.(check bool) "stable" true (SM.Incomplete.is_stable inst m);
  Alcotest.(check (list int)) "L1 matched, L0 single" [ 1 ]
    (SM.Incomplete.matched_left m)

let test_smi_non_mutual_ignored () =
  (* L0 lists R0 but R0 does not list L0: the pair can never match nor
     block. *)
  let inst = SM.Incomplete.make_exn ~left:[| [ 0 ] |] ~right:[| [] |] in
  let m = SM.Incomplete.solve inst in
  Alcotest.(check bool) "stable" true (SM.Incomplete.is_stable inst m);
  Alcotest.(check (list int)) "nobody matched" [] (SM.Incomplete.matched_left m)

let test_smi_rejects_bad_lists () =
  Alcotest.(check bool) "duplicate" true
    (Result.is_error (SM.Incomplete.make ~left:[| [ 0; 0 ] |] ~right:[| [] |]));
  Alcotest.(check bool) "out of range" true
    (Result.is_error (SM.Incomplete.make ~left:[| [ 3 ] |] ~right:[| [] |]))

let test_smi_solver_stable_random () =
  let rng = Rng.make 53 in
  for _ = 1 to 150 do
    let inst = SM.Incomplete.random rng ~k:6 ~acceptance:0.6 in
    let m = SM.Incomplete.solve inst in
    if not (SM.Incomplete.is_stable inst m) then Alcotest.fail "unstable output"
  done

let test_smi_rural_hospitals () =
  (* Gale-Sotomayor: every stable matching of an SMI instance matches the
     same set of parties. Checked against brute-force enumeration. *)
  let rng = Rng.make 59 in
  for _ = 1 to 60 do
    let inst = SM.Incomplete.random rng ~k:4 ~acceptance:0.7 in
    let all = SM.Incomplete.all_stable_brute inst in
    Alcotest.(check bool) "at least one stable matching" true (all <> []);
    let solved = SM.Incomplete.solve inst in
    let reference = SM.Incomplete.matched_left solved, SM.Incomplete.matched_right solved in
    List.iter
      (fun m ->
        Alcotest.(check (pair (list int) (list int)))
          "same matched sets" reference
          (SM.Incomplete.matched_left m, SM.Incomplete.matched_right m))
      all
  done

let test_smi_solve_in_brute_set () =
  let rng = Rng.make 61 in
  for _ = 1 to 40 do
    let inst = SM.Incomplete.random rng ~k:4 ~acceptance:0.8 in
    let m = SM.Incomplete.solve inst in
    let all = SM.Incomplete.all_stable_brute inst in
    Alcotest.(check bool) "solver output among stable matchings" true
      (List.exists (fun m' -> m'.SM.Incomplete.l2r = m.SM.Incomplete.l2r) all)
  done

let test_ties_weakly_stable () =
  let rng = Rng.make 67 in
  for _ = 1 to 80 do
    (* Random tiered preferences: partition 0..k-1 into tiers. *)
    let k = 5 in
    let tiers () =
      Array.init k (fun _ ->
          let order = Rng.permutation rng k in
          (* Split into groups of random sizes. *)
          let rec chop = function
            | [] -> []
            | xs ->
              let n = 1 + Rng.int rng (List.length xs) in
              Util.take n xs :: chop (List.filteri (fun i _ -> i >= n) xs)
          in
          chop order)
    in
    let left = tiers () and right = tiers () in
    match SM.Incomplete.solve_with_ties rng ~left ~right with
    | Ok m ->
      Alcotest.(check bool) "weakly stable" true
        (SM.Incomplete.is_weakly_stable ~left ~right m)
    | Error e -> Alcotest.fail e
  done

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "stable_matching"
    [
      ( "prefs",
        [
          Alcotest.test_case "basics" `Quick test_prefs_basics;
          Alcotest.test_case "rejects non-permutations" `Quick
            test_prefs_rejects_non_permutation;
          Alcotest.test_case "codec roundtrip" `Quick test_prefs_codec_roundtrip;
          Alcotest.test_case "codec rejects malformed" `Quick
            test_prefs_codec_rejects_malformed;
          Alcotest.test_case "similar keeps permutation" `Quick
            test_prefs_similar_is_permutation;
        ] );
      ( "gale-shapley",
        [
          Alcotest.test_case "textbook instance" `Quick test_gs_textbook_instance;
          Alcotest.test_case "worst-case proposal count" `Quick
            test_gs_worst_case_proposals;
          Alcotest.test_case "deterministic" `Quick test_gs_deterministic;
          Alcotest.test_case "right-proposing stable" `Quick
            test_gs_right_proposing_stable;
          Alcotest.test_case "proposer-optimal acceptor-pessimal" `Slow
            test_gs_proposer_optimal_acceptor_pessimal;
          qcheck prop_gs_always_stable;
          qcheck prop_gs_right_stable;
          qcheck prop_similar_profiles_stable;
        ] );
      ( "verify",
        [
          Alcotest.test_case "blocking pair detection" `Quick
            test_blocking_pair_detection;
          Alcotest.test_case "unmatched singles block" `Quick
            test_partial_unmatched_mutually_acceptable_blocks;
          Alcotest.test_case "consider filters" `Quick
            test_partial_respects_consider_filters;
          qcheck prop_fast_paths_match_reference;
          qcheck prop_eps_zero_matches_is_stable;
          Alcotest.test_case "eps budget semantics" `Quick
            test_eps_budget_semantics;
          Alcotest.test_case "shard counts partition" `Quick test_shard_partition;
          Alcotest.test_case "free counter matches reference" `Quick
            test_gs_free_counter_matches_reference;
        ] );
      ( "flat",
        [
          Alcotest.test_case "perm is a bijection" `Quick
            test_flat_perm_is_bijection;
          qcheck prop_flat_gs_matches_explicit;
          Alcotest.test_case "verify view matches explicit" `Quick
            test_flat_verify_view_matches_explicit;
          Alcotest.test_case "deterministic in the seed" `Quick
            test_flat_deterministic;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "meet/join stable" `Slow test_lattice_meet_join_stable;
          Alcotest.test_case "enumeration matches brute force" `Slow
            test_all_stable_matches_brute_force;
          Alcotest.test_case "contains both optima" `Quick
            test_all_stable_contains_both_optima;
          Alcotest.test_case "egalitarian optimum" `Slow test_egalitarian_minimizes;
          Alcotest.test_case "minimum regret optimum" `Slow
            test_minimum_regret_minimizes;
          Alcotest.test_case "identical prefs: unique matching" `Quick
            test_worst_case_has_unique_stable_matching;
        ] );
      ( "truthfulness",
        [
          Alcotest.test_case "roth manipulation exists" `Quick
            test_roth_instance_manipulation;
          Alcotest.test_case "proposers cannot gain" `Slow test_proposers_cannot_gain;
        ] );
      ( "incomplete-and-ties",
        [
          Alcotest.test_case "basic SMI instance" `Quick test_smi_basic;
          Alcotest.test_case "non-mutual acceptability ignored" `Quick
            test_smi_non_mutual_ignored;
          Alcotest.test_case "rejects bad lists" `Quick test_smi_rejects_bad_lists;
          Alcotest.test_case "solver always stable" `Slow test_smi_solver_stable_random;
          Alcotest.test_case "rural hospitals theorem" `Slow test_smi_rural_hospitals;
          Alcotest.test_case "solver output in brute-force set" `Slow
            test_smi_solve_in_brute_set;
          Alcotest.test_case "ties: weak stability" `Slow test_ties_weakly_stable;
        ] );
      ( "roommates",
        [
          Alcotest.test_case "mutual favorites instance" `Quick
            test_roommates_mutual_favorites;
          Alcotest.test_case "unsolvable instance" `Quick
            test_roommates_unsolvable_instance;
          Alcotest.test_case "differential vs brute force" `Slow
            test_roommates_differential;
          Alcotest.test_case "odd n rejected" `Quick test_roommates_rejects_odd_n;
        ] );
    ]
