(* Tests for the prelude: identifiers, party sets, utilities, rng. *)

open Bsm_prelude

let party_id = Alcotest.testable Party_id.pp Party_id.equal

(* --- Side / Party_id ------------------------------------------------------ *)

let test_side_opposite () =
  Alcotest.(check bool) "L<->R" true
    (Side.equal (Side.opposite Side.Left) Side.Right
    && Side.equal (Side.opposite Side.Right) Side.Left)

let test_party_id_string_roundtrip () =
  List.iter
    (fun p -> Alcotest.check party_id "roundtrip" p (Party_id.of_string (Party_id.to_string p)))
    (Party_id.all ~k:13)

let test_party_id_of_string_rejects () =
  List.iter
    (fun s ->
      match Party_id.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ ""; "L"; "X3"; "L-1"; "Lx"; "3L" ]

let test_party_id_order_is_roster_order () =
  let roster = Party_id.all ~k:4 in
  let sorted = List.sort Party_id.compare roster in
  Alcotest.(check (list party_id)) "already sorted" roster sorted

let test_dense_roundtrip () =
  let k = 7 in
  List.iter
    (fun p ->
      Alcotest.check party_id "dense roundtrip" p
        (Party_id.of_dense ~k (Party_id.to_dense ~k p)))
    (Party_id.all ~k);
  Alcotest.(check bool) "dense is injective" true
    (List.length
       (List.sort_uniq compare (List.map (Party_id.to_dense ~k) (Party_id.all ~k)))
    = 2 * k)

(* --- Party_set ------------------------------------------------------------ *)

let test_party_set_side_counts () =
  let s = Party_set.of_list [ Party_id.left 0; Party_id.left 2; Party_id.right 1 ] in
  Alcotest.(check int) "left count" 2 (Party_set.count_side Side.Left s);
  Alcotest.(check int) "right count" 1 (Party_set.count_side Side.Right s);
  Alcotest.(check int) "restrict left" 2
    (Party_set.cardinal (Party_set.restrict_side Side.Left s))

let test_party_set_complement () =
  let k = 3 in
  let s = Party_set.of_list [ Party_id.left 0; Party_id.right 2 ] in
  let c = Party_set.complement ~k s in
  Alcotest.(check int) "size" (2 * k - 2) (Party_set.cardinal c);
  Alcotest.(check bool) "disjoint" true (Party_set.is_empty (Party_set.inter s c));
  Alcotest.(check bool) "union is full" true
    (Party_set.equal (Party_set.union s c) (Party_set.full ~k))

let test_power_set () =
  let sets = Party_set.power_set [ Party_id.left 0; Party_id.left 1 ] in
  Alcotest.(check int) "2^2 subsets" 4 (List.length sets)

(* The enumeration order of [power_set] is pinned: solvability sweeps
   iterate it, and their reports/regression baselines depend on the
   order. The original [Set.Make]-era implementation folded
   [fun subsets p -> subsets @ List.map (add p) subsets] over the
   parties; the tail-recursive rebuild must enumerate identically. *)
let test_power_set_order_pinned () =
  let parties = [ Party_id.left 0; Party_id.right 1; Party_id.left 2 ] in
  let reference =
    let add_party subsets p = subsets @ List.map (fun s -> Party_set.add p s) subsets in
    List.fold_left add_party [ Party_set.empty ] parties
  in
  let got = Party_set.power_set parties in
  Alcotest.(check int) "size" (List.length reference) (List.length got);
  List.iteri
    (fun i (r, g) ->
      if not (Party_set.equal r g) then
        Alcotest.failf "position %d: %a <> %a" i Party_set.pp r Party_set.pp g)
    (List.combine reference got)

(* Model-based: the bit-packed representation must agree with a
   [Set.Make (Party_id)] reference under randomized operation
   sequences, including indices straddling the 62-bit word boundary. *)
module Ref_set = Set.Make (Party_id)

let test_party_set_vs_model () =
  let rng = Rng.make 0xBEE5 in
  (* Indices clustered around word boundaries plus small ones. *)
  let indices = [ 0; 1; 5; 31; 60; 61; 62; 63; 64; 100; 123; 124; 125; 200 ] in
  let random_party () =
    let side = if Rng.bool rng then Side.Left else Side.Right in
    Party_id.make side (Rng.choose rng indices)
  in
  let check_agree label (s : Party_set.t) (m : Ref_set.t) =
    Alcotest.(check (list party_id))
      (label ^ ": elements") (Ref_set.elements m)
      (Party_set.elements s);
    Alcotest.(check int) (label ^ ": cardinal") (Ref_set.cardinal m)
      (Party_set.cardinal s);
    List.iter
      (fun side ->
        Alcotest.(check int)
          (label ^ ": count_side")
          (Ref_set.cardinal
             (Ref_set.filter (fun p -> Side.equal (Party_id.side p) side) m))
          (Party_set.count_side side s))
      Side.all
  in
  let s = ref Party_set.empty and m = ref Ref_set.empty in
  (* A second pair evolving independently, for the binary operations. *)
  let s2 = ref Party_set.empty and m2 = ref Ref_set.empty in
  for step = 1 to 400 do
    let p = random_party () in
    (match Rng.int rng 4 with
    | 0 ->
      s := Party_set.add p !s;
      m := Ref_set.add p !m
    | 1 ->
      s := Party_set.remove p !s;
      m := Ref_set.remove p !m
    | 2 ->
      s2 := Party_set.add p !s2;
      m2 := Ref_set.add p !m2
    | _ ->
      s2 := Party_set.remove p !s2;
      m2 := Ref_set.remove p !m2);
    Alcotest.(check bool)
      "mem agrees" (Ref_set.mem p !m) (Party_set.mem p !s);
    if step mod 20 = 0 then begin
      check_agree "s" !s !m;
      check_agree "union" (Party_set.union !s !s2) (Ref_set.union !m !m2);
      check_agree "inter" (Party_set.inter !s !s2) (Ref_set.inter !m !m2);
      check_agree "diff" (Party_set.diff !s !s2) (Ref_set.diff !m !m2);
      Alcotest.(check bool)
        "subset agrees"
        (Ref_set.subset !m !m2)
        (Party_set.subset !s !s2);
      Alcotest.(check bool)
        "subset of union" true
        (Party_set.subset !s (Party_set.union !s !s2));
      Alcotest.(check bool)
        "equal agrees"
        (Ref_set.equal !m !m2)
        (Party_set.equal !s !s2)
    end
  done;
  (* Removal back to empty must normalize: equal to the empty value. *)
  let drained = Ref_set.fold Party_set.remove !m !s in
  Alcotest.(check bool) "drained set equals empty" true
    (Party_set.equal Party_set.empty drained && Party_set.is_empty drained)

let test_party_set_word_boundary_full () =
  (* k spanning multiple 62-bit words, exact popcounts. *)
  List.iter
    (fun k ->
      let f = Party_set.full ~k in
      Alcotest.(check int) "cardinal" (2 * k) (Party_set.cardinal f);
      Alcotest.(check int) "left" k (Party_set.count_side Side.Left f);
      let no_left0 = Party_set.remove (Party_id.left 0) f in
      Alcotest.(check int) "after remove" (2 * k - 1) (Party_set.cardinal no_left0);
      Alcotest.(check bool) "complement of empty is full" true
        (Party_set.equal f (Party_set.complement ~k Party_set.empty)))
    [ 1; 61; 62; 63; 124; 125; 200 ]

(* --- Util ------------------------------------------------------------------ *)

let test_most_common () =
  Alcotest.(check (option (pair string int)))
    "majority" (Some ("b", 2))
    (Util.most_common ~equal:String.equal [ "a"; "b"; "b" ]);
  Alcotest.(check (option (pair string int)))
    "first wins ties" (Some ("a", 1))
    (Util.most_common ~equal:String.equal [ "a"; "b" ]);
  Alcotest.(check (option (pair string int)))
    "empty" None
    (Util.most_common ~equal:String.equal [])

let test_strict_majority () =
  Alcotest.(check (option int)) "5 of 9" (Some 1)
    (Util.strict_majority ~equal:Int.equal ~total:9 [ 1; 1; 1; 1; 1; 2; 2; 2; 2 ]);
  Alcotest.(check (option int)) "exactly half is not majority" None
    (Util.strict_majority ~equal:Int.equal ~total:4 [ 1; 1; 2 ])

let test_group_by_preserves_order () =
  let groups = Util.group_by ~key:(fun x -> x mod 2) ~equal_key:Int.equal [ 1; 2; 3; 4 ] in
  Alcotest.(check (list (pair int (list int)))) "keyed in first-seen order"
    [ 1, [ 1; 3 ]; 0, [ 2; 4 ] ]
    groups

let test_is_permutation () =
  Alcotest.(check bool) "valid" true (Util.is_permutation [ 2; 0; 1 ] ~n:3);
  Alcotest.(check bool) "duplicate" false (Util.is_permutation [ 0; 0; 1 ] ~n:3);
  Alcotest.(check bool) "short" false (Util.is_permutation [ 0; 1 ] ~n:3);
  Alcotest.(check bool) "out of range" false (Util.is_permutation [ 0; 1; 3 ] ~n:3)

let test_cdiv () =
  Alcotest.(check int) "7/3" 3 (Util.cdiv 7 3);
  Alcotest.(check int) "6/3" 2 (Util.cdiv 6 3);
  Alcotest.(check int) "1/3" 1 (Util.cdiv 1 3)

let test_dedup_take_range () =
  Alcotest.(check (list int)) "dedup keeps first" [ 3; 1; 2 ]
    (Util.dedup ~equal:Int.equal [ 3; 1; 3; 2; 1 ]);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Util.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1 ] (Util.take 5 [ 1 ]);
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Util.range 2 5);
  Alcotest.(check (list int)) "empty range" [] (Util.range 5 2)

(* --- Rng -------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.make 42 and b = Rng.make 42 in
  let xs rng = List.init 20 (fun _ -> Rng.int rng 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (xs a) (xs b)

let test_rng_permutation_valid () =
  let rng = Rng.make 1 in
  for n = 1 to 20 do
    Alcotest.(check bool) "permutation" true
      (Util.is_permutation (Rng.permutation rng n) ~n)
  done

let test_rng_sample_distinct () =
  let rng = Rng.make 2 in
  let sample = Rng.sample rng 5 (List.init 10 Fun.id) in
  Alcotest.(check int) "5 distinct" 5 (List.length (List.sort_uniq compare sample))

let test_rng_split_independent () =
  let a = Rng.make 7 in
  let b = Rng.split a in
  let before = Rng.int b 1000000 in
  ignore (Rng.int a 1000000);
  (* Recreate the same split stream: split is a function of a's state at
     split time, so an identical setup must reproduce [before]. *)
  let a' = Rng.make 7 in
  let b' = Rng.split a' in
  Alcotest.(check int) "split reproducible" before (Rng.int b' 1000000)

let test_mix64_deterministic () =
  List.iter
    (fun x ->
      Alcotest.(check int64)
        "pure function" (Rng.mix64 x) (Rng.mix64 x))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x123456789ABCDEFL ];
  let h = Rng.mix64_absorb (Rng.mix64 5L) 17 in
  Alcotest.(check int64) "absorb deterministic" h (Rng.mix64_absorb (Rng.mix64 5L) 17)

let test_mix64_avalanche () =
  (* Flipping one input bit must flip roughly half the output bits —
     splitmix64's finalizer is a strong avalanche mixer. *)
  let popcount x =
    let n = ref 0 in
    for i = 0 to 63 do
      if Int64.(logand (shift_right_logical x i) 1L) = 1L then incr n
    done;
    !n
  in
  List.iter
    (fun x ->
      for bit = 0 to 63 do
        let y = Int64.logxor x (Int64.shift_left 1L bit) in
        let flipped = popcount (Int64.logxor (Rng.mix64 x) (Rng.mix64 y)) in
        if flipped < 10 || flipped > 54 then
          Alcotest.failf "avalanche too weak: bit %d flipped only %d output bits"
            bit flipped
      done)
    [ 0L; 42L; 0xDEADBEEFL ]

let test_mix64_distinct_streams () =
  (* Distinct (seed, salt, round) coordinates must hash to distinct
     values once the seed is pre-mixed (the discipline Schedule.compile
     follows): the stateless coin never correlates across components. *)
  let hashes =
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun salt ->
            List.map
              (fun round ->
                Rng.mix64_absorb
                  (Rng.mix64_absorb (Rng.mix64 (Int64.of_int seed)) salt)
                  round)
              (Util.range 0 10))
          (Util.range 0 10))
      (Util.range 0 10)
  in
  Alcotest.(check int)
    "all distinct" (List.length hashes)
    (List.length (List.sort_uniq compare hashes))

let test_uniform_of_hash () =
  let xs =
    List.init 10_000 (fun i -> Rng.uniform_of_hash (Rng.mix64 (Int64.of_int i)))
  in
  List.iter
    (fun u ->
      if not (u >= 0. && u < 1.) then Alcotest.failf "out of [0,1): %g" u)
    xs;
  let mean = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  Alcotest.(check bool)
    "mean near 1/2" true
    (mean > 0.48 && mean < 0.52)

(* --- Stats ------------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.summarize [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check int) "n" 8 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 2.0 s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Stats.max

let test_stats_percentile () =
  let xs = List.map float_of_int (Util.range 1 101) in
  Alcotest.(check (float 1e-9)) "median" 50.0 (Stats.percentile 50. xs);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile 95. xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile 100. xs)

let test_stats_rate () =
  Alcotest.(check (float 1e-9)) "3 of 4" 75.0 (Stats.rate 3 4);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.rate 0 0)

let test_stats_rejects_empty () =
  (match Stats.summarize [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "summarize accepted empty");
  match Stats.percentile 50. [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "percentile accepted empty"

(* --- Table ------------------------------------------------------------------ *)

let test_table_renders () =
  let t = Table.make ~title:"demo" ~header:[ "col"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "aligned" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| a   | 1     |"))

let test_table_rejects_bad_row () =
  let t = Table.make ~title:"demo" ~header:[ "a"; "b" ] in
  match Table.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "accepted short row"

let () =
  Alcotest.run "prelude"
    [
      ( "ids",
        [
          Alcotest.test_case "side opposite" `Quick test_side_opposite;
          Alcotest.test_case "party id string roundtrip" `Quick
            test_party_id_string_roundtrip;
          Alcotest.test_case "of_string rejects" `Quick test_party_id_of_string_rejects;
          Alcotest.test_case "roster order" `Quick test_party_id_order_is_roster_order;
          Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
        ] );
      ( "party-set",
        [
          Alcotest.test_case "side counts" `Quick test_party_set_side_counts;
          Alcotest.test_case "complement" `Quick test_party_set_complement;
          Alcotest.test_case "power set" `Quick test_power_set;
          Alcotest.test_case "power set order pinned" `Quick
            test_power_set_order_pinned;
          Alcotest.test_case "bit-packed vs model" `Quick test_party_set_vs_model;
          Alcotest.test_case "word boundaries" `Quick
            test_party_set_word_boundary_full;
        ] );
      ( "util",
        [
          Alcotest.test_case "most common" `Quick test_most_common;
          Alcotest.test_case "strict majority" `Quick test_strict_majority;
          Alcotest.test_case "group by" `Quick test_group_by_preserves_order;
          Alcotest.test_case "is permutation" `Quick test_is_permutation;
          Alcotest.test_case "ceiling division" `Quick test_cdiv;
          Alcotest.test_case "dedup/take/range" `Quick test_dedup_take_range;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "permutations valid" `Quick test_rng_permutation_valid;
          Alcotest.test_case "samples distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "split reproducible" `Quick test_rng_split_independent;
          Alcotest.test_case "mix64 deterministic" `Quick test_mix64_deterministic;
          Alcotest.test_case "mix64 avalanche" `Quick test_mix64_avalanche;
          Alcotest.test_case "mix64 distinct streams" `Quick
            test_mix64_distinct_streams;
          Alcotest.test_case "uniform of hash" `Quick test_uniform_of_hash;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "rate" `Quick test_stats_rate;
          Alcotest.test_case "rejects empty" `Quick test_stats_rejects_empty;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders aligned" `Quick test_table_renders;
          Alcotest.test_case "rejects bad row" `Quick test_table_rejects_bad_row;
        ] );
    ]
