(* Tests for the synchronous round engine: fiber scheduling, delivery
   timing, topology enforcement, omission faults, metrics. *)

open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire

(* Envelope payloads are zero-copy arena views; materialize for
   assertions. *)
let data_str (e : Engine.envelope) = Wire.Slice.to_string e.Engine.data

let party_id = Alcotest.testable Party_id.pp Party_id.equal

let run ?(topology = Topology.Fully_connected) ?max_rounds ?faults ~k programs =
  let cfg =
    Engine.config ?max_rounds ?faults ~k ~link:(Engine.Of_topology topology) ()
  in
  Engine.run cfg ~programs

let status_of res p = (Engine.find_result res p).Engine.status

let check_status what expected res p =
  let pp_status ppf (s : Engine.status) =
    match s with
    | Engine.Terminated -> Format.pp_print_string ppf "terminated"
    | Engine.Out_of_rounds -> Format.pp_print_string ppf "out-of-rounds"
    | Engine.Crashed m -> Format.fprintf ppf "crashed: %s" m
  in
  let status = Alcotest.testable pp_status ( = ) in
  Alcotest.check status what expected (status_of res p)

(* --- basic scheduling -------------------------------------------------- *)

let test_all_terminate_immediately () =
  let res = run ~k:2 (fun _ -> fun env -> env.Engine.output "done") in
  List.iter
    (fun (r : Engine.party_result) ->
      Alcotest.(check bool) "terminated" true (r.status = Engine.Terminated);
      Alcotest.(check (option string)) "output" (Some "done") r.out)
    res.parties;
  Alcotest.(check int) "no rounds needed" 0 res.metrics.rounds_used

let test_message_delivered_next_round () =
  (* L0 sends "hi" to R0 in round 0; R0 must see it in round 1 and nothing
     in round 2. *)
  let saw = ref [] in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      env.Engine.send (Party_id.right 0) "hi"
    else if Party_id.equal id (Party_id.right 0) then begin
      let inbox1 = env.Engine.next_round () in
      let inbox2 = env.Engine.next_round () in
      saw := [ inbox1; inbox2 ]
    end
  in
  let res = run ~k:1 programs in
  check_status "R0 terminated" Engine.Terminated res (Party_id.right 0);
  match !saw with
  | [ [ e ]; [] ] ->
    Alcotest.check party_id "sender" (Party_id.left 0) e.Engine.src;
    Alcotest.(check string) "payload" "hi" (data_str e)
  | _ -> Alcotest.fail "expected exactly one message in round 1 and none in round 2"

let test_round_counter () =
  let rounds_seen = ref [] in
  let programs _ env =
    rounds_seen := env.Engine.round () :: !rounds_seen;
    ignore (env.Engine.next_round ());
    rounds_seen := env.Engine.round () :: !rounds_seen;
    ignore (env.Engine.next_round ());
    rounds_seen := env.Engine.round () :: !rounds_seen
  in
  let res = run ~k:1 programs in
  Alcotest.(check int) "rounds used" 2 res.metrics.rounds_used;
  let sorted = List.sort_uniq compare !rounds_seen in
  Alcotest.(check (list int)) "each fiber saw rounds 0,1,2" [ 0; 1; 2 ] sorted

let test_ping_pong () =
  (* L0 and R0 bounce a counter; each increments and returns it. After 6
     rounds L0 should hold 6. *)
  let final = ref (-1) in
  let peer id =
    if Side.equal (Party_id.side id) Side.Left then Party_id.right 0
    else Party_id.left 0
  in
  let programs id env =
    let me_first = Side.equal (Party_id.side id) Side.Left in
    if me_first then env.Engine.send (peer id) "0";
    let rec loop () =
      match env.Engine.next_round () with
      | [ e ] ->
        let v = int_of_string (data_str e) + 1 in
        if v >= 6 then final := v
        else begin
          env.Engine.send (peer id) (string_of_int v);
          loop ()
        end
      | [] -> loop ()
      | _ -> Alcotest.fail "unexpected traffic"
    in
    if Party_id.index id = 0 then loop ()
  in
  let res = run ~k:1 ~max_rounds:20 programs in
  ignore res;
  Alcotest.(check int) "counter reached 6" 6 !final

let test_out_of_rounds () =
  let programs _ env =
    while true do
      ignore (env.Engine.next_round ())
    done
  in
  let res = run ~k:1 ~max_rounds:5 programs in
  Alcotest.(check int) "hit the budget" 5 res.metrics.rounds_used;
  check_status "L0 out of rounds" Engine.Out_of_rounds res (Party_id.left 0)

let test_crash_is_reported () =
  let programs id _env =
    if Party_id.equal id (Party_id.left 0) then failwith "boom"
  in
  let res = run ~k:1 programs in
  (match status_of res (Party_id.left 0) with
  | Engine.Crashed m -> Alcotest.(check bool) "message" true (String.length m > 0)
  | _ -> Alcotest.fail "expected crash");
  check_status "R0 unaffected" Engine.Terminated res (Party_id.right 0)

let test_crash_after_send_still_delivers () =
  (* A party that sends then crashes in the same round: the message was
     already queued and must still be delivered (the paper's adversary can
     always behave this way, so the engine must not retract it). *)
  let got = ref false in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.right 0) "last words";
      failwith "crash"
    end
    else got := env.Engine.next_round () <> []
  in
  ignore (run ~k:1 programs);
  Alcotest.(check bool) "delivered" true !got

(* --- topology enforcement ---------------------------------------------- *)

let inbox_senders env = List.map (fun e -> e.Engine.src) (env.Engine.next_round ())

let test_bipartite_blocks_same_side () =
  let l1_saw = ref [] in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.left 1) "intra";
      env.Engine.send (Party_id.right 0) "cross"
    end
    else if Party_id.equal id (Party_id.left 1) then l1_saw := inbox_senders env
    else ignore (env.Engine.next_round ())
  in
  let res = run ~topology:Topology.Bipartite ~k:2 programs in
  Alcotest.(check (list party_id)) "L1 got nothing" [] !l1_saw;
  Alcotest.(check int) "one drop" 1 res.metrics.messages_dropped_topology

let test_one_sided_allows_rr_blocks_ll () =
  let r1_saw = ref [] in
  let l1_saw = ref [] in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then env.Engine.send (Party_id.left 1) "x"
    else if Party_id.equal id (Party_id.right 0) then
      env.Engine.send (Party_id.right 1) "y"
    else if Party_id.equal id (Party_id.left 1) then l1_saw := inbox_senders env
    else if Party_id.equal id (Party_id.right 1) then r1_saw := inbox_senders env
  in
  ignore (run ~topology:Topology.One_sided ~k:2 programs);
  Alcotest.(check (list party_id)) "L-L dropped" [] !l1_saw;
  Alcotest.(check (list party_id)) "R-R delivered" [ Party_id.right 0 ] !r1_saw

let test_out_of_roster_send_dropped () =
  (* A byzantine fiber addressing a party outside the roster must not
     crash the engine; the message counts as a topology drop. *)
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.left 99) "junk";
      env.Engine.send (Party_id.right 0) "real"
    end
    else ignore (env.Engine.next_round ())
  in
  let res = run ~k:1 programs in
  Alcotest.(check int) "junk dropped" 1 res.metrics.messages_dropped_topology;
  Alcotest.(check int) "real delivered" 1 res.metrics.messages_delivered

let test_self_send_dropped () =
  let saw = ref [ Party_id.left 0 ] in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.left 0) "me";
      saw := inbox_senders env
    end
  in
  ignore (run ~k:1 programs);
  Alcotest.(check (list party_id)) "no self delivery" [] !saw

(* --- faults ------------------------------------------------------------ *)

let test_bytes_exclude_omitted () =
  (* L0's messages are omitted by the fault model, L1's delivered;
     bytes_delivered must count only the delivered payloads, while
     bytes_sent counts every send at the length the sender wrote. *)
  let faults =
    Engine.fault_model (fun ~round:_ ~src ~dst:_ ->
        Party_id.equal src (Party_id.left 0))
  in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      env.Engine.send (Party_id.right 0) "dropped!!"
    else if Party_id.equal id (Party_id.left 1) then
      env.Engine.send (Party_id.right 0) "kept"
    else if Party_id.equal id (Party_id.right 0) then
      ignore (env.Engine.next_round ())
  in
  let res = run ~k:2 ~faults programs in
  Alcotest.(check int) "both sends counted" 2 res.metrics.messages_sent;
  Alcotest.(check int) "one delivered" 1 res.metrics.messages_delivered;
  Alcotest.(check int) "one omitted" 1 res.metrics.messages_dropped_fault;
  Alcotest.(check int) "only delivered bytes" 4 res.metrics.bytes_delivered;
  Alcotest.(check int) "all sent bytes" 13 res.metrics.bytes_sent

let test_bytes_exclude_topology_drops () =
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.left 1) "blocked";
      env.Engine.send (Party_id.right 0) "ok"
    end
    else ignore (env.Engine.next_round ())
  in
  let cfg =
    Engine.config ~k:2 ~link:(Engine.Of_topology Topology.Bipartite) ()
  in
  let res = Engine.run cfg ~programs in
  Alcotest.(check int) "only delivered bytes" 2 res.Engine.metrics.bytes_delivered;
  Alcotest.(check int) "all sent bytes" 9 res.Engine.metrics.bytes_sent

let test_omission_fault_drops () =
  let faults =
    Engine.fault_model (fun ~round:_ ~src ~dst:_ ->
        Party_id.equal src (Party_id.left 0))
  in
  let saw = ref [ "sentinel" ] in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then env.Engine.send (Party_id.right 0) "a"
    else if Party_id.equal id (Party_id.left 1) then
      env.Engine.send (Party_id.right 0) "b"
    else if Party_id.equal id (Party_id.right 0) then
      saw := List.map data_str (env.Engine.next_round ())
  in
  let res = run ~k:2 ~faults programs in
  Alcotest.(check (list string)) "only L1's message" [ "b" ] !saw;
  Alcotest.(check int) "one fault drop" 1 res.metrics.messages_dropped_fault

let test_topology_drop_precedes_fault_drop () =
  (* A message without a channel is a topology drop even under an
     always-drop fault model: the fault model must not be consulted (its
     label never appears) and the message counts against exactly one
     counter. *)
  let consulted = ref 0 in
  let faults =
    Engine.fault_model
      ~label:(fun ~round:_ ~src:_ ~dst:_ -> Some "always")
      (fun ~round:_ ~src:_ ~dst:_ ->
        incr consulted;
        true)
  in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.left 1) "blocked";
      (* off-topology on Bipartite *)
      env.Engine.send (Party_id.right 0) "omitted" (* on-topology, faulted *)
    end
    else ignore (env.Engine.next_round ())
  in
  let cfg =
    Engine.config ~k:2 ~faults ~link:(Engine.Of_topology Topology.Bipartite) ()
  in
  let res = Engine.run cfg ~programs in
  let m = res.Engine.metrics in
  Alcotest.(check int) "fault model consulted once" 1 !consulted;
  Alcotest.(check int) "one topology drop" 1 m.messages_dropped_topology;
  Alcotest.(check int) "one fault drop" 1 m.messages_dropped_fault;
  Alcotest.(check int) "sent" 2 m.messages_sent;
  Alcotest.(check int) "delivered" 0 m.messages_delivered;
  Alcotest.(check (list (pair string int)))
    "only the faulted message labelled"
    [ "always", 1 ]
    m.messages_dropped_by_label

let test_drop_labels_in_metrics_and_trace () =
  (* Labelled omissions are tallied per label (sorted) and stamped on the
     trace events; unlabelled omissions count in messages_dropped_fault
     but appear under no label. *)
  let faults =
    Engine.fault_model
      ~label:(fun ~round:_ ~src ~dst:_ ->
        if Party_id.equal src (Party_id.left 0) then Some "zap-L0"
        else if Party_id.equal src (Party_id.left 1) then Some "a-zap-L1"
        else None)
      (fun ~round:_ ~src ~dst ->
        Side.equal (Party_id.side src) Side.Left
        && Party_id.equal dst (Party_id.right 0))
  in
  let programs id env =
    if Side.equal (Party_id.side id) Side.Left then begin
      env.Engine.send (Party_id.right 0) "x";
      env.Engine.send (Party_id.right 1) "y"
    end
    else ignore (env.Engine.next_round ())
  in
  let cfg =
    Engine.config ~k:3 ~faults ~trace_limit:100
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  let m = res.Engine.metrics in
  Alcotest.(check int) "three omissions" 3 m.messages_dropped_fault;
  Alcotest.(check (list (pair string int)))
    "labels sorted, unlabelled (L2) unlisted"
    [ "a-zap-L1", 1; "zap-L0", 1 ]
    m.messages_dropped_by_label;
  let labelled_events =
    List.filter_map (fun e -> e.Engine.event_label) res.Engine.trace
  in
  Alcotest.(check (list string))
    "trace carries labels" [ "zap-L0"; "a-zap-L1" ]
    labelled_events;
  List.iter
    (fun e ->
      if e.Engine.event_fate <> `Omitted then
        Alcotest.(check (option string))
          "only omissions labelled" None e.Engine.event_label)
    res.Engine.trace

(* --- in-flight corruption ------------------------------------------------ *)

let test_corrupt_rewrites_and_counts () =
  (* A corrupted frame is delivered (with the mutated bytes), counted in
     messages_delivered AND messages_corrupted, tallied under its label,
     and its mutated length is what bytes_delivered sees (bytes_sent
     keeps the pre-mutation written length). *)
  let faults =
    Engine.fault_model
      ~corrupt:(fun ~round:_ ~src ~dst:_ ~prev:_ data ->
        if Party_id.equal src (Party_id.left 0) then Some (data ^ "!", "garble")
        else None)
      (fun ~round:_ ~src:_ ~dst:_ -> false)
  in
  let saw = ref [] in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      env.Engine.send (Party_id.right 0) "hi"
    else if Party_id.equal id (Party_id.left 1) then
      env.Engine.send (Party_id.right 0) "ok"
    else if Party_id.equal id (Party_id.right 0) then
      saw := List.map data_str (env.Engine.next_round ())
  in
  let cfg =
    Engine.config ~k:2 ~faults ~trace_limit:100
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  let m = res.Engine.metrics in
  Alcotest.(check (list string)) "mutated payload delivered" [ "hi!"; "ok" ] !saw;
  Alcotest.(check int) "both delivered" 2 m.messages_delivered;
  Alcotest.(check int) "one corrupted" 1 m.messages_corrupted;
  Alcotest.(check int) "no fault drops" 0 m.messages_dropped_fault;
  Alcotest.(check (list (pair string int)))
    "label tallied" [ "garble", 1 ] m.messages_dropped_by_label;
  Alcotest.(check int) "bytes count the mutated length" 5 m.bytes_delivered;
  Alcotest.(check int) "sent bytes keep the written length" 4 m.bytes_sent;
  let corrupted_events =
    List.filter (fun e -> e.Engine.event_fate = `Corrupted) res.Engine.trace
  in
  match corrupted_events with
  | [ e ] ->
    Alcotest.(check (option string))
      "trace event labelled" (Some "garble") e.Engine.event_label
  | es -> Alcotest.failf "expected one corrupted trace event, got %d" (List.length es)

let test_corrupt_prev_is_last_delivered_frame () =
  (* [prev] must be the frame delivered on the same link in an earlier
     round — post-mutation bytes — and never a same-round frame: both
     round-0 frames see prev = None (staged, committed only after the
     deliver sweep), and the round-1 frame sees the last round-0
     delivery. *)
  let prevs = ref [] in
  let faults =
    Engine.fault_model
      ~corrupt:(fun ~round:_ ~src:_ ~dst:_ ~prev data ->
        prevs := (data, prev) :: !prevs;
        Some (data ^ "!", "tag"))
      (fun ~round:_ ~src:_ ~dst:_ -> false)
  in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.right 0) "x";
      env.Engine.send (Party_id.right 0) "y";
      ignore (env.Engine.next_round ());
      env.Engine.send (Party_id.right 0) "z"
    end
    else begin
      ignore (env.Engine.next_round ());
      ignore (env.Engine.next_round ())
    end
  in
  ignore (run ~k:1 ~faults programs);
  Alcotest.(check (option string)) "x sees no prev" None (List.assoc "x" !prevs);
  Alcotest.(check (option string))
    "y sees no prev (same round as x)" None (List.assoc "y" !prevs);
  Alcotest.(check (option string))
    "z sees the last delivered frame" (Some "y!") (List.assoc "z" !prevs)

let test_drop_precedes_corrupt () =
  (* The corrupt hook is only consulted for frames that survive the drop
     decision: a dropped frame is an omission, never a corruption. *)
  let consulted = ref 0 in
  let faults =
    Engine.fault_model
      ~corrupt:(fun ~round:_ ~src:_ ~dst:_ ~prev:_ _ ->
        incr consulted;
        None)
      (fun ~round:_ ~src ~dst:_ -> Party_id.equal src (Party_id.left 0))
  in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      env.Engine.send (Party_id.right 0) "a"
    else if Party_id.equal id (Party_id.left 1) then
      env.Engine.send (Party_id.right 0) "b"
    else if Party_id.equal id (Party_id.right 0) then
      ignore (env.Engine.next_round ())
  in
  let res = run ~k:2 ~faults programs in
  let m = res.metrics in
  Alcotest.(check int) "hook consulted for the surviving frame only" 1 !consulted;
  Alcotest.(check int) "one omission" 1 m.messages_dropped_fault;
  Alcotest.(check int) "no corruption" 0 m.messages_corrupted

(* --- state-cell scrambling ---------------------------------------------- *)

let test_register_state_scrambled_between_rounds () =
  (* A registered cell is rewritten through its codec between rounds: the
     party parks in round 0, the scramble hook fires entering round 1,
     and the fiber resumes already holding the mutated state. The first
     candidate here is undecodable, forcing the attempt-retry loop; the
     firing is counted once under the hook's label. *)
  let observed = ref [] in
  let value = ref 7 in
  let scramble ~round ~party ~cell ~attempt payload =
    ignore payload;
    ignore cell;
    if round = 1 && Party_id.equal party (Party_id.left 0) then
      if attempt = 0 then Some ("\xff", "scrambler")
      else Some (Wire.encode Wire.uint 42, "scrambler")
    else None
  in
  let faults = Engine.fault_model ~scramble (fun ~round:_ ~src:_ ~dst:_ -> false) in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.register_state Wire.uint value;
      ignore (env.Engine.next_round ());
      observed := !observed @ [ !value ];
      ignore (env.Engine.next_round ());
      observed := !observed @ [ !value ]
    end
  in
  let res = run ~k:1 ~max_rounds:5 ~faults programs in
  Alcotest.(check (list int)) "scrambled in round 1, stable after" [ 42; 42 ]
    !observed;
  Alcotest.(check int) "one cell scrambled" 1 res.metrics.Engine.cells_scrambled;
  Alcotest.(check (option int)) "first scramble round" (Some 1)
    res.metrics.Engine.first_scramble_round;
  Alcotest.(check (list (pair string int)))
    "scramble tallied under the hook's label"
    [ "scrambler", 1 ]
    res.metrics.Engine.messages_dropped_by_label;
  let l0 = Engine.find_result res (Party_id.left 0) in
  Alcotest.(check (option int)) "L0 finished at round 2" (Some 2)
    l0.Engine.finished_round;
  let r0 = Engine.find_result res (Party_id.right 0) in
  Alcotest.(check (option int)) "instant finisher at round 0" (Some 0)
    r0.Engine.finished_round

let test_scramble_gives_up_after_max_attempts () =
  (* A hook that only ever produces undecodable bytes must leave the cell
     untouched and count nothing — decode-validated mutation means the
     adversary can only install well-formed states. *)
  let attempts = ref 0 in
  let value = ref 7 in
  let scramble ~round:_ ~party:_ ~cell:_ ~attempt:_ _payload =
    incr attempts;
    Some ("\xff", "scrambler")
  in
  let faults = Engine.fault_model ~scramble (fun ~round:_ ~src:_ ~dst:_ -> false) in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.register_state Wire.uint value;
      ignore (env.Engine.next_round ())
    end
  in
  let res = run ~k:1 ~max_rounds:3 ~faults programs in
  Alcotest.(check int) "bounded retries" Engine.max_scramble_attempts !attempts;
  Alcotest.(check int) "cell untouched" 7 !value;
  Alcotest.(check int) "nothing counted" 0 res.metrics.Engine.cells_scrambled;
  Alcotest.(check (option int)) "no first round" None
    res.metrics.Engine.first_scramble_round

(* --- determinism & inbox order ------------------------------------------ *)

let test_inbox_sorted_by_sender () =
  let k = 3 in
  let saw = ref [] in
  let programs id env =
    if Party_id.equal id (Party_id.right 0) then saw := inbox_senders env
    else if Side.equal (Party_id.side id) Side.Left then
      env.Engine.send (Party_id.right 0) "m"
  in
  ignore (run ~k programs);
  Alcotest.(check (list party_id))
    "sorted" [ Party_id.left 0; Party_id.left 1; Party_id.left 2 ] !saw

let test_per_sender_order_preserved () =
  let saw = ref [] in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.right 0) "first";
      env.Engine.send (Party_id.right 0) "second"
    end
    else if Party_id.equal id (Party_id.right 0) then
      saw := List.map data_str (env.Engine.next_round ())
  in
  ignore (run ~k:1 programs);
  Alcotest.(check (list string)) "order kept" [ "first"; "second" ] !saw

let test_metrics_accounting () =
  let programs id env =
    if Side.equal (Party_id.side id) Side.Left then
      env.Engine.send (Party_id.right 0) "12345"
  in
  let res = run ~k:2 programs in
  Alcotest.(check int) "sent" 2 res.metrics.messages_sent;
  Alcotest.(check int) "delivered" 2 res.metrics.messages_delivered;
  Alcotest.(check int) "bytes" 10 res.metrics.bytes_sent;
  Alcotest.(check int) "delivered bytes" 10 res.metrics.bytes_delivered

let test_trace_records_fates () =
  (* One delivered, one dropped-by-topology, one omitted message; the
     trace must record all three with their fates, in order. *)
  let faults =
    Engine.fault_model (fun ~round:_ ~src:_ ~dst ->
        Party_id.equal dst (Party_id.right 1))
  in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.right 0) "ok";
      env.Engine.send (Party_id.left 1) "blocked";
      env.Engine.send (Party_id.right 1) "omitted"
    end
    else ignore (env.Engine.next_round ())
  in
  let cfg =
    Engine.config ~k:2 ~faults ~trace_limit:100
      ~link:(Engine.Of_topology Topology.Bipartite) ()
  in
  let res = Engine.run cfg ~programs in
  let fates = List.map (fun e -> e.Engine.event_fate) res.Engine.trace in
  Alcotest.(check int) "three events" 3 (List.length fates);
  Alcotest.(check bool) "one of each fate" true
    (List.mem `Delivered fates && List.mem `No_channel fates && List.mem `Omitted fates)

let test_trace_limit_respected () =
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      for _ = 1 to 50 do
        env.Engine.send (Party_id.right 0) "x"
      done
  in
  let cfg =
    Engine.config ~k:1 ~trace_limit:10
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  Alcotest.(check int) "capped at 10" 10 (List.length res.Engine.trace);
  Alcotest.(check int) "metrics still complete" 50 res.Engine.metrics.messages_sent

let test_trace_chronological () =
  (* L0 sends one message per round for 5 rounds; the trace must list the
     events in round order 0,1,2,3,4. *)
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      for _ = 1 to 5 do
        env.Engine.send (Party_id.right 0) "tick";
        ignore (env.Engine.next_round ())
      done
    else
      for _ = 1 to 5 do
        ignore (env.Engine.next_round ())
      done
  in
  let cfg =
    Engine.config ~k:1 ~trace_limit:100 ~max_rounds:10
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  let rounds = List.map (fun e -> e.Engine.event_round) res.Engine.trace in
  Alcotest.(check (list int)) "rounds in order" [ 0; 1; 2; 3; 4 ] rounds

let test_trace_limit_keeps_first_events () =
  (* With a limit of 2, the two earliest events (rounds 0 and 1) must
     survive — truncation drops the tail, never the head. *)
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      for _ = 1 to 5 do
        env.Engine.send (Party_id.right 0) "tick";
        ignore (env.Engine.next_round ())
      done
    else
      for _ = 1 to 5 do
        ignore (env.Engine.next_round ())
      done
  in
  let cfg =
    Engine.config ~k:1 ~trace_limit:2 ~max_rounds:10
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  let rounds = List.map (fun e -> e.Engine.event_round) res.Engine.trace in
  Alcotest.(check (list int)) "first two rounds kept" [ 0; 1 ] rounds

let test_trace_fate_per_event () =
  (* Fates must be attached to the right events, not merely all present:
     the message to R0 is delivered, to L1 blocked by the bipartite
     topology (No_channel), to R1 omitted by the fault model. *)
  let faults =
    Engine.fault_model (fun ~round:_ ~src:_ ~dst ->
        Party_id.equal dst (Party_id.right 1))
  in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.right 0) "ok";
      env.Engine.send (Party_id.left 1) "blocked";
      env.Engine.send (Party_id.right 1) "omitted"
    end
    else ignore (env.Engine.next_round ())
  in
  let cfg =
    Engine.config ~k:2 ~faults ~trace_limit:100
      ~link:(Engine.Of_topology Topology.Bipartite) ()
  in
  let res = Engine.run cfg ~programs in
  let fate_of dst =
    match
      List.find_opt
        (fun e -> Party_id.equal e.Engine.event_dst dst)
        res.Engine.trace
    with
    | Some e -> e.Engine.event_fate
    | None -> Alcotest.failf "no trace event for %s" (Party_id.to_string dst)
  in
  let fate =
    Alcotest.testable
      (fun ppf f ->
        Format.pp_print_string ppf
          (match f with
          | `Delivered -> "delivered"
          | `No_channel -> "no-channel"
          | `Omitted -> "omitted"
          | `Corrupted -> "corrupted"
          | `Scrambled -> "scrambled"))
      ( = )
  in
  Alcotest.check fate "R0 delivered" `Delivered (fate_of (Party_id.right 0));
  Alcotest.check fate "L1 no channel" `No_channel (fate_of (Party_id.left 1));
  Alcotest.check fate "R1 omitted" `Omitted (fate_of (Party_id.right 1))

(* The engine used to build each inbox by consing arrivals and re-sorting
   with List.stable_sort every round; it now fills per-sender buckets and
   concatenates them in dense roster order. This property test replays
   random send schedules over random topologies and fault models and
   checks every delivered inbox against the old sort-based algorithm,
   computed independently from the same schedule. *)
let test_bucket_order_matches_sort_reference () =
  let topologies =
    Topology.[ Fully_connected; Bipartite; One_sided ]
  in
  List.iter
    (fun seed ->
      let rng = Rng.make (7000 + (31 * seed)) in
      let k = 1 + Rng.int rng 3 in
      let n = 2 * k in
      let topology = Rng.choose rng topologies in
      let fault_salt = Rng.int rng 1000 in
      let drop ~round ~src ~dst =
        Hashtbl.hash (fault_salt, round, Party_id.to_dense ~k src, Party_id.to_dense ~k dst)
        mod 4
        = 0
      in
      let rounds = 3 + Rng.int rng 3 in
      (* schedule.(sender).(r) = (dst, payload) list in send order; includes
         self-sends and same-side sends so the topology paths fire. *)
      let schedule =
        Array.init n (fun s ->
            let srng = Rng.make ((seed * 997) + s) in
            Array.init rounds (fun r ->
                List.init (Rng.int srng 4) (fun i ->
                    let dst = Party_id.of_dense ~k (Rng.int srng n) in
                    dst, Printf.sprintf "s%d-r%d-%d" s r i)))
      in
      (* observed.(receiver).(r) = inbox delivered for the sends of round r *)
      let observed = Array.make_matrix n rounds [] in
      let programs id (env : Engine.env) =
        let me = Party_id.to_dense ~k id in
        for r = 0 to rounds - 1 do
          List.iter (fun (dst, m) -> env.Engine.send dst m) schedule.(me).(r);
          let inbox = env.Engine.next_round () in
          observed.(me).(r) <-
            List.map (fun e -> e.Engine.src, data_str e) inbox
        done
      in
      let cfg =
        Engine.config ~k ~link:(Engine.Of_topology topology)
          ~faults:(Engine.fault_model drop) ()
      in
      ignore (Engine.run cfg ~programs);
      (* Reference: the pre-bucket algorithm — cons arrivals while iterating
         senders in dense order, reverse, stable-sort by sender. *)
      for r = 0 to rounds - 1 do
        let arrivals = Array.make n [] in
        for s = 0 to n - 1 do
          let src = Party_id.of_dense ~k s in
          List.iter
            (fun (dst, m) ->
              if
                Topology.connected topology src dst
                && not (drop ~round:r ~src ~dst)
              then begin
                let d = Party_id.to_dense ~k dst in
                arrivals.(d) <- (src, m) :: arrivals.(d)
              end)
            schedule.(s).(r)
        done;
        for d = 0 to n - 1 do
          let expected =
            List.stable_sort
              (fun (a, _) (b, _) -> Party_id.compare a b)
              (List.rev arrivals.(d))
          in
          if expected <> observed.(d).(r) then
            Alcotest.failf
              "seed %d: receiver %s round %d: bucket order diverged from the \
               sort reference"
              seed
              (Party_id.to_string (Party_id.of_dense ~k d))
              r
        done
      done)
    (Util.range 0 25)

let test_arena_matches_per_frame_reference () =
  (* Property: the arena-span message plane is observationally identical
     to the per-frame reference semantics — deliver sender-by-sender in
     dense roster order, frame-by-frame in send order, consulting the
     corrupt hook with [prev] = last payload delivered on the ordered
     link in any strictly earlier round. The corrupt hook echoes [prev]
     into the delivered bytes, so any divergence in replay memory shows
     up bit-for-bit in the inboxes, not just in the counters. *)
  let topologies = Topology.[ Fully_connected; Bipartite; One_sided ] in
  List.iter
    (fun seed ->
      let rng = Rng.make (9100 + (37 * seed)) in
      let k = 1 + Rng.int rng 3 in
      let n = 2 * k in
      let topology = Rng.choose rng topologies in
      let salt = Rng.int rng 1000 in
      let drop ~round ~src ~dst =
        Hashtbl.hash
          (salt, 0, round, Party_id.to_dense ~k src, Party_id.to_dense ~k dst)
        mod 5
        = 0
      in
      let corrupt ~round ~src ~dst ~prev payload =
        if
          Hashtbl.hash
            (salt, 1, round, Party_id.to_dense ~k src, Party_id.to_dense ~k dst, payload)
          mod 3
          = 0
        then
          let echo = match prev with None -> "<none>" | Some p -> p in
          Some (echo ^ "#" ^ payload, "replay")
        else None
      in
      let rounds = 3 + Rng.int rng 3 in
      let schedule =
        Array.init n (fun s ->
            let srng = Rng.make ((seed * 1009) + s) in
            Array.init rounds (fun r ->
                List.init (Rng.int srng 4) (fun i ->
                    let dst = Party_id.of_dense ~k (Rng.int srng n) in
                    dst, Printf.sprintf "s%d-r%d-%d" s r i)))
      in
      let observed = Array.make_matrix n rounds [] in
      let programs id (env : Engine.env) =
        let me = Party_id.to_dense ~k id in
        for r = 0 to rounds - 1 do
          List.iter (fun (dst, m) -> env.Engine.send dst m) schedule.(me).(r);
          let inbox = env.Engine.next_round () in
          observed.(me).(r) <- List.map (fun e -> e.Engine.src, data_str e) inbox
        done
      in
      let cfg =
        Engine.config ~k ~link:(Engine.Of_topology topology)
          ~faults:(Engine.fault_model ~corrupt drop)
          ()
      in
      let res = Engine.run cfg ~programs in
      (* Per-frame reference model. *)
      let prev : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
      let ref_sent = ref 0
      and ref_delivered = ref 0
      and ref_topology = ref 0
      and ref_fault = ref 0
      and ref_corrupted = ref 0
      and ref_bytes_sent = ref 0
      and ref_bytes_delivered = ref 0 in
      for r = 0 to rounds - 1 do
        let staged : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
        let arrivals = Array.make n [] in
        for s = 0 to n - 1 do
          let src = Party_id.of_dense ~k s in
          List.iter
            (fun (dst, m) ->
              incr ref_sent;
              ref_bytes_sent := !ref_bytes_sent + String.length m;
              if not (Topology.connected topology src dst) then incr ref_topology
              else if drop ~round:r ~src ~dst then incr ref_fault
              else begin
                let d = Party_id.to_dense ~k dst in
                let p = Hashtbl.find_opt prev (s, d) in
                let delivered =
                  match corrupt ~round:r ~src ~dst ~prev:p m with
                  | Some (bytes, _) ->
                    incr ref_corrupted;
                    bytes
                  | None -> m
                in
                incr ref_delivered;
                ref_bytes_delivered := !ref_bytes_delivered + String.length delivered;
                arrivals.(d) <- (src, delivered) :: arrivals.(d);
                Hashtbl.replace staged (s, d) delivered
              end)
            schedule.(s).(r)
        done;
        (* Replay memory commits only once the round's sweep is done:
           same-round frames never see each other. *)
        Hashtbl.iter (fun key v -> Hashtbl.replace prev key v) staged;
        for d = 0 to n - 1 do
          let expected =
            List.stable_sort
              (fun (a, _) (b, _) -> Party_id.compare a b)
              (List.rev arrivals.(d))
          in
          if expected <> observed.(d).(r) then
            Alcotest.failf
              "seed %d: receiver %s round %d: arena delivery diverged from the \
               per-frame reference"
              seed
              (Party_id.to_string (Party_id.of_dense ~k d))
              r
        done
      done;
      let m = res.Engine.metrics in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: messages_sent" seed)
        !ref_sent m.Engine.messages_sent;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: messages_delivered" seed)
        !ref_delivered m.Engine.messages_delivered;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: dropped_topology" seed)
        !ref_topology m.Engine.messages_dropped_topology;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: dropped_fault" seed)
        !ref_fault m.Engine.messages_dropped_fault;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: corrupted" seed)
        !ref_corrupted m.Engine.messages_corrupted;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: bytes_sent" seed)
        !ref_bytes_sent m.Engine.bytes_sent;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: bytes_delivered" seed)
        !ref_bytes_delivered m.Engine.bytes_delivered)
    (Util.range 0 25)

let test_trace_final_flush_round () =
  (* A party that sends in its final round and returns without another
     next_round: the post-loop flush must record those events with the
     round they were sent in (= rounds_used), so trace rounds stay
     monotone and bounded by rounds_used. *)
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      env.Engine.send (Party_id.right 0) "r0";
      ignore (env.Engine.next_round ());
      env.Engine.send (Party_id.right 0) "final"
    end
    else ignore (env.Engine.next_round ())
  in
  let cfg =
    Engine.config ~k:1 ~trace_limit:10
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  let rounds = List.map (fun e -> e.Engine.event_round) res.Engine.trace in
  Alcotest.(check (list int)) "flushed event carries its send round" [ 0; 1 ] rounds;
  Alcotest.(check int)
    "last trace round = rounds_used" res.Engine.metrics.rounds_used
    (List.fold_left max 0 rounds)

let test_trace_rounds_monotone_at_cutoff () =
  (* Out-of-rounds cutoff: every round 0..max_rounds sends, including the
     partial final round flushed after the loop; trace rounds must be the
     contiguous 0..rounds_used. *)
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then
      while true do
        env.Engine.send (Party_id.right 0) "x";
        ignore (env.Engine.next_round ())
      done
    else
      while true do
        ignore (env.Engine.next_round ())
      done
  in
  let cfg =
    Engine.config ~k:1 ~max_rounds:3 ~trace_limit:100
      ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  let res = Engine.run cfg ~programs in
  let rounds = List.map (fun e -> e.Engine.event_round) res.Engine.trace in
  Alcotest.(check (list int)) "contiguous through the flush" [ 0; 1; 2; 3 ] rounds;
  Alcotest.(check int) "rounds_used" 3 res.Engine.metrics.rounds_used

let test_negative_index_dst_rejected () =
  (* Party_id's constructors refuse negative indices, so a negative index
     can only mean memory corruption or an engine bug; deliver must fail
     loudly instead of indexing arrays with it. Forged via Obj.magic — the
     only way to build one. *)
  let evil : Party_id.t = Obj.magic (Side.Left, -3) in
  Alcotest.(check int) "forged id has a negative index" (-3) (Party_id.index evil);
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then env.Engine.send evil "junk"
  in
  let cfg =
    Engine.config ~k:1 ~link:(Engine.Of_topology Topology.Fully_connected) ()
  in
  match Engine.run cfg ~programs with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "descriptive" true
      (String.length msg > 0
      && String.length msg >= 6
      && String.sub msg 0 6 = "Engine")

let test_find_result_out_of_roster () =
  let res = run ~k:1 (fun _ _ -> ()) in
  Alcotest.(check bool)
    "find_result_opt misses" true
    (Engine.find_result_opt res (Party_id.left 9) = None);
  let contains_substring needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  match Engine.find_result res (Party_id.left 9) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the party" true (contains_substring "L9" msg);
    Alcotest.(check bool) "names the roster size" true (contains_substring "2" msg)

let test_trace_off_by_default () =
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then env.Engine.send (Party_id.right 0) "x"
  in
  let res = run ~k:1 programs in
  Alcotest.(check int) "no trace" 0 (List.length res.Engine.trace)

let test_nested_engines () =
  (* A fiber may itself run an inner engine (the attack constructions do
     exactly this); effects of inner fibers must not leak outward. *)
  let inner_ok = ref false in
  let programs id env =
    if Party_id.equal id (Party_id.left 0) then begin
      let inner =
        run ~k:1 (fun iid ienv ->
            if Party_id.equal iid (Party_id.left 0) then
              ienv.Engine.send (Party_id.right 0) "inner"
            else inner_ok := ienv.Engine.next_round () <> [])
      in
      ignore inner;
      (* outer fiber still works after the nested run *)
      env.Engine.send (Party_id.right 0) "outer"
    end
    else begin
      let inbox = env.Engine.next_round () in
      env.Engine.output (String.concat "," (List.map data_str inbox))
    end
  in
  let res = run ~k:1 programs in
  Alcotest.(check bool) "inner delivered" true !inner_ok;
  let r0 = Engine.find_result res (Party_id.right 0) in
  Alcotest.(check (option string)) "outer delivered" (Some "outer") r0.Engine.out

let () =
  Alcotest.run "runtime"
    [
      ( "scheduling",
        [
          Alcotest.test_case "all terminate immediately" `Quick
            test_all_terminate_immediately;
          Alcotest.test_case "delivery at next round" `Quick
            test_message_delivered_next_round;
          Alcotest.test_case "round counter" `Quick test_round_counter;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "out of rounds" `Quick test_out_of_rounds;
          Alcotest.test_case "crash reported" `Quick test_crash_is_reported;
          Alcotest.test_case "crash after send delivers" `Quick
            test_crash_after_send_still_delivers;
        ] );
      ( "topology",
        [
          Alcotest.test_case "bipartite blocks same side" `Quick
            test_bipartite_blocks_same_side;
          Alcotest.test_case "one-sided RR ok, LL blocked" `Quick
            test_one_sided_allows_rr_blocks_ll;
          Alcotest.test_case "self send dropped" `Quick test_self_send_dropped;
          Alcotest.test_case "out-of-roster send dropped" `Quick
            test_out_of_roster_send_dropped;
        ] );
      ( "faults",
        [
          Alcotest.test_case "omission drops" `Quick test_omission_fault_drops;
          Alcotest.test_case "topology drop precedes fault drop" `Quick
            test_topology_drop_precedes_fault_drop;
          Alcotest.test_case "drop labels in metrics and trace" `Quick
            test_drop_labels_in_metrics_and_trace;
          Alcotest.test_case "bytes exclude omitted" `Quick test_bytes_exclude_omitted;
          Alcotest.test_case "corrupt rewrites and counts" `Quick
            test_corrupt_rewrites_and_counts;
          Alcotest.test_case "corrupt prev is last delivered frame" `Quick
            test_corrupt_prev_is_last_delivered_frame;
          Alcotest.test_case "drop precedes corrupt" `Quick test_drop_precedes_corrupt;
          Alcotest.test_case "state cell scrambled between rounds" `Quick
            test_register_state_scrambled_between_rounds;
          Alcotest.test_case "scramble gives up after max attempts" `Quick
            test_scramble_gives_up_after_max_attempts;
          Alcotest.test_case "bytes exclude topology drops" `Quick
            test_bytes_exclude_topology_drops;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "inbox sorted by sender" `Quick
            test_inbox_sorted_by_sender;
          Alcotest.test_case "per-sender order preserved" `Quick
            test_per_sender_order_preserved;
          Alcotest.test_case "bucket order matches sort reference" `Quick
            test_bucket_order_matches_sort_reference;
          Alcotest.test_case "arena plane matches per-frame reference" `Quick
            test_arena_matches_per_frame_reference;
          Alcotest.test_case "negative-index destination rejected" `Quick
            test_negative_index_dst_rejected;
          Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "nested engines" `Quick test_nested_engines;
          Alcotest.test_case "find_result out of roster" `Quick
            test_find_result_out_of_roster;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records all fates" `Quick test_trace_records_fates;
          Alcotest.test_case "limit respected" `Quick test_trace_limit_respected;
          Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "chronological order" `Quick test_trace_chronological;
          Alcotest.test_case "truncation keeps first events" `Quick
            test_trace_limit_keeps_first_events;
          Alcotest.test_case "fate attached to the right event" `Quick
            test_trace_fate_per_event;
          Alcotest.test_case "final flush carries its send round" `Quick
            test_trace_final_flush_round;
          Alcotest.test_case "monotone through out-of-rounds cutoff" `Quick
            test_trace_rounds_monotone_at_cutoff;
        ] );
    ]
