(* Tests for the binary wire format: roundtrips (including property-based),
   canonical encoding, and the malformed-input paths byzantine messages
   exercise. *)

open Bsm_prelude
module Wire = Bsm_wire.Wire

let roundtrip codec value = Wire.decode codec (Wire.encode codec value)

let check_roundtrip name codec eq value =
  match roundtrip codec value with
  | Ok v when eq v value -> ()
  | Ok _ -> Alcotest.failf "%s: decoded to a different value" name
  | Error e -> Alcotest.failf "%s: %s" name e

(* --- primitives ------------------------------------------------------------ *)

let test_uint_roundtrip () =
  List.iter
    (fun n -> check_roundtrip "uint" Wire.uint Int.equal n)
    [ 0; 1; 127; 128; 300; 16383; 16384; 1 lsl 30; max_int ]

let test_uint_rejects_negative () =
  match Wire.encode Wire.uint (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encoded a negative uint"

let test_int_roundtrip () =
  List.iter
    (fun n -> check_roundtrip "int" Wire.int Int.equal n)
    [ 0; 1; -1; 63; -64; 64; -65; 1000000; -1000000; max_int; min_int ]

let test_string_roundtrip () =
  List.iter
    (fun s -> check_roundtrip "string" Wire.string String.equal s)
    [ ""; "a"; String.make 1000 'x'; "\x00\xff\x80 binary" ]

let test_bool_roundtrip () =
  check_roundtrip "bool" Wire.bool Bool.equal true;
  check_roundtrip "bool" Wire.bool Bool.equal false

let test_bool_rejects_junk () =
  Alcotest.(check bool) "bad byte" true (Result.is_error (Wire.decode Wire.bool "\x07"))

(* --- combinators ------------------------------------------------------------ *)

let test_list_roundtrip () =
  check_roundtrip "list" (Wire.list Wire.int) (List.equal Int.equal) [];
  check_roundtrip "list" (Wire.list Wire.int) (List.equal Int.equal) [ 1; -2; 3 ]

let test_option_pair_triple () =
  check_roundtrip "option none" (Wire.option Wire.string) ( = ) None;
  check_roundtrip "option some" (Wire.option Wire.string) ( = ) (Some "x");
  check_roundtrip "pair" (Wire.pair Wire.int Wire.string) ( = ) (-5, "y");
  check_roundtrip "triple" (Wire.triple Wire.bool Wire.int Wire.string) ( = )
    (true, 9, "z")

let test_trailing_bytes_rejected () =
  let bytes = Wire.encode Wire.uint 5 ^ "extra" in
  Alcotest.(check bool) "trailing" true (Result.is_error (Wire.decode Wire.uint bytes))

let test_truncated_rejected () =
  let bytes = Wire.encode (Wire.pair Wire.string Wire.string) ("hello", "world") in
  let truncated = String.sub bytes 0 (String.length bytes - 3) in
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Wire.decode (Wire.pair Wire.string Wire.string) truncated))

let test_variant_unknown_tag_rejected () =
  (* party_id's side is a uint-coded enum: value 9 is invalid. *)
  let e = Wire.Enc.create () in
  Wire.Enc.uint e 9;
  Wire.Enc.uint e 0;
  Alcotest.(check bool) "unknown side" true
    (Result.is_error (Wire.decode Wire.party_id (Wire.Enc.to_string e)))

let test_canonical_encoding () =
  (* Equal values encode to equal bytes (no nondeterminism anywhere). *)
  let v = [ Some (Party_id.left 3, "payload"); None ] in
  let codec = Wire.list (Wire.option (Wire.pair Wire.party_id Wire.string)) in
  Alcotest.(check string) "canonical" (Wire.encode codec v) (Wire.encode codec v)

(* --- encoder reuse ---------------------------------------------------------- *)

let test_encode_into_matches_encode () =
  (* One caller-owned encoder reused across messages must produce the same
     bytes as a fresh encode, and returned strings must stay intact when
     the encoder is reused. *)
  let codec = Wire.pair Wire.party_id Wire.string in
  let enc = Wire.Enc.create () in
  let values = [ Party_id.left 0, "alpha"; Party_id.right 7, ""; Party_id.left 3, "z" ] in
  let reused = List.map (fun v -> Wire.encode_into enc codec v) values in
  let fresh = List.map (fun v -> Wire.encode codec v) values in
  List.iteri
    (fun i (r, f) -> Alcotest.(check string) (Printf.sprintf "message %d" i) f r)
    (List.combine reused fresh)

let test_enc_reset_clears () =
  let e = Wire.Enc.create () in
  Wire.Enc.string e "junk to forget";
  Wire.Enc.reset e;
  Wire.Enc.uint e 5;
  Alcotest.(check string) "only the post-reset bytes" (Wire.encode Wire.uint 5)
    (Wire.Enc.to_string e)

let test_nested_encode_safe () =
  (* A codec whose [write] itself calls [encode] mid-write: the per-domain
     scratch encoder must not be clobbered by the nested call. *)
  let nested =
    {
      Wire.write = (fun e v -> Wire.Enc.string e (Wire.encode Wire.uint v));
      read = (fun d -> Wire.decode_exn Wire.uint (Wire.Dec.string d));
    }
  in
  List.iter
    (fun n -> check_roundtrip "nested encode" nested Int.equal n)
    [ 0; 127; 128; 1 lsl 20 ];
  (* and the scratch path still works for plain encodes afterwards *)
  check_roundtrip "plain encode after nested" Wire.uint Int.equal 300

(* --- hardening: forged prefixes, overlong varints, hex ----------------------- *)

let test_overlong_varint_rejected () =
  (* 11 continuation bytes: more than any int fits in. The decoder must
     stop at its 10-byte cap, not shift forever. *)
  let bytes = String.make 11 '\x80' ^ "\x00" in
  Alcotest.(check bool) "overlong" true (Result.is_error (Wire.decode Wire.uint bytes))

let test_overflowing_varint_rejected () =
  (* 10 bytes whose high bits overflow a 63-bit int. *)
  let bytes = String.make 9 '\xff' ^ "\x7f" in
  Alcotest.(check bool) "overflow" true (Result.is_error (Wire.decode Wire.uint bytes))

let test_noncanonical_varint_roundtrip_boundary () =
  (* max_int is exactly the 10-byte boundary: it must still decode. *)
  check_roundtrip "max_int" Wire.uint Int.equal max_int

let test_forged_string_length_rejected () =
  (* A length prefix claiming ~2^40 bytes followed by 3 actual bytes: the
     decoder must reject against the remaining input, not allocate. *)
  let e = Wire.Enc.create () in
  Wire.Enc.uint e (1 lsl 40);
  Wire.Enc.to_string e ^ "abc" |> fun bytes ->
  Alcotest.(check bool) "forged string length" true
    (Result.is_error (Wire.decode Wire.string bytes))

let test_forged_string_length_near_max_int () =
  (* Near max_int the naive [pos + len] bound check overflows to a
     negative number and admits the read; the decoder must compare
     against the remaining byte count instead. *)
  let e = Wire.Enc.create () in
  Wire.Enc.uint e (max_int - 1);
  Wire.Enc.to_string e ^ "abc" |> fun bytes ->
  Alcotest.(check bool) "near-max_int length" true
    (Result.is_error (Wire.decode Wire.string bytes))

let test_forged_list_count_rejected () =
  (* A count prefix claiming 2^30 elements with one byte of payload: the
     decoder must reject before materializing the list. *)
  let e = Wire.Enc.create () in
  Wire.Enc.uint e (1 lsl 30);
  Wire.Enc.uint e 1;
  Alcotest.(check bool) "forged list count" true
    (Result.is_error (Wire.decode (Wire.list Wire.uint) (Wire.Enc.to_string e)))

let test_float_roundtrip () =
  let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  List.iter
    (fun f -> check_roundtrip "float" Wire.float bits_equal f)
    [ 0.; -0.; 1.; -1.5; 0.3; Float.max_float; Float.min_float; epsilon_float;
      Float.infinity; Float.neg_infinity; Float.nan ]

let test_hex_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) "hex roundtrip" s (Wire.of_hex (Wire.to_hex s)))
    [ ""; "\x00"; "abc"; "\xff\x00\x80"; String.init 256 Char.chr ]

let test_hex_rejects_junk () =
  let rejects s =
    match Wire.of_hex s with
    | exception Wire.Malformed _ -> ()
    | _ -> Alcotest.failf "of_hex accepted %S" s
  in
  rejects "a";
  rejects "0g";
  rejects "zz";
  rejects "0A Z"

(* --- random fuzzing ---------------------------------------------------------- *)

let nested_codec =
  Wire.list (Wire.pair Wire.party_id (Wire.option (Wire.list Wire.int)))

let gen_value rng =
  List.init (Rng.int rng 6) (fun _ ->
      ( Party_id.make (if Rng.bool rng then Side.Left else Side.Right) (Rng.int rng 50),
        if Rng.bool rng then None
        else Some (List.init (Rng.int rng 5) (fun _ -> Rng.int rng 2000 - 1000)) ))

let prop_nested_roundtrip =
  QCheck.Test.make ~name:"nested codec roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let v = gen_value (Rng.make seed) in
      match roundtrip nested_codec v with
      | Ok v' -> v = v'
      | Error _ -> false)

let prop_decoder_never_crashes_on_garbage =
  (* Decoders must return Error, never raise, on arbitrary bytes — this is
     the byzantine-input path of every protocol. *)
  QCheck.Test.make ~name:"garbage never crashes decoders" ~count:500
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.make seed in
      let garbage =
        String.init (Rng.int rng 60) (fun _ -> Char.chr (Rng.int rng 256))
      in
      match Wire.decode nested_codec garbage with
      | Ok _ | Error _ -> true)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "wire"
    [
      ( "primitives",
        [
          Alcotest.test_case "uint roundtrip" `Quick test_uint_roundtrip;
          Alcotest.test_case "uint rejects negative" `Quick test_uint_rejects_negative;
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "bool roundtrip" `Quick test_bool_roundtrip;
          Alcotest.test_case "bool rejects junk" `Quick test_bool_rejects_junk;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "list" `Quick test_list_roundtrip;
          Alcotest.test_case "option/pair/triple" `Quick test_option_pair_triple;
          Alcotest.test_case "trailing bytes rejected" `Quick test_trailing_bytes_rejected;
          Alcotest.test_case "truncated rejected" `Quick test_truncated_rejected;
          Alcotest.test_case "unknown variant tag rejected" `Quick
            test_variant_unknown_tag_rejected;
          Alcotest.test_case "canonical encoding" `Quick test_canonical_encoding;
        ] );
      ( "encoder reuse",
        [
          Alcotest.test_case "encode_into matches encode" `Quick
            test_encode_into_matches_encode;
          Alcotest.test_case "reset clears" `Quick test_enc_reset_clears;
          Alcotest.test_case "nested encode safe" `Quick test_nested_encode_safe;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "overlong varint rejected" `Quick
            test_overlong_varint_rejected;
          Alcotest.test_case "overflowing varint rejected" `Quick
            test_overflowing_varint_rejected;
          Alcotest.test_case "10-byte boundary still decodes" `Quick
            test_noncanonical_varint_roundtrip_boundary;
          Alcotest.test_case "forged string length rejected" `Quick
            test_forged_string_length_rejected;
          Alcotest.test_case "string length near max_int rejected" `Quick
            test_forged_string_length_near_max_int;
          Alcotest.test_case "forged list count rejected" `Quick
            test_forged_list_count_rejected;
          Alcotest.test_case "float roundtrip (incl. specials)" `Quick
            test_float_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex rejects junk" `Quick test_hex_rejects_junk;
        ] );
      ( "fuzz",
        [ qcheck prop_nested_roundtrip; qcheck prop_decoder_never_crashes_on_garbage ] );
    ]
